"""Tenant specs: traffic classes with their own share and SLOs.

A multi-tenant scenario mixes traffic classes — an interactive product
surface, a standard API tier, an offline batch lane — each with a
traffic ``weight`` and its own latency targets.  Sessions (not
individual turns) are assigned to tenants so a conversation never
straddles two SLO classes, and every request carries its tenant name
for the per-tenant lanes in :class:`repro.runtime.loadgen.LoadReport`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.runtime.loadgen import ServiceLevelObjective

__all__ = ["TenantSpec", "assign_tenants", "tenant_from_json_dict"]


@dataclass(frozen=True)
class TenantSpec:
    """One traffic class: a name, a traffic share, and latency targets."""

    name: str
    weight: float = 1.0
    slo_ttft_s: float = 1.5
    slo_itl_s: float = 1.0 / 12.0
    slo_e2e_s: float | None = None
    attainment_target: float = 0.95

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be positive, got {self.weight}")

    def slo(self) -> ServiceLevelObjective:
        """The tenant's latency targets as a serving-layer SLO."""
        return ServiceLevelObjective(
            ttft_s=self.slo_ttft_s,
            itl_s=self.slo_itl_s,
            e2e_s=self.slo_e2e_s,
            attainment_target=self.attainment_target,
        )

    def describe(self) -> str:
        return (
            f"{self.name} (weight {self.weight:g}, "
            f"TTFT<{self.slo_ttft_s:g}s, ITL<{self.slo_itl_s * 1e3:.0f}ms)"
        )

    def to_json_dict(self) -> dict[str, object]:
        return asdict(self)


def tenant_from_json_dict(payload: dict[str, object]) -> TenantSpec:
    """Rebuild a tenant spec from its :meth:`to_json_dict` form."""
    return TenantSpec(**payload)  # type: ignore[arg-type]


def assign_tenants(
    tenants: tuple[TenantSpec, ...], n: int, rng: np.random.Generator
) -> list[str | None]:
    """Weighted tenant assignment for ``n`` sessions (``None`` if untagged)."""
    if not tenants:
        return [None] * n
    probs = np.asarray([t.weight for t in tenants], dtype=float)
    probs = probs / probs.sum()
    choice = rng.choice(len(tenants), size=n, p=probs)
    return [tenants[i].name for i in choice]
