"""Scenario: a named, seed-deterministic composition of traffic parts.

A :class:`Scenario` binds an arrival process (when sessions open), a
length model (how big each turn is), a session model (how many turns a
conversation runs and their pacing), and an optional tenant mix (who the
traffic belongs to) into one buildable unit.  :meth:`Scenario.build`
expands it into the flat, arrival-sorted request trace the engine and
cluster simulators consume.

Multi-turn KV-reuse semantics: turn ``j`` of a session re-sends the full
conversation so far — its ``input_tokens`` are the accumulated context
(all prior prompts and answers) plus this turn's new text, and
``prefix_tokens`` marks the accumulated part.  All turns share
``prefix_id == session_id``, so a replica that still holds the session's
KV (bounded LRU, see :meth:`repro.cluster.simulator.Replica.touch_prefix`)
prefills only the new suffix.  Routing the whole session to one replica
(the ``session-affinity`` router) is what makes those hits happen.

Determinism: each component draws from its own child RNG spawned as
``np.random.default_rng([seed, lane])``, so adding tenants to a scenario
does not perturb its arrival times, and two builds with the same seed
are identical field-for-field.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.request import GenerationRequest
from repro.runtime.loadgen import ServiceLevelObjective
from repro.scenarios.arrival import ArrivalProcess, arrival_from_json_dict
from repro.scenarios.lengths import LengthModel, length_from_json_dict
from repro.scenarios.sessions import SessionModel, session_from_json_dict
from repro.scenarios.tenants import (
    TenantSpec,
    assign_tenants,
    tenant_from_json_dict,
)

__all__ = ["Scenario", "trace_json_dicts"]

# RNG lanes: one independent child stream per stochastic component, so
# editing one component never shifts another's draws.
_LANE_ARRIVALS = 0
_LANE_TURNS = 1
_LANE_LENGTHS = 2
_LANE_TENANTS = 3
_LANE_PACING = 4


@dataclass(frozen=True)
class Scenario:
    """A named production traffic shape, buildable into a request trace."""

    name: str
    description: str
    arrival: ArrivalProcess
    lengths: LengthModel
    sessions: SessionModel
    tenants: tuple[TenantSpec, ...] = ()
    num_sessions: int = 32

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.num_sessions < 1:
            raise ValueError(f"num_sessions must be >= 1, got {self.num_sessions}")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")

    def with_sessions(self, num_sessions: int) -> "Scenario":
        """The same scenario scaled to a different session count."""
        return replace(self, num_sessions=num_sessions)

    def tenant_slos(self) -> dict[str, ServiceLevelObjective]:
        """Per-tenant SLOs keyed by tenant name (empty if untagged)."""
        return {t.name: t.slo() for t in self.tenants}

    def build(self, seed: int = 0) -> list[GenerationRequest]:
        """Expand into an arrival-sorted request trace, deterministically."""
        arrival_rng = np.random.default_rng([seed, _LANE_ARRIVALS])
        turns_rng = np.random.default_rng([seed, _LANE_TURNS])
        lengths_rng = np.random.default_rng([seed, _LANE_LENGTHS])
        tenants_rng = np.random.default_rng([seed, _LANE_TENANTS])
        pacing_rng = np.random.default_rng([seed, _LANE_PACING])

        n = self.num_sessions
        starts = self.arrival.times(n, arrival_rng)
        turn_counts = self.sessions.turn_counts(n, turns_rng)
        total_turns = int(turn_counts.sum())
        inputs, outputs = self.lengths.sample(total_turns, lengths_rng)
        tenant_names = assign_tenants(self.tenants, n, tenants_rng)
        pacing = self.sessions.pacing_s_per_token()

        requests: list[GenerationRequest] = []
        cursor = 0
        for session_id in range(n):
            arrival = float(starts[session_id])
            context = 0
            for turn in range(int(turn_counts[session_id])):
                new_in = int(inputs[cursor])
                out = int(outputs[cursor])
                cursor += 1
                if turn > 0:
                    # Pace by the previous answer streaming out, plus think.
                    prev_out = requests[-1].output_tokens
                    arrival += prev_out * pacing
                    arrival += self.sessions.think_gap_s(pacing_rng)
                requests.append(
                    GenerationRequest(
                        input_tokens=context + new_in,
                        output_tokens=out,
                        arrival_time=arrival,
                        prefix_id=session_id if turn_counts[session_id] > 1 else None,
                        prefix_tokens=context,
                        session_id=session_id,
                        turn_index=turn,
                        tenant=tenant_names[session_id],
                    )
                )
                context += new_in + out
        requests.sort(key=lambda r: (r.arrival_time, r.session_id, r.turn_index))
        return requests

    def describe(self) -> str:
        """Multi-line human summary for ``scenario describe``."""
        lines = [
            f"scenario: {self.name}",
            f"  {self.description}",
            f"  arrivals: {self.arrival.describe()}",
            f"  lengths:  {self.lengths.describe()}",
            f"  sessions: {self.sessions.describe()} × {self.num_sessions}",
        ]
        if self.tenants:
            lines.append("  tenants:")
            for tenant in self.tenants:
                lines.append(f"    - {tenant.describe()}")
        return "\n".join(lines)

    def to_json_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "arrival": self.arrival.to_json_dict(),
            "lengths": self.lengths.to_json_dict(),
            "sessions": self.sessions.to_json_dict(),
            "tenants": [t.to_json_dict() for t in self.tenants],
            "num_sessions": self.num_sessions,
        }

    @staticmethod
    def from_json_dict(payload: dict[str, object]) -> "Scenario":
        return Scenario(
            name=payload["name"],  # type: ignore[arg-type]
            description=payload["description"],  # type: ignore[arg-type]
            arrival=arrival_from_json_dict(payload["arrival"]),  # type: ignore[arg-type]
            lengths=length_from_json_dict(payload["lengths"]),  # type: ignore[arg-type]
            sessions=session_from_json_dict(payload["sessions"]),  # type: ignore[arg-type]
            tenants=tuple(
                tenant_from_json_dict(t)
                for t in payload.get("tenants", ())  # type: ignore[union-attr]
            ),
            num_sessions=int(payload.get("num_sessions", 32)),  # type: ignore[arg-type]
        )


def trace_json_dicts(requests: list[GenerationRequest]) -> list[dict[str, object]]:
    """A trace as deterministic JSON dicts (no process-global request ids)."""
    return [
        {
            "arrival_s": round(r.arrival_time, 9),
            "input_tokens": r.input_tokens,
            "output_tokens": r.output_tokens,
            "prefix_id": r.prefix_id,
            "prefix_tokens": r.prefix_tokens,
            "session": r.session_id,
            "turn": r.turn_index,
            "tenant": r.tenant,
        }
        for r in requests
    ]
