"""Arrival processes: when sessions open, as a seeded point process.

The paper's benchmarks fire fixed batches at t=0; production traffic does
not.  An :class:`ArrivalProcess` turns a count and a seeded RNG into the
session-start instants of one scenario trace.  Beyond the constant and
Poisson baselines, three time-varying processes cover the arrival shapes
a serving fleet actually has to absorb:

* **diurnal** — a sinusoidal rate envelope between a trough and a peak
  (the day/night cycle, compressed onto the simulation clock);
* **burst** — a square-wave envelope (periodic traffic spikes: cron
  fan-out, retrain jobs, an IDE's completion keystrokes);
* **flash-crowd** — a baseline rate that ramps to ``flash_factor`` times
  itself at ``flash_at_s``, holds, then decays back (a launch, a viral
  link) — the shape autoscaler tests exercise.

Time-varying processes are non-homogeneous Poisson, sampled by Lewis's
thinning: draw candidates at the envelope's peak rate, accept each with
probability ``rate(t)/peak``.  Every draw comes from the one RNG the
caller passes, so a (process, seed) pair always yields the same times.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass

import numpy as np

__all__ = [
    "ArrivalProcess",
    "ConstantArrivals",
    "PoissonArrivals",
    "DiurnalArrivals",
    "BurstArrivals",
    "FlashCrowdArrivals",
    "ARRIVAL_KINDS",
    "arrival_from_json_dict",
]


@dataclass(frozen=True)
class ArrivalProcess:
    """Interface: subclasses generate ``n`` sorted arrival instants."""

    kind = "base"

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` nondecreasing arrival times (seconds), drawn from ``rng``."""
        raise NotImplementedError

    def rate_at(self, t: float) -> float:
        """Instantaneous offered rate (req/s) at simulation time ``t``."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human summary for catalog tables."""
        raise NotImplementedError

    def to_json_dict(self) -> dict[str, object]:
        return {"kind": self.kind, **asdict(self)}

    @staticmethod
    def _check_count(n: int) -> None:
        if n < 1:
            raise ValueError(f"need n >= 1 arrivals, got {n}")

    def _thinned(
        self, n: int, rng: np.random.Generator, peak_rate: float
    ) -> np.ndarray:
        """Non-homogeneous Poisson times via thinning at ``peak_rate``."""
        times = np.empty(n)
        t = 0.0
        accepted = 0
        while accepted < n:
            t += rng.exponential(1.0 / peak_rate)
            if rng.random() * peak_rate <= self.rate_at(t):
                times[accepted] = t
                accepted += 1
        return times


@dataclass(frozen=True)
class ConstantArrivals(ArrivalProcess):
    """Evenly spaced arrivals at a fixed rate (the closed-loop pacer)."""

    rate_rps: float = 2.0

    kind = "constant"

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {self.rate_rps}")

    def times(self, n, rng):
        self._check_count(n)
        return np.arange(n) / self.rate_rps

    def rate_at(self, t):
        return self.rate_rps

    def describe(self) -> str:
        return f"constant {self.rate_rps:g} req/s"


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential inter-arrival gaps."""

    rate_rps: float = 2.0

    kind = "poisson"

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {self.rate_rps}")

    def times(self, n, rng):
        self._check_count(n)
        return np.cumsum(rng.exponential(1.0 / self.rate_rps, size=n))

    def rate_at(self, t):
        return self.rate_rps

    def describe(self) -> str:
        return f"Poisson {self.rate_rps:g} req/s"


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal day/night envelope between ``trough_rps`` and ``peak_rps``.

    The cycle starts at the trough (simulated midnight) and peaks at
    ``period_s / 2``; real days are compressed onto the simulation clock
    by choosing a small ``period_s``.
    """

    trough_rps: float = 1.0
    peak_rps: float = 6.0
    period_s: float = 120.0

    kind = "diurnal"

    def __post_init__(self) -> None:
        if self.trough_rps <= 0 or self.peak_rps < self.trough_rps:
            raise ValueError("need 0 < trough_rps <= peak_rps")
        if self.period_s <= 0:
            raise ValueError(f"period_s must be positive, got {self.period_s}")

    def times(self, n, rng):
        self._check_count(n)
        return self._thinned(n, rng, self.peak_rps)

    def rate_at(self, t):
        phase = 2.0 * math.pi * (t / self.period_s)
        # 0 at t=0, 1 at period/2: trough -> peak -> trough.
        swing = 0.5 * (1.0 - math.cos(phase))
        return self.trough_rps + (self.peak_rps - self.trough_rps) * swing

    def describe(self) -> str:
        return (
            f"diurnal {self.trough_rps:g}-{self.peak_rps:g} req/s, "
            f"period {self.period_s:g} s"
        )


@dataclass(frozen=True)
class BurstArrivals(ArrivalProcess):
    """Square-wave envelope: periodic spikes over a baseline rate.

    Each ``period_s`` window opens with a burst lasting
    ``burst_fraction`` of the period at ``base_rps * burst_factor``,
    then falls back to ``base_rps``.
    """

    base_rps: float = 2.0
    burst_factor: float = 5.0
    period_s: float = 20.0
    burst_fraction: float = 0.25

    kind = "burst"

    def __post_init__(self) -> None:
        if self.base_rps <= 0:
            raise ValueError(f"base_rps must be positive, got {self.base_rps}")
        if self.burst_factor < 1.0:
            raise ValueError(f"burst_factor must be >= 1, got {self.burst_factor}")
        if self.period_s <= 0:
            raise ValueError(f"period_s must be positive, got {self.period_s}")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError(
                f"burst_fraction must be in (0, 1), got {self.burst_fraction}"
            )

    def times(self, n, rng):
        self._check_count(n)
        return self._thinned(n, rng, self.base_rps * self.burst_factor)

    def rate_at(self, t):
        in_burst = (t % self.period_s) < self.burst_fraction * self.period_s
        return self.base_rps * (self.burst_factor if in_burst else 1.0)

    def describe(self) -> str:
        return (
            f"bursts {self.base_rps:g}→{self.base_rps * self.burst_factor:g} "
            f"req/s every {self.period_s:g} s"
        )


@dataclass(frozen=True)
class FlashCrowdArrivals(ArrivalProcess):
    """A flash crowd: baseline, sudden ramp to a multiple, hold, decay.

    Rate is ``base_rps`` until ``flash_at_s``, ramps linearly to
    ``base_rps * flash_factor`` over ``ramp_s``, holds for ``hold_s``,
    then decays linearly back over ``decay_s``.  The canonical
    scale-up-now stimulus for autoscaler tests.
    """

    base_rps: float = 1.0
    flash_at_s: float = 20.0
    flash_factor: float = 8.0
    ramp_s: float = 2.0
    hold_s: float = 15.0
    decay_s: float = 10.0

    kind = "flash_crowd"

    def __post_init__(self) -> None:
        if self.base_rps <= 0:
            raise ValueError(f"base_rps must be positive, got {self.base_rps}")
        if self.flash_factor < 1.0:
            raise ValueError(f"flash_factor must be >= 1, got {self.flash_factor}")
        if self.flash_at_s < 0:
            raise ValueError(f"flash_at_s must be >= 0, got {self.flash_at_s}")
        if self.ramp_s <= 0 or self.hold_s < 0 or self.decay_s <= 0:
            raise ValueError("need ramp_s > 0, hold_s >= 0, decay_s > 0")

    def times(self, n, rng):
        self._check_count(n)
        return self._thinned(n, rng, self.base_rps * self.flash_factor)

    def rate_at(self, t):
        peak = self.base_rps * self.flash_factor
        ramp_end = self.flash_at_s + self.ramp_s
        hold_end = ramp_end + self.hold_s
        decay_end = hold_end + self.decay_s
        if t < self.flash_at_s or t >= decay_end:
            return self.base_rps
        if t < ramp_end:
            return self.base_rps + (peak - self.base_rps) * (
                (t - self.flash_at_s) / self.ramp_s
            )
        if t < hold_end:
            return peak
        return peak - (peak - self.base_rps) * ((t - hold_end) / self.decay_s)

    def describe(self) -> str:
        return (
            f"flash crowd {self.base_rps:g}→"
            f"{self.base_rps * self.flash_factor:g} req/s at "
            f"t={self.flash_at_s:g} s"
        )


ARRIVAL_KINDS: dict[str, type[ArrivalProcess]] = {
    cls.kind: cls
    for cls in (
        ConstantArrivals,
        PoissonArrivals,
        DiurnalArrivals,
        BurstArrivals,
        FlashCrowdArrivals,
    )
}


def arrival_from_json_dict(payload: dict[str, object]) -> ArrivalProcess:
    """Rebuild an arrival process from its :meth:`to_json_dict` form."""
    data = dict(payload)
    kind = data.pop("kind", None)
    try:
        cls = ARRIVAL_KINDS[kind]  # type: ignore[index]
    except KeyError:
        known = ", ".join(sorted(ARRIVAL_KINDS))
        raise ValueError(f"unknown arrival kind {kind!r} (known: {known})") from None
    return cls(**data)  # type: ignore[arg-type]
