"""Session models: how many turns a conversation runs, and their pacing.

An arrival process emits *session* starts; a :class:`SessionModel`
expands each start into one or more turns.  :class:`SingleShot` is the
identity (one request per arrival — the paper's shape).
:class:`MultiTurnSessions` samples a geometric turn count and paces
follow-up turns by the previous answer's streaming time plus an
exponential user think time, which is what makes a conversation's KV
worth keeping resident between turns.

The actual turn-to-request expansion (context growth, prefix accounting)
lives in :meth:`repro.scenarios.Scenario.build`; this module only decides
counts and gaps so the pieces stay independently testable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

__all__ = [
    "SessionModel",
    "SingleShot",
    "MultiTurnSessions",
    "SESSION_KINDS",
    "session_from_json_dict",
]


@dataclass(frozen=True)
class SessionModel:
    """Interface: subclasses decide turn counts and inter-turn gaps."""

    kind = "base"

    def turn_counts(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Number of turns for each of ``n`` sessions (ints >= 1)."""
        raise NotImplementedError

    def think_gap_s(self, rng: np.random.Generator) -> float:
        """User think time between an answer finishing and the next turn."""
        raise NotImplementedError

    def pacing_s_per_token(self) -> float:
        """Seconds the user spends reading/streaming each answer token."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human summary for catalog tables."""
        raise NotImplementedError

    def to_json_dict(self) -> dict[str, object]:
        return {"kind": self.kind, **asdict(self)}


@dataclass(frozen=True)
class SingleShot(SessionModel):
    """One turn per session — independent requests, no KV reuse."""

    kind = "single_shot"

    def turn_counts(self, n, rng):
        return np.ones(n, dtype=int)

    def think_gap_s(self, rng):
        return 0.0

    def pacing_s_per_token(self):
        return 0.0

    def describe(self) -> str:
        return "single-shot"


@dataclass(frozen=True)
class MultiTurnSessions(SessionModel):
    """Geometric-length conversations with think-time pacing.

    Turn counts are geometric with mean ``mean_turns`` clipped to
    ``[1, max_turns]``.  Turn j+1 arrives after turn j's answer streams
    out (``response_pacing_s_per_token`` per generated token) plus an
    exponential think gap with mean ``think_time_mean_s`` — an open-loop
    approximation: the schedule is fixed at build time rather than
    reacting to simulated completion times, which keeps traces
    replayable byte-for-byte.
    """

    mean_turns: float = 4.0
    max_turns: int = 16
    think_time_mean_s: float = 3.0
    response_pacing_s_per_token: float = 0.02

    kind = "multi_turn"

    def __post_init__(self) -> None:
        if self.mean_turns < 1.0:
            raise ValueError(f"mean_turns must be >= 1, got {self.mean_turns}")
        if self.max_turns < 1:
            raise ValueError(f"max_turns must be >= 1, got {self.max_turns}")
        if self.think_time_mean_s < 0:
            raise ValueError(
                f"think_time_mean_s must be >= 0, got {self.think_time_mean_s}"
            )
        if self.response_pacing_s_per_token < 0:
            raise ValueError(
                "response_pacing_s_per_token must be >= 0, got "
                f"{self.response_pacing_s_per_token}"
            )

    def turn_counts(self, n, rng):
        counts = rng.geometric(p=1.0 / self.mean_turns, size=n)
        return np.clip(counts, 1, self.max_turns)

    def think_gap_s(self, rng):
        if self.think_time_mean_s == 0.0:
            return 0.0
        return float(rng.exponential(self.think_time_mean_s))

    def pacing_s_per_token(self):
        return self.response_pacing_s_per_token

    def describe(self) -> str:
        return (
            f"multi-turn ~{self.mean_turns:g} turns, "
            f"think ~{self.think_time_mean_s:g} s"
        )


SESSION_KINDS: dict[str, type[SessionModel]] = {
    "single_shot": SingleShot,
    "multi_turn": MultiTurnSessions,
}


def session_from_json_dict(payload: dict[str, object]) -> SessionModel:
    """Rebuild a session model from its :meth:`to_json_dict` form."""
    data = dict(payload)
    kind = data.pop("kind", None)
    try:
        cls = SESSION_KINDS[kind]  # type: ignore[index]
    except KeyError:
        known = ", ".join(sorted(SESSION_KINDS))
        raise ValueError(f"unknown session kind {kind!r} (known: {known})") from None
    return cls(**data)  # type: ignore[arg-type]
