"""Length models: how many tokens a request reads and writes.

A :class:`LengthModel` samples per-request (input, output) token counts
from a seeded RNG.  The workhorse is :class:`LognormalLengths` — the
same right-skewed shape :func:`repro.runtime.workload.blended_trace`
uses, parameterized by mean rather than mu so presets read naturally.
:class:`MixtureLengths` composes several lognormals with weights, which
is how bimodal production traffic (e.g. RAG: mostly retrieval-stuffed
prompts, sometimes bare questions) is expressed.

The preset factories at the bottom encode the four traffic shapes the
scenario catalog ships (ShareGPT-like chat, long-context RAG, code
completion, agentic tool loops); their token means follow the public
dataset profiles referenced in SNIPPETS.md.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass

import numpy as np

__all__ = [
    "LengthModel",
    "LognormalLengths",
    "MixtureLengths",
    "LENGTH_KINDS",
    "length_from_json_dict",
    "sharegpt_chat",
    "long_context_rag",
    "code_completion",
    "agentic_tool_turns",
]


@dataclass(frozen=True)
class LengthModel:
    """Interface: subclasses sample ``n`` (input, output) token pairs."""

    kind = "base"

    def sample(
        self, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(input_tokens, output_tokens)`` int arrays of length ``n``."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human summary for catalog tables."""
        raise NotImplementedError

    def to_json_dict(self) -> dict[str, object]:
        return {"kind": self.kind, **asdict(self)}


def _lognormal(
    rng: np.random.Generator,
    n: int,
    mean: float,
    sigma: float,
    min_tokens: int,
    max_tokens: int,
) -> np.ndarray:
    """``n`` clipped integer lognormal draws with the given arithmetic mean."""
    mu = math.log(mean) - 0.5 * sigma * sigma
    draws = rng.lognormal(mean=mu, sigma=sigma, size=n)
    return np.clip(np.rint(draws).astype(int), min_tokens, max_tokens)


@dataclass(frozen=True)
class LognormalLengths(LengthModel):
    """Independent lognormal input and output lengths.

    ``mean_*_tokens`` are arithmetic means; ``sigma`` is the log-space
    spread shared by both draws (0.6 matches ``blended_trace``, ~0.9
    matches the heavier ShareGPT tail).
    """

    mean_input_tokens: float = 512.0
    mean_output_tokens: float = 256.0
    sigma: float = 0.6
    min_tokens: int = 8
    max_tokens: int = 8192

    kind = "lognormal"

    def __post_init__(self) -> None:
        if self.mean_input_tokens <= 0 or self.mean_output_tokens <= 0:
            raise ValueError("token means must be positive")
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")
        if not 1 <= self.min_tokens <= self.max_tokens:
            raise ValueError(
                f"need 1 <= min_tokens <= max_tokens, got "
                f"[{self.min_tokens}, {self.max_tokens}]"
            )

    def sample(self, n, rng):
        if n < 1:
            raise ValueError(f"need n >= 1 samples, got {n}")
        inputs = _lognormal(
            rng, n, self.mean_input_tokens, self.sigma, self.min_tokens, self.max_tokens
        )
        outputs = _lognormal(
            rng,
            n,
            self.mean_output_tokens,
            self.sigma,
            self.min_tokens,
            self.max_tokens,
        )
        return inputs, outputs

    def describe(self) -> str:
        return (
            f"lognormal ~{self.mean_input_tokens:g} in / "
            f"~{self.mean_output_tokens:g} out (σ={self.sigma:g})"
        )


@dataclass(frozen=True)
class MixtureLengths(LengthModel):
    """Weighted mixture of length models (bimodal and heavier traffic).

    Each request picks a component by weight, then samples from it.  All
    components draw a full-size sample and the chosen rows are selected
    by mask, so each component consumes the same RNG stream regardless
    of the weights — determinism survives weight tweaks.
    """

    components: tuple[LognormalLengths, ...] = ()
    weights: tuple[float, ...] = ()

    kind = "mixture"

    def __post_init__(self) -> None:
        if len(self.components) < 2:
            raise ValueError("mixture needs >= 2 components")
        if len(self.weights) != len(self.components):
            raise ValueError(
                f"{len(self.components)} components but {len(self.weights)} weights"
            )
        if any(w <= 0 for w in self.weights):
            raise ValueError(f"weights must be positive, got {self.weights}")

    def sample(self, n, rng):
        if n < 1:
            raise ValueError(f"need n >= 1 samples, got {n}")
        probs = np.asarray(self.weights, dtype=float)
        probs = probs / probs.sum()
        choice = rng.choice(len(self.components), size=n, p=probs)
        inputs = np.zeros(n, dtype=int)
        outputs = np.zeros(n, dtype=int)
        for idx, component in enumerate(self.components):
            comp_in, comp_out = component.sample(n, rng)
            mask = choice == idx
            inputs[mask] = comp_in[mask]
            outputs[mask] = comp_out[mask]
        return inputs, outputs

    def describe(self) -> str:
        parts = ", ".join(
            f"{w:g}× {c.describe()}"
            for w, c in zip(self.weights, self.components)
        )
        return f"mixture [{parts}]"

    def to_json_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "components": [c.to_json_dict() for c in self.components],
            "weights": list(self.weights),
        }


LENGTH_KINDS: dict[str, type[LengthModel]] = {
    "lognormal": LognormalLengths,
    "mixture": MixtureLengths,
}


def length_from_json_dict(payload: dict[str, object]) -> LengthModel:
    """Rebuild a length model from its :meth:`to_json_dict` form."""
    data = dict(payload)
    kind = data.pop("kind", None)
    if kind == "lognormal":
        return LognormalLengths(**data)  # type: ignore[arg-type]
    if kind == "mixture":
        components = tuple(
            length_from_json_dict(c)  # type: ignore[arg-type]
            for c in data["components"]  # type: ignore[union-attr]
        )
        if not all(isinstance(c, LognormalLengths) for c in components):
            raise ValueError("mixture components must be lognormal")
        return MixtureLengths(
            components=components,  # type: ignore[arg-type]
            weights=tuple(data["weights"]),  # type: ignore[arg-type]
        )
    known = ", ".join(sorted(LENGTH_KINDS))
    raise ValueError(f"unknown length kind {kind!r} (known: {known})")


def sharegpt_chat() -> LognormalLengths:
    """ShareGPT-like chat turns: medium prompts, chatty answers, heavy tail."""
    return LognormalLengths(
        mean_input_tokens=330.0, mean_output_tokens=240.0, sigma=0.9
    )


def long_context_rag() -> MixtureLengths:
    """Long-context RAG: mostly retrieval-stuffed prompts with terse answers,
    a minority of bare questions that skipped retrieval."""
    return MixtureLengths(
        components=(
            LognormalLengths(
                mean_input_tokens=3600.0,
                mean_output_tokens=180.0,
                sigma=0.5,
                max_tokens=16384,
            ),
            LognormalLengths(
                mean_input_tokens=250.0, mean_output_tokens=140.0, sigma=0.7
            ),
        ),
        weights=(0.8, 0.2),
    )


def code_completion() -> LognormalLengths:
    """IDE code completion: large file context in, a short suggestion out."""
    return LognormalLengths(
        mean_input_tokens=1500.0, mean_output_tokens=80.0, sigma=0.7
    )


def agentic_tool_turns() -> LognormalLengths:
    """Agentic tool loops: many short turns (tool result in, call out)."""
    return LognormalLengths(
        mean_input_tokens=180.0, mean_output_tokens=90.0, sigma=0.6
    )
