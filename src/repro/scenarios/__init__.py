"""Production scenario library: named, seed-deterministic traffic shapes.

A :class:`Scenario` composes an arrival process, a length model, a
session model, and an optional multi-tenant mix into a buildable request
trace (``scenario.build(seed)``).  The built-in catalog
(:data:`SCENARIOS`) ships seven production shapes; ``llm-inference-bench
scenario list|describe|run`` and ``repro.experiments.WorkloadSpec``
(``kind="scenario"``) consume them by name.  See ``docs/scenarios.md``.
"""

from repro.scenarios.arrival import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    BurstArrivals,
    ConstantArrivals,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    arrival_from_json_dict,
)
from repro.scenarios.catalog import (
    SCENARIOS,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.scenarios.lengths import (
    LENGTH_KINDS,
    LengthModel,
    LognormalLengths,
    MixtureLengths,
    agentic_tool_turns,
    code_completion,
    length_from_json_dict,
    long_context_rag,
    sharegpt_chat,
)
from repro.scenarios.scenario import Scenario, trace_json_dicts
from repro.scenarios.sessions import (
    SESSION_KINDS,
    MultiTurnSessions,
    SessionModel,
    SingleShot,
    session_from_json_dict,
)
from repro.scenarios.tenants import (
    TenantSpec,
    assign_tenants,
    tenant_from_json_dict,
)

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "BurstArrivals",
    "ConstantArrivals",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "PoissonArrivals",
    "arrival_from_json_dict",
    "LENGTH_KINDS",
    "LengthModel",
    "LognormalLengths",
    "MixtureLengths",
    "agentic_tool_turns",
    "code_completion",
    "length_from_json_dict",
    "long_context_rag",
    "sharegpt_chat",
    "SESSION_KINDS",
    "MultiTurnSessions",
    "SessionModel",
    "SingleShot",
    "session_from_json_dict",
    "TenantSpec",
    "assign_tenants",
    "tenant_from_json_dict",
    "Scenario",
    "trace_json_dicts",
    "SCENARIOS",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
]
