"""The built-in scenario catalog.

Seven production traffic shapes covering the combinations the ROADMAP
calls for: chat with multi-turn KV reuse, long-context RAG, bursty code
completion, agentic tool loops, a diurnal daily cycle, a flash crowd for
autoscaler stimulus, and a multi-tenant mix with per-tenant SLOs.  Sizes
are deliberately small (tens of sessions) so `scenario run`, tests, and
CI stay fast; scale any of them up with
:meth:`repro.scenarios.Scenario.with_sessions`.

Register custom scenarios with :func:`register_scenario`; names are the
lookup key everywhere (CLI, ``WorkloadSpec.scenario``, dashboards).
"""

from __future__ import annotations

from repro.scenarios.arrival import (
    BurstArrivals,
    ConstantArrivals,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
)
from repro.scenarios.lengths import (
    LognormalLengths,
    agentic_tool_turns,
    code_completion,
    long_context_rag,
    sharegpt_chat,
)
from repro.scenarios.scenario import Scenario
from repro.scenarios.sessions import MultiTurnSessions, SingleShot
from repro.scenarios.tenants import TenantSpec

__all__ = [
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
]

SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (its name must be unused)."""
    if scenario.name in SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None


def list_scenarios() -> list[Scenario]:
    """All registered scenarios, sorted by name."""
    return [SCENARIOS[name] for name in sorted(SCENARIOS)]


register_scenario(
    Scenario(
        name="chat-sharegpt",
        description=(
            "ShareGPT-shaped chat: Poisson session opens, heavy-tailed "
            "turn lengths, ~4-turn conversations reusing session KV."
        ),
        arrival=PoissonArrivals(rate_rps=1.5),
        lengths=sharegpt_chat(),
        sessions=MultiTurnSessions(mean_turns=4.0, max_turns=12),
        num_sessions=24,
    )
)

register_scenario(
    Scenario(
        name="rag-long-context",
        description=(
            "Long-context RAG: single-shot retrieval-stuffed prompts "
            "(~3.6k tokens) with terse answers, a 20% bare-question mode."
        ),
        arrival=PoissonArrivals(rate_rps=1.0),
        lengths=long_context_rag(),
        sessions=SingleShot(),
        num_sessions=32,
    )
)

register_scenario(
    Scenario(
        name="code-completion",
        description=(
            "IDE code completion: keystroke-driven bursts of large-context "
            "prompts with short suggestions, no session reuse."
        ),
        arrival=BurstArrivals(
            base_rps=1.0, burst_factor=6.0, period_s=15.0, burst_fraction=0.2
        ),
        lengths=code_completion(),
        sessions=SingleShot(),
        num_sessions=40,
    )
)

register_scenario(
    Scenario(
        name="agentic-tools",
        description=(
            "Agentic tool loops: long conversations of many short turns "
            "with sub-second think time, maximal KV-reuse pressure."
        ),
        arrival=PoissonArrivals(rate_rps=0.8),
        lengths=agentic_tool_turns(),
        sessions=MultiTurnSessions(
            mean_turns=10.0,
            max_turns=24,
            think_time_mean_s=0.5,
            response_pacing_s_per_token=0.01,
        ),
        num_sessions=12,
    )
)

register_scenario(
    Scenario(
        name="diurnal-chat",
        description=(
            "A compressed day of chat traffic: sinusoidal trough-to-peak "
            "arrivals over a 120 s simulated cycle, 3-turn conversations."
        ),
        arrival=DiurnalArrivals(trough_rps=0.5, peak_rps=4.0, period_s=120.0),
        lengths=sharegpt_chat(),
        sessions=MultiTurnSessions(mean_turns=3.0, max_turns=8),
        num_sessions=24,
    )
)

register_scenario(
    Scenario(
        name="flash-crowd",
        description=(
            "A launch spike: baseline traffic ramping 8x at t=20 s, holding, "
            "then decaying — the canonical autoscaler scale-up stimulus."
        ),
        arrival=FlashCrowdArrivals(
            base_rps=0.8,
            flash_at_s=20.0,
            flash_factor=8.0,
            ramp_s=2.0,
            hold_s=15.0,
            decay_s=10.0,
        ),
        lengths=LognormalLengths(mean_input_tokens=400.0, mean_output_tokens=160.0),
        sessions=SingleShot(),
        num_sessions=48,
    )
)

register_scenario(
    Scenario(
        name="multi-tenant-prod",
        description=(
            "A production mix of three SLO classes: interactive chat "
            "(tight TTFT), a standard API tier, and a lax batch lane."
        ),
        arrival=ConstantArrivals(rate_rps=2.0),
        lengths=sharegpt_chat(),
        sessions=MultiTurnSessions(mean_turns=2.0, max_turns=6),
        tenants=(
            TenantSpec(name="interactive", weight=3.0, slo_ttft_s=0.8, slo_itl_s=0.06),
            TenantSpec(name="standard", weight=2.0, slo_ttft_s=1.5, slo_itl_s=1 / 12),
            TenantSpec(name="batch", weight=1.0, slo_ttft_s=10.0, slo_itl_s=0.5),
        ),
        num_sessions=30,
    )
)
