"""Self-contained HTML dashboard generator.

The paper ships an interactive dashboard for exploring (framework,
accelerator, model) configurations.  This generator produces a single
dependency-free HTML file: experiment result tables embedded as JSON, a
client-side filter bar, and pure-JS bar rendering (no network, no CDN).
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.bench.experiments import EXPERIMENTS, ExperimentResult
from repro.obs.metrics import MetricsSnapshot

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.optimize import OptimizationReport
    from repro.cluster.simulator import ClusterResult
    from repro.experiments.compare import ComparisonReport
    from repro.experiments.runner import ReplicationReport
    from repro.obs.profiler import ProfileReport
    from repro.obs.telemetry import TelemetrySnapshot
    from repro.runtime.loadgen import LoadReport
    from repro.scenarios import Scenario

__all__ = [
    "dashboard_html",
    "write_dashboard",
    "metrics_section_html",
    "cluster_section_html",
    "profile_section_html",
    "replication_section_html",
    "comparison_section_html",
    "scenarios_section_html",
    "telemetry_section_html",
]

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>LLM-Inference-Bench Dashboard (reproduction)</title>
<style>
  body {{ font-family: system-ui, sans-serif; margin: 2rem; color: #1a1a2e; }}
  h1 {{ font-size: 1.4rem; }}
  h2 {{ font-size: 1.1rem; margin-top: 2rem; border-bottom: 1px solid #ccc; }}
  .claims td, .claims th, .data td, .data th {{
    padding: 2px 10px; text-align: right; font-variant-numeric: tabular-nums;
  }}
  .claims th, .data th {{ background: #eef; }}
  .claims td:first-child, .data td:first-child {{ text-align: left; }}
  .bar {{ background: #4a6fa5; height: 12px; display: inline-block; }}
  select {{ margin-right: 1rem; }}
  .note {{ color: #555; font-size: 0.9rem; }}
</style>
</head>
<body>
<h1>LLM-Inference-Bench &mdash; reproduction dashboard</h1>
<p class="note">Simulated measurements (see DESIGN.md). Pick an experiment
to view its sweep table; bars are proportional to throughput within each
table.</p>
<label>Experiment: <select id="picker"></select></label>
<div id="content"></div>
{metrics_html}
<script>
const DATA = {data_json};
const picker = document.getElementById("picker");
const content = document.getElementById("content");
for (const id of Object.keys(DATA)) {{
  const opt = document.createElement("option");
  opt.value = id;
  opt.textContent = id + " — " + DATA[id].title;
  picker.appendChild(opt);
}}
function fmt(v) {{
  if (typeof v !== "number") return String(v);
  return Math.abs(v) >= 100 ? v.toFixed(0) : v.toPrecision(3);
}}
function render(id) {{
  const exp = DATA[id];
  let out = "<h2>" + id + ": " + exp.title + "</h2>";
  out += "<p class='note'>" + exp.section + "</p>";
  if (exp.claims.length) {{
    out += "<table class='claims'><tr><th>headline</th><th>paper</th><th>measured</th></tr>";
    for (const c of exp.claims) {{
      out += "<tr><td>" + c.name + "</td><td>" + (c.paper === null ? "—" : fmt(c.paper)) +
             "</td><td>" + fmt(c.measured) + "</td></tr>";
    }}
    out += "</table>";
  }}
  const rows = exp.records;
  if (rows.length) {{
    const cols = Object.keys(rows[0]);
    const tputCol = cols.find(c => c.includes("throughput") || c.includes("peak"));
    const maxTput = tputCol ? Math.max(...rows.map(r => r[tputCol] || 0)) : 0;
    out += "<table class='data'><tr>" + cols.map(c => "<th>" + c + "</th>").join("") +
           (tputCol ? "<th></th>" : "") + "</tr>";
    for (const r of rows) {{
      out += "<tr>" + cols.map(c => "<td>" + fmt(r[c]) + "</td>").join("");
      if (tputCol && maxTput > 0) {{
        const w = Math.round(200 * (r[tputCol] || 0) / maxTput);
        out += "<td><span class='bar' style='width:" + w + "px'></span></td>";
      }}
      out += "</tr>";
    }}
    out += "</table>";
  }}
  content.innerHTML = out;
}}
picker.addEventListener("change", () => render(picker.value));
render(picker.value);
</script>
</body>
</html>
"""


def metrics_section_html(
    snapshot: MetricsSnapshot, title: str = "Serving metrics (traced engine run)"
) -> str:
    """Static HTML fragment: percentile table + histogram bucket panels.

    Rendered from a :class:`~repro.obs.metrics.MetricsSnapshot` (a traced
    engine run); embeddable in the dashboard via ``dashboard_html``'s
    ``metrics`` argument or served standalone.
    """
    parts = [f"<h2>{html.escape(title)}</h2>"]
    if snapshot.histograms:
        parts.append(
            "<table class='data'><tr><th>histogram</th><th>count</th>"
            "<th>mean</th><th>p50</th><th>p90</th><th>p99</th></tr>"
        )
        for name in sorted(snapshot.histograms):
            h = snapshot.histograms[name]
            parts.append(
                f"<tr><td>{html.escape(name)}</td><td>{h.count}</td>"
                f"<td>{h.mean:.4g}</td><td>{h.p50:.4g}</td>"
                f"<td>{h.p90:.4g}</td><td>{h.p99:.4g}</td></tr>"
            )
        parts.append("</table>")
        for name in sorted(snapshot.histograms):
            h = snapshot.histograms[name]
            populated = [
                (i, c) for i, c in enumerate(h.bucket_counts) if c > 0
            ]
            if not populated:
                continue
            peak = max(c for _, c in populated)
            parts.append(f"<h3>{html.escape(name)} distribution</h3>")
            parts.append("<table class='data'><tr><th>bucket &le;</th>"
                         "<th>count</th><th></th></tr>")
            for i, count in populated:
                bound = (
                    f"{h.buckets[i]:.4g}" if i < len(h.buckets) else "+inf"
                )
                width = round(200 * count / peak)
                parts.append(
                    f"<tr><td>{bound}</td><td>{count}</td>"
                    f"<td><span class='bar' style='width:{width}px'></span>"
                    "</td></tr>"
                )
            parts.append("</table>")
    if snapshot.gauges:
        parts.append(
            "<table class='data'><tr><th>gauge</th><th>last</th><th>min</th>"
            "<th>max</th><th>time-weighted mean</th></tr>"
        )
        for name in sorted(snapshot.gauges):
            g = snapshot.gauges[name]
            parts.append(
                f"<tr><td>{html.escape(name)}</td><td>{g.last:.4g}</td>"
                f"<td>{g.minimum:.4g}</td><td>{g.maximum:.4g}</td>"
                f"<td>{g.time_weighted_mean:.4g}</td></tr>"
            )
        parts.append("</table>")
    if snapshot.counters:
        parts.append("<table class='data'><tr><th>counter</th><th>value</th></tr>")
        for name in sorted(snapshot.counters):
            parts.append(
                f"<tr><td>{html.escape(name)}</td>"
                f"<td>{snapshot.counters[name]:.4g}</td></tr>"
            )
        parts.append("</table>")
    return "\n".join(parts)


def cluster_section_html(
    result: "ClusterResult", title: str = "Cluster simulation"
) -> str:
    """Static HTML fragment for one cluster run: replica table + gauges.

    Per-replica rows (role, status, requests served, busy time,
    utilization bar) followed by fault-injection and autoscale event
    tables when the control plane acted, then the cluster metrics
    snapshot (fleet gauges sampled at every routing instant, TTFT/ITL
    histograms) via :func:`metrics_section_html`.  Embeddable below the
    experiment browser the same way the traced-engine metrics section is.
    """
    parts = [f"<h2>{html.escape(title)}</h2>"]
    parts.append(
        "<p class='note'>"
        f"{len(result.replicas)} replicas, router "
        f"{html.escape(result.router_name)}, {len(result.requests)} "
        f"requests, makespan {result.makespan_s:.2f}&nbsp;s"
        + (f", {result.handoffs} KV handoffs" if result.handoffs else "")
        + (f", {result.prefix_hits} prefix hits" if result.prefix_hits else "")
        + (f", {result.retries} retries" if result.retries else "")
        + (
            f", {result.failed_requests} failed"
            if result.failed_requests
            else ""
        )
        + "</p>"
    )
    parts.append(
        "<table class='data'><tr><th>replica</th><th>role</th>"
        "<th>status</th><th>requests</th><th>busy s</th>"
        "<th>utilization</th><th></th></tr>"
    )
    for rep in result.replicas:
        width = round(200 * min(1.0, max(0.0, rep.utilization)))
        parts.append(
            f"<tr><td>{html.escape(rep.name)}</td>"
            f"<td>{html.escape(rep.role)}</td>"
            f"<td>{html.escape(rep.status)}</td>"
            f"<td>{rep.requests_served}</td><td>{rep.busy_s:.2f}</td>"
            f"<td>{rep.utilization:.0%}</td>"
            f"<td><span class='bar' style='width:{width}px'></span></td></tr>"
        )
    parts.append("</table>")
    if result.fault_log:
        parts.append("<h3>Injected faults</h3>")
        parts.append(
            "<table class='data'><tr><th>t (s)</th><th>kind</th>"
            "<th>replica</th><th>detail</th></tr>"
        )
        for fault in result.fault_log:
            detail = ""
            if fault.get("duration_s"):
                detail = f"{fault['duration_s']:.2f}s"
                if fault.get("factor", 1.0) != 1.0:
                    detail += f" x{fault['factor']:g}"
            if "requeued" in fault:
                detail = f"{fault['requeued']} requests requeued"
            parts.append(
                f"<tr><td>{fault['at_s']:.2f}</td>"
                f"<td>{html.escape(fault['kind'])}</td>"
                f"<td>{html.escape(fault.get('replica') or '-')}</td>"
                f"<td>{html.escape(detail)}</td></tr>"
            )
        parts.append("</table>")
    if result.scale_log:
        parts.append("<h3>Autoscale events</h3>")
        parts.append(
            "<table class='data'><tr><th>t (s)</th><th>action</th>"
            "<th>replica</th><th>ready (s)</th></tr>"
        )
        for event in result.scale_log:
            ready = (
                f"{event['ready_s']:.2f}"
                if event.get("ready_s") is not None
                else "-"
            )
            parts.append(
                f"<tr><td>{event['ts_s']:.2f}</td>"
                f"<td>{html.escape(event['action'])}</td>"
                f"<td>{html.escape(event.get('replica') or '-')}</td>"
                f"<td>{ready}</td></tr>"
            )
        parts.append("</table>")
    parts.append(metrics_section_html(result.metrics, title="Cluster metrics"))
    return "\n".join(parts)


def profile_section_html(
    profile: "ProfileReport", title: str = "Cost attribution profile"
) -> str:
    """Static HTML fragment for one :class:`ProfileReport`.

    Headline utilization counters (MFU, MBU, tokens/s, power, energy per
    token), then a per-phase roofline-share table whose bars stack the
    six cost components, then the most expensive per-request
    attributions.  Embeddable below the experiment browser via
    ``dashboard_html``'s ``profile`` argument.
    """
    parts = [f"<h2>{html.escape(title)}</h2>"]
    parts.append(
        "<p class='note'>"
        f"{html.escape(profile.name)} &mdash; {html.escape(profile.model)} on "
        f"{profile.num_devices}x {html.escape(profile.hardware)} / "
        f"{html.escape(profile.framework)}: wall {profile.total_time_s:.4g}&nbsp;s "
        f"(busy {profile.busy_s:.4g}, idle {profile.idle_s:.4g}), "
        f"{profile.tokens} tokens</p>"
    )
    parts.append(
        "<table class='data'><tr><th>MFU</th><th>MBU</th>"
        "<th>tokens/s</th><th>avg power (W)</th><th>J/token</th>"
        "<th>dominant</th></tr>"
        f"<tr><td>{profile.mfu:.1%}</td><td>{profile.mbu:.1%}</td>"
        f"<td>{profile.tokens_per_s:.4g}</td>"
        f"<td>{profile.average_power_w:.4g}</td>"
        f"<td>{profile.joules_per_token:.4g}</td>"
        f"<td>{profile.dominant_bottleneck or '-'}</td></tr></table>"
    )
    if profile.phases:
        parts.append(
            "<table class='data'><tr><th>phase</th><th>time s</th>"
            "<th>events</th><th>tokens</th><th>compute</th><th>weights</th>"
            "<th>kv</th><th>act</th><th>comm</th><th>overhead</th>"
            "<th>dominant</th><th></th></tr>"
        )
        for phase in profile.phases:
            shares = phase.components.fractions()
            cells = "".join(
                f"<td>{shares[field]:.1%}</td>"
                for field in ("compute_s", "weight_s", "kv_s",
                              "activation_s", "communication_s", "overhead_s")
            )
            width = round(200 * min(1.0, max(0.0, shares["compute_s"])))
            parts.append(
                f"<tr><td>{html.escape(phase.phase)}</td>"
                f"<td>{phase.time_s:.4g}</td><td>{phase.events}</td>"
                f"<td>{phase.tokens}</td>{cells}"
                f"<td>{phase.dominant or '-'}</td>"
                f"<td><span class='bar' style='width:{width}px'></span>"
                "</td></tr>"
            )
        parts.append("</table>")
    if profile.requests:
        shown = sorted(
            profile.requests, key=lambda r: (-r.time_s, r.index)
        )[:8]
        peak = max(req.time_s for req in shown)
        parts.append("<h3>Most expensive requests</h3>")
        parts.append(
            "<table class='data'><tr><th>request</th><th>in</th><th>out</th>"
            "<th>time s</th><th>energy J</th><th>dominant</th><th></th></tr>"
        )
        for req in shown:
            width = round(200 * req.time_s / peak) if peak > 0 else 0
            parts.append(
                f"<tr><td>{req.index}</td><td>{req.input_tokens}</td>"
                f"<td>{req.output_tokens}</td><td>{req.time_s:.4g}</td>"
                f"<td>{req.energy_j:.4g}</td><td>{req.dominant or '-'}</td>"
                f"<td><span class='bar' style='width:{width}px'></span>"
                "</td></tr>"
            )
        parts.append("</table>")
    return "\n".join(parts)


def replication_section_html(
    report: "ReplicationReport", title: str | None = None
) -> str:
    """Static HTML fragment for one replicated experiment.

    One row per metric: mean with its confidence interval, sample spread
    and an interval-width bar (relative half-width), so the dashboard
    shows which numbers carry real error bars and which are single-seed
    point estimates.  Embeddable via ``dashboard_html``'s ``replication``
    argument.
    """
    import math as _math

    if title is None:
        title = f"Replication: {report.spec.name}"
    parts = [f"<h2>{html.escape(title)}</h2>"]
    parts.append(
        "<p class='note'>"
        f"{html.escape(report.spec.model)} on {html.escape(report.spec.hardware)}"
        f" / {html.escape(report.spec.framework)} &mdash; "
        f"{report.num_seeds} seeds, {html.escape(report.method)} intervals at "
        f"{report.confidence:.0%} confidence</p>"
    )
    parts.append(
        "<table class='data'><tr><th>metric</th><th>mean</th>"
        "<th>CI low</th><th>CI high</th><th>std</th><th>n</th><th></th></tr>"
    )
    for name in sorted(report.summaries):
        s = report.summaries[name]
        half = s.half_width
        rel = (
            half / abs(s.mean)
            if _math.isfinite(half) and s.mean not in (0.0,) and _math.isfinite(s.mean)
            else float("nan")
        )
        width = (
            round(200 * min(1.0, rel)) if _math.isfinite(rel) else 0
        )
        fmt = lambda v: f"{v:.4g}" if _math.isfinite(v) else "&mdash;"  # noqa: E731
        parts.append(
            f"<tr><td>{html.escape(name)}</td><td>{fmt(s.mean)}</td>"
            f"<td>{fmt(s.ci_lo)}</td><td>{fmt(s.ci_hi)}</td>"
            f"<td>{fmt(s.std)}</td><td>{s.n}</td>"
            f"<td><span class='bar' style='width:{width}px'></span></td></tr>"
        )
    parts.append("</table>")
    return "\n".join(parts)


def comparison_section_html(
    report: "ComparisonReport", title: str | None = None
) -> str:
    """Static HTML fragment for an A-vs-B comparison.

    One row per metric with both means, the delta, the p-value and a
    ``significant`` marker at the report's alpha; significant rows carry
    the marker so sweep reviews can skim for real effects.  Embeddable
    via ``dashboard_html``'s ``comparison`` argument.
    """
    import math as _math

    if title is None:
        title = f"Comparison: {report.name_a} vs {report.name_b}"
    pairing = "paired by seed" if report.paired else "independent samples"
    parts = [f"<h2>{html.escape(title)}</h2>"]
    parts.append(
        "<p class='note'>"
        f"A = {html.escape(report.name_a)}, B = {html.escape(report.name_b)} "
        f"&mdash; {pairing}, significance at p&lt;{report.alpha:g}</p>"
    )
    parts.append(
        "<table class='data'><tr><th>metric</th><th>A</th><th>B</th>"
        "<th>delta</th><th>p</th><th>significant</th></tr>"
    )
    for comp in report.comparisons:
        p = comp.test.p_value
        sig = comp.significant(report.alpha)
        parts.append(
            f"<tr><td>{html.escape(comp.metric)}</td>"
            f"<td>{comp.mean_a:.4g}</td><td>{comp.mean_b:.4g}</td>"
            f"<td>{comp.delta:+.4g}</td>"
            + (
                f"<td>{p:.3g}</td>"
                if _math.isfinite(p)
                else "<td>&mdash;</td>"
            )
            + f"<td>{'*' if sig else ''}</td></tr>"
        )
    parts.append("</table>")
    significant = report.significant_metrics()
    if significant:
        parts.append(
            "<p class='note'>significant: "
            + html.escape(", ".join(significant))
            + "</p>"
        )
    return "\n".join(parts)


def scenarios_section_html(
    scenarios: "list[Scenario]", load: "LoadReport | None" = None
) -> str:
    """Static HTML fragment for the scenario catalog.

    One row per scenario (arrivals, lengths, sessions, tenant count);
    ``load`` (optional, from a scenario run) appends the per-tenant SLO
    lanes so multi-tenant attainment gaps are visible at a glance.
    NaN lanes (a tenant that completed nothing) render as dashes.
    Embeddable via ``dashboard_html``'s ``scenarios`` argument.
    """
    import math as _math

    parts = ["<h2>Traffic scenarios</h2>"]
    parts.append(
        "<p class='note'>Named, seed-deterministic production traffic "
        "shapes (<code>repro.scenarios</code>); run with "
        "<code>scenario run &lt;name&gt;</code>.</p>"
    )
    parts.append(
        "<table class='data'><tr><th>scenario</th><th>sessions</th>"
        "<th>arrivals</th><th>lengths</th><th>sessions model</th>"
        "<th>tenants</th></tr>"
    )
    for scenario in scenarios:
        parts.append(
            f"<tr><td>{html.escape(scenario.name)}</td>"
            f"<td>{scenario.num_sessions}</td>"
            f"<td>{html.escape(scenario.arrival.describe())}</td>"
            f"<td>{html.escape(scenario.lengths.describe())}</td>"
            f"<td>{html.escape(scenario.sessions.describe())}</td>"
            f"<td>{len(scenario.tenants) or '&mdash;'}</td></tr>"
        )
    parts.append("</table>")
    if load is not None and load.tenants:
        fmt = lambda v: f"{v:.4g}" if _math.isfinite(v) else "&mdash;"  # noqa: E731
        parts.append(
            "<table class='data'><tr><th>tenant</th><th>requests</th>"
            "<th>SLO attainment</th><th>TTFT p95 (s)</th>"
            "<th>NTPOT (s)</th><th>failure rate</th></tr>"
        )
        for lane in load.tenants:
            parts.append(
                f"<tr><td>{html.escape(lane.tenant)}</td>"
                f"<td>{lane.requests}</td>"
                f"<td>{lane.slo_attainment:.0%}</td>"
                f"<td>{fmt(lane.ttft_p95_s)}</td>"
                f"<td>{fmt(lane.ntpot_mean_s)}</td>"
                f"<td>{lane.failure_rate:.0%}</td></tr>"
            )
        parts.append("</table>")
    return "\n".join(parts)


def telemetry_section_html(
    snapshot: "TelemetrySnapshot", title: str = "Streaming telemetry"
) -> str:
    """Static HTML fragment for one :class:`TelemetrySnapshot`.

    Budget configuration note, then one row per time series (sample
    count, last/min/max with a last-value bar scaled within the series
    range), then the typed alert log in firing order.  Series whose
    samples are all null (NaN-only channels, e.g. ITL under single-token
    outputs) render as dashes.  Embeddable via ``dashboard_html``'s
    ``telemetry`` argument.
    """
    import math as _math

    fmt = lambda v: f"{v:.4g}" if v is not None and _math.isfinite(v) else "&mdash;"  # noqa: E731
    cfg = snapshot.config
    parts = [f"<h2>{html.escape(title)}</h2>"]
    parts.append(
        "<p class='note'>SLO budget: attainment target "
        f"{fmt(cfg.get('attainment_target'))}, burn windows "
        f"{fmt(cfg.get('fast_window_s'))}&nbsp;s / "
        f"{fmt(cfg.get('slow_window_s'))}&nbsp;s, page at "
        f"{fmt(cfg.get('page_threshold'))}&times;, ticket at "
        f"{fmt(cfg.get('ticket_threshold'))}&times;, tick every "
        f"{fmt(cfg.get('tick_interval_s'))}&nbsp;s</p>"
    )
    if snapshot.series:
        parts.append(
            "<table class='data'><tr><th>series</th><th>unit</th>"
            "<th>samples</th><th>last</th><th>min</th><th>max</th>"
            "<th></th></tr>"
        )
        for name in sorted(snapshot.series):
            body = snapshot.series[name]
            values = [v for v in body["values"] if v is not None]
            last = values[-1] if values else None
            lo = min(values) if values else None
            hi = max(values) if values else None
            width = 0
            if last is not None and hi is not None and hi > 0:
                width = round(200 * max(0.0, last) / hi)
            parts.append(
                f"<tr><td>{html.escape(name)}</td>"
                f"<td>{html.escape(body.get('unit', ''))}</td>"
                f"<td>{len(body['values'])}</td>"
                f"<td>{fmt(last)}</td><td>{fmt(lo)}</td><td>{fmt(hi)}</td>"
                f"<td><span class='bar' style='width:{width}px'></span>"
                "</td></tr>"
            )
        parts.append("</table>")
    if snapshot.alerts:
        parts.append("<h3>Alerts</h3>")
        parts.append(
            "<table class='data'><tr><th>t (s)</th><th>alert</th>"
            "<th>severity</th><th>state</th><th>burn</th>"
            "<th>threshold</th><th>window (s)</th></tr>"
        )
        for alert in snapshot.alerts:
            parts.append(
                f"<tr><td>{fmt(alert.ts_s)}</td>"
                f"<td>{html.escape(alert.name)}</td>"
                f"<td>{html.escape(alert.severity)}</td>"
                f"<td>{html.escape(alert.state)}</td>"
                f"<td>{fmt(alert.value)}</td>"
                f"<td>{fmt(alert.threshold)}</td>"
                f"<td>{fmt(alert.window_s)}</td></tr>"
            )
        parts.append("</table>")
    else:
        parts.append("<p class='note'>No alerts fired.</p>")
    return "\n".join(parts)


def optimize_section_html(report: "OptimizationReport") -> str:
    """Static HTML fragment for an optimizer run's Pareto frontiers.

    Headline verdict (best configuration for the report's objective)
    followed by one table per frontier, sorted along the frontier so
    each table reads as the trade-off curve top to bottom.  Embeddable
    via ``dashboard_html``'s ``optimization`` argument.
    """
    import math as _math

    fmt = lambda v: f"{v:.4g}" if _math.isfinite(v) else "&mdash;"  # noqa: E731
    stats = report.stats
    parts = ["<h2>Deployment optimization</h2>"]
    parts.append(
        "<p class='note'>Pareto search over the deployment space "
        "(<code>repro.analysis.optimize</code>): "
        f"{stats.configs_screened}/{stats.configs_nominal} configurations "
        f"screened ({stats.skipped_invalid} invalid, {stats.oom_lanes} OOM "
        "lanes), target "
        f"{report.space.target_rate_rps:.2g} req/s at "
        f"{report.space.input_tokens}/{report.space.output_tokens} tokens.</p>"
    )
    best = report.best
    if best is None:
        parts.append(
            "<p class='note'>No configuration meets the SLO within "
            f"{report.space.max_replicas} replicas.</p>"
        )
    else:
        parts.append(
            f"<p>Best <b>{html.escape(report.objective)}</b>: "
            f"<code>{html.escape(best.key)}</code> &mdash; "
            f"{best.cost_per_token_usd:.3e} $/token, "
            f"{best.energy_per_token_j:.3g} J/token, "
            f"{best.replicas} replica(s) &times; {best.num_devices} "
            "device(s)</p>"
        )
    for name, members in sorted(report.frontiers.items()):
        parts.append(f"<h3>{html.escape(name.replace('_', ' '))}</h3>")
        parts.append(
            "<table class='data'><tr><th>configuration</th><th>replicas</th>"
            "<th>$/token</th><th>J/token</th><th>tok/s</th><th>e2e (s)</th>"
            "<th>SLO headroom</th><th>perplexity</th></tr>"
        )
        for c in members:
            parts.append(
                f"<tr><td><code>{html.escape(c.key)}</code></td>"
                f"<td>{c.replicas}</td>"
                f"<td>{fmt(c.cost_per_token_usd)}</td>"
                f"<td>{fmt(c.energy_per_token_j)}</td>"
                f"<td>{fmt(c.throughput_tokens_per_s)}</td>"
                f"<td>{fmt(c.e2e_s)}</td>"
                f"<td>{fmt(c.slo_headroom)}</td>"
                f"<td>{fmt(c.perplexity)}</td></tr>"
            )
        parts.append("</table>")
    if report.refined:
        parts.append("<h3>Discrete-event refinement</h3>")
        parts.append(
            "<table class='data'><tr><th>configuration</th><th>router</th>"
            "<th>planned replicas</th><th>feasible</th>"
            "<th>autoscaler bounds</th></tr>"
        )
        for r in report.refined:
            plan = r.capacity_plan
            bounds = (
                f"[{r.autoscaler_min_replicas}, {r.autoscaler_max_replicas}]"
                if r.autoscaler_min_replicas is not None
                else "&mdash;"
            )
            parts.append(
                f"<tr><td><code>{html.escape(r.config.key)}</code></td>"
                f"<td>{html.escape(r.router)}</td>"
                f"<td>{plan.num_replicas}</td>"
                f"<td>{'yes' if plan.feasible else 'no'}</td>"
                f"<td>{bounds}</td></tr>"
            )
        parts.append("</table>")
    return "\n".join(parts)


def dashboard_html(
    results: list[ExperimentResult],
    metrics: MetricsSnapshot | None = None,
    cluster: "ClusterResult | None" = None,
    profile: "ProfileReport | None" = None,
    replication: "ReplicationReport | None" = None,
    comparison: "ComparisonReport | None" = None,
    scenarios: "list[Scenario] | None" = None,
    optimization: "OptimizationReport | None" = None,
    telemetry: "TelemetrySnapshot | None" = None,
) -> str:
    """Render results into a single self-contained HTML page.

    ``metrics`` (optional) embeds a traced engine run's percentile and
    histogram panels below the experiment browser; ``cluster`` (optional)
    appends a cluster-simulation section (replica utilization, fleet
    gauges) the same way; ``profile`` (optional) appends a cost-
    attribution section (roofline shares, MFU/MBU/energy counters);
    ``replication`` and ``comparison`` (optional) append the
    confidence-interval and A/B-significance sections from
    :mod:`repro.experiments`; ``scenarios`` (optional) appends the
    traffic-scenario catalog from :mod:`repro.scenarios`;
    ``optimization`` (optional) appends the Pareto-frontier section from
    :mod:`repro.analysis.optimize`; ``telemetry`` (optional) appends the
    streaming-telemetry section (series summary, burn-rate alert log)
    from :mod:`repro.obs.telemetry`.
    """
    if not results:
        raise ValueError("no results to render")
    data: dict[str, dict] = {}
    for result in results:
        exp = EXPERIMENTS.get(result.experiment_id)
        data[result.experiment_id] = {
            "title": html.escape(result.title),
            "section": html.escape(exp.section if exp else ""),
            "claims": [
                {
                    "name": name,
                    "measured": measured,
                    "paper": result.paper.get(name),
                }
                for name, measured in result.measured.items()
            ],
            "records": result.table.to_dicts(),
        }
    metrics_html = "" if metrics is None else metrics_section_html(metrics)
    if cluster is not None:
        metrics_html += ("\n" if metrics_html else "") + cluster_section_html(
            cluster
        )
    if profile is not None:
        metrics_html += ("\n" if metrics_html else "") + profile_section_html(
            profile
        )
    if replication is not None:
        metrics_html += (
            "\n" if metrics_html else ""
        ) + replication_section_html(replication)
    if comparison is not None:
        metrics_html += (
            "\n" if metrics_html else ""
        ) + comparison_section_html(comparison)
    if scenarios is not None:
        metrics_html += (
            "\n" if metrics_html else ""
        ) + scenarios_section_html(scenarios)
    if optimization is not None:
        metrics_html += (
            "\n" if metrics_html else ""
        ) + optimize_section_html(optimization)
    if telemetry is not None:
        metrics_html += (
            "\n" if metrics_html else ""
        ) + telemetry_section_html(telemetry)
    return _PAGE.format(data_json=json.dumps(data), metrics_html=metrics_html)


def write_dashboard(
    results: list[ExperimentResult],
    path: str | Path,
    metrics: MetricsSnapshot | None = None,
    cluster: "ClusterResult | None" = None,
    profile: "ProfileReport | None" = None,
    replication: "ReplicationReport | None" = None,
    comparison: "ComparisonReport | None" = None,
    scenarios: "list[Scenario] | None" = None,
    optimization: "OptimizationReport | None" = None,
    telemetry: "TelemetrySnapshot | None" = None,
) -> Path:
    """Write the dashboard file and return its path."""
    out = Path(path)
    out.write_text(
        dashboard_html(
            results,
            metrics=metrics,
            cluster=cluster,
            profile=profile,
            replication=replication,
            comparison=comparison,
            scenarios=scenarios,
            optimization=optimization,
            telemetry=telemetry,
        ),
        encoding="utf-8",
    )
    return out
