"""Interactive dashboard generation (the paper's artifact, offline)."""

from repro.dashboard.html import (
    cluster_section_html,
    comparison_section_html,
    dashboard_html,
    metrics_section_html,
    optimize_section_html,
    profile_section_html,
    replication_section_html,
    scenarios_section_html,
    telemetry_section_html,
    write_dashboard,
)

__all__ = [
    "cluster_section_html",
    "comparison_section_html",
    "dashboard_html",
    "metrics_section_html",
    "optimize_section_html",
    "profile_section_html",
    "replication_section_html",
    "scenarios_section_html",
    "telemetry_section_html",
    "write_dashboard",
]
