"""Interactive dashboard generation (the paper's artifact, offline)."""

from repro.dashboard.html import dashboard_html, metrics_section_html, write_dashboard

__all__ = ["dashboard_html", "metrics_section_html", "write_dashboard"]
