"""Cross-run observability: replication, A/B comparison, bundles, diffs.

Single runs answer "what happened"; this package answers "is it real".
It replicates any engine/cluster configuration across seeds
(:mod:`~repro.experiments.runner`), summarizes every serving metric with
confidence intervals (:mod:`~repro.experiments.stats`), compares two
deployments with significance tests (:mod:`~repro.experiments.compare`),
freezes whole experiments into replayable JSON bundles
(:mod:`~repro.experiments.bundle`) and diffs cost profiles
component-by-component (:mod:`~repro.experiments.diff`).  The CLI face
is ``llm-inference-bench experiment run|replay|compare|diff``.
"""

from repro.experiments.bundle import (
    BUNDLE_VERSION,
    ExperimentBundle,
    bundle_replication,
    replay,
    verify_replay,
)
from repro.experiments.compare import (
    ComparisonReport,
    MetricComparison,
    compare_replications,
)
from repro.experiments.diff import (
    MetricDelta,
    PhaseDiff,
    ProfileDiff,
    diff_profiles,
    diff_replicated_profiles,
)
from repro.experiments.runner import (
    ReplicationReport,
    SeedResult,
    reduce_seed_results,
    run_replication,
    run_seed,
)
from repro.experiments.spec import QUANT_SCHEMES, ExperimentSpec, WorkloadSpec
from repro.experiments.stats import (
    MetricSummary,
    TestResult,
    bootstrap_interval,
    mann_whitney_u_test,
    paired_t_test,
    summarize_samples,
    t_interval,
    welch_t_test,
)

__all__ = [
    "BUNDLE_VERSION",
    "ExperimentBundle",
    "bundle_replication",
    "replay",
    "verify_replay",
    "ComparisonReport",
    "MetricComparison",
    "compare_replications",
    "MetricDelta",
    "PhaseDiff",
    "ProfileDiff",
    "diff_profiles",
    "diff_replicated_profiles",
    "ReplicationReport",
    "SeedResult",
    "reduce_seed_results",
    "run_replication",
    "run_seed",
    "QUANT_SCHEMES",
    "ExperimentSpec",
    "WorkloadSpec",
    "MetricSummary",
    "TestResult",
    "bootstrap_interval",
    "mann_whitney_u_test",
    "paired_t_test",
    "summarize_samples",
    "t_interval",
    "welch_t_test",
]
