"""Multi-seed replication runner.

``run_replication`` executes one :class:`ExperimentSpec` once per seed —
on the single-engine path or the full cluster simulator — and reduces the
per-seed outcomes into a :class:`ReplicationReport`: every serving metric
(TTFT percentiles, ITL, NTPOT, e2e latency, throughput, goodput, SLO
attainment, failure rate, and MFU/MBU/J-per-token when profiled) becomes
a :class:`~repro.experiments.stats.MetricSummary` with a confidence
interval instead of a bare point estimate.

A seed that aborts with :class:`OutOfMemoryError` is *kept*, not
dropped: it contributes a zero-completion result (failure rate 1.0, NaN
latency percentiles) so capacity-frontier experiments report the OOM
probability rather than silently conditioning on survival.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.bench.runner import BenchmarkRunner
from repro.cluster.router import get_router
from repro.cluster.simulator import ClusterSimulator
from repro.core.request import GenerationRequest
from repro.core.results import ResultTable
from repro.experiments.spec import ExperimentSpec
from repro.experiments.stats import (
    DEFAULT_CONFIDENCE,
    MetricSummary,
    summarize_samples,
)
from repro.obs.metrics import MetricsSnapshot
from repro.obs.profiler import ProfileReport
from repro.obs.telemetry import TelemetryHub, TelemetrySnapshot
from repro.obs.tracer import EventTracer
from repro.runtime.engine import ServingEngine
from repro.runtime.loadgen import ServiceLevelObjective, summarize_requests
from repro.runtime.memory_manager import OutOfMemoryError

__all__ = ["SeedResult", "ReplicationReport", "run_seed", "run_replication"]


def _json_num(value: float) -> float | None:
    return value if math.isfinite(value) else None


@dataclass(frozen=True)
class SeedResult:
    """Outcome of one seeded run: flat metrics plus optional deep views."""

    seed: int
    metrics: dict[str, float]
    snapshot: MetricsSnapshot | None = None
    profile: ProfileReport | None = None
    telemetry: TelemetrySnapshot | None = None

    def to_json_dict(self) -> dict[str, object]:
        """Deterministic JSON view (sorted metric keys, NaN -> null).

        The ``telemetry`` key appears only on telemetry-attached seeds,
        so bundles from telemetry-off specs stay byte-identical to ones
        written before the field existed.
        """
        payload: dict[str, object] = {
            "seed": self.seed,
            "metrics": {k: _json_num(v) for k, v in sorted(self.metrics.items())},
            "snapshot": None if self.snapshot is None else self.snapshot.to_json_dict(),
            "profile": None if self.profile is None else self.profile.to_json_dict(),
        }
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry.to_json_dict()
        return payload

    @classmethod
    def from_json_dict(cls, payload: dict[str, object]) -> "SeedResult":
        """Inverse of :meth:`to_json_dict` (``null`` -> NaN)."""
        snapshot = payload.get("snapshot")
        profile = payload.get("profile")
        telemetry = payload.get("telemetry")
        return cls(
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            metrics={
                # Numbers pass through untouched (byte-identical re-save).
                name: float("nan") if value is None else value
                for name, value in dict(payload["metrics"]).items()  # type: ignore[arg-type]
            },
            snapshot=(
                None
                if snapshot is None
                else MetricsSnapshot.from_json_dict(snapshot)  # type: ignore[arg-type]
            ),
            profile=(
                None
                if profile is None
                else ProfileReport.from_json_dict(profile)  # type: ignore[arg-type]
            ),
            telemetry=(
                None
                if telemetry is None
                else TelemetrySnapshot.from_json_dict(telemetry)  # type: ignore[arg-type]
            ),
        )


def _e2e_latencies(requests: list[GenerationRequest]) -> list[float]:
    return [
        r.finish_time - r.arrival_time
        for r in requests
        if r.finish_time is not None
    ]


def _extract_metrics(
    requests: list[GenerationRequest],
    makespan_s: float,
    spec: ExperimentSpec,
    average_power_w: float,
    profile: ProfileReport | None,
) -> dict[str, float]:
    slo = ServiceLevelObjective(ttft_s=spec.slo_ttft_s, itl_s=spec.slo_itl_s)
    offered = spec.workload.rate_rps
    if spec.workload.kind == "scenario":
        # Scenario arrivals come from the catalog, not rate_rps: report
        # the trace's realized rate instead.
        span = max(r.arrival_time for r in requests) - min(
            r.arrival_time for r in requests
        )
        offered = len(requests) / span if span > 0 else float(len(requests))
    report = summarize_requests(
        requests,
        makespan_s,
        offered,
        slo=slo,
        average_power_w=average_power_w,
        tenant_slos=spec.workload.tenant_slos() or None,
    )
    e2e = _e2e_latencies(requests)
    if e2e:
        e2e_arr = np.array(sorted(e2e))
        e2e_p50 = float(np.percentile(e2e_arr, 50))
        e2e_p99 = float(np.percentile(e2e_arr, 99))
    else:
        e2e_p50 = e2e_p99 = float("nan")
    metrics = {
        "ttft_p50_s": report.ttft_p50_s,
        "ttft_p95_s": report.ttft_p95_s,
        "ttft_p99_s": report.ttft_p99_s,
        "itl_mean_s": report.itl_mean_s,
        "ntpot_mean_s": report.ntpot_mean_s,
        "e2e_p50_s": e2e_p50,
        "e2e_p99_s": e2e_p99,
        "throughput_tokens_per_s": report.throughput_tokens_per_s,
        "goodput_rps": report.goodput_rps,
        "slo_attainment": report.slo_attainment,
        "failure_rate": report.failure_rate,
        "completed_requests": float(report.completed_requests),
        "makespan_s": makespan_s,
        "average_power_w": average_power_w,
    }
    for lane in report.tenants:
        metrics[f"tenant.{lane.tenant}.slo_attainment"] = lane.slo_attainment
        metrics[f"tenant.{lane.tenant}.ntpot_mean_s"] = lane.ntpot_mean_s
        metrics[f"tenant.{lane.tenant}.failure_rate"] = lane.failure_rate
    if profile is not None:
        metrics["mfu"] = profile.mfu
        metrics["mbu"] = profile.mbu
        metrics["joules_per_token"] = profile.joules_per_token
    return metrics


def run_seed(spec: ExperimentSpec, seed: int) -> SeedResult:
    """Execute ``spec`` once under ``seed`` and flatten its metrics."""
    runner = BenchmarkRunner()
    deployment = runner.deployment(
        spec.model, spec.hardware, spec.framework, quant=spec.quant_scheme
    )
    trace = spec.workload.build(seed)

    def make_hub() -> TelemetryHub | None:
        if not spec.telemetry:
            return None
        return TelemetryHub(
            slo=ServiceLevelObjective(
                ttft_s=spec.slo_ttft_s, itl_s=spec.slo_itl_s
            ),
            tenant_slos=spec.workload.tenant_slos() or None,
        )

    hub = make_hub()
    if spec.mode == "engine":
        tracer = EventTracer()  # recording tracer => metrics snapshot attached
        engine = ServingEngine(
            deployment,
            max_concurrency=spec.max_concurrency,
            optimistic=spec.optimistic,
            profile=spec.profiled,
            tracer=tracer,
            **({"telemetry": hub} if hub is not None else {}),
        )
        try:
            result = engine.run(trace)
            makespan, power = result.total_time_s, result.average_power_w
            snapshot, profile = result.metrics, result.profile
            telemetry = result.telemetry
        except OutOfMemoryError:
            makespan, power = 0.0, 0.0
            snapshot, profile, telemetry = None, None, None
        requests = trace
    else:
        simulator = ClusterSimulator(
            deployment,
            spec.num_replicas,
            router=get_router(spec.router, seed=seed),
            max_concurrency=spec.max_concurrency,
            optimistic=spec.optimistic,
            profiled=spec.profiled,
            telemetry=hub,
        )
        try:
            result = simulator.run(trace)
            makespan, power = result.makespan_s, result.average_power_w
            snapshot, profile = result.metrics, result.profile
            telemetry = result.telemetry
            requests = result.requests
        except OutOfMemoryError:
            makespan, power = 0.0, 0.0
            snapshot, profile, telemetry = None, None, None
            requests = trace

    metrics = _extract_metrics(requests, makespan, spec, power, profile)
    return SeedResult(
        seed=seed,
        metrics=metrics,
        snapshot=snapshot,
        profile=profile,
        telemetry=telemetry,
    )


@dataclass(frozen=True)
class ReplicationReport:
    """A replicated experiment: per-seed results plus metric summaries."""

    spec: ExperimentSpec
    seed_results: tuple[SeedResult, ...]
    summaries: dict[str, MetricSummary]
    confidence: float
    method: str  # interval method: "t" | "bootstrap"

    def samples(self, metric: str) -> list[float]:
        """Per-seed values of ``metric``, in seed order (NaN kept)."""
        return [
            sr.metrics.get(metric, float("nan")) for sr in self.seed_results
        ]

    @property
    def num_seeds(self) -> int:
        return len(self.seed_results)

    def to_json_dict(self) -> dict[str, object]:
        return {
            "spec": self.spec.to_json_dict(),
            "confidence": self.confidence,
            "method": self.method,
            "seed_results": [sr.to_json_dict() for sr in self.seed_results],
            "summaries": {
                name: summary.to_json_dict()
                for name, summary in sorted(self.summaries.items())
            },
        }

    def to_table(self, name: str | None = None) -> ResultTable:
        """One row per metric with mean / CI bounds / spread columns."""
        table = ResultTable(name=name or f"replication:{self.spec.name}")
        for metric in sorted(self.summaries):
            s = self.summaries[metric]
            table.add(
                {"experiment": self.spec.name, "metric": metric},
                {
                    "mean": s.mean,
                    "ci_lo": s.ci_lo,
                    "ci_hi": s.ci_hi,
                    "std": s.std,
                    "n": float(s.n),
                },
            )
        return table

    def render(self) -> str:
        lines = [
            f"replication: {self.spec.name} "
            f"({self.num_seeds} seeds, {self.method} intervals, "
            f"{self.confidence:.0%} confidence)"
        ]
        for metric in sorted(self.summaries):
            lines.append("  " + self.summaries[metric].render())
        return "\n".join(lines)


def run_replication(
    spec: ExperimentSpec,
    confidence: float = DEFAULT_CONFIDENCE,
    method: str = "t",
) -> ReplicationReport:
    """Run ``spec`` under every seed and summarize each metric."""
    seed_results = tuple(run_seed(spec, seed) for seed in spec.seeds)
    return reduce_seed_results(spec, seed_results, confidence, method)


def reduce_seed_results(
    spec: ExperimentSpec,
    seed_results: tuple[SeedResult, ...],
    confidence: float = DEFAULT_CONFIDENCE,
    method: str = "t",
) -> ReplicationReport:
    """Summarize already-executed seed results (also used by bundle load)."""
    names: set[str] = set()
    for sr in seed_results:
        names.update(sr.metrics)
    summaries = {
        name: summarize_samples(
            name,
            [sr.metrics.get(name, float("nan")) for sr in seed_results],
            confidence=confidence,
            method=method,
        )
        for name in sorted(names)
    }
    return ReplicationReport(
        spec=spec,
        seed_results=seed_results,
        summaries=summaries,
        confidence=confidence,
        method=method,
    )
