"""A-vs-B comparison of replicated experiments with significance tests.

``compare_replications(a, b)`` lines up the per-seed samples of every
metric the two :class:`~repro.experiments.runner.ReplicationReport`
objects share and runs a two-sample test per metric, so a sweep table can
say "FP8 cuts joules/token 18% — significant at p<0.05" instead of
quoting two point estimates.

Test selection is honest about what the runs shared: when both specs
used the same workload recipe *and* the same seed list, each seed's pair
of runs saw identical request sequences, so the paired-by-seed t-test
applies and removes the workload-draw variance entirely.  Otherwise the
samples are independent and Welch's t (or Mann-Whitney U on request) is
used.  An A/A comparison of identical configs produces identical
samples and — by the zero-variance guards in
:mod:`repro.experiments.stats` — p = 1.0, never a false "significant".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.results import ResultTable
from repro.experiments.runner import ReplicationReport
from repro.experiments.stats import (
    TestResult,
    mann_whitney_u_test,
    paired_t_test,
    welch_t_test,
)

__all__ = ["MetricComparison", "ComparisonReport", "compare_replications"]

_TEST_CHOICES = ("auto", "welch", "mann-whitney", "paired")


def _json_num(value: float) -> float | None:
    return value if math.isfinite(value) else None


@dataclass(frozen=True)
class MetricComparison:
    """One metric's A-vs-B outcome."""

    metric: str
    mean_a: float
    mean_b: float
    test: TestResult

    @property
    def delta(self) -> float:
        return self.mean_b - self.mean_a

    @property
    def rel(self) -> float:
        if not (math.isfinite(self.mean_a) and math.isfinite(self.mean_b)):
            return float("nan")
        if self.mean_a == 0.0:
            return float("nan")
        return self.delta / abs(self.mean_a)

    def significant(self, alpha: float = 0.05) -> bool:
        return self.test.significant(alpha)

    def to_json_dict(self) -> dict[str, object]:
        return {
            "metric": self.metric,
            "mean_a": _json_num(self.mean_a),
            "mean_b": _json_num(self.mean_b),
            "delta": _json_num(self.delta),
            "rel": _json_num(self.rel),
            "test": self.test.to_json_dict(),
        }


@dataclass(frozen=True)
class ComparisonReport:
    """Full A-vs-B comparison across every shared metric."""

    name_a: str
    name_b: str
    comparisons: tuple[MetricComparison, ...]
    alpha: float
    paired: bool  # per-seed runs formed matched pairs

    def comparison(self, metric: str) -> MetricComparison:
        for comp in self.comparisons:
            if comp.metric == metric:
                return comp
        raise KeyError(f"no metric {metric!r} in comparison")

    def significant_metrics(self) -> list[str]:
        return sorted(
            c.metric for c in self.comparisons if c.significant(self.alpha)
        )

    @property
    def any_significant(self) -> bool:
        return any(c.significant(self.alpha) for c in self.comparisons)

    def to_json_dict(self) -> dict[str, object]:
        return {
            "name_a": self.name_a,
            "name_b": self.name_b,
            "alpha": self.alpha,
            "paired": self.paired,
            "significant_metrics": self.significant_metrics(),
            "comparisons": [c.to_json_dict() for c in self.comparisons],
        }

    def to_table(self, name: str | None = None) -> ResultTable:
        """One row per metric, carrying a ``significant`` 0/1 marker."""
        table = ResultTable(name=name or f"compare:{self.name_a}-vs-{self.name_b}")
        for comp in self.comparisons:
            table.add(
                {
                    "a": self.name_a,
                    "b": self.name_b,
                    "metric": comp.metric,
                    "test": comp.test.test,
                },
                {
                    "mean_a": comp.mean_a,
                    "mean_b": comp.mean_b,
                    "delta": comp.delta,
                    "p_value": comp.test.p_value,
                    "significant": 1.0 if comp.significant(self.alpha) else 0.0,
                },
            )
        return table

    def render(self) -> str:
        pairing = "paired by seed" if self.paired else "independent samples"
        lines = [
            f"comparison: {self.name_a} (A) vs {self.name_b} (B) — "
            f"{pairing}, alpha={self.alpha:g}"
        ]
        lines.append(
            f"{'metric':<26}{'A':>12}{'B':>12}{'delta':>12}{'p':>10}{'sig':>5}"
        )
        for comp in self.comparisons:
            p = comp.test.p_value
            lines.append(
                f"{comp.metric:<26}{comp.mean_a:>12.4g}{comp.mean_b:>12.4g}"
                f"{comp.delta:>+12.4g}"
                + (f"{p:>10.3g}" if math.isfinite(p) else f"{'-':>10}")
                + f"{'*' if comp.significant(self.alpha) else '':>5}"
            )
        significant = self.significant_metrics()
        if significant:
            lines.append(
                f"significant at p<{self.alpha:g}: " + ", ".join(significant)
            )
        else:
            lines.append(f"no metric significant at p<{self.alpha:g}")
        return "\n".join(lines)


def compare_replications(
    a: ReplicationReport,
    b: ReplicationReport,
    alpha: float = 0.05,
    test: str = "auto",
) -> ComparisonReport:
    """Compare two replications metric-by-metric with significance tests.

    ``test``: "auto" picks paired-by-seed when the specs share workload
    and seeds, else Welch's t; "welch" / "mann-whitney" / "paired" force
    a specific test ("paired" requires shared workload + seeds).
    """
    if test not in _TEST_CHOICES:
        raise ValueError(f"unknown test {test!r} (known: {_TEST_CHOICES})")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    shares_workload = a.spec.paired_with(b.spec)
    if test == "paired" and not shares_workload:
        raise ValueError(
            "paired test requires both specs to share workload and seeds"
        )
    paired = shares_workload if test == "auto" else test == "paired"

    metrics = sorted(set(a.summaries) & set(b.summaries))
    comparisons = []
    for metric in metrics:
        samples_a = a.samples(metric)
        samples_b = b.samples(metric)
        if paired:
            result = paired_t_test(samples_a, samples_b)
        elif test == "mann-whitney":
            result = mann_whitney_u_test(samples_a, samples_b)
        else:
            result = welch_t_test(samples_a, samples_b)
        comparisons.append(
            MetricComparison(
                metric=metric,
                mean_a=a.summaries[metric].mean,
                mean_b=b.summaries[metric].mean,
                test=result,
            )
        )
    return ComparisonReport(
        name_a=a.spec.name,
        name_b=b.spec.name,
        comparisons=tuple(comparisons),
        alpha=alpha,
        paired=paired,
    )
