"""Profile diffing: component-by-component comparison of two cost profiles.

``diff_profiles(a, b)`` lines two :class:`~repro.obs.profiler.ProfileReport`
objects up metric-by-metric (MFU, MBU, tokens/s, joules-per-token, power,
busy/idle split) and phase-by-phase (each roofline component's share of
prefill and decode cost), reporting absolute and relative deltas plus any
dominant-bottleneck change — the "what did this config change actually
buy" view behind the ``experiment diff`` CLI verb.

Two single profiles are two point estimates, so a plain diff is
*descriptive*: the verdict says what moved, not whether it is signal.
``diff_replicated_profiles`` takes per-seed profile lists from two
replications and attaches a significance test per metric, upgrading the
verdict to "significant at p<alpha" / "not significant" — the PR-5
follow-on the paper's cross-accelerator tables need before a 7% MFU gap
can be called real.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.metrics import COMPONENT_FIELDS
from repro.experiments.stats import TestResult, paired_t_test, welch_t_test
from repro.obs.profiler import ProfileReport

__all__ = [
    "MetricDelta",
    "PhaseDiff",
    "ProfileDiff",
    "diff_profiles",
    "diff_replicated_profiles",
]

#: Scalar profile metrics diffed in emission order.
_DIFF_METRICS = (
    "mfu",
    "mbu",
    "tokens_per_s",
    "joules_per_token",
    "average_power_w",
    "total_time_s",
    "busy_s",
    "idle_s",
    "energy_j",
)

#: Relative change below which a metric is not worth flagging in the
#: verdict (0.5% — well inside seed noise for every simulator metric).
_VERDICT_REL_FLOOR = 0.005


def _json_num(value: float) -> float | None:
    return value if math.isfinite(value) else None


@dataclass(frozen=True)
class MetricDelta:
    """One scalar metric's movement from profile A to profile B."""

    name: str
    a: float
    b: float
    test: TestResult | None = None  # attached by the replicated diff

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def rel(self) -> float:
        """Relative change of B vs A (NaN when A is zero or non-finite)."""
        if not (math.isfinite(self.a) and math.isfinite(self.b)) or self.a == 0.0:
            return float("nan")
        return self.delta / abs(self.a)

    def significant(self, alpha: float = 0.05) -> bool | None:
        """Tri-state: None when no test is attached (single profiles)."""
        if self.test is None:
            return None
        return self.test.significant(alpha)

    def to_json_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "a": _json_num(self.a),
            "b": _json_num(self.b),
            "delta": _json_num(self.delta),
            "rel": _json_num(self.rel),
            "test": None if self.test is None else self.test.to_json_dict(),
        }


@dataclass(frozen=True)
class PhaseDiff:
    """One phase's cost-composition movement from A to B."""

    phase: str
    time_a_s: float
    time_b_s: float
    share_a: dict[str, float]  # component -> fraction of phase cost
    share_b: dict[str, float]
    dominant_a: str | None
    dominant_b: str | None

    @property
    def share_deltas(self) -> dict[str, float]:
        return {
            name: self.share_b.get(name, 0.0) - self.share_a.get(name, 0.0)
            for name in COMPONENT_FIELDS
        }

    @property
    def bottleneck_changed(self) -> bool:
        return self.dominant_a != self.dominant_b

    def to_json_dict(self) -> dict[str, object]:
        return {
            "phase": self.phase,
            "time_a_s": _json_num(self.time_a_s),
            "time_b_s": _json_num(self.time_b_s),
            "share_a": {k: _json_num(v) for k, v in sorted(self.share_a.items())},
            "share_b": {k: _json_num(v) for k, v in sorted(self.share_b.items())},
            "share_deltas": {
                k: _json_num(v) for k, v in sorted(self.share_deltas.items())
            },
            "dominant_a": self.dominant_a,
            "dominant_b": self.dominant_b,
        }


@dataclass(frozen=True)
class ProfileDiff:
    """Full A-to-B profile comparison."""

    name_a: str
    name_b: str
    metrics: tuple[MetricDelta, ...]
    phases: tuple[PhaseDiff, ...]
    alpha: float = 0.05
    replicated: bool = False  # True when significance tests are attached

    def metric(self, name: str) -> MetricDelta:
        for delta in self.metrics:
            if delta.name == name:
                return delta
        raise KeyError(f"no metric {name!r} in diff")

    @property
    def verdict(self) -> str:
        """One-line judgement of the comparison.

        Replicated diffs speak statistically ("significant at p<0.05");
        single-profile diffs are explicitly descriptive — they cannot
        distinguish a real effect from seed noise.
        """
        moved = [
            d
            for d in self.metrics
            if math.isfinite(d.rel) and abs(d.rel) > _VERDICT_REL_FLOOR
        ]
        flips = [p for p in self.phases if p.bottleneck_changed]
        parts: list[str] = []
        if not moved and not flips:
            parts.append(f"{self.name_b} matches {self.name_a}")
        else:
            lead = max(moved, key=lambda d: abs(d.rel), default=None)
            if lead is not None:
                parts.append(
                    f"largest change: {lead.name} "
                    f"{lead.a:.4g} -> {lead.b:.4g} ({lead.rel:+.1%})"
                )
            for phase in flips:
                parts.append(
                    f"{phase.phase} bottleneck: "
                    f"{phase.dominant_a} -> {phase.dominant_b}"
                )
        if self.replicated:
            significant = [
                d.name for d in self.metrics if d.significant(self.alpha)
            ]
            if significant:
                parts.append(
                    f"significant at p<{self.alpha:g}: "
                    + ", ".join(sorted(significant))
                )
            else:
                parts.append(
                    f"no metric significant at p<{self.alpha:g}"
                )
        else:
            parts.append("descriptive only (single profiles, no replication)")
        return "; ".join(parts)

    def to_json_dict(self) -> dict[str, object]:
        return {
            "name_a": self.name_a,
            "name_b": self.name_b,
            "alpha": self.alpha,
            "replicated": self.replicated,
            "verdict": self.verdict,
            "metrics": [d.to_json_dict() for d in self.metrics],
            "phases": [p.to_json_dict() for p in self.phases],
        }

    def render(self) -> str:
        lines = [f"profile diff: {self.name_a} vs {self.name_b}"]
        header = f"{'metric':<20}{'A':>12}{'B':>12}{'delta':>12}{'rel':>9}"
        if self.replicated:
            header += f"{'p':>10}{'sig':>5}"
        lines.append(header)
        for d in self.metrics:
            row = (
                f"{d.name:<20}{d.a:>12.4g}{d.b:>12.4g}"
                f"{d.delta:>+12.4g}"
                + (f"{d.rel:>+9.1%}" if math.isfinite(d.rel) else f"{'-':>9}")
            )
            if self.replicated:
                p = d.test.p_value if d.test is not None else float("nan")
                row += f"{p:>10.3g}" if math.isfinite(p) else f"{'-':>10}"
                sig = d.significant(self.alpha)
                row += f"{'*' if sig else '':>5}"
            lines.append(row)
        for phase in self.phases:
            lines.append(
                f"phase {phase.phase}: "
                f"{phase.time_a_s:.4g}s -> {phase.time_b_s:.4g}s"
                + (
                    f" | bottleneck {phase.dominant_a} -> {phase.dominant_b}"
                    if phase.bottleneck_changed
                    else ""
                )
            )
            for name, delta in phase.share_deltas.items():
                if abs(delta) <= 1e-4:
                    continue
                lines.append(
                    f"  {name:<18}{phase.share_a.get(name, 0.0):>8.1%}"
                    f" -> {phase.share_b.get(name, 0.0):>7.1%}"
                    f" ({delta:+.1%})"
                )
        lines.append(f"verdict: {self.verdict}")
        return "\n".join(lines)


def _phase_diffs(a: ProfileReport, b: ProfileReport) -> tuple[PhaseDiff, ...]:
    phases_a = {p.phase: p for p in a.phases}
    phases_b = {p.phase: p for p in b.phases}
    diffs = []
    for name in sorted(set(phases_a) | set(phases_b)):
        pa, pb = phases_a.get(name), phases_b.get(name)
        diffs.append(
            PhaseDiff(
                phase=name,
                time_a_s=pa.time_s if pa is not None else 0.0,
                time_b_s=pb.time_s if pb is not None else 0.0,
                share_a=pa.components.fractions() if pa is not None else {},
                share_b=pb.components.fractions() if pb is not None else {},
                dominant_a=(
                    str(pa.dominant)
                    if pa is not None and pa.dominant is not None
                    else None
                ),
                dominant_b=(
                    str(pb.dominant)
                    if pb is not None and pb.dominant is not None
                    else None
                ),
            )
        )
    return tuple(diffs)


def diff_profiles(a: ProfileReport, b: ProfileReport) -> ProfileDiff:
    """Compare two single cost profiles component-by-component.

    The result is descriptive (see :class:`ProfileDiff.verdict`); feed
    per-seed profile lists to :func:`diff_replicated_profiles` for a
    significance-aware comparison.
    """
    metrics = tuple(
        MetricDelta(name, getattr(a, name), getattr(b, name))
        for name in _DIFF_METRICS
    )
    return ProfileDiff(
        name_a=a.name,
        name_b=b.name,
        metrics=metrics,
        phases=_phase_diffs(a, b),
    )


def diff_replicated_profiles(
    a_profiles: list[ProfileReport],
    b_profiles: list[ProfileReport],
    alpha: float = 0.05,
    paired: bool = False,
) -> ProfileDiff:
    """Diff two replicated profile sets with per-metric significance.

    Scalar deltas are taken between the per-seed *means*; each metric
    additionally carries a Welch's t (or paired-by-seed t when ``paired``
    — use it when both replications ran identical workload seeds) over
    the per-seed samples, and the verdict reports which deltas clear
    ``alpha``.  Phase composition is diffed on the first seed's profiles
    (composition shares are structural, not seed-noisy).
    """
    if not a_profiles or not b_profiles:
        raise ValueError("both profile lists must be non-empty")
    if paired and len(a_profiles) != len(b_profiles):
        raise ValueError(
            "paired diff needs equal-length profile lists, got "
            f"{len(a_profiles)} vs {len(b_profiles)}"
        )
    metrics = []
    for name in _DIFF_METRICS:
        samples_a = [getattr(p, name) for p in a_profiles]
        samples_b = [getattr(p, name) for p in b_profiles]
        mean_a = _finite_mean(samples_a)
        mean_b = _finite_mean(samples_b)
        test = (
            paired_t_test(samples_a, samples_b)
            if paired
            else welch_t_test(samples_a, samples_b)
        )
        metrics.append(MetricDelta(name, mean_a, mean_b, test=test))
    return ProfileDiff(
        name_a=a_profiles[0].name,
        name_b=b_profiles[0].name,
        metrics=tuple(metrics),
        phases=_phase_diffs(a_profiles[0], b_profiles[0]),
        alpha=alpha,
        replicated=True,
    )


def _finite_mean(samples: list[float]) -> float:
    values = [s for s in samples if math.isfinite(s)]
    return sum(values) / len(values) if values else float("nan")
