"""Statistics for replicated runs: confidence intervals and A/B tests.

Every number the simulator reports is one draw from the seed
distribution — arrival jitter, length sampling and routing tie-breaks all
flow from the workload seed.  This module turns a *set* of seeded runs
into statements with error bars: per-metric summaries with confidence
intervals (Student-t or bootstrap), and two-sample significance tests
(Welch's t, Mann-Whitney U, paired-by-seed t) for A-vs-B deployment
comparisons.

Degenerate inputs are first-class, not errors, because replication sweeps
routinely produce them:

* one seed  → no interval (NaN bounds), no test;
* zero variance, equal means (an A/A comparison of identical configs on
  shared seeds) → p = 1.0, never "significant";
* zero variance, different means (a deterministic config change) →
  p = 0.0;
* NaN samples (zero-completion runs report NaN percentiles) are dropped
  before any arithmetic, with the effective ``n`` recorded.

scipy provides the distributions; all policy (guards, NaN handling,
deterministic bootstrap seeding) lives here so results are reproducible
byte-for-byte across runs and platforms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "MetricSummary",
    "TestResult",
    "summarize_samples",
    "t_interval",
    "bootstrap_interval",
    "welch_t_test",
    "mann_whitney_u_test",
    "paired_t_test",
]

#: Default two-sided confidence level for intervals.
DEFAULT_CONFIDENCE = 0.95

#: Bootstrap resample count: enough for stable 95% percentile bounds on
#: the handful-of-seeds replications this harness runs, small enough to
#: stay instant.
_BOOTSTRAP_RESAMPLES = 2000

#: Relative tolerance under which a sample set counts as constant (the
#: zero-variance guards).  Simulator replications of a deterministic
#: config reproduce exactly, so exact equality would suffice; the epsilon
#: tolerates caller-side float summarization.
_CONST_RTOL = 1e-12


def _finite(samples: list[float]) -> list[float]:
    return [s for s in samples if math.isfinite(s)]


def _is_constant(values: list[float]) -> bool:
    lo, hi = min(values), max(values)
    scale = max(abs(lo), abs(hi), 1.0)
    return (hi - lo) <= _CONST_RTOL * scale


@dataclass(frozen=True)
class MetricSummary:
    """One metric's distribution over a replication's seeds."""

    name: str
    n: int  # finite samples the summary is built on
    mean: float
    std: float  # sample standard deviation (ddof=1); NaN for n < 2
    ci_lo: float  # NaN when no interval exists (n < 2)
    ci_hi: float
    confidence: float
    method: str  # "t" | "bootstrap" | "none"

    @property
    def half_width(self) -> float:
        if not (math.isfinite(self.ci_lo) and math.isfinite(self.ci_hi)):
            return float("nan")
        return (self.ci_hi - self.ci_lo) / 2.0

    def to_json_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "n": self.n,
            "mean": _json_num(self.mean),
            "std": _json_num(self.std),
            "ci_lo": _json_num(self.ci_lo),
            "ci_hi": _json_num(self.ci_hi),
            "confidence": self.confidence,
            "method": self.method,
        }

    def render(self) -> str:
        if self.n == 0:
            return f"{self.name}: no finite samples"
        if not math.isfinite(self.ci_lo):
            return f"{self.name}: {self.mean:.6g} (n={self.n}, no CI)"
        return (
            f"{self.name}: {self.mean:.6g} "
            f"[{self.ci_lo:.6g}, {self.ci_hi:.6g}] "
            f"({self.confidence:.0%} CI, n={self.n})"
        )


@dataclass(frozen=True)
class TestResult:
    """Outcome of one two-sample significance test."""

    test: str  # "welch-t" | "mann-whitney-u" | "paired-t" | "none"
    statistic: float
    p_value: float  # NaN when the test could not run (n too small)
    n_a: int
    n_b: int

    def significant(self, alpha: float = 0.05) -> bool:
        """True only on positive evidence: NaN p-values never flag."""
        return math.isfinite(self.p_value) and self.p_value < alpha

    def to_json_dict(self) -> dict[str, object]:
        return {
            "test": self.test,
            "statistic": _json_num(self.statistic),
            "p_value": _json_num(self.p_value),
            "n_a": self.n_a,
            "n_b": self.n_b,
        }


def _json_num(value: float) -> float | None:
    return value if math.isfinite(value) else None


# ----------------------------------------------------------------------
# Confidence intervals
# ----------------------------------------------------------------------


def t_interval(
    samples: list[float], confidence: float = DEFAULT_CONFIDENCE
) -> tuple[float, float]:
    """Student-t confidence interval for the mean of ``samples``.

    Returns ``(nan, nan)`` for fewer than two finite samples — a 1-seed
    replication has a point estimate and no interval.
    """
    _check_confidence(confidence)
    values = _finite(samples)
    if len(values) < 2:
        return float("nan"), float("nan")
    from scipy import stats as _stats

    mean = float(np.mean(values))
    sem = float(np.std(values, ddof=1)) / math.sqrt(len(values))
    if sem == 0.0:
        return mean, mean  # constant samples: a zero-width interval
    crit = float(_stats.t.ppf((1.0 + confidence) / 2.0, len(values) - 1))
    return mean - crit * sem, mean + crit * sem


def bootstrap_interval(
    samples: list[float],
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = _BOOTSTRAP_RESAMPLES,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap interval for the mean (deterministic ``seed``).

    The resampling RNG is seeded explicitly so bundles and CI replays
    reproduce the same bounds byte-for-byte.
    """
    _check_confidence(confidence)
    values = _finite(samples)
    if len(values) < 2:
        return float("nan"), float("nan")
    if _is_constant(values):
        mean = float(np.mean(values))
        return mean, mean
    rng = np.random.default_rng(seed)
    arr = np.asarray(values)
    draws = rng.integers(0, len(arr), size=(resamples, len(arr)))
    means = arr[draws].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return float(lo), float(hi)


def summarize_samples(
    name: str,
    samples: list[float],
    confidence: float = DEFAULT_CONFIDENCE,
    method: str = "t",
) -> MetricSummary:
    """Mean, spread and interval of a replication's per-seed samples."""
    values = _finite(samples)
    if not values:
        nan = float("nan")
        return MetricSummary(name, 0, nan, nan, nan, nan, confidence, "none")
    mean = float(np.mean(values))
    std = float(np.std(values, ddof=1)) if len(values) > 1 else float("nan")
    if len(values) < 2:
        return MetricSummary(
            name, 1, mean, std, float("nan"), float("nan"), confidence, "none"
        )
    if method == "t":
        lo, hi = t_interval(values, confidence)
    elif method == "bootstrap":
        lo, hi = bootstrap_interval(values, confidence)
    else:
        raise ValueError(f"unknown interval method {method!r} (t | bootstrap)")
    return MetricSummary(name, len(values), mean, std, lo, hi, confidence, method)


# ----------------------------------------------------------------------
# Two-sample significance tests
# ----------------------------------------------------------------------


def welch_t_test(a: list[float], b: list[float]) -> TestResult:
    """Welch's unequal-variance t-test (two-sided) on independent samples."""
    va, vb = _finite(a), _finite(b)
    if len(va) < 2 or len(vb) < 2:
        return TestResult("welch-t", float("nan"), float("nan"), len(va), len(vb))
    if _is_constant(va) and _is_constant(vb):
        return _constant_verdict("welch-t", va, vb)
    from scipy import stats as _stats

    result = _stats.ttest_ind(va, vb, equal_var=False)
    return TestResult(
        "welch-t", float(result.statistic), float(result.pvalue), len(va), len(vb)
    )


def mann_whitney_u_test(a: list[float], b: list[float]) -> TestResult:
    """Mann-Whitney U (two-sided), the rank-based non-parametric option."""
    va, vb = _finite(a), _finite(b)
    if len(va) < 2 or len(vb) < 2:
        return TestResult(
            "mann-whitney-u", float("nan"), float("nan"), len(va), len(vb)
        )
    from scipy import stats as _stats

    result = _stats.mannwhitneyu(va, vb, alternative="two-sided")
    return TestResult(
        "mann-whitney-u",
        float(result.statistic),
        float(result.pvalue),
        len(va),
        len(vb),
    )


def paired_t_test(a: list[float], b: list[float]) -> TestResult:
    """Paired t-test on per-seed differences (configs sharing workloads).

    Pairs where either side is non-finite are dropped together, keeping
    the pairing intact.  Sharing seeds removes the workload-draw variance
    from the comparison, so this is the highest-power test when both
    deployments ran the same arrival/length sequences.
    """
    if len(a) != len(b):
        raise ValueError(
            f"paired test needs equal-length samples, got {len(a)} vs {len(b)}"
        )
    pairs = [
        (x, y) for x, y in zip(a, b) if math.isfinite(x) and math.isfinite(y)
    ]
    n = len(pairs)
    if n < 2:
        return TestResult("paired-t", float("nan"), float("nan"), n, n)
    diffs = [x - y for x, y in pairs]
    if _is_constant(diffs):
        # Identical differences every seed: either the configs agree
        # exactly (p=1) or one is deterministically offset (p=0).
        mean_d = float(np.mean(diffs))
        scale = max(abs(float(np.mean([x for x, _ in pairs]))), 1.0)
        p = 1.0 if abs(mean_d) <= _CONST_RTOL * scale else 0.0
        return TestResult("paired-t", 0.0 if p == 1.0 else math.inf, p, n, n)
    from scipy import stats as _stats

    result = _stats.ttest_rel([x for x, _ in pairs], [y for _, y in pairs])
    return TestResult(
        "paired-t", float(result.statistic), float(result.pvalue), n, n
    )


def _constant_verdict(
    test: str, va: list[float], vb: list[float]
) -> TestResult:
    """Both sides constant: scipy returns NaN; decide by mean equality."""
    mean_a, mean_b = float(np.mean(va)), float(np.mean(vb))
    scale = max(abs(mean_a), abs(mean_b), 1.0)
    if abs(mean_a - mean_b) <= _CONST_RTOL * scale:
        return TestResult(test, 0.0, 1.0, len(va), len(vb))
    return TestResult(test, math.inf, 0.0, len(va), len(vb))


def _check_confidence(confidence: float) -> None:
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
