"""Self-describing experiment specifications.

An :class:`ExperimentSpec` freezes *everything* a seeded run depends on —
deployment names, quantization, workload shape, execution mode, fleet
size, SLO bounds and the seed list — into a plain-JSON value.  That is
the contract the bundle format (:mod:`repro.experiments.bundle`) and the
``experiment replay`` CLI verb rely on: a spec loaded from disk must
rebuild byte-identical workloads and run configurations, with no hidden
state left in the process that created it.

Workloads are referenced by generator *kind* plus parameters rather than
by materialized request lists: requests carry mutable runtime state
(admit/finish timestamps), so bundles store the recipe and rebuild fresh
:class:`~repro.core.request.GenerationRequest` objects per seed instead.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace

from repro.core.request import GenerationRequest
from repro.perf.quantization import (
    FP8_SCHEME,
    FP16_SCHEME,
    INT8_SCHEME,
    QuantizationScheme,
)
from repro.runtime.workload import (
    fixed_batch_trace,
    open_loop_trace,
    poisson_trace,
    shared_prefix_trace,
)

__all__ = ["WorkloadSpec", "ExperimentSpec", "QUANT_SCHEMES"]

#: Quantization schemes addressable by spec label.  ``None``/"fp16" is
#: the unquantized baseline.
QUANT_SCHEMES: dict[str, QuantizationScheme] = {
    "fp16": FP16_SCHEME,
    "fp8": FP8_SCHEME,
    "int8": INT8_SCHEME,
}

_WORKLOAD_KINDS = ("fixed", "poisson", "open_loop", "shared_prefix", "scenario")
_MODES = ("engine", "cluster")


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload *recipe*: generator kind plus its parameters.

    ``build(seed)`` returns a fresh request list; the same (spec, seed)
    pair always produces the same trace.  Note ``fixed`` ignores the seed
    entirely (the paper's benchmark shape is deterministic), so
    replications of a fixed workload have zero cross-seed variance — the
    stats layer treats that as a constant sample, not an error.

    ``kind="scenario"`` delegates to a named catalog entry from
    :mod:`repro.scenarios` (``scenario`` field); the registry's scenario
    definition plus the seed fully determine the trace, and the other
    shape parameters are ignored.
    """

    kind: str = "open_loop"
    num_requests: int = 32
    input_tokens: int = 256  # mean input for open_loop, unique for shared_prefix
    output_tokens: int = 128
    rate_rps: float = 4.0  # arrival rate for the open-loop kinds
    num_prefixes: int = 4  # shared_prefix only
    prefix_tokens: int = 256  # shared_prefix only
    scenario: str | None = None  # scenario kind only: catalog name

    def __post_init__(self) -> None:
        if self.kind not in _WORKLOAD_KINDS:
            known = ", ".join(_WORKLOAD_KINDS)
            raise ValueError(f"unknown workload kind {self.kind!r} (known: {known})")
        if self.kind == "scenario":
            if not self.scenario:
                raise ValueError("kind='scenario' requires a scenario name")
            from repro.scenarios import get_scenario

            get_scenario(self.scenario)  # fail fast on unknown names
            return
        if self.num_requests < 1:
            raise ValueError(f"num_requests must be >= 1, got {self.num_requests}")
        if self.input_tokens < 1 or self.output_tokens < 1:
            raise ValueError("input_tokens and output_tokens must be >= 1")
        if self.kind != "fixed" and self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {self.rate_rps}")

    def tenant_slos(self) -> dict[str, object]:
        """Per-tenant SLOs of a scenario workload (empty otherwise)."""
        if self.kind != "scenario":
            return {}
        from repro.scenarios import get_scenario

        return get_scenario(self.scenario).tenant_slos()  # type: ignore[arg-type]

    def build(self, seed: int) -> list[GenerationRequest]:
        if self.kind == "scenario":
            from repro.scenarios import get_scenario

            return get_scenario(self.scenario).build(seed)  # type: ignore[arg-type]
        if self.kind == "fixed":
            return fixed_batch_trace(
                self.num_requests, self.input_tokens, self.output_tokens
            )
        if self.kind == "poisson":
            return poisson_trace(
                self.num_requests,
                self.rate_rps,
                self.input_tokens,
                self.output_tokens,
                seed=seed,
            )
        if self.kind == "open_loop":
            return open_loop_trace(
                self.num_requests,
                self.rate_rps,
                self.input_tokens,
                self.output_tokens,
                seed=seed,
            )
        return shared_prefix_trace(
            self.num_requests,
            self.rate_rps,
            self.num_prefixes,
            self.prefix_tokens,
            self.input_tokens,
            self.output_tokens,
            seed=seed,
        )

    def to_json_dict(self) -> dict[str, object]:
        return asdict(self)

    @classmethod
    def from_json_dict(cls, payload: dict[str, object]) -> "WorkloadSpec":
        return cls(**payload)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything one replicated experiment depends on, JSON-frozen.

    Two specs that differ only in non-workload fields (``quant``,
    ``num_replicas``, ``router`` …) but share ``workload`` and ``seeds``
    are *paired*: their per-seed runs saw identical request sequences, so
    A/B comparisons can use the higher-power paired-by-seed test.
    """

    name: str
    model: str
    hardware: str
    framework: str
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4)
    mode: str = "engine"  # "engine" (one replica) | "cluster" (fleet)
    quant: str | None = None  # QUANT_SCHEMES label; None = fp16 baseline
    max_concurrency: int = 32
    optimistic: bool = False
    profiled: bool = False  # attach a cost profile per seed (MFU/MBU/J-per-token)
    telemetry: bool = False  # attach a streaming telemetry snapshot per seed
    num_replicas: int = 2  # cluster mode only
    router: str = "least-outstanding"  # cluster mode only
    slo_ttft_s: float = 1.5
    slo_itl_s: float = 1.0 / 12.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("experiment name must be non-empty")
        if self.mode not in _MODES:
            raise ValueError(f"unknown mode {self.mode!r} (known: {_MODES})")
        if not self.seeds:
            raise ValueError("seeds must be non-empty")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError(f"seeds contain duplicates: {self.seeds}")
        if self.quant is not None and self.quant not in QUANT_SCHEMES:
            known = ", ".join(sorted(QUANT_SCHEMES))
            raise ValueError(f"unknown quant {self.quant!r} (known: {known})")
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.mode == "cluster" and self.num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))

    # ------------------------------------------------------------------

    @property
    def quant_scheme(self) -> QuantizationScheme | None:
        if self.quant is None or self.quant == "fp16":
            return None  # fp16 is the deployment default; avoid a no-op wrap
        return QUANT_SCHEMES[self.quant]

    def paired_with(self, other: "ExperimentSpec") -> bool:
        """True when per-seed results of self/other form matched pairs."""
        return self.workload == other.workload and self.seeds == other.seeds

    def with_name(self, name: str) -> "ExperimentSpec":
        return replace(self, name=name)

    # ------------------------------------------------------------------

    def to_json_dict(self) -> dict[str, object]:
        payload = asdict(self)
        payload["workload"] = self.workload.to_json_dict()
        payload["seeds"] = list(self.seeds)
        return payload

    @classmethod
    def from_json_dict(cls, payload: dict[str, object]) -> "ExperimentSpec":
        data = dict(payload)
        data["workload"] = WorkloadSpec.from_json_dict(dict(data["workload"]))
        data["seeds"] = tuple(data["seeds"])
        return cls(**data)  # type: ignore[arg-type]

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "ExperimentSpec":
        with open(path, encoding="utf-8") as fh:
            return cls.from_json_dict(json.load(fh))
