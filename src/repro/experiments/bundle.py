"""Experiment bundles: frozen, self-describing, replayable run archives.

A bundle is one JSON document holding everything a replicated experiment
was and produced: the :class:`~repro.experiments.spec.ExperimentSpec`
(deployment, workload recipe, seeds), every per-seed result (flat
metrics, the full :class:`~repro.obs.metrics.MetricsSnapshot`, the
optional :class:`~repro.obs.profiler.ProfileReport`), and the metric
summaries with their interval method.  Because the spec is a recipe
rather than a recording, a loaded bundle can *re-execute*:
:func:`replay` rebuilds the workloads from the stored seeds and runs
them again, and :func:`verify_replay` checks the fresh per-seed results
against the stored ones byte-for-byte — the generalization of the CI
chaos/profile determinism jobs to whole experiments.

Serialization discipline (shared with the rest of the repo): sorted
keys, indent=1, trailing newline, non-finite scalars as ``null`` — two
saves of the same bundle are file-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.experiments.runner import (
    ReplicationReport,
    SeedResult,
    reduce_seed_results,
    run_seed,
)
from repro.experiments.spec import ExperimentSpec
from repro.experiments.stats import DEFAULT_CONFIDENCE

__all__ = [
    "BUNDLE_VERSION",
    "ExperimentBundle",
    "bundle_replication",
    "replay",
    "verify_replay",
]

#: Bundle format version; bump on any incompatible JSON layout change.
BUNDLE_VERSION = 1


def _canonical(payload: object) -> str:
    """The byte-comparison form used by replay verification."""
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


@dataclass(frozen=True)
class ExperimentBundle:
    """A replicated experiment frozen to plain JSON."""

    spec: ExperimentSpec
    seed_results: tuple[SeedResult, ...]
    confidence: float = DEFAULT_CONFIDENCE
    method: str = "t"  # interval method the summaries were built with
    version: int = BUNDLE_VERSION

    def __post_init__(self) -> None:
        stored = tuple(sr.seed for sr in self.seed_results)
        if stored != self.spec.seeds:
            raise ValueError(
                f"bundle seed results {stored} do not match spec seeds "
                f"{self.spec.seeds}"
            )

    # ------------------------------------------------------------------

    def report(self) -> ReplicationReport:
        """Re-reduce the stored per-seed results into a report.

        The reduction is deterministic, so summaries are derived on
        demand instead of being a second source of truth in the file.
        """
        return reduce_seed_results(
            self.spec, self.seed_results, self.confidence, self.method
        )

    def to_json_dict(self) -> dict[str, object]:
        report = self.report()
        return {
            "bundle_version": self.version,
            "spec": self.spec.to_json_dict(),
            "confidence": self.confidence,
            "method": self.method,
            "seed_results": [sr.to_json_dict() for sr in self.seed_results],
            "summaries": {
                name: summary.to_json_dict()
                for name, summary in sorted(report.summaries.items())
            },
        }

    @classmethod
    def from_json_dict(cls, payload: dict[str, object]) -> "ExperimentBundle":
        version = int(payload.get("bundle_version", 0))  # type: ignore[arg-type]
        if version != BUNDLE_VERSION:
            raise ValueError(
                f"unsupported bundle version {version} "
                f"(this build reads version {BUNDLE_VERSION})"
            )
        return cls(
            spec=ExperimentSpec.from_json_dict(dict(payload["spec"])),  # type: ignore[arg-type]
            seed_results=tuple(
                SeedResult.from_json_dict(sr)
                for sr in payload["seed_results"]  # type: ignore[union-attr]
            ),
            confidence=float(payload["confidence"]),  # type: ignore[arg-type]
            method=str(payload["method"]),
            version=version,
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(_canonical(self.to_json_dict()))

    @classmethod
    def load(cls, path: str) -> "ExperimentBundle":
        with open(path, encoding="utf-8") as fh:
            return cls.from_json_dict(json.load(fh))


def bundle_replication(report: ReplicationReport) -> ExperimentBundle:
    """Freeze an executed replication into a bundle."""
    return ExperimentBundle(
        spec=report.spec,
        seed_results=report.seed_results,
        confidence=report.confidence,
        method=report.method,
    )


def replay(bundle: ExperimentBundle) -> ExperimentBundle:
    """Re-execute a bundle's spec under its stored seeds.

    Returns a *fresh* bundle from the re-run; the caller decides whether
    to compare (:func:`verify_replay`) or overwrite.  The simulator is
    seed-deterministic, so on the same build the result is byte-identical
    to the original — any divergence means the code's behavior changed
    since the bundle was written, which is exactly what the CI
    determinism job exists to catch.
    """
    seed_results = tuple(run_seed(bundle.spec, seed) for seed in bundle.spec.seeds)
    return ExperimentBundle(
        spec=bundle.spec,
        seed_results=seed_results,
        confidence=bundle.confidence,
        method=bundle.method,
    )


def verify_replay(
    bundle: ExperimentBundle, replayed: ExperimentBundle | None = None
) -> tuple[bool, list[str]]:
    """Replay ``bundle`` and byte-compare per-seed results.

    Returns ``(ok, mismatches)`` where each mismatch names the seed whose
    replayed JSON differs from the stored one.  Pass ``replayed`` to
    verify an already-executed replay instead of running one here.
    """
    if replayed is None:
        replayed = replay(bundle)
    mismatches = []
    for original, fresh in zip(bundle.seed_results, replayed.seed_results):
        if _canonical(original.to_json_dict()) != _canonical(fresh.to_json_dict()):
            mismatches.append(f"seed {original.seed}: replayed result differs")
    return (not mismatches, mismatches)
