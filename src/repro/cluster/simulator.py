"""Discrete-event cluster simulator: N serving replicas behind a router.

Each replica is a full :class:`~repro.runtime.engine.ServingEngine` — its
own scheduler, memory manager and paged-KV allocator — advanced as a
resumable :class:`~repro.runtime.engine.EngineRun`.  The simulator owns a
global event heap (request arrivals, disaggregated KV handoffs, control-
plane events) and interleaves replica iterations with routing decisions
under a min-clock discipline: the least-advanced working replica always
steps first, so every routing decision sees fleet state no more than one
committed iteration stale — the same information horizon a real balancing
tier has.

A 1-replica cluster reproduces a standalone ``ServingEngine.run`` bit-
identically (tested): routing degenerates to submission in arrival order,
and the ``pressure`` hook keeps iteration boundaries where the single
engine would put them.

With a :class:`~repro.cluster.disagg.DisaggregationSpec`, dedicated
prefill replicas run prompt processing only; finished prefills hand their
KV state to a decode replica after an interconnect-priced transfer delay
(:func:`~repro.cluster.disagg.kv_transfer_time`), landing as a one-token
attach pass.  TTFT is served from the prefill side, the remaining tokens
stream from the decode side.

A :class:`~repro.control.plane.ControlPlane` co-simulates resilience:
seeded faults (replica crashes, straggler windows via the engine's
``cost_scale`` hook, KV-handoff loss) replay on the same event heap,
displaced requests re-enter the router under capped exponential backoff,
and a pluggable autoscaler resizes the serving fleet on a control tick —
new replicas pay a hardware-priced weight-load warm-up before taking
traffic.  Per-replica ``fleet`` deployments make the fleet heterogeneous;
load-aware routing then normalizes outstanding work by each replica's
kernel-predicted decode rate.  A null (or absent) control plane pushes no
control events, so such runs stay bit-identical to the plain simulator.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import math
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.disagg import DisaggregationSpec, kv_transfer_time
from repro.cluster.router import LeastOutstandingTokensRouter, Router, _least_outstanding
from repro.control.autoscale import (
    BurnRateAutoscaler,
    FleetView,
    NullAutoscaler,
    TelemetryFleetView,
)
from repro.control.plane import ControlPlane
from repro.core.request import GenerationRequest, RequestState
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot, percentile
from repro.obs.profiler import ProfileReport, merge_profiles
from repro.obs.telemetry import NULL_TELEMETRY, TelemetryHub, TelemetrySnapshot
from repro.obs.tracer import EventTracer, TraceEvent
from repro.perf.kernel import get_kernel
from repro.perf.phases import Deployment
from repro.runtime.engine import EngineResult, EngineRun, ServingEngine, resolve_core
from repro.runtime.loadgen import LoadReport, ServiceLevelObjective, summarize_requests

__all__ = ["Replica", "ReplicaReport", "ClusterResult", "ClusterSimulator"]

_ARRIVAL = "arrival"
_HANDOFF = "handoff"
_RETRY = "retry"
_FAULT = "fault"
_FAULT_END = "fault_end"
_TICK = "tick"

#: Batch-1 decode context at which replica capacity weights are compared.
_CAPACITY_PROBE_CONTEXT = 1024


class Replica:
    """One serving engine plus the router-visible state around it."""

    def __init__(
        self,
        index: int,
        name: str,
        engine: ServingEngine,
        run: EngineRun,
        role: str = "unified",
        prefix_cache_slots: int = 2,
        deployment: Deployment | None = None,
        capacity_weight: float = 1.0,
        start_s: float = 0.0,
        created_s: float = 0.0,
    ) -> None:
        self.index = index
        self.name = name
        self.engine = engine
        self.run = run
        self.role = role
        self.deployment = deployment if deployment is not None else engine.deployment
        # Relative serving rate (kernel-predicted decode speed over the
        # fleet's base deployment); exactly 1.0 in homogeneous fleets so
        # load normalization cannot perturb routing order.
        self.capacity_weight = capacity_weight
        self.base_capacity_weight = capacity_weight
        # Control-plane lifecycle: a replica serves from ``start_s`` (>0
        # while a scaled-up replica loads weights), ``created_s`` is when
        # the scale decision happened, ``alive``/``draining`` gate routing.
        self.start_s = start_s
        self.created_s = created_s
        self.alive = True
        self.draining = False
        self.status = "ok"
        # Bounded LRU of resident prompt prefixes: real prefix caches hold
        # a handful of hot prefixes before block eviction reclaims them,
        # which is exactly why KV-cache-aware routing pays — a replica
        # that sees every prefix in rotation keeps none of them warm.
        self.prefix_cache_slots = prefix_cache_slots
        self._prefix_lru: dict[int, None] = {}  # insertion-ordered LRU
        self.served: list[GenerationRequest] = []  # originals routed here

    def apply_telemetry_scale(self, scale: float) -> None:
        """Re-weight routing capacity from an observed utilization signal.

        A scale of exactly 1.0 restores ``base_capacity_weight`` (not
        ``base * 1.0``), so runs whose telemetry never deviates stay
        bit-identical to runs without the feedback loop.
        """
        if scale == 1.0:
            self.capacity_weight = self.base_capacity_weight
        else:
            self.capacity_weight = self.base_capacity_weight * scale

    def touch_prefix(self, prefix_id: int) -> bool:
        """Record a prefix use; True if its KV was resident (cache hit)."""
        lru = self._prefix_lru
        hit = prefix_id in lru
        if hit:
            lru.pop(prefix_id)  # move to most-recently-used
        lru[prefix_id] = None
        while len(lru) > self.prefix_cache_slots:
            lru.pop(next(iter(lru)))  # evict least-recently-used
        return hit

    # Router-facing summaries (delegated to the live run).

    @property
    def now(self) -> float:
        return self.run.now

    @property
    def has_work(self) -> bool:
        return self.run.has_work

    @property
    def outstanding_tokens(self) -> int:
        return self.run.outstanding_tokens

    @property
    def queue_depth(self) -> int:
        return self.run.queue_depth

    @property
    def kv_used_fraction(self) -> float:
        return self.run.kv_used_fraction


@dataclass(frozen=True)
class ReplicaReport:
    """Per-replica outcome of one cluster run."""

    name: str
    role: str
    requests_served: int
    busy_s: float
    utilization: float  # busy time over the cluster makespan
    result: EngineResult
    status: str = "ok"  # ok | crashed | draining | scaled


@dataclass
class ClusterResult:
    """Outcome of one cluster simulation."""

    requests: list[GenerationRequest]
    replicas: list[ReplicaReport]
    makespan_s: float
    router_name: str
    metrics: MetricsSnapshot
    prefix_hits: int = 0
    handoffs: int = 0
    transfer_s_total: float = 0.0
    average_power_w: float = 0.0
    replica_events: dict[str, list[TraceEvent]] = field(default_factory=dict)
    retries: int = 0
    failed_requests: int = 0
    lost_handoffs: int = 0
    fault_log: list[dict] = field(default_factory=list)
    scale_log: list[dict] = field(default_factory=list)
    profile: ProfileReport | None = None  # fleet cost attribution (profiled)
    telemetry: TelemetrySnapshot | None = None  # streaming series + alerts

    def load_report(
        self,
        offered_rate_rps: float,
        slo: ServiceLevelObjective | None = None,
        tenant_slos: dict[str, ServiceLevelObjective] | None = None,
    ) -> LoadReport:
        """Cluster-scope SLO/goodput accounting (same path as one engine)."""
        return summarize_requests(
            self.requests,
            self.makespan_s,
            offered_rate_rps,
            slo=slo,
            average_power_w=self.average_power_w,
            tenant_slos=tenant_slos,
        )

    def to_json_dict(self) -> dict:
        """Deterministic JSON view of the run.

        Everything timing- and outcome-relevant, but no process-global
        request ids: requests appear in trace order, so two identical
        seeded runs in one process diff byte-for-byte equal.  The
        ``telemetry`` key appears only on telemetry-attached runs, so
        telemetry-off payloads are byte-identical to historical ones.
        """
        payload = {
            "router": self.router_name,
            "makespan_s": self.makespan_s,
            "num_requests": len(self.requests),
            "failed_requests": self.failed_requests,
            "retries": self.retries,
            "handoffs": self.handoffs,
            "lost_handoffs": self.lost_handoffs,
            "transfer_s_total": self.transfer_s_total,
            "prefix_hits": self.prefix_hits,
            "average_power_w": self.average_power_w,
            "replicas": [
                {
                    "name": rep.name,
                    "role": rep.role,
                    "status": rep.status,
                    "requests_served": rep.requests_served,
                    "busy_s": rep.busy_s,
                    "utilization": rep.utilization,
                }
                for rep in self.replicas
            ],
            "requests": [
                {
                    "input_tokens": r.input_tokens,
                    "output_tokens": r.output_tokens,
                    "arrival_s": r.arrival_time,
                    "admit_s": r.admit_time,
                    "first_token_s": r.first_token_time,
                    "finish_s": r.finish_time,
                    "state": r.state,
                    "preemptions": r.preemptions,
                    "session": r.session_id,
                    "turn": r.turn_index,
                    "tenant": r.tenant,
                }
                for r in self.requests
            ],
            "faults": self.fault_log,
            "scale_events": self.scale_log,
        }
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry.to_json_dict()
        return payload

    def render(self) -> str:
        lines = [
            f"cluster: {len(self.replicas)} replicas, router {self.router_name}, "
            f"{len(self.requests)} requests, makespan {self.makespan_s:.2f} s"
        ]
        if self.handoffs:
            lines.append(
                f"disaggregated: {self.handoffs} KV handoffs, "
                f"{self.transfer_s_total:.3f} s total transfer"
            )
        if self.prefix_hits:
            lines.append(f"prefix-cache hits: {self.prefix_hits}")
        if self.fault_log:
            lines.append(
                f"faults: {len(self.fault_log)} injected | "
                f"retries {self.retries} | failed {self.failed_requests} | "
                f"lost handoffs {self.lost_handoffs}"
            )
        if self.scale_log:
            ups = sum(1 for e in self.scale_log if e["action"] == "up")
            downs = len(self.scale_log) - ups
            lines.append(f"autoscale: {ups} up, {downs} down")
        lines.append(
            f"{'replica':<12}{'role':<10}{'status':<10}"
            f"{'requests':>9}{'busy s':>10}{'util':>7}"
        )
        for rep in self.replicas:
            lines.append(
                f"{rep.name:<12}{rep.role:<10}{rep.status:<10}"
                f"{rep.requests_served:>9d}{rep.busy_s:>10.2f}{rep.utilization:>7.0%}"
            )
        return "\n".join(lines)


class ClusterSimulator:
    """Runs a request trace across N replicas behind a routing policy.

    ``num_replicas`` serving replicas share one ``deployment`` shape
    (or take per-replica shapes from ``fleet``); with ``disaggregation``
    set, ``disaggregation.num_prefill_replicas`` *additional*
    prefill-only replicas take arrivals and hand finished prompts to the
    serving (decode) fleet.  ``control`` attaches a resilience control
    plane (faults, retries, autoscaling); ``None`` or a null plane leaves
    results bit-identical to the plain simulator.  ``telemetry`` attaches
    a :class:`~repro.obs.telemetry.TelemetryHub` sampled on control
    ticks (auto-created when the autoscaler is a
    :class:`~repro.control.autoscale.BurnRateAutoscaler`, which consumes
    its burn-rate signal); ``None`` keeps the null bus and results
    bit-identical.  Pass a fresh :class:`Router` (and hub) per run —
    both carry state (cursors, prefix homes, ring buffers).
    """

    def __init__(
        self,
        deployment: Deployment,
        num_replicas: int,
        router: Router | None = None,
        max_concurrency: int = 32,
        optimistic: bool = False,
        disaggregation: DisaggregationSpec | None = None,
        prefix_cache_slots: int = 2,
        traced: bool = False,
        profiled: bool = False,
        kernel=None,
        control: ControlPlane | None = None,
        fleet: Sequence[Deployment] | None = None,
        core: str | None = None,
        telemetry: TelemetryHub | None = None,
    ) -> None:
        if num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
        if prefix_cache_slots < 1:
            raise ValueError(
                f"prefix_cache_slots must be >= 1, got {prefix_cache_slots}"
            )
        self.deployment = deployment
        # One step-cost kernel shared by every same-shape replica:
        # coefficient/memo state built by one replica's steps is reused by
        # the rest of the fleet (heterogeneous replicas get their own via
        # the process-wide kernel cache).
        self.kernel = kernel if kernel is not None else get_kernel(deployment)
        self.num_replicas = num_replicas
        self.router = router or LeastOutstandingTokensRouter()
        self.max_concurrency = max_concurrency
        self.optimistic = optimistic
        self.prefix_cache_slots = prefix_cache_slots
        self.disaggregation = disaggregation
        self.traced = traced
        self.profiled = profiled
        if fleet is not None:
            fleet = tuple(fleet)
            if len(fleet) != num_replicas:
                raise ValueError(
                    f"fleet lists {len(fleet)} deployments for "
                    f"{num_replicas} serving replicas"
                )
            if disaggregation is not None and any(
                dep.model != deployment.model for dep in fleet
            ):
                raise ValueError(
                    "disaggregated fleets must share one model: prefill KV "
                    "state must be attachable on every decode replica"
                )
        self.fleet = fleet
        # Execution core for every replica engine (see repro.runtime.engine):
        # "vector" additionally batches the simulator's own replica
        # selection into one masked-argmin array pass.
        self.core = resolve_core(core)
        self.control = control
        # A null plane is provably inert; treat it exactly like no plane
        # so the bit-identity guarantee holds by construction.
        self._control_on = control is not None and not control.is_null
        # Telemetry bus: an explicit hub, or one auto-created when the
        # control plane's autoscaler consumes burn-rate signals (the
        # policy cannot act without the bus feeding it).  Like routers,
        # hubs carry state — pass a fresh one per run.
        if (
            telemetry is None
            and self._control_on
            and isinstance(control.autoscaler, BurnRateAutoscaler)
        ):
            telemetry = TelemetryHub(slo=control.autoscaler.slo)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._telemetry_on = self.telemetry.enabled
        # Run-scoped state (initialized in run()).
        self._replicas: list[Replica] = []
        self._prefill_fleet: list[Replica] = []
        # Vector-core fleet arrays: per-replica clock and step eligibility
        # (alive and has_work), index-aligned with ``_replicas`` so the
        # next replica to step falls out of one masked argmin.
        self._clock: np.ndarray | None = None
        self._eligible: np.ndarray | None = None
        self._next_index = 0
        self._events: list[tuple[float, int, str, object]] = []
        self._seq = itertools.count()
        self._orig_by_proxy: dict[int, GenerationRequest] = {}
        self._registry = MetricsRegistry()
        self._prefix_hits = 0
        self._handoffs = 0
        self._transfer_s = 0.0
        self._retries = 0
        self._failed = 0
        self._lost_handoffs = 0
        self._fault_log: list[dict] = []
        self._scale_log: list[dict] = []
        self._completions: list[GenerationRequest] = []
        self._attempts: dict[int, int] = {}
        self._kv_windows: tuple[tuple[float, float], ...] = ()
        self._last_scale_s = float("-inf")
        self._ctl_tracer: EventTracer | None = None
        self._control_ticks = False
        self._tick_every = 0.5
        self._telemetry_view: TelemetryFleetView | None = None

    # ------------------------------------------------------------------

    @property
    def _serving_role(self) -> str:
        return "decode" if self.disaggregation is not None else "unified"

    def _capacity_weight(self, dep: Deployment) -> float:
        if dep is self.deployment or dep == self.deployment:
            return 1.0
        base_s = self.kernel.decode_step(1, _CAPACITY_PROBE_CONTEXT).total_s
        rep_s = get_kernel(dep).decode_step(1, _CAPACITY_PROBE_CONTEXT).total_s
        return base_s / rep_s

    def _make_replica(
        self,
        index: int,
        name: str,
        dep: Deployment,
        role: str,
        start_s: float = 0.0,
        created_s: float = 0.0,
    ) -> Replica:
        tracer = EventTracer() if self.traced else None
        kernel = (
            self.kernel
            if dep is self.deployment or dep == self.deployment
            else get_kernel(dep)
        )
        engine = ServingEngine(
            dep,
            max_concurrency=self.max_concurrency,
            optimistic=self.optimistic,
            kernel=kernel,
            profile=self.profiled,
            core=self.core,
            **({"tracer": tracer} if tracer is not None else {}),
        )
        return Replica(
            index,
            name,
            engine,
            engine.start(pressure=self._pressure),
            role,
            prefix_cache_slots=self.prefix_cache_slots,
            deployment=dep,
            capacity_weight=self._capacity_weight(dep),
            start_s=start_s,
            created_s=created_s,
        )

    def _build_replicas(self) -> None:
        disagg = self.disaggregation
        specs: list[tuple[str, Deployment]] = []
        if disagg is not None:
            specs += [("prefill", self.deployment)] * disagg.num_prefill_replicas
        for i in range(self.num_replicas):
            specs.append(
                (
                    self._serving_role,
                    self.fleet[i] if self.fleet is not None else self.deployment,
                )
            )
        self._replicas = []
        for index, (role, dep) in enumerate(specs):
            name = f"{role}{index}" if disagg is not None else f"replica{index}"
            self._replicas.append(self._make_replica(index, name, dep, role))
        self._next_index = len(specs)
        self._prefill_fleet = [r for r in self._replicas if r.role == "prefill"]
        if self.core == "vector":
            n = len(self._replicas)
            self._clock = np.zeros(n, dtype=np.float64)
            self._eligible = np.zeros(n, dtype=bool)
        else:
            self._clock = self._eligible = None

    def _pressure(self) -> bool:
        """More work may still arrive *before* the step horizon: hold
        single-step boundaries.

        On the event-horizon cores ("vector"/"scalar") heap events are
        already covered by the horizon each step receives, so only work
        that can be injected mid-loop — a live prefill replica whose next
        retirement spawns a KV handoff — forces single-stepping.  The
        "legacy" core keeps the historical rule (any undispatched event
        holds every replica to single steps).
        """
        if self.core == "legacy" and self._events:
            return True
        return any(r.alive and r.has_work for r in self._prefill_fleet)

    def _sync_replica(self, replica: Replica) -> None:
        """Refresh one replica's row in the fleet arrays (vector core)."""
        eligible = self._eligible
        if eligible is None:
            return
        i = replica.index
        self._clock[i] = replica.run.now
        eligible[i] = replica.alive and replica.run.has_work

    def _select(self, bound: float | None) -> Replica | None:
        """Least-advanced eligible replica (clock < ``bound`` if given).

        Vector core: one masked argmin over the fleet arrays — argmin
        returns the first minimum, which is the lowest index among
        clock ties, exactly the scalar ``min(..., key=(now, index))``
        tie-break.  Other cores scan the replica list (reference path).
        """
        eligible = self._eligible
        if eligible is not None:
            mask = (
                eligible
                if bound is None
                else eligible & (self._clock < bound)
            )
            masked = np.where(mask, self._clock, np.inf)
            i = int(np.argmin(masked))
            if masked[i] == np.inf:
                return None
            return self._replicas[i]
        candidates = [
            r
            for r in self._replicas
            if r.alive and r.has_work and (bound is None or r.now < bound)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda r: (r.now, r.index))

    # ------------------------------------------------------------------

    def run(self, trace: list[GenerationRequest]) -> ClusterResult:
        """Route and execute ``trace`` to completion across the fleet."""
        if not trace:
            raise ValueError("trace is empty")
        self._events = []
        self._seq = itertools.count()
        self._orig_by_proxy = {}
        self._registry = MetricsRegistry()
        self._prefix_hits = 0
        self._handoffs = 0
        self._transfer_s = 0.0
        self._retries = 0
        self._failed = 0
        self._lost_handoffs = 0
        self._fault_log = []
        self._scale_log = []
        self._completions = []
        self._attempts = {}
        self._kv_windows = ()
        self._last_scale_s = float("-inf")
        self._ctl_tracer = (
            EventTracer()
            if (self.traced and (self._control_on or self._telemetry_on))
            else None
        )

        self._build_replicas()
        for request in sorted(trace, key=lambda r: r.arrival_time):
            self._push(request.arrival_time, _ARRIVAL, request)
        self._control_ticks = False
        if self._control_on:
            plane = self.control
            assert plane is not None
            for event in plane.faults.events:
                self._push(event.at_s, _FAULT, event)
                if event.kind == "slowdown":
                    self._push(event.end_s, _FAULT_END, event)
            self._kv_windows = plane.faults.kv_loss_windows()
            self._control_ticks = not isinstance(plane.autoscaler, NullAutoscaler)
        # Control ticks drive autoscaling; the telemetry bus samples on the
        # same tick train (and arms it alone on control-free runs).
        self._tick_every = (
            self.control.tick_interval_s
            if self._control_ticks
            else self.telemetry.tick_interval_s
        )
        self._telemetry_view = (
            TelemetryFleetView(
                self.telemetry, window_s=self.telemetry.budget.fast_window_s
            )
            if (self._telemetry_on and self.profiled)
            else None
        )
        if self._control_ticks or self._telemetry_on:
            self._push(self._tick_every, _TICK, None)

        while True:
            if self._events:
                t_next = self._events[0][0]
                replica = self._select(t_next)
                if replica is not None:
                    self._step(replica, horizon=t_next)
                    continue
                ts, _, kind, payload = heapq.heappop(self._events)
                if kind == _ARRIVAL:
                    self._dispatch_arrival(payload, ts)
                elif kind == _HANDOFF:
                    self._dispatch_handoff(payload, ts)
                elif kind == _RETRY:
                    self._dispatch_arrival(payload, ts, retry=True)
                elif kind == _FAULT:
                    self._apply_fault(payload, ts)
                elif kind == _FAULT_END:
                    self._end_fault(payload, ts)
                else:  # _TICK
                    self._autoscale_tick(ts)
                continue
            replica = self._select(None)
            if replica is None:
                break
            self._step(replica, horizon=None)

        return self._finalize(trace)

    # ------------------------------------------------------------------

    def _push(self, ts: float, kind: str, payload: object) -> None:
        heapq.heappush(self._events, (ts, next(self._seq), kind, payload))

    def _step(self, replica: Replica, horizon: float | None) -> None:
        retired = replica.run.step(horizon=horizon)
        self._sync_replica(replica)
        if (
            not self._orig_by_proxy
            and not self._control_on
            and not self._telemetry_on
        ):
            return
        for proxy in retired:
            orig = self._orig_by_proxy.pop(proxy.request_id, None)
            if orig is not None:
                if replica.role == "prefill":
                    self._complete_prefill(orig, proxy)
                else:
                    self._complete_decode(orig, proxy)
            else:
                orig = proxy  # submitted directly (no proxy)
            if orig.state == RequestState.FINISHED:
                if self._control_on:
                    self._completions.append(orig)
                if self._telemetry_on:
                    self._record_completion(orig)

    def _record_completion(self, orig: GenerationRequest) -> None:
        """Feed one finished request into the telemetry bus (buffered)."""
        hub = self.telemetry
        finish = orig.finish_time
        first = orig.first_token_time
        ttft = orig.ttft_s if first is not None else float("nan")
        if orig.output_tokens > 1 and first is not None:
            itl = (finish - first) / (orig.output_tokens - 1)
        else:
            itl = float("nan")
        hub.record_completion(
            finish,
            ttft,
            itl,
            hub.slo_for(orig.tenant).met_by(orig),
            tenant=orig.tenant,
        )

    def _complete_prefill(
        self, orig: GenerationRequest, proxy: GenerationRequest
    ) -> None:
        """Stitch TTFT from the prefill side; schedule the KV handoff."""
        orig.admit_time = proxy.admit_time
        orig.first_token_time = proxy.first_token_time
        if orig.output_tokens == 1:
            orig.finish_time = proxy.finish_time
            orig.generated_tokens = 1
            orig.state = RequestState.FINISHED
            return
        assert self.disaggregation is not None
        context = orig.input_tokens + 1
        transfer = kv_transfer_time(
            self.deployment, context, self.disaggregation.interconnect
        )
        self._handoffs += 1
        self._transfer_s += transfer
        landing = proxy.finish_time + transfer
        if self._control_on and self._kv_lost(landing):
            # The transfer raced a KV-loss window: the decode side never
            # sees the state; the request restarts from the prefill fleet.
            self._lost_handoffs += 1
            if self._ctl_tracer is not None:
                self._ctl_tracer.instant("control", "kv_handoff_lost", ts_s=landing)
            self._requeue(orig, landing)
            return
        self._push(landing, _HANDOFF, orig)

    def _complete_decode(
        self, orig: GenerationRequest, proxy: GenerationRequest
    ) -> None:
        if orig.first_token_time is None:
            # Full-lifecycle proxy (a unified-mode retry): the original
            # keeps its true arrival, so the stitched TTFT carries the
            # crash + backoff penalty.
            orig.admit_time = proxy.admit_time
            orig.first_token_time = proxy.first_token_time
        orig.finish_time = proxy.finish_time
        orig.generated_tokens = orig.output_tokens
        orig.state = RequestState.FINISHED

    # ------------------------------------------------------------------

    def _route_pool(
        self, role: str, now: float, kind: str, payload: object
    ) -> list[Replica] | None:
        """Routable replicas of ``role`` at ``now``.

        Ready replicas (alive, warmed, not draining) when any exist;
        otherwise the dispatch is deferred until the first warming replica
        comes online (returns ``None`` after re-pushing the event), then
        draining replicas as a last resort, then an empty list — the
        caller fails the request.
        """
        replicas = self._replicas
        ready = [
            r
            for r in replicas
            if r.role == role and r.alive and not r.draining and r.start_s <= now
        ]
        if ready:
            return ready
        warming = [
            r for r in replicas if r.role == role and r.alive and not r.draining
        ]
        if warming:
            self._push(min(r.start_s for r in warming), kind, payload)
            return None
        return [r for r in replicas if r.role == role and r.alive]

    def _dispatch_arrival(
        self, request: GenerationRequest, ts: float, retry: bool = False
    ) -> None:
        now = ts
        role = "prefill" if self.disaggregation is not None else "unified"
        pool = self._route_pool(role, now, _RETRY if retry else _ARRIVAL, request)
        if pool is None:
            return  # deferred until a warming replica comes online
        if not pool:
            self._fail(request, now)
            return
        self._sample_gauges(self._replicas, now)
        chosen = self.router.route(request, pool, now)
        cached = 0
        if request.prefix_id is not None:
            # Touch even when prefix_tokens == 0 (a session's opening turn)
            # so the prefix enters the replica's LRU and later turns hit.
            if chosen.touch_prefix(request.prefix_id) and request.prefix_tokens > 0:
                cached = request.prefix_tokens
                self._prefix_hits += 1
        chosen.served.append(request)
        if self.disaggregation is None:
            if not retry:
                request.cached_prefix_tokens = cached
                chosen.run.submit(request)
                self._sync_replica(chosen)
                return
            # Retries run as full-lifecycle proxies: the proxy arrives at
            # the retry instant (so a lagging idle replica cannot serve it
            # before the backoff elapsed), while the original keeps its
            # true arrival time for TTFT accounting.
            proxy = GenerationRequest(
                input_tokens=request.input_tokens,
                output_tokens=request.output_tokens,
                arrival_time=now,
                prefix_id=request.prefix_id,
                prefix_tokens=request.prefix_tokens,
                cached_prefix_tokens=cached,
            )
            self._orig_by_proxy[proxy.request_id] = request
            chosen.run.submit(proxy)
            self._sync_replica(chosen)
            return
        proxy = GenerationRequest(
            input_tokens=request.input_tokens,
            output_tokens=1,
            arrival_time=now,
            prefix_id=request.prefix_id,
            prefix_tokens=request.prefix_tokens,
            cached_prefix_tokens=cached,
        )
        self._orig_by_proxy[proxy.request_id] = request
        chosen.run.submit(proxy)
        self._sync_replica(chosen)

    def _dispatch_handoff(self, orig: GenerationRequest, ts: float) -> None:
        pool = self._route_pool(self._serving_role, ts, _HANDOFF, orig)
        if pool is None:
            return  # deferred until a warming decode replica comes online
        if not pool:
            self._fail(orig, ts)
            return
        chosen = _least_outstanding(pool)
        chosen.served.append(orig)
        context = orig.input_tokens + 1
        # The KV arrived with the transfer: admission re-prefills a single
        # attach token, then decoding continues from the second token.
        proxy = GenerationRequest(
            input_tokens=context,
            output_tokens=orig.output_tokens - 1,
            arrival_time=ts,
            prefix_tokens=context - 1,
            cached_prefix_tokens=context - 1,
        )
        self._orig_by_proxy[proxy.request_id] = orig
        chosen.run.submit(proxy)
        self._sync_replica(chosen)

    # ------------------------------------------------------------------
    # Control plane: faults, retries, autoscaling.

    def _find_replica(self, name: str | None) -> Replica | None:
        return next((r for r in self._replicas if r.name == name), None)

    def _kv_lost(self, ts: float) -> bool:
        return any(start <= ts < end for start, end in self._kv_windows)

    def _reset(self, orig: GenerationRequest) -> None:
        """Wind a displaced request back to its pre-service state."""
        orig.generated_tokens = 0
        orig.state = RequestState.QUEUED
        orig.admit_time = None
        orig.first_token_time = None
        orig.finish_time = None
        orig.restart_context = 0
        orig.cached_prefix_tokens = 0

    def _fail(self, orig: GenerationRequest, ts: float) -> None:
        self._reset(orig)
        orig.state = RequestState.FAILED
        self._failed += 1
        if self._telemetry_on:
            # A failed request burns the error budget like a missed SLO.
            self.telemetry.record_completion(
                ts, float("nan"), float("nan"), False, tenant=orig.tenant
            )

    def _requeue(self, orig: GenerationRequest, ts: float) -> None:
        """Re-enter a displaced request via backoff, or fail it."""
        self._reset(orig)
        assert self.control is not None
        policy = self.control.retry
        attempt = self._attempts.get(orig.request_id, 0)
        if attempt >= policy.max_retries:
            orig.state = RequestState.FAILED
            self._failed += 1
            if self._telemetry_on:
                self.telemetry.record_completion(
                    ts, float("nan"), float("nan"), False, tenant=orig.tenant
                )
            if self._ctl_tracer is not None:
                self._ctl_tracer.instant(
                    "control", "retry_budget_exhausted", ts_s=ts, attempts=attempt
                )
            return
        self._attempts[orig.request_id] = attempt + 1
        self._retries += 1
        delay = policy.backoff_s(attempt)
        self._push(ts + delay, _RETRY, orig)
        if self._ctl_tracer is not None:
            self._ctl_tracer.instant(
                "control", "retry_scheduled", ts_s=ts, delay_s=delay, attempt=attempt
            )

    def _apply_fault(self, event, ts: float) -> None:
        tracer = self._ctl_tracer
        if event.kind == "kv_loss":
            self._fault_log.append(
                {"kind": "kv_loss", "at_s": event.at_s, "duration_s": event.duration_s}
            )
            if tracer is not None:
                tracer.instant(
                    "control", "fault:kv_loss", ts_s=ts, duration_s=event.duration_s
                )
            return
        replica = self._find_replica(event.replica)
        if replica is None or not replica.alive:
            return
        if event.kind == "slowdown":
            replica.run.cost_scale = event.factor
            self._fault_log.append(
                {
                    "kind": "slowdown",
                    "at_s": event.at_s,
                    "replica": replica.name,
                    "factor": event.factor,
                    "duration_s": event.duration_s,
                }
            )
            if tracer is not None:
                tracer.instant(
                    "control",
                    "fault:slowdown",
                    ts_s=ts,
                    replica=replica.name,
                    factor=event.factor,
                )
            return
        # Crash: the replica never steps again; everything resident on it
        # (queued or mid-flight) re-enters the router under backoff.
        replica.alive = False
        replica.status = "crashed"
        self._sync_replica(replica)
        victims = [r for r in replica.run.submitted if not r.is_finished]
        self._fault_log.append(
            {
                "kind": "crash",
                "at_s": event.at_s,
                "replica": replica.name,
                "requeued": len(victims),
            }
        )
        if tracer is not None:
            tracer.instant(
                "control",
                "fault:crash",
                ts_s=ts,
                replica=replica.name,
                requeued=len(victims),
            )
        for victim in victims:
            orig = self._orig_by_proxy.pop(victim.request_id, victim)
            self._requeue(orig, ts)

    def _end_fault(self, event, ts: float) -> None:
        replica = self._find_replica(event.replica)
        if replica is not None and replica.alive:
            replica.run.cost_scale = 1.0
            if self._ctl_tracer is not None:
                self._ctl_tracer.instant(
                    "control", "fault:slowdown_end", ts_s=ts, replica=replica.name
                )

    def _fleet_view(self, ts: float) -> FleetView:
        assert self.control is not None
        role = self._serving_role
        serving = [
            r
            for r in self._replicas
            if r.role == role and r.alive and not r.draining and r.start_s <= ts
        ]
        warming = [
            r
            for r in self._replicas
            if r.role == role and r.alive and not r.draining and r.start_s > ts
        ]
        window = self.control.metrics_window_s
        recent = [r for r in self._completions if r.finish_time >= ts - window]
        slo = getattr(self.control.autoscaler, "slo", None) or ServiceLevelObjective()
        if recent:
            attainment = sum(1 for r in recent if slo.met_by(r)) / len(recent)
            ttft_p95 = percentile(sorted(r.ttft_s for r in recent), 95.0)
        else:
            attainment = ttft_p95 = float("nan")
        if self._telemetry_on:
            # The telemetry tick runs first, so the burn rates the policy
            # sees are current as of this tick.
            burn_fast, burn_slow = self.telemetry.burn_rates()
        else:
            burn_fast = burn_slow = float("nan")
        return FleetView(
            now_s=ts,
            num_serving=len(serving),
            num_warming=len(warming),
            queue_depth=sum(r.queue_depth for r in serving),
            outstanding_tokens=sum(r.outstanding_tokens for r in serving),
            slo_attainment=attainment,
            ttft_p95_s=ttft_p95,
            burn_rate_fast=burn_fast,
            burn_rate_slow=burn_slow,
        )

    def _autoscale_tick(self, ts: float) -> None:
        if self._telemetry_on:
            self._telemetry_tick(ts)
        if self._control_ticks:
            plane = self.control
            assert plane is not None
            policy = plane.autoscaler
            view = self._fleet_view(ts)
            registry = self._registry
            registry.gauge("fleet.serving").set(view.num_serving, ts_s=ts)
            registry.gauge("fleet.warming").set(view.num_warming, ts_s=ts)
            registry.gauge("fleet.queue_depth").set(view.queue_depth, ts_s=ts)
            if not math.isnan(view.slo_attainment):
                registry.gauge("fleet.slo_attainment").set(
                    view.slo_attainment, ts_s=ts
                )
            delta = policy.decide(view)
            cooled = ts - self._last_scale_s >= policy.cooldown_s
            if delta > 0 and cooled and view.num_provisioned < policy.max_replicas:
                self._scale_up(ts)
            elif delta < 0 and cooled and view.num_provisioned > policy.min_replicas:
                self._scale_down(ts)
        # Re-arm only while the run can still produce or receive work, so
        # the tick chain cannot keep a finished simulation alive.
        if self._events or any(r.alive and r.has_work for r in self._replicas):
            self._push(ts + self._tick_every, _TICK, None)

    def _telemetry_tick(self, ts: float) -> None:
        """Sample the fleet into the telemetry bus, evaluate the budget,
        land alert transitions in the control trace, and feed observed
        utilization back into routing weights (profiled runs)."""
        hub = self.telemetry
        role = self._serving_role
        serving = [
            r
            for r in self._replicas
            if r.role == role and r.alive and not r.draining and r.start_s <= ts
        ]
        warming = [
            r
            for r in self._replicas
            if r.role == role and r.alive and not r.draining and r.start_s > ts
        ]
        hub.sample("fleet.serving", ts, float(len(serving)), unit="replicas")
        hub.sample("fleet.warming", ts, float(len(warming)), unit="replicas")
        hub.sample(
            "fleet.queue_depth", ts, float(sum(r.queue_depth for r in serving))
        )
        hub.sample(
            "fleet.outstanding_tokens",
            ts,
            float(sum(r.outstanding_tokens for r in serving)),
            unit="tokens",
        )
        for replica in self._replicas:
            if not replica.alive:
                continue
            prefix = f"replica.{replica.name}"
            hub.sample(f"{prefix}.queue_depth", ts, float(replica.queue_depth))
            hub.sample(
                f"{prefix}.outstanding_tokens",
                ts,
                float(replica.outstanding_tokens),
                unit="tokens",
            )
            hub.sample(f"{prefix}.kv_occupancy", ts, replica.kv_used_fraction)
            totals = replica.run.profiler.running_totals()
            if totals is not None:
                self._sample_profiler_totals(prefix, ts, replica, totals)
        transitions = hub.tick(ts)
        if self._ctl_tracer is not None:
            for alert in transitions:
                self._ctl_tracer.instant(
                    "control",
                    f"alert:{alert.name}:{alert.state}",
                    ts_s=alert.ts_s,
                    severity=alert.severity,
                    value=alert.value,
                    threshold=alert.threshold,
                )
        if self._telemetry_view is not None and len(serving) > 1:
            scales = self._telemetry_view.routing_scales(
                [r.name for r in serving], ts
            )
            for replica in serving:
                replica.apply_telemetry_scale(scales[replica.name])

    def _sample_profiler_totals(
        self, prefix: str, ts: float, replica: Replica, totals: dict
    ) -> None:
        """Cumulative profiler counters plus the derived windowed
        efficiency channels (MFU/MBU/watts/joules-per-token)."""
        hub = self.telemetry
        hub.sample(f"{prefix}.busy_s", ts, totals["busy_s"], unit="s")
        hub.sample(f"{prefix}.flops", ts, totals["flops"], unit="flops")
        hub.sample(f"{prefix}.bytes", ts, totals["bytes"], unit="bytes")
        hub.sample(f"{prefix}.energy_j", ts, totals["energy_j"], unit="J")
        hub.sample(f"{prefix}.tokens", ts, totals["tokens"], unit="tokens")
        window = hub.budget.fast_window_s
        # A freshly scaled replica has existed for less than a full
        # window; normalize by its actual lifetime inside the window.
        elapsed = min(window, ts - replica.created_s)
        if elapsed <= 0:
            return
        profiler = replica.run.profiler
        d_flops = hub.series(f"{prefix}.flops").delta(window, ts)
        d_bytes = hub.series(f"{prefix}.bytes").delta(window, ts)
        d_energy = hub.series(f"{prefix}.energy_j").delta(window, ts)
        d_tokens = hub.series(f"{prefix}.tokens").delta(window, ts)
        hub.sample(
            f"{prefix}.mfu", ts, d_flops / (elapsed * profiler.peak_flops_per_s)
        )
        hub.sample(
            f"{prefix}.mbu",
            ts,
            d_bytes / (elapsed * profiler.peak_bandwidth_bytes_s),
        )
        hub.sample(f"{prefix}.watts", ts, d_energy / elapsed, unit="W")
        if d_tokens > 0:
            hub.sample(
                f"{prefix}.joules_per_token",
                ts,
                d_energy / d_tokens,
                unit="J/token",
            )

    def _scale_up(self, ts: float) -> None:
        plane = self.control
        assert plane is not None
        dep = plane.scale_deployment or self.deployment
        index = self._next_index
        self._next_index += 1
        name = (
            f"decode{index}"
            if self.disaggregation is not None
            else f"replica{index}"
        )
        warmup = plane.warmup_s(dep)
        replica = self._make_replica(
            index, name, dep, self._serving_role, start_s=ts + warmup, created_s=ts
        )
        replica.status = "scaled"
        self._replicas.append(replica)
        if self._eligible is not None:
            self._clock = np.append(self._clock, 0.0)
            self._eligible = np.append(self._eligible, False)
        self._last_scale_s = ts
        self._scale_log.append(
            {"action": "up", "ts_s": ts, "replica": name, "ready_s": ts + warmup}
        )
        if self._ctl_tracer is not None:
            self._ctl_tracer.instant(
                "control", "scale_up", ts_s=ts, replica=name, ready_s=ts + warmup
            )

    def _scale_down(self, ts: float) -> None:
        role = self._serving_role
        candidates = [
            r
            for r in self._replicas
            if r.role == role and r.alive and not r.draining
        ]
        if not candidates:
            return
        # Prefer the emptiest replica; among the idle, the one that came
        # online last (cancelling a still-warming replica is free).
        victim = min(
            candidates, key=lambda r: (r.outstanding_tokens, -r.start_s, r.index)
        )
        victim.draining = True
        victim.status = "draining"
        self._last_scale_s = ts
        self._scale_log.append(
            {"action": "down", "ts_s": ts, "replica": victim.name}
        )
        if self._ctl_tracer is not None:
            self._ctl_tracer.instant(
                "control", "scale_down", ts_s=ts, replica=victim.name
            )

    # ------------------------------------------------------------------

    def _sample_gauges(self, replicas: list[Replica], now: float) -> None:
        """Per-replica fleet gauges at each routing instant."""
        registry = self._registry
        for replica in replicas:
            if not replica.alive:
                continue
            registry.gauge(f"{replica.name}.queue_depth").set(
                replica.queue_depth, ts_s=now
            )
            registry.gauge(f"{replica.name}.outstanding_tokens").set(
                replica.outstanding_tokens, ts_s=now
            )
            registry.gauge(f"{replica.name}.kv_occupancy").set(
                replica.kv_used_fraction, ts_s=now
            )

    def _finalize(self, trace: list[GenerationRequest]) -> ClusterResult:
        registry = self._registry
        replicas = self._replicas
        makespan = max((r.now for r in replicas), default=0.0)
        telemetry_snapshot: TelemetrySnapshot | None = None
        if self._telemetry_on:
            # Closeout tick at the horizon: flush completions recorded
            # past the last control tick and settle any firing alerts.
            for alert in self.telemetry.finish(makespan):
                if self._ctl_tracer is not None:
                    self._ctl_tracer.instant(
                        "control",
                        f"alert:{alert.name}:{alert.state}",
                        ts_s=alert.ts_s,
                        severity=alert.severity,
                        value=alert.value,
                        threshold=alert.threshold,
                    )
            telemetry_snapshot = self.telemetry.snapshot()
        energy_j = 0.0
        reports: list[ReplicaReport] = []
        events: dict[str, list[TraceEvent]] = {}
        profiles: list[ProfileReport] = []
        for replica in replicas:
            run = replica.run
            result = run.result()
            if result.profile is not None:
                # Label the replica's profile with its fleet name (frozen
                # report: rebuild rather than mutate).
                result.profile = dataclasses.replace(
                    result.profile, name=replica.name
                )
                profiles.append(result.profile)
            busy = max(0.0, run.now - run.idle_s)
            energy_j += run.energy_j
            idle_w = replica.engine._power.group_power_w(0.0)
            if replica.alive and not replica.draining:
                # Replicas that drain early idle until the cluster finishes;
                # crashed/draining replicas stop drawing at their last step.
                energy_j += (makespan - run.now) * idle_w
            if replica.created_s > 0.0 and (
                run.now > 0.0 or (replica.alive and not replica.draining)
            ):
                # A scaled-up replica's accounting starts at t=0 (the idle
                # fast-forward and the idle top-up both integrate from
                # there), but it only existed from its creation instant.
                energy_j -= replica.created_s * idle_w
            reports.append(
                ReplicaReport(
                    name=replica.name,
                    role=replica.role,
                    requests_served=len(replica.served),
                    busy_s=busy,
                    utilization=busy / makespan if makespan > 0 else 0.0,
                    result=result,
                    status=replica.status,
                )
            )
            registry.counter("preemptions").inc(result.scheduler_stats.preemptions)
            if self.traced and isinstance(replica.engine.tracer, EventTracer):
                events[replica.name] = replica.engine.tracer.events
        if self._ctl_tracer is not None and self._ctl_tracer.events:
            events["control"] = self._ctl_tracer.events

        for request in trace:
            if request.first_token_time is None:
                continue
            registry.histogram("ttft_s").record(request.ttft_s)
            if request.finish_time is None:
                continue
            registry.histogram("e2e_s").record(request.end_to_end_latency_s)
            if request.output_tokens > 0:
                # NTPOT lane, mirroring the single-engine histogram set.
                registry.histogram("ntpot_s").record(
                    request.end_to_end_latency_s / request.output_tokens
                )
            if request.output_tokens > 1:
                gap = (request.finish_time - request.first_token_time) / (
                    request.output_tokens - 1
                )
                registry.histogram("itl_s").record(gap)
        registry.counter("routed").inc(len(trace))
        registry.counter("prefix_hits").inc(self._prefix_hits)
        registry.counter("handoffs").inc(self._handoffs)
        if self._control_on:
            registry.counter("retries").inc(self._retries)
            registry.counter("failed").inc(self._failed)
            registry.counter("lost_handoffs").inc(self._lost_handoffs)

        return ClusterResult(
            requests=list(trace),
            replicas=reports,
            makespan_s=makespan,
            router_name=self.router.name,
            metrics=registry.snapshot(),
            prefix_hits=self._prefix_hits,
            handoffs=self._handoffs,
            transfer_s_total=self._transfer_s,
            average_power_w=energy_j / makespan if makespan > 0 else 0.0,
            replica_events=events,
            retries=self._retries,
            failed_requests=self._failed,
            lost_handoffs=self._lost_handoffs,
            fault_log=list(self._fault_log),
            scale_log=list(self._scale_log),
            profile=(
                merge_profiles(profiles, name="cluster") if profiles else None
            ),
            telemetry=telemetry_snapshot,
        )
