"""Discrete-event cluster simulator: N serving replicas behind a router.

Each replica is a full :class:`~repro.runtime.engine.ServingEngine` — its
own scheduler, memory manager and paged-KV allocator — advanced as a
resumable :class:`~repro.runtime.engine.EngineRun`.  The simulator owns a
global event heap (request arrivals, disaggregated KV handoffs) and
interleaves replica iterations with routing decisions under a min-clock
discipline: the least-advanced working replica always steps first, so
every routing decision sees fleet state no more than one committed
iteration stale — the same information horizon a real balancing tier has.

A 1-replica cluster reproduces a standalone ``ServingEngine.run`` bit-
identically (tested): routing degenerates to submission in arrival order,
and the ``pressure`` hook keeps iteration boundaries where the single
engine would put them.

With a :class:`~repro.cluster.disagg.DisaggregationSpec`, dedicated
prefill replicas run prompt processing only; finished prefills hand their
KV state to a decode replica after an interconnect-priced transfer delay
(:func:`~repro.cluster.disagg.kv_transfer_time`), landing as a one-token
attach pass.  TTFT is served from the prefill side, the remaining tokens
stream from the decode side.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.cluster.disagg import DisaggregationSpec, kv_transfer_time
from repro.cluster.router import LeastOutstandingTokensRouter, Router, _least_outstanding
from repro.core.request import GenerationRequest, RequestState
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.tracer import EventTracer, TraceEvent
from repro.perf.kernel import get_kernel
from repro.perf.phases import Deployment
from repro.runtime.engine import EngineResult, EngineRun, ServingEngine
from repro.runtime.loadgen import LoadReport, ServiceLevelObjective, summarize_requests

__all__ = ["Replica", "ReplicaReport", "ClusterResult", "ClusterSimulator"]

_ARRIVAL = "arrival"
_HANDOFF = "handoff"


class Replica:
    """One serving engine plus the router-visible state around it."""

    def __init__(
        self,
        index: int,
        name: str,
        engine: ServingEngine,
        run: EngineRun,
        role: str = "unified",
        prefix_cache_slots: int = 2,
    ) -> None:
        self.index = index
        self.name = name
        self.engine = engine
        self.run = run
        self.role = role
        # Bounded LRU of resident prompt prefixes: real prefix caches hold
        # a handful of hot prefixes before block eviction reclaims them,
        # which is exactly why KV-cache-aware routing pays — a replica
        # that sees every prefix in rotation keeps none of them warm.
        self.prefix_cache_slots = prefix_cache_slots
        self._prefix_lru: dict[int, None] = {}  # insertion-ordered LRU
        self.served: list[GenerationRequest] = []  # originals routed here

    def touch_prefix(self, prefix_id: int) -> bool:
        """Record a prefix use; True if its KV was resident (cache hit)."""
        lru = self._prefix_lru
        hit = prefix_id in lru
        if hit:
            lru.pop(prefix_id)  # move to most-recently-used
        lru[prefix_id] = None
        while len(lru) > self.prefix_cache_slots:
            lru.pop(next(iter(lru)))  # evict least-recently-used
        return hit

    # Router-facing summaries (delegated to the live run).

    @property
    def now(self) -> float:
        return self.run.now

    @property
    def has_work(self) -> bool:
        return self.run.has_work

    @property
    def outstanding_tokens(self) -> int:
        return self.run.outstanding_tokens

    @property
    def queue_depth(self) -> int:
        return self.run.queue_depth

    @property
    def kv_used_fraction(self) -> float:
        return self.run.kv_used_fraction


@dataclass(frozen=True)
class ReplicaReport:
    """Per-replica outcome of one cluster run."""

    name: str
    role: str
    requests_served: int
    busy_s: float
    utilization: float  # busy time over the cluster makespan
    result: EngineResult


@dataclass
class ClusterResult:
    """Outcome of one cluster simulation."""

    requests: list[GenerationRequest]
    replicas: list[ReplicaReport]
    makespan_s: float
    router_name: str
    metrics: MetricsSnapshot
    prefix_hits: int = 0
    handoffs: int = 0
    transfer_s_total: float = 0.0
    average_power_w: float = 0.0
    replica_events: dict[str, list[TraceEvent]] = field(default_factory=dict)

    def load_report(
        self,
        offered_rate_rps: float,
        slo: ServiceLevelObjective | None = None,
    ) -> LoadReport:
        """Cluster-scope SLO/goodput accounting (same path as one engine)."""
        return summarize_requests(
            self.requests,
            self.makespan_s,
            offered_rate_rps,
            slo=slo,
            average_power_w=self.average_power_w,
        )

    def render(self) -> str:
        lines = [
            f"cluster: {len(self.replicas)} replicas, router {self.router_name}, "
            f"{len(self.requests)} requests, makespan {self.makespan_s:.2f} s"
        ]
        if self.handoffs:
            lines.append(
                f"disaggregated: {self.handoffs} KV handoffs, "
                f"{self.transfer_s_total:.3f} s total transfer"
            )
        if self.prefix_hits:
            lines.append(f"prefix-cache hits: {self.prefix_hits}")
        lines.append(
            f"{'replica':<12}{'role':<10}{'requests':>9}{'busy s':>10}{'util':>7}"
        )
        for rep in self.replicas:
            lines.append(
                f"{rep.name:<12}{rep.role:<10}{rep.requests_served:>9d}"
                f"{rep.busy_s:>10.2f}{rep.utilization:>7.0%}"
            )
        return "\n".join(lines)


class ClusterSimulator:
    """Runs a request trace across N replicas behind a routing policy.

    ``num_replicas`` serving replicas share one ``deployment`` shape; with
    ``disaggregation`` set, ``disaggregation.num_prefill_replicas``
    *additional* prefill-only replicas take arrivals and hand finished
    prompts to the serving (decode) fleet.  Pass a fresh :class:`Router`
    per run — policies carry state (cursors, prefix homes).
    """

    def __init__(
        self,
        deployment: Deployment,
        num_replicas: int,
        router: Router | None = None,
        max_concurrency: int = 32,
        optimistic: bool = False,
        disaggregation: DisaggregationSpec | None = None,
        prefix_cache_slots: int = 2,
        traced: bool = False,
        kernel=None,
    ) -> None:
        if num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
        if prefix_cache_slots < 1:
            raise ValueError(
                f"prefix_cache_slots must be >= 1, got {prefix_cache_slots}"
            )
        self.deployment = deployment
        # One step-cost kernel shared by every replica: all replicas serve
        # the same deployment shape, so coefficient/memo state built by one
        # replica's steps is reused by the rest of the fleet.
        self.kernel = kernel if kernel is not None else get_kernel(deployment)
        self.num_replicas = num_replicas
        self.router = router or LeastOutstandingTokensRouter()
        self.max_concurrency = max_concurrency
        self.optimistic = optimistic
        self.prefix_cache_slots = prefix_cache_slots
        self.disaggregation = disaggregation
        self.traced = traced
        # Run-scoped state (initialized in run()).
        self._prefill_fleet: list[Replica] = []
        self._events: list[tuple[float, int, str, object]] = []
        self._seq = itertools.count()
        self._orig_by_proxy: dict[int, GenerationRequest] = {}
        self._registry = MetricsRegistry()
        self._prefix_hits = 0
        self._handoffs = 0
        self._transfer_s = 0.0

    # ------------------------------------------------------------------

    def _build_replicas(self) -> tuple[list[Replica], list[Replica], list[Replica]]:
        """(all, arrival-eligible, decode-eligible) replica lists."""
        disagg = self.disaggregation
        roles: list[str] = []
        if disagg is not None:
            roles += ["prefill"] * disagg.num_prefill_replicas
            roles += ["decode"] * self.num_replicas
        else:
            roles += ["unified"] * self.num_replicas
        replicas: list[Replica] = []
        pressure = self._pressure
        for index, role in enumerate(roles):
            tracer = EventTracer() if self.traced else None
            engine = ServingEngine(
                self.deployment,
                max_concurrency=self.max_concurrency,
                optimistic=self.optimistic,
                kernel=self.kernel,
                **({"tracer": tracer} if tracer is not None else {}),
            )
            name = f"{role}{index}" if disagg is not None else f"replica{index}"
            replicas.append(
                Replica(
                    index,
                    name,
                    engine,
                    engine.start(pressure=pressure),
                    role,
                    prefix_cache_slots=self.prefix_cache_slots,
                )
            )
        if disagg is not None:
            arrival_pool = [r for r in replicas if r.role == "prefill"]
            decode_pool = [r for r in replicas if r.role == "decode"]
        else:
            arrival_pool = decode_pool = replicas
        self._prefill_fleet = arrival_pool if disagg is not None else []
        return replicas, arrival_pool, decode_pool

    def _pressure(self) -> bool:
        """More work may still route here: hold single-step boundaries.

        True while undispatched events remain on the heap or (in
        disaggregated mode) any prefill replica still holds work whose
        retirement will spawn a KV handoff.
        """
        if self._events:
            return True
        return any(r.has_work for r in self._prefill_fleet)

    # ------------------------------------------------------------------

    def run(self, trace: list[GenerationRequest]) -> ClusterResult:
        """Route and execute ``trace`` to completion across the fleet."""
        if not trace:
            raise ValueError("trace is empty")
        self._events = []
        self._seq = itertools.count()
        self._orig_by_proxy = {}
        self._registry = MetricsRegistry()
        self._prefix_hits = 0
        self._handoffs = 0
        self._transfer_s = 0.0

        replicas, arrival_pool, decode_pool = self._build_replicas()
        for request in sorted(trace, key=lambda r: r.arrival_time):
            self._push(request.arrival_time, _ARRIVAL, request)

        while True:
            if self._events:
                t_next = self._events[0][0]
                candidates = [
                    r for r in replicas if r.has_work and r.now < t_next
                ]
                if candidates:
                    self._step(min(candidates, key=lambda r: (r.now, r.index)),
                               horizon=t_next, decode_pool=decode_pool)
                    continue
                ts, _, kind, payload = heapq.heappop(self._events)
                if kind == _ARRIVAL:
                    self._dispatch_arrival(payload, arrival_pool, replicas)
                else:
                    self._dispatch_handoff(payload, decode_pool, ts)
                continue
            working = [r for r in replicas if r.has_work]
            if not working:
                break
            self._step(min(working, key=lambda r: (r.now, r.index)),
                       horizon=None, decode_pool=decode_pool)

        return self._finalize(trace, replicas)

    # ------------------------------------------------------------------

    def _push(self, ts: float, kind: str, payload: object) -> None:
        heapq.heappush(self._events, (ts, next(self._seq), kind, payload))

    def _step(
        self,
        replica: Replica,
        horizon: float | None,
        decode_pool: list[Replica],
    ) -> None:
        retired = replica.run.step(horizon=horizon)
        if self.disaggregation is None:
            return
        for proxy in retired:
            orig = self._orig_by_proxy.pop(proxy.request_id, None)
            if orig is None:
                continue
            if replica.role == "prefill":
                self._complete_prefill(orig, proxy)
            else:
                self._complete_decode(orig, proxy)

    def _complete_prefill(
        self, orig: GenerationRequest, proxy: GenerationRequest
    ) -> None:
        """Stitch TTFT from the prefill side; schedule the KV handoff."""
        orig.admit_time = proxy.admit_time
        orig.first_token_time = proxy.first_token_time
        if orig.output_tokens == 1:
            orig.finish_time = proxy.finish_time
            orig.generated_tokens = 1
            orig.state = RequestState.FINISHED
            return
        assert self.disaggregation is not None
        context = orig.input_tokens + 1
        transfer = kv_transfer_time(
            self.deployment, context, self.disaggregation.interconnect
        )
        self._handoffs += 1
        self._transfer_s += transfer
        self._push(proxy.finish_time + transfer, _HANDOFF, orig)

    def _complete_decode(
        self, orig: GenerationRequest, proxy: GenerationRequest
    ) -> None:
        orig.finish_time = proxy.finish_time
        orig.generated_tokens = orig.output_tokens
        orig.state = RequestState.FINISHED

    # ------------------------------------------------------------------

    def _dispatch_arrival(
        self,
        request: GenerationRequest,
        arrival_pool: list[Replica],
        replicas: list[Replica],
    ) -> None:
        now = request.arrival_time
        self._sample_gauges(replicas, now)
        chosen = self.router.route(request, arrival_pool, now)
        cached = 0
        if request.prefix_id is not None and request.prefix_tokens > 0:
            if chosen.touch_prefix(request.prefix_id):
                cached = request.prefix_tokens
                self._prefix_hits += 1
        chosen.served.append(request)
        if self.disaggregation is None:
            request.cached_prefix_tokens = cached
            chosen.run.submit(request)
            return
        proxy = GenerationRequest(
            input_tokens=request.input_tokens,
            output_tokens=1,
            arrival_time=now,
            prefix_id=request.prefix_id,
            prefix_tokens=request.prefix_tokens,
            cached_prefix_tokens=cached,
        )
        self._orig_by_proxy[proxy.request_id] = request
        chosen.run.submit(proxy)

    def _dispatch_handoff(
        self, orig: GenerationRequest, decode_pool: list[Replica], ts: float
    ) -> None:
        chosen = _least_outstanding(decode_pool)
        chosen.served.append(orig)
        context = orig.input_tokens + 1
        # The KV arrived with the transfer: admission re-prefills a single
        # attach token, then decoding continues from the second token.
        proxy = GenerationRequest(
            input_tokens=context,
            output_tokens=orig.output_tokens - 1,
            arrival_time=ts,
            prefix_tokens=context - 1,
            cached_prefix_tokens=context - 1,
        )
        self._orig_by_proxy[proxy.request_id] = orig
        chosen.run.submit(proxy)

    # ------------------------------------------------------------------

    def _sample_gauges(self, replicas: list[Replica], now: float) -> None:
        """Per-replica fleet gauges at each routing instant."""
        registry = self._registry
        for replica in replicas:
            registry.gauge(f"{replica.name}.queue_depth").set(
                replica.queue_depth, ts_s=now
            )
            registry.gauge(f"{replica.name}.outstanding_tokens").set(
                replica.outstanding_tokens, ts_s=now
            )
            registry.gauge(f"{replica.name}.kv_occupancy").set(
                replica.kv_used_fraction, ts_s=now
            )

    def _finalize(
        self, trace: list[GenerationRequest], replicas: list[Replica]
    ) -> ClusterResult:
        registry = self._registry
        makespan = max((r.now for r in replicas), default=0.0)
        energy_j = 0.0
        reports: list[ReplicaReport] = []
        events: dict[str, list[TraceEvent]] = {}
        for replica in replicas:
            run = replica.run
            result = run.result()
            busy = max(0.0, run.now - run.idle_s)
            energy_j += run.energy_j
            # Replicas that drain early idle until the cluster finishes.
            energy_j += (makespan - run.now) * replica.engine._power.group_power_w(0.0)
            reports.append(
                ReplicaReport(
                    name=replica.name,
                    role=replica.role,
                    requests_served=len(replica.served),
                    busy_s=busy,
                    utilization=busy / makespan if makespan > 0 else 0.0,
                    result=result,
                )
            )
            registry.counter("preemptions").inc(result.scheduler_stats.preemptions)
            if self.traced and isinstance(replica.engine.tracer, EventTracer):
                events[replica.name] = replica.engine.tracer.events

        for request in trace:
            if request.first_token_time is None:
                continue
            registry.histogram("ttft_s").record(request.ttft_s)
            if request.finish_time is None:
                continue
            registry.histogram("e2e_s").record(request.end_to_end_latency_s)
            if request.output_tokens > 1:
                gap = (request.finish_time - request.first_token_time) / (
                    request.output_tokens - 1
                )
                registry.histogram("itl_s").record(gap)
        registry.counter("routed").inc(len(trace))
        registry.counter("prefix_hits").inc(self._prefix_hits)
        registry.counter("handoffs").inc(self._handoffs)

        return ClusterResult(
            requests=list(trace),
            replicas=reports,
            makespan_s=makespan,
            router_name=self.router.name,
            metrics=registry.snapshot(),
            prefix_hits=self._prefix_hits,
            handoffs=self._handoffs,
            transfer_s_total=self._transfer_s,
            average_power_w=energy_j / makespan if makespan > 0 else 0.0,
            replica_events=events,
        )
