"""Capacity planning: how many replicas does an SLO goodput target need?

The operator question behind the paper's dashboard, asked at fleet scope:
given a target request rate that must be served *within* the chat SLO,
find the smallest replica count that sustains it.  The planner answers by
simulation — binary search over the replica count, each probe a full
cluster run at the offered target rate — and cross-checks the answer
against the closed-form data-parallel estimate
(:func:`repro.perf.multinode.replicas_for_rate`) built from the single
replica's measured sustainable rate.  On uniform workloads the two agree
within one replica (tested); the simulator earns its keep on the skewed
and shared-prefix workloads where the closed form has nothing to say.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

from repro.cluster.router import LeastOutstandingTokensRouter, Router
from repro.cluster.simulator import ClusterSimulator
from repro.core.request import GenerationRequest
from repro.perf.kernel import get_kernel
from repro.perf.multinode import replicas_for_rate
from repro.perf.phases import Deployment
from repro.runtime.loadgen import (
    LoadReport,
    ServiceLevelObjective,
    summarize_requests,
)
from repro.runtime.memory_manager import OutOfMemoryError
from repro.runtime.workload import open_loop_trace

__all__ = ["CapacityPlan", "ClusterCapacityPlanner", "TraceFactory"]

# (num_requests, rate_per_s, seed) -> trace
TraceFactory = Callable[[int, float, int], "list[GenerationRequest]"]


def _json_num(value: float) -> float | None:
    """JSON-safe scalar (non-finite -> null), the snapshot convention."""
    value = float(value)
    return value if math.isfinite(value) else None


def _from_json_num(value: object) -> float:
    """Inverse of :func:`_json_num`; ``null`` loads back as NaN."""
    return float("nan") if value is None else float(value)  # type: ignore[arg-type]


@dataclass(frozen=True)
class CapacityPlan:
    """Outcome of one planning run."""

    target_rate_rps: float
    num_replicas: int  # smallest count meeting the target (or the cap)
    analytic_replicas: int  # closed-form ceil(target / single-replica rate)
    feasible: bool  # False when even ``max_replicas`` missed the target
    report: LoadReport  # cluster report at ``num_replicas``
    probes: tuple[tuple[int, float], ...]  # (replicas, slo_attainment) tried

    def render(self) -> str:
        verdict = (
            f"{self.num_replicas} replicas"
            if self.feasible
            else f"infeasible within {self.num_replicas} replicas"
        )
        return (
            f"target {self.target_rate_rps:.2f} req/s within SLO -> {verdict} "
            f"(closed-form estimate {self.analytic_replicas}, "
            f"{len(self.probes)} probes)\n{self.report.render()}"
        )

    def to_json_dict(self) -> dict[str, object]:
        """Deterministic JSON view, mirroring the snapshot conventions.

        Optimizer artifacts (:mod:`repro.analysis.optimize`) embed plans
        losslessly; probe attainments on empty probe runs are NaN and
        survive as ``null``.
        """
        return {
            "target_rate_rps": _json_num(self.target_rate_rps),
            "num_replicas": self.num_replicas,
            "analytic_replicas": self.analytic_replicas,
            "feasible": self.feasible,
            "report": self.report.to_json_dict(),
            "probes": [
                [replicas, _json_num(attainment)]
                for replicas, attainment in self.probes
            ],
        }

    @classmethod
    def from_json_dict(cls, payload: dict[str, object]) -> "CapacityPlan":
        return cls(
            target_rate_rps=_from_json_num(payload["target_rate_rps"]),
            num_replicas=int(payload["num_replicas"]),  # type: ignore[arg-type]
            analytic_replicas=int(payload["analytic_replicas"]),  # type: ignore[arg-type]
            feasible=bool(payload["feasible"]),
            report=LoadReport.from_json_dict(payload["report"]),  # type: ignore[arg-type]
            probes=tuple(
                (int(replicas), _from_json_num(attainment))
                for replicas, attainment in payload["probes"]  # type: ignore[union-attr]
            ),
        )


class ClusterCapacityPlanner:
    """Sizes a data-parallel replica fleet for an SLO goodput target.

    Probes run an open-loop workload through a :class:`ClusterSimulator`
    at the offered target rate; a replica count passes when the fleet's
    SLO attainment reaches ``attainment_target`` — the same bar
    :func:`~repro.runtime.loadgen.find_max_sustainable_rate` applies to
    one engine, so fleet answers are comparable to single-engine ones.

    Each probe draws ``num_requests * num_replicas`` requests so every
    replica faces the same per-replica sample size and load duration as
    the single-replica reference; without that scaling a short burst
    split N ways hides saturation behind finite-run slack.

    ``trace_factory`` (``(num_requests, rate_per_s, seed) -> trace``)
    defaults to the Poisson/blended generator
    :func:`~repro.runtime.workload.open_loop_trace` at the configured
    mean lengths; pass e.g. a uniform ``poisson_trace`` wrapper to plan
    for fixed-shape traffic.
    """

    def __init__(
        self,
        deployment: Deployment,
        slo: ServiceLevelObjective | None = None,
        router_factory: Callable[[], Router] | None = None,
        trace_factory: TraceFactory | None = None,
        num_requests: int = 48,
        mean_input_tokens: int = 512,
        mean_output_tokens: int = 256,
        max_concurrency: int = 32,
        attainment_target: float | None = None,
        seed: int = 0,
    ) -> None:
        if num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        self.deployment = deployment
        self.slo = slo or ServiceLevelObjective()
        # The SLO object is the single definition of serving targets
        # (shared with the control plane's autoscaler); the explicit kwarg
        # survives as an override for sweeps over the attainment bar.
        if attainment_target is None:
            attainment_target = self.slo.attainment_target
        if not 0 < attainment_target <= 1:
            raise ValueError("attainment_target must be in (0, 1]")
        self.router_factory = router_factory or LeastOutstandingTokensRouter
        self.trace_factory = trace_factory or (
            lambda n, rate, seed: open_loop_trace(
                n, rate, mean_input_tokens, mean_output_tokens, seed=seed
            )
        )
        self.num_requests = num_requests
        self.mean_input_tokens = mean_input_tokens
        self.mean_output_tokens = mean_output_tokens
        self.max_concurrency = max_concurrency
        self.attainment_target = attainment_target
        self.seed = seed
        self._single_rate: float | None = None
        # One kernel for every probe: the bisection re-simulates the same
        # deployment dozens of times, so step costs computed by the first
        # probe are served from cache by all later ones.
        self._kernel = get_kernel(deployment)

    # ------------------------------------------------------------------

    def simulate(self, num_replicas: int, rate_rps: float) -> LoadReport:
        """One probe: the open-loop workload through ``num_replicas``."""
        trace = self.trace_factory(
            self.num_requests * num_replicas, rate_rps, self.seed
        )
        simulator = ClusterSimulator(
            self.deployment,
            num_replicas,
            router=self.router_factory(),
            max_concurrency=self.max_concurrency,
            kernel=self._kernel,
        )
        try:
            result = simulator.run(trace)
        except OutOfMemoryError:
            return summarize_requests(trace, 0.0, rate_rps, slo=self.slo)
        return result.load_report(rate_rps, slo=self.slo)

    def single_replica_rate(
        self, max_rate_rps: float = 64.0, tolerance_rps: float = 0.25
    ) -> float:
        """Max sustainable rate of one replica (bisection; cached).

        Measured through the same simulate() path every fleet probe uses
        (a 1-replica cluster reproduces the standalone engine exactly),
        so the closed-form cross-check sees a consistent workload.
        Returns 0.0 when even the lightest probe misses the SLO.
        """
        if self._single_rate is not None:
            return self._single_rate
        target = self.attainment_target
        lo, hi = tolerance_rps, max_rate_rps
        if self.simulate(1, lo).slo_attainment < target:
            self._single_rate = 0.0
            return 0.0
        if self.simulate(1, hi).slo_attainment >= target:
            self._single_rate = hi
            return hi
        best = lo
        while hi - lo > tolerance_rps:
            mid = (lo + hi) / 2
            if self.simulate(1, mid).slo_attainment >= target:
                best, lo = mid, mid
            else:
                hi = mid
        self._single_rate = best
        return best

    # ------------------------------------------------------------------

    def plan(
        self, target_rate_rps: float, max_replicas: int = 16
    ) -> CapacityPlan:
        """Smallest replica count absorbing ``target_rate_rps`` within SLO.

        Binary search over [1, max_replicas]; SLO attainment is monotone
        in replica count for the independent-replica fleet, so the search
        is sound.  ``feasible=False`` (with the cap's report) when even
        ``max_replicas`` misses the bar.
        """
        if target_rate_rps <= 0:
            raise ValueError("target_rate_rps must be positive")
        if max_replicas < 1:
            raise ValueError("max_replicas must be >= 1")

        single = self.single_replica_rate()
        analytic = (
            replicas_for_rate(target_rate_rps, single)
            if single > 0
            else max_replicas
        )
        probes: list[tuple[int, float]] = []

        def probe(count: int) -> LoadReport:
            report = self.simulate(count, target_rate_rps)
            probes.append((count, report.slo_attainment))
            return report

        report = probe(max_replicas)
        if report.slo_attainment < self.attainment_target:
            return CapacityPlan(
                target_rate_rps=target_rate_rps,
                num_replicas=max_replicas,
                analytic_replicas=analytic,
                feasible=False,
                report=report,
                probes=tuple(probes),
            )
        lo, hi = 1, max_replicas
        best = report
        while lo < hi:
            mid = (lo + hi) // 2
            report = probe(mid)
            if report.slo_attainment >= self.attainment_target:
                best, hi = report, mid
            else:
                lo = mid + 1
        return CapacityPlan(
            target_rate_rps=target_rate_rps,
            num_replicas=hi,
            analytic_replicas=analytic,
            feasible=True,
            report=best,
            probes=tuple(probes),
        )
