"""Request routers for the multi-replica cluster simulator.

A router picks which replica serves each arriving request, using only the
state a production router would see at the balancing tier: per-replica
queue depth, outstanding work, KV occupancy and (for affinity routing)
which replica previously served a shared prompt prefix.  The policies
mirror the llm-d / production serving literature:

* **round-robin** — the baseline; blind to load, so long prompts pile up
  on unlucky replicas.
* **least-outstanding-tokens** — route to the replica with the least
  unfinished work (prefill owed + output still to emit), the token-level
  analogue of least-outstanding-requests.
* **power-of-two-choices** — sample two replicas, pick the less loaded;
  near the balance of least-outstanding at O(1) state reads.

Load reads are O(1) per replica: ``EngineRun`` maintains its
outstanding-token tally incrementally at every submit/token/preemption
event, so a routing instant costs O(replicas consulted) rather than
O(resident requests) — the least-outstanding and power-of-two policies
touch no per-request state at all.
* **prefix-affinity** — send repeats of a shared prompt prefix to the
  replica already holding its KV blocks (KV-cache-aware routing); falls
  back to least-outstanding for first-seen prefixes.
* **session-affinity** — pin each multi-turn conversation
  (:mod:`repro.scenarios` sessions) to the replica that served its
  earlier turns, so the session's accumulated KV stays hot; re-pins
  gracefully when the home replica crashes or drains.

Routers are deterministic given their seed, so cluster simulations are
reproducible end to end.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.core.request import GenerationRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.simulator import Replica

__all__ = [
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingTokensRouter",
    "PowerOfTwoChoicesRouter",
    "PrefixAffinityRouter",
    "SessionAffinityRouter",
    "ROUTER_NAMES",
    "get_router",
    "list_routers",
]


class Router:
    """Routing-policy interface; subclasses override :meth:`route`."""

    name = "base"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def route(
        self,
        request: GenerationRequest,
        replicas: Sequence["Replica"],
        now: float,
    ) -> "Replica":
        """Pick the replica that serves ``request`` (arriving at ``now``)."""
        raise NotImplementedError

    @staticmethod
    def _require(replicas: Sequence["Replica"]) -> None:
        if not replicas:
            raise ValueError("cannot route: no replicas")


def _least_outstanding(replicas: Sequence["Replica"]) -> "Replica":
    """Least-loaded replica; ties break to the lowest index.

    Load is outstanding tokens normalized by each replica's
    ``capacity_weight`` (its kernel-predicted decode rate relative to the
    fleet's base deployment), so a 2x-faster replica in a heterogeneous
    fleet absorbs 2x the queue before looking equally busy.  Homogeneous
    fleets carry weight exactly 1.0 and order as before.
    """
    return min(
        replicas,
        key=lambda r: (r.outstanding_tokens / r.capacity_weight, r.index),
    )


class RoundRobinRouter(Router):
    """Cycle through replicas in index order, ignoring load."""

    name = "round-robin"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._next = 0

    def route(self, request, replicas, now):
        self._require(replicas)
        chosen = replicas[self._next % len(replicas)]
        self._next += 1
        return chosen


class LeastOutstandingTokensRouter(Router):
    """Route to the replica with the least unfinished token work."""

    name = "least-outstanding"

    def route(self, request, replicas, now):
        self._require(replicas)
        return _least_outstanding(replicas)


class PowerOfTwoChoicesRouter(Router):
    """Sample two replicas uniformly; route to the less loaded one.

    The classic balanced-allocations result: two random choices already
    collapse the max-load gap exponentially versus one, while reading the
    state of only two replicas per decision.
    """

    name = "power-of-two"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._rng = np.random.default_rng(seed)

    def route(self, request, replicas, now):
        self._require(replicas)
        if len(replicas) == 1:
            return replicas[0]
        i, j = self._rng.choice(len(replicas), size=2, replace=False)
        return _least_outstanding([replicas[int(i)], replicas[int(j)]])


class PrefixAffinityRouter(Router):
    """KV-cache-aware routing: pin each shared prefix to one replica.

    The first request of a prefix picks the least-loaded replica and
    records it as the prefix's home; repeats follow, landing where the
    prefix's KV blocks already live so their prefill covers only the
    unique suffix.  Prefix-less requests fall back to least-outstanding.
    """

    name = "prefix-affinity"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._home: dict[int, int] = {}  # prefix_id -> replica index

    def route(self, request, replicas, now):
        self._require(replicas)
        prefix_id = request.prefix_id
        if prefix_id is None:
            return _least_outstanding(replicas)
        home = self._home.get(prefix_id)
        if home is not None:
            for replica in replicas:
                if replica.index == home:
                    return replica
            # Home replica not eligible (e.g. role change): re-pin below.
        chosen = _least_outstanding(replicas)
        self._home[prefix_id] = chosen.index
        return chosen


class SessionAffinityRouter(Router):
    """Session-sticky routing: a conversation's turns stay on one replica.

    Multi-turn sessions (:mod:`repro.scenarios`) grow their KV turn over
    turn — turn N's prompt extends turn N-1's context — so the session's
    accumulated KV is only reusable on the replica that served the
    earlier turns.  The first turn picks the least-loaded replica and
    records it as the session's home; later turns follow it.

    Reassignment is graceful: when the home replica leaves the eligible
    pool (crashed, draining, role change), the session re-pins to the
    least-loaded survivor and ``reassignments`` counts the move — the
    session's KV is rebuilt there by the normal prefix-miss path rather
    than lost.  Sessionless requests key on ``prefix_id`` when present,
    else fall back to least-outstanding.
    """

    name = "session-affinity"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._home: dict[tuple[str, int], int] = {}  # key -> replica index
        self.reassignments = 0

    @staticmethod
    def _key(request: GenerationRequest) -> tuple[str, int] | None:
        if request.session_id is not None:
            return ("session", request.session_id)
        if request.prefix_id is not None:
            return ("prefix", request.prefix_id)
        return None

    def route(self, request, replicas, now):
        self._require(replicas)
        key = self._key(request)
        if key is None:
            return _least_outstanding(replicas)
        home = self._home.get(key)
        if home is not None:
            for replica in replicas:
                if replica.index == home:
                    return replica
            self.reassignments += 1
        chosen = _least_outstanding(replicas)
        self._home[key] = chosen.index
        return chosen


ROUTER_NAMES: dict[str, type[Router]] = {
    cls.name: cls
    for cls in (
        RoundRobinRouter,
        LeastOutstandingTokensRouter,
        PowerOfTwoChoicesRouter,
        PrefixAffinityRouter,
        SessionAffinityRouter,
    )
}


def get_router(name: str, seed: int = 0) -> Router:
    """Instantiate a router policy by registry name."""
    try:
        cls = ROUTER_NAMES[name]
    except KeyError:
        known = ", ".join(sorted(ROUTER_NAMES))
        raise KeyError(f"unknown router {name!r} (known: {known})") from None
    return cls(seed=seed)


def list_routers() -> list[str]:
    return sorted(ROUTER_NAMES)
