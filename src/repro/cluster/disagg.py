"""Prefill/decode disaggregation: dedicated roles plus KV handoff cost.

Disaggregated serving (DistServe, Splitwise, llm-d's P/D separation) runs
prompt processing on dedicated *prefill* replicas and token generation on
*decode* replicas, so long prompts stop stalling interactive streams.
The price is moving the prompt's KV cache across the fabric once per
request: ``context_tokens x kv_bytes_per_token`` over the cluster
interconnect, modelled with the same alpha-beta point-to-point cost
(:func:`repro.hardware.interconnect.p2p_time`) the multi-node estimator
uses for pipeline activations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.interconnect import p2p_time
from repro.hardware.spec import InterconnectSpec
from repro.models.kvcache import kv_bytes_per_token
from repro.perf.multinode import INFINIBAND_NDR
from repro.perf.phases import Deployment

__all__ = ["DisaggregationSpec", "kv_transfer_time"]


@dataclass(frozen=True)
class DisaggregationSpec:
    """Shape of a disaggregated cluster: prefill fleet + transfer fabric.

    ``num_prefill_replicas`` dedicated prefill engines feed the decode
    fleet over ``interconnect``.  The handoff lands on the decode replica
    as a one-token attach pass (the KV is already materialized), charged
    after the transfer delay.
    """

    num_prefill_replicas: int
    interconnect: InterconnectSpec = INFINIBAND_NDR

    def __post_init__(self) -> None:
        if self.num_prefill_replicas < 1:
            raise ValueError(
                f"num_prefill_replicas must be >= 1, got "
                f"{self.num_prefill_replicas}"
            )


def kv_transfer_time(
    deployment: Deployment,
    context_tokens: int,
    interconnect: InterconnectSpec,
) -> float:
    """Seconds to move ``context_tokens`` of KV state between replicas.

    Volume is the model's per-token KV footprint at the deployment's KV
    precision; the framework's communication overhead factor applies, as
    it does to every other fabric transfer in the performance model.
    """
    if context_tokens < 1:
        raise ValueError(f"context_tokens must be >= 1, got {context_tokens}")
    volume = context_tokens * kv_bytes_per_token(
        deployment.model, deployment.kv_spec.precision
    )
    return p2p_time(interconnect, volume) * (
        deployment.framework.comm_overhead_factor
    )
