"""Cluster serving simulator: replicas, routers, disaggregation, planning.

Scales the single-engine discrete-event simulator
(:mod:`repro.runtime.engine`) out to a fleet: N independent replicas
behind a pluggable routing policy, optional prefill/decode
disaggregation with interconnect-priced KV handoffs, and a capacity
planner that sizes the fleet for an SLO goodput target.  The fleet may be
heterogeneous (per-replica deployments via ``ClusterSimulator(fleet=...)``)
and co-simulates with the :mod:`repro.control` resilience plane: fault
injection, request retries and SLO-driven autoscaling.
"""

from repro.cluster.disagg import DisaggregationSpec, kv_transfer_time
from repro.cluster.planner import CapacityPlan, ClusterCapacityPlanner
from repro.cluster.router import (
    ROUTER_NAMES,
    LeastOutstandingTokensRouter,
    PowerOfTwoChoicesRouter,
    PrefixAffinityRouter,
    RoundRobinRouter,
    Router,
    SessionAffinityRouter,
    get_router,
    list_routers,
)
from repro.cluster.simulator import (
    ClusterResult,
    ClusterSimulator,
    Replica,
    ReplicaReport,
)

__all__ = [
    "CapacityPlan",
    "ClusterCapacityPlanner",
    "ClusterResult",
    "ClusterSimulator",
    "DisaggregationSpec",
    "LeastOutstandingTokensRouter",
    "PowerOfTwoChoicesRouter",
    "PrefixAffinityRouter",
    "Replica",
    "ReplicaReport",
    "ROUTER_NAMES",
    "RoundRobinRouter",
    "Router",
    "SessionAffinityRouter",
    "get_router",
    "kv_transfer_time",
    "list_routers",
]
