"""Deterministic fault injection for the cluster simulator.

A :class:`FaultSchedule` is an immutable, time-sorted list of
:class:`FaultEvent`\\ s the control plane replays against a cluster run.
Three fault kinds model the failure modes a production serving fleet
actually sees:

* ``crash`` — a replica dies at ``at_s`` and never returns.  Every
  request resident on it (queued or running) is re-queued to the router
  and retried under the :class:`RetryPolicy`'s capped exponential
  backoff; the autoscaler is how the fleet regains capacity.
* ``slowdown`` — a straggler window: the replica's step costs are
  multiplied by ``factor`` for ``duration_s`` seconds (thermal
  throttling, a noisy neighbour, ECC scrubbing), applied through the
  ``EngineRun.cost_scale`` hook.
* ``kv_loss`` — in disaggregated mode, every prefill→decode KV handoff
  that lands inside the window is lost in transit; the request restarts
  from the prefill fleet after backoff.

Schedules serialize to/from JSON (the ``--faults`` CLI flag) and can be
drawn from a seeded RNG with :meth:`FaultSchedule.generate`; given the
same seed and fleet, the generated schedule — and therefore the whole
chaos run, retry timing included — is bit-reproducible.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultSchedule", "RetryPolicy"]

#: Recognized fault kinds.
FAULT_KINDS = ("crash", "slowdown", "kv_loss")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault on the simulation clock.

    ``replica`` names the victim (``replica1``, ``decode0``, ...) for
    ``crash``/``slowdown``; ``kv_loss`` applies fleet-wide to the handoff
    fabric and ignores it.  ``duration_s`` bounds ``slowdown``/``kv_loss``
    windows; ``factor`` is the slowdown's step-cost multiplier.
    """

    kind: str
    at_s: float
    replica: str | None = None
    duration_s: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (known: {', '.join(FAULT_KINDS)})"
            )
        if self.at_s < 0.0:
            raise ValueError(f"at_s must be >= 0, got {self.at_s}")
        if self.kind in ("slowdown", "kv_loss") and self.duration_s <= 0.0:
            raise ValueError(f"{self.kind} needs duration_s > 0, got {self.duration_s}")
        if self.kind == "slowdown":
            if self.replica is None:
                raise ValueError("slowdown needs a target replica")
            if self.factor <= 1.0:
                raise ValueError(f"slowdown factor must be > 1, got {self.factor}")
        if self.kind == "crash" and self.replica is None:
            raise ValueError("crash needs a target replica")

    @property
    def end_s(self) -> float:
        return self.at_s + self.duration_s


@dataclass(frozen=True)
class FaultSchedule:
    """Time-sorted, immutable set of fault events for one cluster run."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: (e.at_s, e.kind)))
        object.__setattr__(self, "events", ordered)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def kv_loss_windows(self) -> tuple[tuple[float, float], ...]:
        """(start_s, end_s) of every KV-handoff-loss window."""
        return tuple(
            (e.at_s, e.end_s) for e in self.events if e.kind == "kv_loss"
        )

    def replica_names(self) -> tuple[str, ...]:
        """Every replica a crash/slowdown event targets (sorted, unique)."""
        return tuple(
            sorted({e.replica for e in self.events if e.replica is not None})
        )

    # -- serialization -------------------------------------------------

    def to_json_dict(self) -> dict:
        return {"events": [asdict(e) for e in self.events]}

    @classmethod
    def from_json_dict(cls, payload: dict) -> "FaultSchedule":
        events = payload.get("events")
        if not isinstance(events, list):
            raise ValueError("fault spec must carry an 'events' list")
        return cls(tuple(FaultEvent(**record) for record in events))

    @classmethod
    def load(cls, path: str | Path) -> "FaultSchedule":
        """Parse a ``--faults`` JSON spec file."""
        with open(path, encoding="utf-8") as fh:
            return cls.from_json_dict(json.load(fh))

    # -- seeded generation ---------------------------------------------

    @classmethod
    def generate(
        cls,
        replicas: list[str],
        horizon_s: float,
        seed: int = 0,
        num_crashes: int = 1,
        num_slowdowns: int = 1,
        num_kv_losses: int = 0,
        slowdown_factor: float = 2.5,
        slowdown_duration_s: float | None = None,
        kv_loss_duration_s: float | None = None,
    ) -> "FaultSchedule":
        """Draw a random schedule over ``[0.1, 0.9] * horizon_s`` (seeded).

        Crash victims are drawn without replacement (a replica dies at
        most once); slowdown and kv-loss windows default to a tenth of
        the horizon.  The same seed and fleet always produce the same
        schedule, so chaos runs diff clean.
        """
        if not replicas:
            raise ValueError("cannot generate faults for an empty fleet")
        if horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {horizon_s}")
        if num_crashes > len(replicas):
            raise ValueError(
                f"cannot crash {num_crashes} of {len(replicas)} replicas"
            )
        rng = np.random.default_rng(seed)
        lo, hi = 0.1 * horizon_s, 0.9 * horizon_s
        window = slowdown_duration_s or 0.1 * horizon_s
        kv_window = kv_loss_duration_s or 0.1 * horizon_s
        events: list[FaultEvent] = []
        victims = rng.choice(len(replicas), size=num_crashes, replace=False)
        for victim in victims:
            events.append(
                FaultEvent(
                    "crash",
                    at_s=float(rng.uniform(lo, hi)),
                    replica=replicas[int(victim)],
                )
            )
        for _ in range(num_slowdowns):
            events.append(
                FaultEvent(
                    "slowdown",
                    at_s=float(rng.uniform(lo, hi)),
                    replica=replicas[int(rng.integers(len(replicas)))],
                    duration_s=window,
                    factor=slowdown_factor,
                )
            )
        for _ in range(num_kv_losses):
            events.append(
                FaultEvent(
                    "kv_loss",
                    at_s=float(rng.uniform(lo, hi)),
                    duration_s=kv_window,
                )
            )
        return cls(tuple(events))


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with a per-request retry budget.

    A request displaced by a fault waits ``backoff_s(attempt)`` before
    re-entering the router: ``base * factor**attempt`` capped at
    ``cap_s``.  After ``max_retries`` displacements it is marked FAILED
    rather than retried — the budget that keeps a dying fleet from
    retrying itself to death.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s <= 0 or self.backoff_cap_s <= 0:
            raise ValueError("backoff bounds must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff_s(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        return min(self.backoff_cap_s, self.backoff_base_s * self.backoff_factor**attempt)
