"""The resilience control plane that co-simulates with the cluster.

A :class:`ControlPlane` bundles the three resilience levers the cluster
simulator understands:

* a :class:`~repro.control.faults.FaultSchedule` replayed on the
  simulation clock (crashes, straggler windows, KV-handoff loss),
* a :class:`~repro.control.faults.RetryPolicy` governing how displaced
  requests re-enter the router,
* an :class:`~repro.control.autoscale.AutoscalePolicy` consulted on a
  fixed control tick, with replica warm-up (weight load over the node
  interconnect) priced from the hardware spec.

The default-constructed plane is **null**: no faults, no retries needed,
a :class:`~repro.control.autoscale.NullAutoscaler`.  The simulator
treats a null plane exactly like no plane at all — it pushes no control
events onto the heap and emits no fleet gauges — so ``ClusterResult``
stays bit-identical to an uncontrolled run (tested).
"""

from __future__ import annotations

from repro.control.autoscale import AutoscalePolicy, NullAutoscaler
from repro.control.faults import FaultSchedule, RetryPolicy
from repro.hardware.interconnect import p2p_time
from repro.perf.phases import Deployment

__all__ = ["ControlPlane"]


class ControlPlane:
    """Configuration + pricing for fault/autoscale co-simulation.

    ``tick_interval_s`` spaces the autoscaler's observation points on the
    simulation clock.  ``warmup_extra_s`` adds a fixed process-start cost
    (container pull, engine compile) on top of the interconnect-priced
    weight load.  ``scale_deployment`` is the shape new replicas come up
    with; it defaults to the cluster's base deployment.
    """

    def __init__(
        self,
        faults: FaultSchedule | None = None,
        autoscaler: AutoscalePolicy | None = None,
        retry: RetryPolicy | None = None,
        tick_interval_s: float = 0.5,
        metrics_window_s: float = 5.0,
        warmup_extra_s: float = 0.0,
        scale_deployment: Deployment | None = None,
    ) -> None:
        if tick_interval_s <= 0:
            raise ValueError(
                f"tick_interval_s must be positive, got {tick_interval_s}"
            )
        if metrics_window_s <= 0:
            raise ValueError(
                f"metrics_window_s must be positive, got {metrics_window_s}"
            )
        if warmup_extra_s < 0:
            raise ValueError(
                f"warmup_extra_s must be >= 0, got {warmup_extra_s}"
            )
        self.faults = faults or FaultSchedule()
        self.autoscaler = autoscaler or NullAutoscaler()
        self.retry = retry or RetryPolicy()
        self.tick_interval_s = tick_interval_s
        self.metrics_window_s = metrics_window_s
        self.warmup_extra_s = warmup_extra_s
        self.scale_deployment = scale_deployment

    @property
    def is_null(self) -> bool:
        """True when the plane can never perturb a run.

        A null plane has no faults to replay and an autoscaler that never
        scales, so the simulator skips control events entirely and the
        result is bit-identical to an uncontrolled run.
        """
        return not self.faults and isinstance(self.autoscaler, NullAutoscaler)

    def warmup_s(self, deployment: Deployment) -> float:
        """Weight-load delay before a freshly scaled replica serves.

        Each device pulls its shard of the (framework-inflated) weight
        footprint over the node interconnect — the realistic floor for
        loading from a weight cache or peer replica — plus any fixed
        ``warmup_extra_s`` start cost.
        """
        weight_bytes = (
            deployment.model.total_params
            * deployment.quant.weight_bytes_per_param()
            * deployment.framework.memory_overhead_factor
        )
        per_device = weight_bytes / deployment.num_devices
        return p2p_time(deployment.hardware.interconnect, per_device) + (
            self.warmup_extra_s
        )
