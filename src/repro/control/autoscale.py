"""Autoscaling policies for the cluster control plane.

A policy looks at a :class:`FleetView` — the operator-facing signals the
control plane samples on every control tick — and answers with a replica
delta: +1 (scale up), -1 (scale down) or 0 (hold).  The plane enforces
the mechanics around that answer: cooldown between actions, the
``min_replicas``/``max_replicas`` bounds, and the warm-up (weight-load)
delay a new replica pays before it can take traffic.

Two real policies ship alongside the null one:

* **queue-depth** — the classic threshold controller: scale up when the
  mean per-replica queue depth crosses the high watermark, down when it
  falls under the low watermark.  The watermark gap is the hysteresis
  band that stops flapping.
* **slo** — goodput-driven: scale up when SLO attainment over the
  trailing window drops below the :class:`~repro.runtime.loadgen
  .ServiceLevelObjective`'s ``attainment_target``, down only when
  attainment holds *and* the tail TTFT (p95, computed with
  :func:`repro.obs.metrics.percentile`) sits comfortably inside the
  bound with nothing queued.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.runtime.loadgen import ServiceLevelObjective

__all__ = [
    "FleetView",
    "AutoscalePolicy",
    "NullAutoscaler",
    "QueueDepthAutoscaler",
    "SLOAutoscaler",
    "AUTOSCALER_NAMES",
    "get_autoscaler",
    "list_autoscalers",
]


@dataclass(frozen=True)
class FleetView:
    """What a policy sees at one control tick.

    ``slo_attainment`` and ``ttft_p95_s`` are computed over the trailing
    metrics window from the requests that finished inside it; both are
    NaN while the window is empty (policies must treat NaN as "no
    signal", not as zero).
    """

    now_s: float
    num_serving: int  # alive, warmed, not draining
    num_warming: int  # spun up, still loading weights
    queue_depth: int  # waiting requests across the serving fleet
    outstanding_tokens: int
    slo_attainment: float  # NaN with no completions in the window
    ttft_p95_s: float  # NaN with no completions in the window

    @property
    def num_provisioned(self) -> int:
        """Capacity already paid for: serving plus still-warming."""
        return self.num_serving + self.num_warming

    @property
    def queue_per_replica(self) -> float:
        return self.queue_depth / max(1, self.num_provisioned)


class AutoscalePolicy:
    """Policy interface; subclasses override :meth:`decide`.

    ``min_replicas``/``max_replicas`` bound the serving fleet size and
    ``cooldown_s`` spaces consecutive actions; the control plane enforces
    all three, so :meth:`decide` only has to express intent.
    """

    name = "base"

    def __init__(
        self,
        min_replicas: int = 1,
        max_replicas: int = 16,
        cooldown_s: float = 2.0,
    ) -> None:
        if min_replicas < 1:
            raise ValueError(f"min_replicas must be >= 1, got {min_replicas}")
        if max_replicas < min_replicas:
            raise ValueError(
                f"max_replicas ({max_replicas}) < min_replicas ({min_replicas})"
            )
        if cooldown_s < 0.0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.cooldown_s = cooldown_s

    def decide(self, view: FleetView) -> int:
        """Replica delta for this tick: +1, -1 or 0."""
        raise NotImplementedError


class NullAutoscaler(AutoscalePolicy):
    """Never scales; the do-nothing policy the equivalence tests pin."""

    name = "null"

    def decide(self, view: FleetView) -> int:
        return 0


class QueueDepthAutoscaler(AutoscalePolicy):
    """Threshold controller on mean per-replica queue depth."""

    name = "queue-depth"

    def __init__(
        self,
        high_watermark: float = 4.0,
        low_watermark: float = 0.5,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if low_watermark < 0 or high_watermark <= low_watermark:
            raise ValueError(
                "need 0 <= low_watermark < high_watermark, got "
                f"[{low_watermark}, {high_watermark}]"
            )
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark

    def decide(self, view: FleetView) -> int:
        per_replica = view.queue_per_replica
        if per_replica > self.high_watermark:
            return 1
        if per_replica < self.low_watermark and view.outstanding_tokens == 0:
            return -1
        return 0


class SLOAutoscaler(AutoscalePolicy):
    """Scale on windowed SLO attainment against the objective's target."""

    name = "slo"

    def __init__(
        self,
        slo: ServiceLevelObjective | None = None,
        scale_down_ttft_margin: float = 0.5,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if not 0 < scale_down_ttft_margin <= 1:
            raise ValueError("scale_down_ttft_margin must be in (0, 1]")
        self.slo = slo or ServiceLevelObjective()
        self.scale_down_ttft_margin = scale_down_ttft_margin

    def decide(self, view: FleetView) -> int:
        attainment = view.slo_attainment
        if math.isnan(attainment):
            return 0  # no completions yet: no signal either way
        if attainment < self.slo.attainment_target:
            return 1
        p95 = view.ttft_p95_s
        tail_ok = math.isnan(p95) or (
            p95 < self.scale_down_ttft_margin * self.slo.ttft_s
        )
        if tail_ok and view.queue_depth == 0:
            return -1
        return 0


AUTOSCALER_NAMES: dict[str, type[AutoscalePolicy]] = {
    cls.name: cls
    for cls in (NullAutoscaler, QueueDepthAutoscaler, SLOAutoscaler)
}


def get_autoscaler(
    name: str,
    slo: ServiceLevelObjective | None = None,
    **kwargs,
) -> AutoscalePolicy:
    """Instantiate a policy by registry name (``slo`` feeds the slo policy)."""
    try:
        cls = AUTOSCALER_NAMES[name]
    except KeyError:
        known = ", ".join(sorted(AUTOSCALER_NAMES))
        raise KeyError(f"unknown autoscaler {name!r} (known: {known})") from None
    if cls is SLOAutoscaler:
        return cls(slo=slo, **kwargs)
    return cls(**kwargs)


def list_autoscalers() -> list[str]:
    return sorted(AUTOSCALER_NAMES)
