"""Autoscaling policies for the cluster control plane.

A policy looks at a :class:`FleetView` — the operator-facing signals the
control plane samples on every control tick — and answers with a replica
delta: +1 (scale up), -1 (scale down) or 0 (hold).  The plane enforces
the mechanics around that answer: cooldown between actions, the
``min_replicas``/``max_replicas`` bounds, and the warm-up (weight-load)
delay a new replica pays before it can take traffic.

Two real policies ship alongside the null one:

* **queue-depth** — the classic threshold controller: scale up when the
  mean per-replica queue depth crosses the high watermark, down when it
  falls under the low watermark.  The watermark gap is the hysteresis
  band that stops flapping.
* **slo** — goodput-driven: scale up when SLO attainment over the
  trailing window drops below the :class:`~repro.runtime.loadgen
  .ServiceLevelObjective`'s ``attainment_target``, down only when
  attainment holds *and* the tail TTFT (p95, computed with
  :func:`repro.obs.metrics.percentile`) sits comfortably inside the
  bound with nothing queued.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.runtime.loadgen import ServiceLevelObjective

__all__ = [
    "FleetView",
    "AutoscalePolicy",
    "BurnRateAutoscaler",
    "NullAutoscaler",
    "QueueDepthAutoscaler",
    "SLOAutoscaler",
    "TelemetryFleetView",
    "AUTOSCALER_NAMES",
    "autoscaler_from_plan",
    "derive_autoscaler_bounds",
    "get_autoscaler",
    "list_autoscalers",
]


@dataclass(frozen=True)
class FleetView:
    """What a policy sees at one control tick.

    ``slo_attainment`` and ``ttft_p95_s`` are computed over the trailing
    metrics window from the requests that finished inside it; both are
    NaN while the window is empty (policies must treat NaN as "no
    signal", not as zero).
    """

    now_s: float
    num_serving: int  # alive, warmed, not draining
    num_warming: int  # spun up, still loading weights
    queue_depth: int  # waiting requests across the serving fleet
    outstanding_tokens: int
    slo_attainment: float  # NaN with no completions in the window
    ttft_p95_s: float  # NaN with no completions in the window
    # Error-budget burn rates from the telemetry hub's SloBudget; NaN
    # when telemetry is off or the window saw no traffic (same "no
    # signal" convention as the attainment fields above).
    burn_rate_fast: float = float("nan")
    burn_rate_slow: float = float("nan")

    @property
    def num_provisioned(self) -> int:
        """Capacity already paid for: serving plus still-warming."""
        return self.num_serving + self.num_warming

    @property
    def queue_per_replica(self) -> float:
        return self.queue_depth / max(1, self.num_provisioned)


class AutoscalePolicy:
    """Policy interface; subclasses override :meth:`decide`.

    ``min_replicas``/``max_replicas`` bound the serving fleet size and
    ``cooldown_s`` spaces consecutive actions; the control plane enforces
    all three, so :meth:`decide` only has to express intent.
    """

    name = "base"

    def __init__(
        self,
        min_replicas: int = 1,
        max_replicas: int = 16,
        cooldown_s: float = 2.0,
    ) -> None:
        if min_replicas < 1:
            raise ValueError(f"min_replicas must be >= 1, got {min_replicas}")
        if max_replicas < min_replicas:
            raise ValueError(
                f"max_replicas ({max_replicas}) < min_replicas ({min_replicas})"
            )
        if cooldown_s < 0.0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.cooldown_s = cooldown_s

    def decide(self, view: FleetView) -> int:
        """Replica delta for this tick: +1, -1 or 0."""
        raise NotImplementedError


class NullAutoscaler(AutoscalePolicy):
    """Never scales; the do-nothing policy the equivalence tests pin."""

    name = "null"

    def decide(self, view: FleetView) -> int:
        return 0


class QueueDepthAutoscaler(AutoscalePolicy):
    """Threshold controller on mean per-replica queue depth."""

    name = "queue-depth"

    def __init__(
        self,
        high_watermark: float = 4.0,
        low_watermark: float = 0.5,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if low_watermark < 0 or high_watermark <= low_watermark:
            raise ValueError(
                "need 0 <= low_watermark < high_watermark, got "
                f"[{low_watermark}, {high_watermark}]"
            )
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark

    def decide(self, view: FleetView) -> int:
        per_replica = view.queue_per_replica
        if per_replica > self.high_watermark:
            return 1
        if per_replica < self.low_watermark and view.outstanding_tokens == 0:
            return -1
        return 0


class SLOAutoscaler(AutoscalePolicy):
    """Scale on windowed SLO attainment against the objective's target."""

    name = "slo"

    def __init__(
        self,
        slo: ServiceLevelObjective | None = None,
        scale_down_ttft_margin: float = 0.5,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if not 0 < scale_down_ttft_margin <= 1:
            raise ValueError("scale_down_ttft_margin must be in (0, 1]")
        self.slo = slo or ServiceLevelObjective()
        self.scale_down_ttft_margin = scale_down_ttft_margin

    def decide(self, view: FleetView) -> int:
        attainment = view.slo_attainment
        if math.isnan(attainment):
            return 0  # no completions yet: no signal either way
        if attainment < self.slo.attainment_target:
            return 1
        p95 = view.ttft_p95_s
        tail_ok = math.isnan(p95) or (
            p95 < self.scale_down_ttft_margin * self.slo.ttft_s
        )
        if tail_ok and view.queue_depth == 0:
            return -1
        return 0


class BurnRateAutoscaler(AutoscalePolicy):
    """Scale on error-budget burn rate instead of instantaneous load.

    The telemetry hub's :class:`~repro.obs.telemetry.SloBudget` computes
    multi-window burn rates (budget consumed per unit of sustainable
    pace); this policy scales up while *both* windows burn hot — the
    fast window says the pain is happening now, the slow window says it
    is not a blip — and scales down only once the fast window has cooled
    well under sustainable burn with nothing queued.  Attaching this
    policy makes the cluster simulator arm a telemetry hub automatically
    (the burn signal has to come from somewhere).
    """

    name = "burn-rate"

    def __init__(
        self,
        slo: ServiceLevelObjective | None = None,
        scale_up_burn: float = 2.0,
        scale_down_burn: float = 0.25,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if not 0 < scale_down_burn < scale_up_burn:
            raise ValueError(
                "need 0 < scale_down_burn < scale_up_burn, got "
                f"[{scale_down_burn}, {scale_up_burn}]"
            )
        self.slo = slo or ServiceLevelObjective()
        self.scale_up_burn = scale_up_burn
        self.scale_down_burn = scale_down_burn

    def decide(self, view: FleetView) -> int:
        fast = view.burn_rate_fast
        slow = view.burn_rate_slow
        if math.isnan(fast):
            return 0  # no completions in the window: no signal either way
        if fast > self.scale_up_burn and (
            math.isnan(slow) or slow > 1.0
        ):
            return 1
        if (
            fast < self.scale_down_burn
            and (math.isnan(slow) or slow < 1.0)
            and view.queue_depth == 0
        ):
            return -1
        return 0


class TelemetryFleetView:
    """Windowed per-replica utilization read from a telemetry hub.

    Closes the profiler half of the control loop: the hub samples each
    replica's cumulative busy seconds and modeled FLOPs/bytes on every
    control tick; this view turns the trailing-window deltas into
    busy-normalized throughput per replica and hands the router a
    capacity re-weighting — a straggler (fault-injected ``cost_scale``)
    commits fewer FLOPs per busy second, so its routing weight drops and
    the least-loaded router steers traffic away *before* its queue
    visibly backs up.  Idle replicas are unaffected (busy-normalized, so
    idling does not read as slowness).  Replicas without enough signal
    keep scale 1.0, and ratios are clipped to ``[floor, ceiling]`` so a
    noisy window cannot blackhole a healthy replica.
    """

    def __init__(
        self,
        hub,  # noqa: ANN001 - TelemetryHub (duck-typed: obs may not be loaded)
        window_s: float = 5.0,
        floor: float = 0.5,
        ceiling: float = 2.0,
        min_busy_s: float = 1e-6,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if not 0 < floor <= 1.0 <= ceiling:
            raise ValueError("need 0 < floor <= 1 <= ceiling")
        self.hub = hub
        self.window_s = window_s
        self.floor = floor
        self.ceiling = ceiling
        self.min_busy_s = min_busy_s

    def effective_rate(self, replica_name: str, now_s: float) -> float:
        """FLOPs per busy second over the trailing window (NaN = no signal)."""
        busy = self.hub.series(f"replica.{replica_name}.busy_s").delta(
            self.window_s, now_s
        )
        if math.isnan(busy) or busy < self.min_busy_s:
            return float("nan")
        flops = self.hub.series(f"replica.{replica_name}.flops").delta(
            self.window_s, now_s
        )
        if math.isnan(flops):
            return float("nan")
        return flops / busy

    def routing_scales(
        self, replica_names: list[str], now_s: float
    ) -> dict[str, float]:
        """Per-replica routing-weight multipliers (1.0 = no adjustment)."""
        rates = {
            name: self.effective_rate(name, now_s) for name in replica_names
        }
        observed = [r for r in rates.values() if not math.isnan(r)]
        if len(observed) < 2:
            return {name: 1.0 for name in replica_names}
        mean = sum(observed) / len(observed)
        if mean <= 0:
            return {name: 1.0 for name in replica_names}
        scales = {}
        for name in replica_names:
            rate = rates[name]
            if math.isnan(rate):
                scales[name] = 1.0
            else:
                scales[name] = min(max(rate / mean, self.floor), self.ceiling)
        return scales


AUTOSCALER_NAMES: dict[str, type[AutoscalePolicy]] = {
    cls.name: cls
    for cls in (
        NullAutoscaler, QueueDepthAutoscaler, SLOAutoscaler, BurnRateAutoscaler
    )
}


def get_autoscaler(
    name: str,
    slo: ServiceLevelObjective | None = None,
    **kwargs,
) -> AutoscalePolicy:
    """Instantiate a policy by registry name (``slo`` feeds the slo policy)."""
    try:
        cls = AUTOSCALER_NAMES[name]
    except KeyError:
        known = ", ".join(sorted(AUTOSCALER_NAMES))
        raise KeyError(f"unknown autoscaler {name!r} (known: {known})") from None
    if cls is SLOAutoscaler or cls is BurnRateAutoscaler:
        return cls(slo=slo, **kwargs)
    return cls(**kwargs)


def list_autoscalers() -> list[str]:
    return sorted(AUTOSCALER_NAMES)


# ----------------------------------------------------------------------
# Capacity-plan-derived bounds (PR-4 follow-on).
#
# ``plan`` is duck-typed rather than annotated as
# ``repro.cluster.planner.CapacityPlan`` because ``repro.cluster`` imports
# ``repro.control`` (the simulator hosts the control plane); any object
# with ``num_replicas``/``analytic_replicas``/``feasible`` works.


def derive_autoscaler_bounds(plan, surge_factor: float = 1.5) -> tuple[int, int]:
    """(min_replicas, max_replicas) from a capacity plan.

    The plan's ``num_replicas`` is the smallest fleet that met the SLO
    attainment target at the planned rate, so it becomes the floor —
    scaling below it would shed the planned goodput.  The ceiling leaves
    ``surge_factor`` headroom above the floor (rounded up, never below
    floor + 1 so the policy retains one step of surge room).  Infeasible
    plans raise: deriving bounds from a fleet that missed its target
    would institutionalise the miss.
    """
    if not surge_factor >= 1.0:
        raise ValueError(f"surge_factor must be >= 1, got {surge_factor}")
    if not plan.feasible:
        raise ValueError(
            f"capacity plan is infeasible at {plan.num_replicas} replicas; "
            "raise max_replicas in the planner before deriving bounds"
        )
    floor = int(plan.num_replicas)
    ceiling = max(floor + 1, math.ceil(floor * surge_factor))
    return floor, ceiling


def autoscaler_from_plan(
    name: str,
    plan,
    slo: ServiceLevelObjective | None = None,
    surge_factor: float = 1.5,
    **kwargs,
) -> AutoscalePolicy:
    """A registry policy sized by a capacity plan.

    The optimizer uses this to turn each frontier candidate's
    :class:`~repro.cluster.planner.CapacityPlan` into concrete
    ``QueueDepthAutoscaler``/``SLOAutoscaler`` parameters; explicit
    ``min_replicas``/``max_replicas`` kwargs would conflict with the
    derived bounds and are rejected.
    """
    for bound in ("min_replicas", "max_replicas"):
        if bound in kwargs:
            raise ValueError(
                f"{bound} is derived from the capacity plan; "
                "drop the explicit kwarg or call get_autoscaler directly"
            )
    floor, ceiling = derive_autoscaler_bounds(plan, surge_factor=surge_factor)
    return get_autoscaler(
        name, slo=slo, min_replicas=floor, max_replicas=ceiling, **kwargs
    )
