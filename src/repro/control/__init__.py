"""Resilience control plane: fault injection, autoscaling, retries.

The ``repro.control`` subsystem co-simulates with
:class:`~repro.cluster.simulator.ClusterSimulator`: a seeded
:class:`FaultSchedule` replays crashes/stragglers/KV-loss on the
simulation clock, a :class:`RetryPolicy` re-queues displaced requests
with capped exponential backoff, and a pluggable
:class:`AutoscalePolicy` resizes the fleet against queue-depth or SLO
signals with cooldown and warm-up pricing.  A default-constructed
:class:`ControlPlane` is null and provably inert (bit-identical
results to an uncontrolled run).
"""

from repro.control.autoscale import (
    AUTOSCALER_NAMES,
    AutoscalePolicy,
    BurnRateAutoscaler,
    FleetView,
    NullAutoscaler,
    QueueDepthAutoscaler,
    SLOAutoscaler,
    TelemetryFleetView,
    autoscaler_from_plan,
    derive_autoscaler_bounds,
    get_autoscaler,
    list_autoscalers,
)
from repro.control.faults import FAULT_KINDS, FaultEvent, FaultSchedule, RetryPolicy
from repro.control.plane import ControlPlane

__all__ = [
    "AUTOSCALER_NAMES",
    "AutoscalePolicy",
    "BurnRateAutoscaler",
    "ControlPlane",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "FleetView",
    "NullAutoscaler",
    "QueueDepthAutoscaler",
    "RetryPolicy",
    "SLOAutoscaler",
    "TelemetryFleetView",
    "autoscaler_from_plan",
    "derive_autoscaler_bounds",
    "get_autoscaler",
    "list_autoscalers",
]
