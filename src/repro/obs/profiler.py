"""Runtime cost-attribution profiler: per-step roofline accounting.

The static :func:`repro.analysis.bottleneck.analyze` report explains a
steady-state deployment; this module explains a *run*.  A
:class:`StepProfiler` rides inside :class:`~repro.runtime.engine.EngineRun`
(and, per replica, inside the cluster simulator), attributing every
committed step — each prefill chunk, each coalesced decode span, each idle
gap — to the roofline components the step model priced, plus the FLOPs and
DRAM bytes the step moved (from the kernel's traffic accessors) and the
energy it drew.  At the end of the run the accumulated state snapshots
into an immutable :class:`ProfileReport`: per-phase and per-request
attribution tables, MFU/MBU against datasheet peaks, tokens/s,
joules-per-token, and a dominant-bottleneck classification reusing
:class:`repro.analysis.bottleneck.Bottleneck`.

Two invariants keep the attribution honest (both enforced by
``tests/test_profiler.py``):

* **exact sums** — every recorded step's component times sum to the
  kernel's committed step cost to <= 1e-12 relative (the
  :class:`~repro.core.metrics.CostComponents` remainder construction);
* **zero overhead** — the engine default is the no-op
  :data:`NULL_PROFILER` (mirroring ``NULL_TRACER``), and with profiling
  disabled engine and cluster results are bit-identical to an unprofiled
  build.

MFU and MBU are *model* utilizations: modeled FLOPs (and modeled stream
bytes, including the framework's KV read multiplier) divided by datasheet
peak rate x elapsed time x device count.  Capacities
(``flop_capacity``/``byte_capacity``) are stored explicitly so fleet
merges stay well-defined: fleet MFU is sum(flops) / sum(capacity), not a
mean of ratios.

When a recording tracer is attached, every recorded step also emits
Perfetto counter samples (category ``"profile"``): ``mfu``, ``mbu``,
``tokens_per_s``, ``watts`` and ``joules_per_token`` — instantaneous
rates over the step, viewable alongside the engine's span tracks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.bottleneck import Bottleneck, PhaseAttribution
from repro.core.metrics import COMPONENT_FIELDS, CostComponents, LatencyBreakdown
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.perf.kernel import get_kernel
from repro.perf.phases import Deployment

__all__ = [
    "PhaseProfile",
    "RequestProfile",
    "ProfileReport",
    "StepProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "merge_profiles",
]

#: Fixed phase emission order (report determinism).
_PHASE_ORDER = ("prefill", "decode")


def _finite(value: float) -> float | None:
    """JSON-safe scalar: ``None`` for NaN/inf (json.dump would emit bare
    ``NaN`` tokens that most parsers reject)."""
    return value if math.isfinite(value) else None


def _ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with 0.0 on an empty denominator."""
    return numerator / denominator if denominator > 0.0 else 0.0


def _unfinite(value: object) -> float:
    """Inverse of :func:`_finite`: ``None`` back to NaN.

    Numbers pass through untouched (no float() coercion) so JSON that
    serialized an integer-valued field re-serializes byte-identically.
    """
    return float("nan") if value is None else value  # type: ignore[return-value]


def _components_from_json(payload: object) -> CostComponents:
    """Rebuild a :class:`CostComponents` from its ``components_s`` dict."""
    data = dict(payload)  # type: ignore[call-overload]
    return CostComponents(
        **{name: _unfinite(data.get(name, 0.0)) for name in COMPONENT_FIELDS}
    )


@dataclass(frozen=True)
class PhaseProfile:
    """Accumulated attribution for one phase ("prefill" or "decode")."""

    phase: str
    time_s: float
    events: int  # recorded steps (chunks for prefill, spans for decode)
    steps: int  # engine iterations inside those events
    tokens: int  # tokens processed (batch x chunk/step tokens)
    flops: float
    bytes_moved: float
    energy_j: float
    components: CostComponents

    @property
    def attribution(self) -> PhaseAttribution | None:
        """Mechanism shares, or ``None`` for an empty phase."""
        if self.components.total_s <= 0.0:
            return None
        return PhaseAttribution.from_components(self.phase, self.components)

    @property
    def dominant(self) -> Bottleneck | None:
        attribution = self.attribution
        return attribution.dominant if attribution is not None else None

    def to_json_dict(self) -> dict[str, object]:
        dominant = self.dominant
        return {
            "phase": self.phase,
            "time_s": _finite(self.time_s),
            "events": self.events,
            "steps": self.steps,
            "tokens": self.tokens,
            "flops": _finite(self.flops),
            "bytes_moved": _finite(self.bytes_moved),
            "energy_j": _finite(self.energy_j),
            "components_s": {
                name: _finite(value)
                for name, value in self.components.as_dict().items()
            },
            "fractions": {
                name: _finite(value)
                for name, value in self.components.fractions().items()
            },
            "dominant": str(dominant) if dominant is not None else None,
        }

    @classmethod
    def from_json_dict(cls, payload: dict[str, object]) -> "PhaseProfile":
        """Inverse of :meth:`to_json_dict` (derived fields recomputed)."""
        return cls(
            phase=str(payload["phase"]),
            time_s=_unfinite(payload["time_s"]),
            events=int(payload["events"]),
            steps=int(payload["steps"]),
            tokens=int(payload["tokens"]),
            flops=_unfinite(payload["flops"]),
            bytes_moved=_unfinite(payload["bytes_moved"]),
            energy_j=_unfinite(payload["energy_j"]),
            components=_components_from_json(payload["components_s"]),
        )


@dataclass(frozen=True)
class RequestProfile:
    """One request's share of the run's cost.

    Steps are shared equally among their participants: a decode span over
    a batch of 8 charges each sequence one eighth of the span's
    components and energy.  Prefill chunks are charged to the admitted
    prompts only — decoding streams that ride along a fused chunk (the
    SplitFuse effect) ride free, exactly as the engine prices them.
    ``index`` is the request's position in the run's submission order, so
    profiles are deterministic (request ids are process-global).
    """

    index: int
    input_tokens: int
    output_tokens: int
    time_s: float
    energy_j: float
    components: CostComponents

    @property
    def dominant(self) -> Bottleneck | None:
        if self.components.total_s <= 0.0:
            return None
        return PhaseAttribution.from_components(
            f"request{self.index}", self.components
        ).dominant

    def to_json_dict(self) -> dict[str, object]:
        dominant = self.dominant
        return {
            "index": self.index,
            "input_tokens": self.input_tokens,
            "output_tokens": self.output_tokens,
            "time_s": _finite(self.time_s),
            "energy_j": _finite(self.energy_j),
            "components_s": {
                name: _finite(value)
                for name, value in self.components.as_dict().items()
            },
            "dominant": str(dominant) if dominant is not None else None,
        }

    @classmethod
    def from_json_dict(cls, payload: dict[str, object]) -> "RequestProfile":
        """Inverse of :meth:`to_json_dict`."""
        return cls(
            index=int(payload["index"]),
            input_tokens=int(payload["input_tokens"]),
            output_tokens=int(payload["output_tokens"]),
            time_s=_unfinite(payload["time_s"]),
            energy_j=_unfinite(payload["energy_j"]),
            components=_components_from_json(payload["components_s"]),
        )


@dataclass(frozen=True)
class ProfileReport:
    """Immutable cost profile of one run (or a merged fleet of runs).

    ``flop_capacity`` / ``byte_capacity`` are ``peak rate x wall time``
    (device count already folded into the peak rates), stored explicitly
    so merged fleet reports keep utilization well-defined under
    heterogeneous replicas and staggered makespans.
    """

    name: str
    model: str
    hardware: str
    framework: str
    num_devices: int
    total_time_s: float
    busy_s: float
    idle_s: float
    energy_j: float
    idle_energy_j: float
    peak_flops_per_s: float
    peak_bandwidth_bytes_s: float
    flop_capacity: float
    byte_capacity: float
    phases: tuple[PhaseProfile, ...]
    requests: tuple[RequestProfile, ...]

    # -- aggregates ----------------------------------------------------

    @property
    def flops(self) -> float:
        return sum(p.flops for p in self.phases)

    @property
    def bytes_moved(self) -> float:
        return sum(p.bytes_moved for p in self.phases)

    @property
    def tokens(self) -> int:
        return sum(p.tokens for p in self.phases)

    @property
    def components(self) -> CostComponents:
        total = CostComponents()
        for phase in self.phases:
            total = total + phase.components
        return total

    # -- derived utilization / efficiency (all NaN-safe: 0.0 on empty) --

    @property
    def mfu(self) -> float:
        """Model FLOPs utilization over the whole wall clock."""
        return _ratio(self.flops, self.flop_capacity)

    @property
    def mbu(self) -> float:
        """Model bandwidth utilization (modeled stream bytes / peak)."""
        return _ratio(self.bytes_moved, self.byte_capacity)

    @property
    def tokens_per_s(self) -> float:
        return _ratio(float(self.tokens), self.total_time_s)

    @property
    def joules_per_token(self) -> float:
        return _ratio(self.energy_j, float(self.tokens))

    @property
    def average_power_w(self) -> float:
        return _ratio(self.energy_j, self.total_time_s)

    @property
    def dominant_bottleneck(self) -> Bottleneck | None:
        """Dominant mechanism across all profiled work (``None`` if none)."""
        combined = self.components
        if combined.total_s <= 0.0:
            return None
        return PhaseAttribution.from_components(self.name, combined).dominant

    # -- presentation --------------------------------------------------

    def render(self, max_requests: int = 0) -> str:
        """Human-readable profile table (the ``profile`` CLI output).

        ``max_requests > 0`` appends the N most time-expensive per-request
        attributions (ties broken by request index for determinism).
        """
        lines = [
            f"cost profile: {self.name} — {self.model} on "
            f"{self.num_devices}x {self.hardware} / {self.framework}",
            f"wall {self.total_time_s:.4g} s (busy {self.busy_s:.4g}, "
            f"idle {self.idle_s:.4g}) | {self.tokens} tokens | "
            f"{self.tokens_per_s:.4g} tok/s",
            f"MFU {self.mfu:.1%} | MBU {self.mbu:.1%} | "
            f"avg power {self.average_power_w:.4g} W | "
            f"{self.joules_per_token:.4g} J/token",
        ]
        if self.phases:
            lines.append("")
            lines.append(
                f"{'phase':<9}{'time s':>10}{'events':>8}{'tokens':>9}"
                f"{'compute':>9}{'weights':>9}{'kv':>7}{'act':>7}"
                f"{'comm':>7}{'ovh':>7}  dominant"
            )
            for phase in self.phases:
                shares = phase.components.fractions()
                dominant = phase.dominant
                lines.append(
                    f"{phase.phase:<9}{phase.time_s:>10.4g}{phase.events:>8d}"
                    f"{phase.tokens:>9d}"
                    f"{shares['compute_s']:>9.1%}{shares['weight_s']:>9.1%}"
                    f"{shares['kv_s']:>7.1%}{shares['activation_s']:>7.1%}"
                    f"{shares['communication_s']:>7.1%}"
                    f"{shares['overhead_s']:>7.1%}"
                    f"  {dominant if dominant is not None else '-'}"
                )
        dominant = self.dominant_bottleneck
        lines.append("")
        lines.append(
            "dominant bottleneck: "
            f"{dominant if dominant is not None else '- (no profiled work)'}"
        )
        lines.append(f"requests profiled: {len(self.requests)}")
        if max_requests > 0 and self.requests:
            shown = sorted(
                self.requests, key=lambda r: (-r.time_s, r.index)
            )[:max_requests]
            lines.append("")
            lines.append(
                f"{'req':>5}{'in':>8}{'out':>8}{'time s':>10}"
                f"{'energy J':>11}  dominant"
            )
            for req in shown:
                req_dominant = req.dominant
                lines.append(
                    f"{req.index:>5d}{req.input_tokens:>8d}"
                    f"{req.output_tokens:>8d}{req.time_s:>10.4g}"
                    f"{req.energy_j:>11.4g}"
                    f"  {req_dominant if req_dominant is not None else '-'}"
                )
        return "\n".join(lines)

    def to_json_dict(self) -> dict[str, object]:
        """Deterministic, JSON-serializable view (non-finite -> null)."""
        dominant = self.dominant_bottleneck
        return {
            "name": self.name,
            "model": self.model,
            "hardware": self.hardware,
            "framework": self.framework,
            "num_devices": self.num_devices,
            "total_time_s": _finite(self.total_time_s),
            "busy_s": _finite(self.busy_s),
            "idle_s": _finite(self.idle_s),
            "energy_j": _finite(self.energy_j),
            "idle_energy_j": _finite(self.idle_energy_j),
            "peak_flops_per_s": _finite(self.peak_flops_per_s),
            "peak_bandwidth_bytes_s": _finite(self.peak_bandwidth_bytes_s),
            "flop_capacity": _finite(self.flop_capacity),
            "byte_capacity": _finite(self.byte_capacity),
            "flops": _finite(self.flops),
            "bytes_moved": _finite(self.bytes_moved),
            "tokens": self.tokens,
            "mfu": _finite(self.mfu),
            "mbu": _finite(self.mbu),
            "tokens_per_s": _finite(self.tokens_per_s),
            "joules_per_token": _finite(self.joules_per_token),
            "average_power_w": _finite(self.average_power_w),
            "dominant": str(dominant) if dominant is not None else None,
            "phases": [phase.to_json_dict() for phase in self.phases],
            "requests": [req.to_json_dict() for req in self.requests],
        }

    @classmethod
    def from_json_dict(cls, payload: dict[str, object]) -> "ProfileReport":
        """Inverse of :meth:`to_json_dict`.

        Only the stored fields are read back — every derived aggregate
        (MFU, MBU, joules/token, dominant bottleneck) is recomputed from
        them, so a reconstructed report cannot disagree with its parts.
        Round-trips to an identical ``to_json_dict()`` (tested); this is
        what lets ``experiment diff`` and bundle replay consume profile
        JSON written by the ``profile`` CLI verb.
        """
        return cls(
            name=str(payload["name"]),
            model=str(payload["model"]),
            hardware=str(payload["hardware"]),
            framework=str(payload["framework"]),
            num_devices=int(payload["num_devices"]),
            total_time_s=_unfinite(payload["total_time_s"]),
            busy_s=_unfinite(payload["busy_s"]),
            idle_s=_unfinite(payload["idle_s"]),
            energy_j=_unfinite(payload["energy_j"]),
            idle_energy_j=_unfinite(payload["idle_energy_j"]),
            peak_flops_per_s=_unfinite(payload["peak_flops_per_s"]),
            peak_bandwidth_bytes_s=_unfinite(payload["peak_bandwidth_bytes_s"]),
            flop_capacity=_unfinite(payload["flop_capacity"]),
            byte_capacity=_unfinite(payload["byte_capacity"]),
            phases=tuple(
                PhaseProfile.from_json_dict(p) for p in payload["phases"]
            ),
            requests=tuple(
                RequestProfile.from_json_dict(r) for r in payload["requests"]
            ),
        )


class _PhaseAcc:
    """Mutable accumulator behind one :class:`PhaseProfile`."""

    __slots__ = (
        "time_s", "events", "steps", "tokens", "flops", "bytes_moved",
        "energy_j", "components",
    )

    def __init__(self) -> None:
        self.time_s = 0.0
        self.events = 0
        self.steps = 0
        self.tokens = 0
        self.flops = 0.0
        self.bytes_moved = 0.0
        self.energy_j = 0.0
        self.components = CostComponents()


class _RequestAcc:
    """Mutable accumulator behind one :class:`RequestProfile`."""

    __slots__ = ("time_s", "energy_j", "components")

    def __init__(self) -> None:
        self.time_s = 0.0
        self.energy_j = 0.0
        self.components = CostComponents()


class NullProfiler:
    """No-op profiler: the engine default (mirrors ``NULL_TRACER``).

    Every method returns immediately; ``enabled`` lets the engine skip
    argument construction entirely, keeping the unprofiled hot path
    bit-identical to a build without the profiler."""

    enabled: bool = False

    def record_prefill(self, ts_s, breakdown, batch_size, chunk_tokens,
                       energy_j, requests) -> None:  # noqa: ANN001
        """Ignore one prefill chunk."""

    def record_decode(self, ts_s, step_breakdown, batch_size, span_ctx,
                      steps, energy_j, requests) -> None:  # noqa: ANN001
        """Ignore one decode span."""

    def record_idle(self, ts_s, span_s, energy_j) -> None:  # noqa: ANN001
        """Ignore an idle gap."""

    def report(self, total_time_s, requests, name="engine"):  # noqa: ANN001
        """The null profiler has nothing to report."""
        return None

    def running_totals(self) -> dict[str, float] | None:
        """The null profiler has no mid-run state."""
        return None


#: Shared disabled profiler — stateless, one instance serves every engine.
NULL_PROFILER = NullProfiler()


class StepProfiler(NullProfiler):
    """Recording profiler: accumulates per-step roofline attribution.

    The engine calls ``record_*`` with the *committed* breakdown (after
    any fault-injected ``cost_scale``), the step's integrated energy and
    the participating requests; the profiler derives the component
    partition, fetches the step's modeled FLOPs/bytes from the kernel's
    traffic accessors (O(1), memoized) and charges each participant its
    equal share.
    """

    enabled = True

    def __init__(
        self,
        deployment: Deployment,
        kernel=None,  # noqa: ANN001 - StepCostKernel | DirectStepCost
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.deployment = deployment
        self.kernel = kernel if kernel is not None else get_kernel(deployment)
        self.tracer = tracer
        spec = deployment.hardware
        self.peak_flops_per_s = (
            deployment.quant.compute_rate_flops(spec) * deployment.num_devices
        )
        self.peak_bandwidth_bytes_s = (
            spec.memory_bandwidth_bytes_s * deployment.num_devices
        )
        self._phases: dict[str, _PhaseAcc] = {}
        self._requests: dict[int, _RequestAcc] = {}  # keyed by id(request)
        self.idle_s = 0.0
        self.idle_energy_j = 0.0

    # ------------------------------------------------------------------

    def record_prefill(
        self,
        ts_s: float,
        breakdown: LatencyBreakdown,
        batch_size: int,
        chunk_tokens: int,
        energy_j: float,
        requests,  # noqa: ANN001 - list[GenerationRequest]
    ) -> None:
        """Attribute one prefill chunk (committed cost ``breakdown``)."""
        components = CostComponents.from_breakdown(breakdown)
        flops, bytes_moved = self.kernel.prefill_traffic(batch_size, chunk_tokens)
        self._record(
            "prefill", ts_s, breakdown.total_s, components,
            batch_size * chunk_tokens, flops, bytes_moved, energy_j,
            requests, steps=1,
        )

    def record_decode(
        self,
        ts_s: float,
        step_breakdown: LatencyBreakdown,
        batch_size: int,
        span_ctx: int,
        steps: int,
        energy_j: float,
        requests,  # noqa: ANN001 - list[GenerationRequest]
    ) -> None:
        """Attribute one coalesced decode span (``steps`` iterations)."""
        components = CostComponents.from_breakdown(step_breakdown).scaled(
            float(steps)
        )
        flops, bytes_moved = self.kernel.decode_step_traffic(batch_size, span_ctx)
        self._record(
            "decode", ts_s, step_breakdown.total_s * steps, components,
            batch_size * steps, flops * steps, bytes_moved * steps, energy_j,
            requests, steps=steps,
        )

    def record_idle(self, ts_s: float, span_s: float, energy_j: float) -> None:
        """Account an idle fast-forward (no components, idle power only)."""
        self.idle_s += span_s
        self.idle_energy_j += energy_j
        if self.tracer.enabled and span_s > 0.0:
            self.tracer.counter("profile", "mfu", ts_s=ts_s, value=0.0)
            self.tracer.counter("profile", "mbu", ts_s=ts_s, value=0.0)
            self.tracer.counter("profile", "tokens_per_s", ts_s=ts_s, value=0.0)
            self.tracer.counter(
                "profile", "watts", ts_s=ts_s, value=energy_j / span_s
            )

    # ------------------------------------------------------------------

    def _record(
        self,
        phase: str,
        ts_s: float,
        total_s: float,
        components: CostComponents,
        tokens: int,
        flops: float,
        bytes_moved: float,
        energy_j: float,
        requests,  # noqa: ANN001
        steps: int,
    ) -> None:
        acc = self._phases.get(phase)
        if acc is None:
            acc = self._phases[phase] = _PhaseAcc()
        acc.time_s += total_s
        acc.events += 1
        acc.steps += steps
        acc.tokens += tokens
        acc.flops += flops
        acc.bytes_moved += bytes_moved
        acc.energy_j += energy_j
        acc.components = acc.components + components

        if requests:
            share = 1.0 / len(requests)
            shared = components.scaled(share)
            for request in requests:
                req = self._requests.get(id(request))
                if req is None:
                    req = self._requests[id(request)] = _RequestAcc()
                req.time_s += total_s * share
                req.energy_j += energy_j * share
                req.components = req.components + shared

        if self.tracer.enabled and total_s > 0.0:
            self.tracer.counter(
                "profile", "mfu", ts_s=ts_s,
                value=flops / (total_s * self.peak_flops_per_s),
            )
            self.tracer.counter(
                "profile", "mbu", ts_s=ts_s,
                value=bytes_moved / (total_s * self.peak_bandwidth_bytes_s),
            )
            self.tracer.counter(
                "profile", "tokens_per_s", ts_s=ts_s, value=tokens / total_s
            )
            self.tracer.counter(
                "profile", "watts", ts_s=ts_s, value=energy_j / total_s
            )
            if tokens > 0:
                self.tracer.counter(
                    "profile", "joules_per_token", ts_s=ts_s,
                    value=energy_j / tokens,
                )

    # ------------------------------------------------------------------

    def running_totals(self) -> dict[str, float]:
        """Mid-run cumulative counters (the telemetry hub's tap).

        Cheap (two phase accumulators) and monotone, so sampling them on
        control ticks yields well-behaved cumulative series: windowed
        deltas give busy-normalized MFU/MBU, watts and joules/token over
        any trailing window without touching the committed physics.
        """
        busy_s = 0.0
        flops = 0.0
        bytes_moved = 0.0
        energy_j = self.idle_energy_j
        tokens = 0
        for acc in self._phases.values():
            busy_s += acc.time_s
            flops += acc.flops
            bytes_moved += acc.bytes_moved
            energy_j += acc.energy_j
            tokens += acc.tokens
        return {
            "busy_s": busy_s,
            "flops": flops,
            "bytes": bytes_moved,
            "energy_j": energy_j,
            "tokens": float(tokens),
        }

    def report(
        self,
        total_time_s: float,
        requests,  # noqa: ANN001 - list[GenerationRequest]
        name: str = "engine",
    ) -> ProfileReport:
        """Snapshot the accumulated attribution into a frozen report.

        ``requests`` fixes the per-request table's order and indices (the
        run's submission order); requests the profiler never saw (e.g. an
        OOM-rejected trace) appear with zero attribution.
        """
        dep = self.deployment
        phases = []
        for phase_name in _PHASE_ORDER:
            acc = self._phases.get(phase_name)
            if acc is None:
                continue
            phases.append(
                PhaseProfile(
                    phase=phase_name,
                    time_s=acc.time_s,
                    events=acc.events,
                    steps=acc.steps,
                    tokens=acc.tokens,
                    flops=acc.flops,
                    bytes_moved=acc.bytes_moved,
                    energy_j=acc.energy_j,
                    components=acc.components,
                )
            )
        request_profiles = []
        for index, request in enumerate(requests):
            acc = self._requests.get(id(request))
            if acc is None:
                acc = _RequestAcc()
            request_profiles.append(
                RequestProfile(
                    index=index,
                    input_tokens=request.input_tokens,
                    output_tokens=request.output_tokens,
                    time_s=acc.time_s,
                    energy_j=acc.energy_j,
                    components=acc.components,
                )
            )
        busy_s = sum(p.time_s for p in phases)
        energy_j = sum(p.energy_j for p in phases) + self.idle_energy_j
        return ProfileReport(
            name=name,
            model=dep.model.name,
            hardware=dep.hardware.name,
            framework=dep.framework.name,
            num_devices=dep.num_devices,
            total_time_s=total_time_s,
            busy_s=busy_s,
            idle_s=self.idle_s,
            energy_j=energy_j,
            idle_energy_j=self.idle_energy_j,
            peak_flops_per_s=self.peak_flops_per_s,
            peak_bandwidth_bytes_s=self.peak_bandwidth_bytes_s,
            flop_capacity=total_time_s * self.peak_flops_per_s,
            byte_capacity=total_time_s * self.peak_bandwidth_bytes_s,
            phases=tuple(phases),
            requests=tuple(request_profiles),
        )


def merge_profiles(
    profiles, name: str = "fleet"  # noqa: ANN001 - list[ProfileReport]
) -> ProfileReport:
    """Merge replica profiles into one fleet-level report.

    Phase accumulators and energies add; capacities add too (each replica
    contributed ``peak rate x its own wall time``), which keeps fleet MFU
    = sum(flops) / sum(capacity) — the utilization of the fleet's total
    silicon-time, not a mean of per-replica ratios.  Wall time is the
    fleet makespan (replicas share one clock); requests concatenate in
    replica order and are re-indexed.
    """
    profiles = [p for p in profiles if p is not None]
    if not profiles:
        raise ValueError("merge_profiles needs at least one profile")

    def label(values) -> str:  # noqa: ANN001
        unique = list(dict.fromkeys(values))
        return unique[0] if len(unique) == 1 else "+".join(unique)

    phase_accs: dict[str, _PhaseAcc] = {}
    for profile in profiles:
        for phase in profile.phases:
            acc = phase_accs.get(phase.phase)
            if acc is None:
                acc = phase_accs[phase.phase] = _PhaseAcc()
            acc.time_s += phase.time_s
            acc.events += phase.events
            acc.steps += phase.steps
            acc.tokens += phase.tokens
            acc.flops += phase.flops
            acc.bytes_moved += phase.bytes_moved
            acc.energy_j += phase.energy_j
            acc.components = acc.components + phase.components
    phases = tuple(
        PhaseProfile(
            phase=phase_name,
            time_s=acc.time_s,
            events=acc.events,
            steps=acc.steps,
            tokens=acc.tokens,
            flops=acc.flops,
            bytes_moved=acc.bytes_moved,
            energy_j=acc.energy_j,
            components=acc.components,
        )
        for phase_name in _PHASE_ORDER
        if (acc := phase_accs.get(phase_name)) is not None
    )
    requests = tuple(
        RequestProfile(
            index=index,
            input_tokens=req.input_tokens,
            output_tokens=req.output_tokens,
            time_s=req.time_s,
            energy_j=req.energy_j,
            components=req.components,
        )
        for index, req in enumerate(
            req for profile in profiles for req in profile.requests
        )
    )
    return ProfileReport(
        name=name,
        model=label(p.model for p in profiles),
        hardware=label(p.hardware for p in profiles),
        framework=label(p.framework for p in profiles),
        num_devices=sum(p.num_devices for p in profiles),
        total_time_s=max(p.total_time_s for p in profiles),
        busy_s=sum(p.busy_s for p in profiles),
        idle_s=sum(p.idle_s for p in profiles),
        energy_j=sum(p.energy_j for p in profiles),
        idle_energy_j=sum(p.idle_energy_j for p in profiles),
        peak_flops_per_s=sum(p.peak_flops_per_s for p in profiles),
        peak_bandwidth_bytes_s=sum(p.peak_bandwidth_bytes_s for p in profiles),
        flop_capacity=sum(p.flop_capacity for p in profiles),
        byte_capacity=sum(p.byte_capacity for p in profiles),
        phases=phases,
        requests=requests,
    )
