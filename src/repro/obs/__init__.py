"""Observability: event tracing, metrics registry, per-request timelines.

The simulator-wide telemetry substrate.  ``EventTracer`` records span and
instant events as the serving engine runs (exported to Chrome
``trace_event`` JSON for Perfetto), ``MetricsRegistry`` accumulates
counters/gauges/histograms (TTFT/ITL percentiles, queue depth, KV-pool
occupancy), and ``RequestTimeline`` reconstructs each request's
arrival → admit → prefill → decode → retire path.  The shared
``NULL_TRACER`` default keeps every hot path allocation-free when tracing
is off.
"""

from repro.obs.export import (
    counter_series,
    to_chrome_trace,
    to_chrome_trace_multi,
    trace_summary,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    GaugeStats,
    Histogram,
    HistogramStats,
    MetricsRegistry,
    MetricsSnapshot,
    percentile,
)
from repro.obs.profiler import (
    NULL_PROFILER,
    NullProfiler,
    PhaseProfile,
    ProfileReport,
    RequestProfile,
    StepProfiler,
    merge_profiles,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    Alert,
    QuantileSketch,
    SloBudget,
    TelemetryHub,
    TelemetrySnapshot,
    TimeSeries,
)
from repro.obs.timeline import RequestTimeline, build_timelines, timeline_table
from repro.obs.tracer import (
    CATEGORIES,
    NULL_TRACER,
    EventTracer,
    TraceEvent,
    Tracer,
)

__all__ = [
    "CATEGORIES",
    "NULL_TRACER",
    "EventTracer",
    "TraceEvent",
    "Tracer",
    "Counter",
    "Gauge",
    "GaugeStats",
    "Histogram",
    "HistogramStats",
    "MetricsRegistry",
    "MetricsSnapshot",
    "percentile",
    "NULL_PROFILER",
    "NullProfiler",
    "PhaseProfile",
    "ProfileReport",
    "RequestProfile",
    "StepProfiler",
    "merge_profiles",
    "NULL_TELEMETRY",
    "Alert",
    "QuantileSketch",
    "SloBudget",
    "TelemetryHub",
    "TelemetrySnapshot",
    "TimeSeries",
    "RequestTimeline",
    "build_timelines",
    "timeline_table",
    "counter_series",
    "to_chrome_trace",
    "to_chrome_trace_multi",
    "trace_summary",
    "write_chrome_trace",
]
