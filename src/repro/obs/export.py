"""Trace exporters: Chrome ``trace_event`` JSON and text summaries.

``to_chrome_trace`` converts recorded :class:`~repro.obs.tracer.TraceEvent`
lists into the JSON object format consumed by ``chrome://tracing`` and
Perfetto (https://ui.perfetto.dev): one track per event category, span
events as ``"X"`` (complete) records, instants as ``"i"``, counters as
``"C"``.  Simulation-clock seconds become trace microseconds.

``trace_summary`` renders the same events as a flamegraph-style text
breakdown — total span time per category/name with proportional bars —
plus the metrics registry's percentile table when a snapshot is supplied.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import MetricsSnapshot
from repro.obs.tracer import CATEGORIES, PHASE_COMPLETE, PHASE_COUNTER, TraceEvent

__all__ = [
    "counter_series",
    "to_chrome_trace",
    "to_chrome_trace_multi",
    "write_chrome_trace",
    "trace_summary",
]

_S_TO_US = 1e6


def _tid_for(category: str) -> int:
    """Stable track id per category (unknown categories after the known)."""
    try:
        return CATEGORIES.index(category) + 1
    except ValueError:
        return len(CATEGORIES) + 1


def _track_records(
    events: list[TraceEvent], pid: int, process_name: str
) -> list[dict[str, object]]:
    """Metadata + event records for one process track (``pid``)."""
    records: list[dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for category in dict.fromkeys(e.category for e in events):
        records.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": _tid_for(category),
                "args": {"name": category},
            }
        )
    for event in sorted(events, key=lambda e: e.ts_s):
        # Counter tracks are identified by (pid, name) in the trace_event
        # format; namespacing profiler counters as ``profile/<name>``
        # keeps each replica's mfu/mbu/watts lanes distinct and grouped
        # in multi-process (fleet) traces instead of colliding with span
        # names — one ``profile/mfu`` lane under every replica pid.
        name = (
            f"{event.category}/{event.name}"
            if event.phase == PHASE_COUNTER and event.category == "profile"
            else event.name
        )
        record: dict[str, object] = {
            "name": name,
            "cat": event.category,
            "ph": event.phase,
            "ts": event.ts_s * _S_TO_US,
            "pid": pid,
            "tid": _tid_for(event.category),
            "args": dict(event.args),
        }
        if event.phase == PHASE_COMPLETE:
            record["dur"] = event.dur_s * _S_TO_US
        elif event.phase == "i":
            record["s"] = "t"  # thread-scoped instant
        records.append(record)
    return records


def to_chrome_trace(
    events: list[TraceEvent], metadata: dict[str, object] | None = None
) -> dict[str, object]:
    """Chrome ``trace_event`` JSON object format for ``events``.

    Returns a dict ready for ``json.dump``: ``traceEvents`` plus top-level
    ``otherData`` carrying run metadata (model, hardware, framework, ...).
    """
    return {
        "traceEvents": _track_records(events, 1, "repro serving engine"),
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }


def to_chrome_trace_multi(
    tracks: dict[str, list[TraceEvent]],
    metadata: dict[str, object] | None = None,
) -> dict[str, object]:
    """Chrome trace with one process track per named event stream.

    ``tracks`` maps a track name (e.g. a cluster replica: ``replica0``,
    ``prefill1``) to that stream's events; each gets its own ``pid`` so
    Perfetto renders the fleet as parallel process lanes sharing one
    clock.  Iteration order fixes pid assignment (1, 2, ...).
    """
    records: list[dict[str, object]] = []
    for pid, (name, events) in enumerate(tracks.items(), start=1):
        records.extend(_track_records(events, pid, name))
    return {
        "traceEvents": records,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }


def write_chrome_trace(
    path: str | Path,
    events: list[TraceEvent],
    metadata: dict[str, object] | None = None,
) -> Path:
    """Write the Chrome trace JSON for ``events`` and return its path."""
    out = Path(path)
    out.write_text(
        json.dumps(to_chrome_trace(events, metadata), indent=1), encoding="utf-8"
    )
    return out


def counter_series(
    events: list[TraceEvent], name: str, category: str | None = None
) -> list[tuple[float, float]]:
    """``(ts_s, value)`` samples of one counter track, in time order.

    Counter events carry their samples in ``args``; a track with a single
    series named ``value`` (the profiler's convention) yields that series,
    while multi-series counters yield the sum — matching how Perfetto
    stacks a counter track's series.
    """
    series: list[tuple[float, float]] = []
    for event in events:
        if event.phase != "C" or event.name != name:
            continue
        if category is not None and event.category != category:
            continue
        series.append(
            (event.ts_s, float(sum(v for v in event.args.values()
                                   if isinstance(v, (int, float)))))
        )
    series.sort(key=lambda sample: sample[0])
    return series


def trace_summary(
    events: list[TraceEvent],
    snapshot: MetricsSnapshot | None = None,
    bar_width: int = 32,
) -> str:
    """Flamegraph-style text summary: span time by category/name."""
    totals: dict[tuple[str, str], tuple[float, int]] = {}
    instants: dict[tuple[str, str], int] = {}
    for event in events:
        key = (event.category, event.name)
        if event.phase == PHASE_COMPLETE:
            dur, count = totals.get(key, (0.0, 0))
            totals[key] = (dur + event.dur_s, count + 1)
        elif event.phase == "i":
            instants[key] = instants.get(key, 0) + 1

    lines: list[str] = []
    if totals:
        busiest = max(dur for dur, _ in totals.values())
        lines.append(f"{'span (category/name)':<34}{'total s':>10}{'count':>7}  ")
        for (category, name), (dur, count) in sorted(
            totals.items(), key=lambda kv: -kv[1][0]
        ):
            bar = "#" * (round(bar_width * dur / busiest) if busiest > 0 else 0)
            lines.append(f"{category + '/' + name:<34}{dur:>10.3f}{count:>7d}  {bar}")
    if instants:
        lines.append("")
        lines.append(f"{'instant (category/name)':<34}{'count':>7}")
        for (category, name), count in sorted(instants.items(), key=lambda kv: -kv[1]):
            lines.append(f"{category + '/' + name:<34}{count:>7d}")
    if snapshot is not None:
        rendered = snapshot.render()
        if rendered:
            lines.append("")
            lines.append(rendered)
    return "\n".join(lines) if lines else "(no events recorded)"
