"""Metrics registry: counters, gauges and histograms for the simulator.

The registry is the numeric companion to the event tracer
(:mod:`repro.obs.tracer`): where the tracer answers *when* something
happened, the registry answers *how much / how often* — TTFT and ITL
percentiles, queue depth over time, KV-pool occupancy, batch size per
iteration.  A :class:`MetricsRegistry` snapshots into an immutable
:class:`MetricsSnapshot` that rides on ``EngineResult`` and renders into
the bench report and dashboard.

Percentiles use linear interpolation between closest ranks — the same
convention as ``numpy.percentile``'s default — so registry numbers agree
with post-hoc numpy analysis to the float (tested).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramStats",
    "GaugeStats",
    "MetricsRegistry",
    "MetricsSnapshot",
    "percentile",
]

#: Default histogram buckets (seconds): spans sub-ms ITLs to minute-scale
#: makespans at roughly 4 buckets per decade.
DEFAULT_BUCKETS_S = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)


def percentile(samples: list[float], q: float) -> float:
    """Linear-interpolated percentile of ``samples`` (numpy-compatible)."""
    if not samples:
        return float("nan")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = q / 100.0 * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class Counter:
    """Monotonically increasing count (admissions, preemptions, tokens)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Sampled value over time (queue depth, KV occupancy, batch size)."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: list[tuple[float, float]] = []  # (ts_s, value)

    def set(self, value: float, ts_s: float = 0.0) -> None:
        # Samples must arrive in time order: the time-weighted mean and
        # hold-last semantics silently corrupt on a rewound clock, so an
        # out-of-order set fails loudly (equal timestamps are fine — the
        # engine samples several gauges at the same instant).
        if self.samples and ts_s < self.samples[-1][0]:
            raise ValueError(
                f"out-of-order sample on gauge {self.name!r}: "
                f"ts {ts_s} < last ts {self.samples[-1][0]}"
            )
        self.samples.append((ts_s, value))

    @property
    def last(self) -> float:
        return self.samples[-1][1] if self.samples else float("nan")

    def time_weighted_mean(self) -> float:
        """Mean weighted by the interval each sample was in effect."""
        if not self.samples:
            return float("nan")
        if len(self.samples) == 1:
            return self.samples[0][1]
        total = 0.0
        span = self.samples[-1][0] - self.samples[0][0]
        if span <= 0.0:
            return sum(v for _, v in self.samples) / len(self.samples)
        for (t0, v), (t1, _) in zip(self.samples, self.samples[1:]):
            total += v * (t1 - t0)
        return total / span


class Histogram:
    """Bucketed distribution that also keeps raw samples.

    Buckets give the dashboard its bar panels; the raw samples give exact
    percentiles (the simulator's runs are small enough that keeping every
    observation is cheaper than being wrong about the tail).
    """

    __slots__ = ("name", "buckets", "counts", "samples")

    def __init__(self, name: str, buckets: tuple[float, ...] | None = None) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS_S
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self.samples: list[float] = []

    def record(self, value: float) -> None:
        # Prometheus ``le`` semantics: bucket i counts values <= buckets[i].
        self.counts[bisect_left(self.buckets, value)] += 1
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else float("nan")

    def percentile(self, q: float) -> float:
        return percentile(self.samples, q)


@dataclass(frozen=True)
class GaugeStats:
    """Frozen view of one gauge at snapshot time."""

    last: float
    minimum: float
    maximum: float
    time_weighted_mean: float
    num_samples: int


@dataclass(frozen=True)
class HistogramStats:
    """Frozen view of one histogram at snapshot time."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    buckets: tuple[float, ...]
    bucket_counts: tuple[int, ...]

    def as_row(self) -> dict[str, float]:
        return {"count": self.count, "mean": self.mean,
                "p50": self.p50, "p90": self.p90, "p99": self.p99}


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable registry state: what ``EngineResult`` and reports carry."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, GaugeStats] = field(default_factory=dict)
    histograms: dict[str, HistogramStats] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable summary table (the ``repro trace`` output)."""
        lines: list[str] = []
        if self.histograms:
            lines.append(
                f"{'histogram':<24}{'count':>7}{'mean':>12}"
                f"{'p50':>12}{'p90':>12}{'p99':>12}"
            )
            for name in sorted(self.histograms):
                h = self.histograms[name]
                lines.append(
                    f"{name:<24}{h.count:>7d}{h.mean:>12.4g}"
                    f"{h.p50:>12.4g}{h.p90:>12.4g}{h.p99:>12.4g}"
                )
        if self.gauges:
            lines.append("")
            lines.append(
                f"{'gauge':<24}{'last':>10}{'min':>10}{'max':>10}{'t-mean':>10}"
            )
            for name in sorted(self.gauges):
                g = self.gauges[name]
                lines.append(
                    f"{name:<24}{g.last:>10.4g}{g.minimum:>10.4g}"
                    f"{g.maximum:>10.4g}{g.time_weighted_mean:>10.4g}"
                )
        if self.counters:
            lines.append("")
            lines.append(f"{'counter':<24}{'value':>10}")
            for name in sorted(self.counters):
                lines.append(f"{name:<24}{self.counters[name]:>10.4g}")
        return "\n".join(lines)

    def to_json_dict(self) -> dict[str, object]:
        """Deterministic JSON-serializable view (non-finite -> null).

        Empty gauges and histograms carry NaN statistics; ``json.dump``
        would emit bare ``NaN`` tokens most parsers reject, so every
        scalar is sanitized through ``null`` instead.
        """
        return {
            "counters": {
                name: _json_num(value) for name, value in self.counters.items()
            },
            "gauges": {
                name: {
                    "last": _json_num(g.last),
                    "min": _json_num(g.minimum),
                    "max": _json_num(g.maximum),
                    "time_weighted_mean": _json_num(g.time_weighted_mean),
                    "num_samples": g.num_samples,
                }
                for name, g in self.gauges.items()
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "mean": _json_num(h.mean),
                    "p50": _json_num(h.p50),
                    "p90": _json_num(h.p90),
                    "p99": _json_num(h.p99),
                    "buckets": list(h.buckets),
                    "bucket_counts": list(h.bucket_counts),
                }
                for name, h in self.histograms.items()
            },
        }

    @classmethod
    def from_json_dict(cls, payload: dict[str, object]) -> "MetricsSnapshot":
        """Inverse of :meth:`to_json_dict` (``null`` -> NaN).

        Round-trips losslessly: ``snapshot.to_json_dict()`` equals
        ``MetricsSnapshot.from_json_dict(snapshot.to_json_dict())
        .to_json_dict()`` key-for-key (tested), which is what experiment
        bundles rely on to compare replayed metrics byte-for-byte.
        ``None`` maps back to NaN — ``inf`` is not distinguished, but no
        registry instrument produces infinities.
        """
        counters = {
            name: _from_json_num(value)
            for name, value in dict(payload.get("counters", {})).items()
        }
        gauges = {
            name: GaugeStats(
                last=_from_json_num(g["last"]),
                minimum=_from_json_num(g["min"]),
                maximum=_from_json_num(g["max"]),
                time_weighted_mean=_from_json_num(g["time_weighted_mean"]),
                num_samples=int(g["num_samples"]),
            )
            for name, g in dict(payload.get("gauges", {})).items()
        }
        histograms = {
            name: HistogramStats(
                count=int(h["count"]),
                mean=_from_json_num(h["mean"]),
                p50=_from_json_num(h["p50"]),
                p90=_from_json_num(h["p90"]),
                p99=_from_json_num(h["p99"]),
                buckets=tuple(h["buckets"]),
                bucket_counts=tuple(int(c) for c in h["bucket_counts"]),
            )
            for name, h in dict(payload.get("histograms", {})).items()
        }
        return cls(counters=counters, gauges=gauges, histograms=histograms)


def _json_num(value: float) -> float | None:
    """JSON-safe scalar: ``None`` for NaN/inf (empty gauges/histograms)."""
    return value if math.isfinite(value) else None


def _from_json_num(value: float | None) -> float:
    """Inverse of :func:`_json_num`: ``None`` back to NaN.

    Numbers pass through *untouched* (no float() coercion): gauges fed
    integer samples snapshot integer stats, and coercing them on load
    would turn ``0`` into ``0.0`` and break byte-identical round-trips.
    """
    return float("nan") if value is None else value


class MetricsRegistry:
    """Named metric instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, buckets)
        elif buckets is not None and tuple(buckets) != inst.buckets:
            raise ValueError(
                f"histogram {name!r} already registered with different buckets"
            )
        return inst

    def snapshot(self) -> MetricsSnapshot:
        gauges = {}
        for name, g in self._gauges.items():
            values = [v for _, v in g.samples]
            gauges[name] = GaugeStats(
                last=g.last,
                minimum=min(values) if values else float("nan"),
                maximum=max(values) if values else float("nan"),
                time_weighted_mean=g.time_weighted_mean(),
                num_samples=len(values),
            )
        return MetricsSnapshot(
            counters={name: c.value for name, c in self._counters.items()},
            gauges=gauges,
            histograms={
                name: HistogramStats(
                    count=h.count,
                    mean=h.mean(),
                    p50=h.percentile(50),
                    p90=h.percentile(90),
                    p99=h.percentile(99),
                    buckets=h.buckets,
                    bucket_counts=tuple(h.counts),
                )
                for name, h in self._histograms.items()
            },
        )
