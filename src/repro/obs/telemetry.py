"""Streaming telemetry bus with SLO burn-rate alerting.

The paper reports TTFT/ITL/throughput/power as end-of-run aggregates;
a production fleet is operated on *streaming* signals — windowed rates,
error budgets, burn-rate alerts.  This module gives the simulator that
live telemetry plane:

* :class:`TimeSeries` — numpy-backed ring buffers with windowed
  aggregations (sliding-window rate/delta, EWMA, time-weighted mean);
* :class:`QuantileSketch` — a deterministic fixed-bucket sketch for
  windowed p95 TTFT/ITL (no data-dependent rebalancing, so same-seed
  runs produce byte-identical series);
* :class:`SloBudget` — SRE-style multi-window burn rates over a
  configurable error budget, emitting typed :class:`Alert` records
  (fire/resolve, severity, window, value);
* :class:`TelemetryHub` — the bus itself: per-replica, fleet-wide and
  per-tenant channels sampled on cluster control ticks (or engine
  steps for standalone runs).

The null path is zero-overhead: every producer guards on
``hub.enabled``, and :data:`NULL_TELEMETRY` is a stateless shared
no-op, so telemetry-off runs stay bit-identical to a build without
this module.

Determinism contract: completions can be *recorded* slightly out of
order (replicas retire past the control tick they straddle), so the hub
buffers them and flushes into the ring buffers sorted by
``(timestamp, arrival order)`` at each tick — only events at or before
the tick are flushed, which keeps every series monotone in time and
makes the exported JSON a pure function of the seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.obs.metrics import _from_json_num, _json_num

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.loadgen import ServiceLevelObjective

__all__ = [
    "Alert",
    "NULL_TELEMETRY",
    "QuantileSketch",
    "SloBudget",
    "TelemetryHub",
    "TelemetrySnapshot",
    "TimeSeries",
]


class TimeSeries:
    """Fixed-capacity ring buffer of ``(ts_s, value)`` samples.

    Timestamps must be non-decreasing (``append`` fails loudly
    otherwise); when the buffer is full the oldest samples are dropped,
    which is safe for the windowed aggregations because windows are
    always much shorter than the buffer at control-tick sampling rates.
    """

    __slots__ = ("name", "unit", "capacity", "_ts", "_values", "_size", "_head")

    def __init__(self, name: str, unit: str = "", capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.unit = unit
        self.capacity = capacity
        self._ts = np.empty(capacity, dtype=np.float64)
        self._values = np.empty(capacity, dtype=np.float64)
        self._size = 0
        self._head = 0  # next write slot

    def __len__(self) -> int:
        return self._size

    def append(self, ts_s: float, value: float) -> None:
        ts_s = float(ts_s)
        if self._size:
            last = float(self._ts[(self._head - 1) % self.capacity])
            if ts_s < last:
                raise ValueError(
                    f"out-of-order sample on series {self.name!r}: "
                    f"ts {ts_s} < last ts {last}"
                )
        self._ts[self._head] = ts_s
        self._values[self._head] = value
        self._head = (self._head + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def timestamps(self) -> np.ndarray:
        """Samples' timestamps, oldest first (contiguous copy)."""
        if self._size < self.capacity:
            return self._ts[: self._size].copy()
        return np.concatenate((self._ts[self._head :], self._ts[: self._head]))

    def values(self) -> np.ndarray:
        """Samples' values, oldest first (contiguous copy)."""
        if self._size < self.capacity:
            return self._values[: self._size].copy()
        return np.concatenate(
            (self._values[self._head :], self._values[: self._head])
        )

    @property
    def last(self) -> float:
        if not self._size:
            return float("nan")
        return float(self._values[(self._head - 1) % self.capacity])

    @property
    def last_ts(self) -> float:
        if not self._size:
            return float("nan")
        return float(self._ts[(self._head - 1) % self.capacity])

    def value_at(self, ts_s: float, default: float = float("nan")) -> float:
        """Value of the last sample at or before ``ts_s`` (hold-last)."""
        if not self._size:
            return default
        ts = self.timestamps()
        idx = int(np.searchsorted(ts, ts_s, side="right")) - 1
        if idx < 0:
            return default
        return float(self.values()[idx])

    def window(self, window_s: float, now_s: float) -> np.ndarray:
        """Values of samples with ``now_s - window_s < ts <= now_s``."""
        if not self._size:
            return np.empty(0, dtype=np.float64)
        ts = self.timestamps()
        lo = int(np.searchsorted(ts, now_s - window_s, side="right"))
        hi = int(np.searchsorted(ts, now_s, side="right"))
        return self.values()[lo:hi]

    def delta(self, window_s: float, now_s: float) -> float:
        """Change of a cumulative counter over the trailing window.

        A counter is implicitly zero before its first sample, so a
        window opening before the series started measures growth since
        the start — the standard convention for monotone counters.
        """
        if not self._size:
            return float("nan")
        end = self.value_at(now_s, default=0.0)
        start = self.value_at(now_s - window_s, default=0.0)
        return end - start

    def rate(self, window_s: float, now_s: float) -> float:
        """Sliding-window rate of a cumulative counter (per second)."""
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        d = self.delta(window_s, now_s)
        if math.isnan(d):
            return float("nan")
        return d / window_s

    def ewma(self, tau_s: float) -> float:
        """Exponentially weighted moving average with time constant
        ``tau_s`` (irregular sampling: ``alpha = 1 - exp(-dt/tau)``)."""
        if tau_s <= 0:
            raise ValueError("tau_s must be positive")
        if not self._size:
            return float("nan")
        ts = self.timestamps()
        values = self.values()
        acc = float(values[0])
        for i in range(1, len(values)):
            dt = float(ts[i] - ts[i - 1])
            alpha = 1.0 - math.exp(-dt / tau_s)
            acc += alpha * (float(values[i]) - acc)
        return acc

    def time_weighted_mean(self, now_s: float | None = None) -> float:
        """Hold-last time-weighted mean from the first sample to
        ``now_s`` (default: the last sample's timestamp).  A series with
        a single sample reports that value."""
        if not self._size:
            return float("nan")
        ts = self.timestamps()
        values = self.values()
        if now_s is None:
            now_s = float(ts[-1])
        span = now_s - float(ts[0])
        if self._size == 1 or span <= 0:
            return float(np.mean(values))
        bounds = np.append(ts, now_s)
        weights = np.diff(bounds)
        return float(np.dot(values, weights) / span)

    def to_json_dict(self) -> dict:
        return {
            "unit": self.unit,
            "ts_s": [_json_num(float(t)) for t in self.timestamps()],
            "values": [_json_num(float(v)) for v in self.values()],
        }

    @classmethod
    def from_json_dict(cls, name: str, payload: dict) -> "TimeSeries":
        ts = [_from_json_num(t) for t in payload["ts_s"]]
        series = cls(name, unit=payload["unit"], capacity=max(len(ts), 1))
        for t, v in zip(ts, (_from_json_num(v) for v in payload["values"])):
            series.append(t, v)
        return series


class QuantileSketch:
    """Deterministic fixed-bucket quantile sketch.

    Log-spaced bucket edges (default 1e-4 .. 1e4, suited to latencies
    in seconds); quantiles interpolate linearly within a bucket and are
    clamped to the observed min/max.  Accuracy is bounded by bucket
    width; determinism is exact — no data-dependent restructuring, so
    same-seed runs produce identical sketches.
    """

    __slots__ = ("_edges", "_counts", "_count", "_min", "_max")

    def __init__(self, lo: float = 1e-4, hi: float = 1e4, buckets: int = 128):
        if not (0 < lo < hi):
            raise ValueError("need 0 < lo < hi")
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self._edges = np.geomspace(lo, hi, buckets + 1)
        # underflow + buckets + overflow
        self._counts = np.zeros(buckets + 2, dtype=np.int64)
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")

    @property
    def count(self) -> int:
        return self._count

    def add(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot add NaN to a quantile sketch")
        if value < self._edges[0]:
            idx = 0
        elif value >= self._edges[-1]:
            idx = len(self._counts) - 1
        else:
            idx = int(np.searchsorted(self._edges, value, side="right"))
        self._counts[idx] += 1
        self._count += 1
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._count:
            return float("nan")
        rank = q * (self._count - 1)
        cum = 0
        for idx, bucket_count in enumerate(self._counts):
            if not bucket_count:
                continue
            if rank < cum + bucket_count:
                if idx == 0:
                    return self._min
                if idx == len(self._counts) - 1:
                    return self._max
                lo = float(self._edges[idx - 1])
                hi = float(self._edges[idx])
                frac = (rank - cum + 1.0) / (bucket_count + 1.0)
                value = lo + frac * (hi - lo)
                return min(max(value, self._min), self._max)
            cum += bucket_count
        return self._max  # pragma: no cover - loop always returns


def windowed_quantile(
    series: TimeSeries, q: float, window_s: float, now_s: float
) -> float:
    """Windowed quantile of a sample series via a fresh fixed-bucket
    sketch (deterministic; NaN when the window is empty)."""
    sketch = QuantileSketch()
    for value in series.window(window_s, now_s):
        sketch.add(float(value))
    return sketch.quantile(q)


@dataclass(frozen=True)
class Alert:
    """One burn-rate alert transition (typed, JSON-serializable).

    ``state`` is ``"firing"`` or ``"resolved"``; ``value`` is the
    observed fast-window burn rate at the transition; ``window_s`` the
    fast window it was measured over.
    """

    name: str
    severity: str  # "page" | "ticket"
    state: str  # "firing" | "resolved"
    ts_s: float
    window_s: float
    value: float
    threshold: float

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "severity": self.severity,
            "state": self.state,
            "ts_s": _json_num(self.ts_s),
            "window_s": _json_num(self.window_s),
            "value": _json_num(self.value),
            "threshold": _json_num(self.threshold),
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "Alert":
        return cls(
            name=payload["name"],
            severity=payload["severity"],
            state=payload["state"],
            ts_s=_from_json_num(payload["ts_s"]),
            window_s=_from_json_num(payload["window_s"]),
            value=_from_json_num(payload["value"]),
            threshold=_from_json_num(payload["threshold"]),
        )


class SloBudget:
    """SRE-style error-budget tracker with multi-window burn rates.

    The error budget is ``1 - attainment_target`` (e.g. 5% of requests
    may miss the SLO).  The burn rate over a window is the fraction of
    requests that missed, divided by the budget — burn 1.0 consumes the
    budget exactly at the sustainable pace, burn 10 exhausts it 10x too
    fast.  Two alert rules evaluate *both* windows (the classic
    multi-window guard against flicker): ``page`` at a high threshold,
    ``ticket`` at a low one.  An alert fires when both windows exceed
    its threshold and resolves when the fast window drops back under;
    NaN burn (no traffic in the window) never transitions state.

    Windows default to 5 s / 30 s of simulated time — the scaled-down
    analogue of the 5 m / 1 h pair used for wall-clock fleets.
    """

    def __init__(
        self,
        attainment_target: float = 0.95,
        fast_window_s: float = 5.0,
        slow_window_s: float = 30.0,
        page_threshold: float = 8.0,
        ticket_threshold: float = 2.0,
    ):
        if not 0.0 < attainment_target < 1.0:
            raise ValueError("attainment_target must be in (0, 1)")
        if not 0.0 < fast_window_s < slow_window_s:
            raise ValueError("need 0 < fast_window_s < slow_window_s")
        if not 0.0 < ticket_threshold <= page_threshold:
            raise ValueError("need 0 < ticket_threshold <= page_threshold")
        self.attainment_target = attainment_target
        self.error_budget = 1.0 - attainment_target
        self.fast_window_s = fast_window_s
        self.slow_window_s = slow_window_s
        self.rules = (
            ("slo-burn-page", "page", page_threshold),
            ("slo-burn-ticket", "ticket", ticket_threshold),
        )
        self._firing: dict[str, bool] = {name: False for name, _, _ in self.rules}

    def burn_rate(
        self, good: TimeSeries, total: TimeSeries, window_s: float, now_s: float
    ) -> float:
        """Burn rate over the trailing window (NaN without traffic)."""
        completed = total.delta(window_s, now_s)
        if math.isnan(completed) or completed <= 0:
            return float("nan")
        met = good.delta(window_s, now_s)
        if math.isnan(met):
            met = 0.0
        attainment = met / completed
        return (1.0 - attainment) / self.error_budget

    def evaluate(
        self, now_s: float, good: TimeSeries, total: TimeSeries
    ) -> tuple[float, float, list[Alert]]:
        """Evaluate both windows; return ``(fast, slow, transitions)``."""
        fast = self.burn_rate(good, total, self.fast_window_s, now_s)
        slow = self.burn_rate(good, total, self.slow_window_s, now_s)
        transitions: list[Alert] = []
        if math.isnan(fast):
            return fast, slow, transitions
        for name, severity, threshold in self.rules:
            firing = self._firing[name]
            if (
                not firing
                and not math.isnan(slow)
                and fast > threshold
                and slow > threshold
            ):
                self._firing[name] = True
                transitions.append(
                    Alert(name, severity, "firing", now_s,
                          self.fast_window_s, fast, threshold)
                )
            elif firing and fast <= threshold:
                self._firing[name] = False
                transitions.append(
                    Alert(name, severity, "resolved", now_s,
                          self.fast_window_s, fast, threshold)
                )
        return fast, slow, transitions


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Immutable export of a hub: config, named series, alert log.

    ``to_json_dict``/``from_json_dict`` round-trip byte-identically
    through the repo's canonical JSON convention (sorted keys, NaN as
    null), which is what the experiment-bundle replay gate relies on.
    """

    config: dict
    series: dict[str, dict]
    alerts: tuple[Alert, ...]

    def to_json_dict(self) -> dict:
        return {
            "config": dict(self.config),
            "series": {name: dict(body) for name, body in sorted(self.series.items())},
            "alerts": [alert.to_json_dict() for alert in self.alerts],
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "TelemetrySnapshot":
        return cls(
            config=dict(payload["config"]),
            series={name: dict(body) for name, body in payload["series"].items()},
            alerts=tuple(
                Alert.from_json_dict(a) for a in payload["alerts"]
            ),
        )


@dataclass(frozen=True)
class _PendingCompletion:
    ts_s: float
    seq: int
    ttft_s: float
    itl_s: float
    good: bool
    tenant: str | None


class TelemetryHub:
    """The streaming telemetry bus.

    Producers (engine steps, cluster control ticks) push gauge samples
    and request completions; the hub maintains :class:`TimeSeries`
    channels, evaluates the :class:`SloBudget` on each ``tick`` and
    accumulates the typed alert log.  Everything is a pure function of
    the producers' (seeded) event stream, so same-seed runs export
    byte-identical snapshots.
    """

    enabled: bool = True

    def __init__(
        self,
        slo: "ServiceLevelObjective | None" = None,
        tenant_slos: "dict[str, ServiceLevelObjective] | None" = None,
        budget: SloBudget | None = None,
        tick_interval_s: float = 0.5,
        capacity: int = 4096,
    ):
        if tick_interval_s <= 0:
            raise ValueError("tick_interval_s must be positive")
        if slo is None:
            from repro.runtime.loadgen import ServiceLevelObjective

            slo = ServiceLevelObjective()
        self.slo = slo
        self.tenant_slos = dict(tenant_slos or {})
        self.budget = budget if budget is not None else SloBudget(
            attainment_target=slo.attainment_target
        )
        self.tick_interval_s = tick_interval_s
        self.capacity = capacity
        self._series: dict[str, TimeSeries] = {}
        self._pending: list[_PendingCompletion] = []
        self._seq = 0
        self._good = 0
        self._total = 0
        self._tenant_counts: dict[str, list[int]] = {}  # tenant -> [good, total]
        self.alerts: list[Alert] = []
        self.last_burn_fast = float("nan")
        self.last_burn_slow = float("nan")
        self.last_tick_s = float("-inf")

    # ------------------------------------------------------------------
    # producers

    def series(self, name: str, unit: str = "") -> TimeSeries:
        """Create-on-first-use named channel."""
        found = self._series.get(name)
        if found is None:
            found = self._series[name] = TimeSeries(
                name, unit=unit, capacity=self.capacity
            )
        elif unit and found.unit and unit != found.unit:
            raise ValueError(
                f"series {name!r} re-registered with unit {unit!r} "
                f"(was {found.unit!r})"
            )
        return found

    def sample(self, name: str, ts_s: float, value: float, unit: str = "") -> None:
        self.series(name, unit=unit).append(ts_s, value)

    def slo_for(self, tenant: str | None) -> "ServiceLevelObjective":
        if tenant is not None:
            return self.tenant_slos.get(tenant, self.slo)
        return self.slo

    def record_completion(
        self,
        ts_s: float,
        ttft_s: float,
        itl_s: float,
        good: bool,
        tenant: str | None = None,
    ) -> None:
        """Record one finished request (buffered until the next tick).

        Completions may arrive slightly out of order (replicas retire
        past the tick they straddle); the buffer is flushed sorted by
        ``(ts, arrival order)`` so the ring buffers stay monotone.
        """
        self._pending.append(
            _PendingCompletion(float(ts_s), self._seq, ttft_s, itl_s, bool(good), tenant)
        )
        self._seq += 1

    def _flush(self, up_to_s: float) -> None:
        if not self._pending:
            return
        due = [p for p in self._pending if p.ts_s <= up_to_s]
        if not due:
            return
        self._pending = [p for p in self._pending if p.ts_s > up_to_s]
        due.sort(key=lambda p: (p.ts_s, p.seq))
        good_series = self.series("slo.good_total", unit="requests")
        total_series = self.series("slo.requests_total", unit="requests")
        ttft_series = self.series("slo.ttft_s", unit="s")
        itl_series = self.series("slo.itl_s", unit="s")
        for p in due:
            self._total += 1
            if p.good:
                self._good += 1
            total_series.append(p.ts_s, float(self._total))
            good_series.append(p.ts_s, float(self._good))
            if not math.isnan(p.ttft_s):
                ttft_series.append(p.ts_s, p.ttft_s)
            if not math.isnan(p.itl_s):
                itl_series.append(p.ts_s, p.itl_s)
            if p.tenant is not None:
                counts = self._tenant_counts.setdefault(p.tenant, [0, 0])
                counts[1] += 1
                if p.good:
                    counts[0] += 1
                self.series(
                    f"tenant.{p.tenant}.requests_total", unit="requests"
                ).append(p.ts_s, float(counts[1]))
                self.series(
                    f"tenant.{p.tenant}.good_total", unit="requests"
                ).append(p.ts_s, float(counts[0]))

    # ------------------------------------------------------------------
    # tick-time evaluation

    def windowed_attainment(self, window_s: float, now_s: float) -> float:
        """SLO attainment over the trailing window (NaN without traffic)."""
        total = self.series("slo.requests_total").delta(window_s, now_s)
        if math.isnan(total) or total <= 0:
            return float("nan")
        good = self.series("slo.good_total").delta(window_s, now_s)
        if math.isnan(good):
            good = 0.0
        return good / total

    def windowed_ttft_p95(self, window_s: float, now_s: float) -> float:
        return windowed_quantile(
            self.series("slo.ttft_s"), 0.95, window_s, now_s
        )

    def burn_rates(self) -> tuple[float, float]:
        """Most recent (fast, slow) burn rates (NaN before the first tick)."""
        return self.last_burn_fast, self.last_burn_slow

    def tick(self, now_s: float) -> list[Alert]:
        """Flush completions, evaluate the budget, extend derived series.

        Returns the alert *transitions* that occurred at this tick (the
        caller lands them in the Chrome trace); the full log accumulates
        in ``self.alerts``.
        """
        self._flush(now_s)
        fast, slow, transitions = self.budget.evaluate(
            now_s,
            self.series("slo.good_total"),
            self.series("slo.requests_total"),
        )
        self.last_burn_fast = fast
        self.last_burn_slow = slow
        self.last_tick_s = now_s
        self.sample("slo.burn_rate_fast", now_s, fast)
        self.sample("slo.burn_rate_slow", now_s, slow)
        self.sample(
            "slo.attainment",
            now_s,
            self.windowed_attainment(self.budget.fast_window_s, now_s),
        )
        self.sample(
            "slo.ttft_p95_s",
            now_s,
            self.windowed_ttft_p95(self.budget.fast_window_s, now_s),
            unit="s",
        )
        for tenant in sorted(self._tenant_counts):
            total = self.series(f"tenant.{tenant}.requests_total").delta(
                self.budget.fast_window_s, now_s
            )
            if math.isnan(total) or total <= 0:
                attainment = float("nan")
            else:
                good = self.series(f"tenant.{tenant}.good_total").delta(
                    self.budget.fast_window_s, now_s
                )
                attainment = (0.0 if math.isnan(good) else good) / total
            self.sample(f"tenant.{tenant}.attainment", now_s, attainment)
        self.alerts.extend(transitions)
        return transitions

    def finish(self, now_s: float) -> list[Alert]:
        """End-of-run closeout: flush everything (including completions
        recorded past the last tick) and evaluate once at the horizon."""
        if self._pending:
            now_s = max(now_s, max(p.ts_s for p in self._pending))
        self._flush(now_s)
        if now_s > self.last_tick_s:
            return self.tick(now_s)
        return []

    # ------------------------------------------------------------------
    # export

    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot(
            config={
                "attainment_target": _json_num(self.budget.attainment_target),
                "fast_window_s": _json_num(self.budget.fast_window_s),
                "slow_window_s": _json_num(self.budget.slow_window_s),
                "page_threshold": _json_num(self.budget.rules[0][2]),
                "ticket_threshold": _json_num(self.budget.rules[1][2]),
                "tick_interval_s": _json_num(self.tick_interval_s),
            },
            series={
                name: series.to_json_dict()
                for name, series in sorted(self._series.items())
            },
            alerts=tuple(self.alerts),
        )


class _NullTelemetry(TelemetryHub):
    """Disabled hub: every producer call is a no-op.

    Shared stateless instance — the ``enabled`` guard in the engine and
    simulator means these methods are never on the hot path, but they
    stay safe to call so callers need no None checks.
    """

    enabled = False
    tick_interval_s = 0.5  # read (never armed) by tick-train plumbing

    def __init__(self):  # noqa: D107 - no state, no slo import
        pass

    def series(self, name: str, unit: str = "") -> TimeSeries:  # pragma: no cover
        raise RuntimeError("null telemetry has no series")

    def sample(self, name, ts_s, value, unit="") -> None:
        return None

    def record_completion(self, ts_s, ttft_s, itl_s, good, tenant=None) -> None:
        return None

    def tick(self, now_s: float) -> list[Alert]:
        return []

    def finish(self, now_s: float) -> list[Alert]:
        return []

    def snapshot(self) -> None:  # type: ignore[override]
        return None


NULL_TELEMETRY = _NullTelemetry()
