"""Per-request timelines: each request's life through the serving engine.

A :class:`RequestTimeline` reconstructs one ``GenerationRequest``'s path —
arrival → admit wait → prefill → decode → retire — from the timestamps the
engine records, for tail-latency analysis: *which* requests waited, *where*
a p99 TTFT came from, how preemption stretched a particular stream.

Timelines are pure derivations (no tracer required): the engine stamps
``arrival_time``, ``admit_time``, ``first_token_time`` and ``finish_time``
on every request it runs, so ``EngineResult.timelines`` is available even
for completed runs loaded from elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.request import GenerationRequest

__all__ = ["RequestTimeline", "build_timelines", "timeline_table"]


@dataclass(frozen=True)
class RequestTimeline:
    """Milestones of one request on the simulation clock (seconds)."""

    request_id: int
    input_tokens: int
    output_tokens: int
    arrival_s: float
    admit_s: float | None
    first_token_s: float | None
    finish_s: float | None
    preemptions: int = 0

    def __post_init__(self) -> None:
        # Milestones must be monotone: arrival <= admit <= first token
        # <= finish, with later ones allowed to be missing (OOM'd runs).
        stages = [
            ("arrival", self.arrival_s),
            ("admit", self.admit_s),
            ("first_token", self.first_token_s),
            ("finish", self.finish_s),
        ]
        previous_name, previous = stages[0]
        for name, value in stages[1:]:
            if value is None:
                continue
            if previous is not None and value < previous:
                raise ValueError(
                    f"request {self.request_id}: {name} ({value}) precedes "
                    f"{previous_name} ({previous})"
                )
            previous_name, previous = name, value

    @classmethod
    def of(cls, request: GenerationRequest) -> "RequestTimeline":
        return cls(
            request_id=request.request_id,
            input_tokens=request.input_tokens,
            output_tokens=request.output_tokens,
            arrival_s=request.arrival_time,
            admit_s=request.admit_time,
            first_token_s=request.first_token_time,
            finish_s=request.finish_time,
            preemptions=request.preemptions,
        )

    # -- derived intervals ---------------------------------------------

    @property
    def queue_wait_s(self) -> float:
        """Arrival to first admission (the admit-wait interval)."""
        if self.admit_s is None:
            return float("nan")
        return self.admit_s - self.arrival_s

    @property
    def ttft_s(self) -> float:
        if self.first_token_s is None:
            return float("nan")
        return self.first_token_s - self.arrival_s

    @property
    def prefill_s(self) -> float:
        """First admission to first token (prefill incl. chunking)."""
        if self.admit_s is None or self.first_token_s is None:
            return float("nan")
        return self.first_token_s - self.admit_s

    @property
    def decode_s(self) -> float:
        """First token to retirement (the streaming interval)."""
        if self.first_token_s is None or self.finish_s is None:
            return float("nan")
        return self.finish_s - self.first_token_s

    @property
    def mean_decode_gap_s(self) -> float:
        """Per-request mean inter-token gap (its own ITL)."""
        if self.first_token_s is None or self.finish_s is None:
            return float("nan")
        if self.output_tokens <= 1:
            return 0.0
        return self.decode_s / (self.output_tokens - 1)

    @property
    def e2e_s(self) -> float:
        if self.finish_s is None:
            return float("nan")
        return self.finish_s - self.arrival_s

    @property
    def completed(self) -> bool:
        return self.finish_s is not None


def build_timelines(requests: list[GenerationRequest]) -> list[RequestTimeline]:
    """Timelines for a trace's requests, in arrival order."""
    timelines = [RequestTimeline.of(r) for r in requests]
    timelines.sort(key=lambda t: (t.arrival_s, t.request_id))
    return timelines


def timeline_table(timelines: list[RequestTimeline], limit: int | None = None) -> str:
    """Render timelines as a fixed-width table (slowest TTFT first)."""
    if not timelines:
        return "(no requests)"
    ranked = sorted(
        timelines, key=lambda t: (t.ttft_s != t.ttft_s, -t.ttft_s if t.ttft_s == t.ttft_s else 0.0)
    )
    if limit is not None:
        ranked = ranked[:limit]
    lines = [
        f"{'req':>5} {'in':>6} {'out':>6} {'arrive':>9} {'wait':>9} "
        f"{'prefill':>9} {'decode':>9} {'ttft':>9} {'gap':>9} {'pre':>4}"
    ]
    for t in ranked:
        lines.append(
            f"{t.request_id:>5d} {t.input_tokens:>6d} {t.output_tokens:>6d} "
            f"{t.arrival_s:>9.3f} {t.queue_wait_s:>9.3f} {t.prefill_s:>9.3f} "
            f"{t.decode_s:>9.3f} {t.ttft_s:>9.3f} {t.mean_decode_gap_s:>9.4f} "
            f"{t.preemptions:>4d}"
        )
    return "\n".join(lines)
