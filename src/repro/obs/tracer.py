"""Low-overhead event tracer for the serving simulator.

The tracer records *span* and *instant* events on the simulation clock as
the engine executes: admissions, prefill passes, decode spans, preemptions,
KV-pool changes and power samples.  Events export to Chrome
``trace_event`` JSON (:mod:`repro.obs.export`) so a run can be opened in
``chrome://tracing`` / Perfetto, and aggregate into per-request timelines
(:mod:`repro.obs.timeline`).

Two implementations share one interface: :class:`EventTracer` records, and
the module-level :data:`NULL_TRACER` (an instance of the base
:class:`Tracer`) is a no-op whose methods return immediately without
allocating — the engine's default, keeping hot paths free when tracing is
off.  Emitters guard optional work with ``if tracer.enabled``.

Timestamps are simulation-clock **seconds** (the engine's ``now``).  The
tracer also carries a monotonic clock (:meth:`Tracer.advance`) so emitters
that do not track time themselves — the KV allocators, the schedulers'
preemption path — can stamp events with the engine's current instant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CATEGORIES",
    "TraceEvent",
    "Tracer",
    "EventTracer",
    "NULL_TRACER",
]

#: Event categories emitted by the serving runtime.
CATEGORIES = (
    "admit",
    "prefill",
    "decode_span",
    "preempt",
    "kv_alloc",
    "power_sample",
    "engine",
    "control",  # fault injections, retries, autoscale actions
    "profile",  # cost-attribution counter tracks (mfu, mbu, watts, ...)
)

# Chrome trace_event phase codes used by this tracer.
PHASE_COMPLETE = "X"  # span with a duration
PHASE_INSTANT = "i"  # point-in-time marker
PHASE_COUNTER = "C"  # sampled numeric series


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One trace event on the simulation clock.

    ``phase`` follows the Chrome ``trace_event`` phase codes: ``"X"``
    (complete span, ``dur_s`` meaningful), ``"i"`` (instant) or ``"C"``
    (counter sample, values in ``args``).
    """

    name: str
    category: str
    phase: str
    ts_s: float
    dur_s: float = 0.0
    args: dict[str, float | int | str] = field(default_factory=dict)

    def end_s(self) -> float:
        return self.ts_s + self.dur_s


class Tracer:
    """No-op tracer; base class and the disabled default.

    Every method is a stub so instrumented code can call unconditionally;
    ``enabled`` lets emitters skip argument construction entirely when the
    extra work (dict building, percentile samples) is itself non-trivial.
    """

    enabled: bool = False

    @property
    def now_s(self) -> float:
        return 0.0

    def advance(self, now_s: float) -> None:
        """Move the tracer's clock forward to the engine's ``now``."""

    def instant(self, category: str, name: str, ts_s: float | None = None, **args) -> None:
        """Record a point-in-time event (at the clock if ``ts_s`` is None)."""

    def complete(self, category: str, name: str, ts_s: float, dur_s: float, **args) -> None:
        """Record a span ``[ts_s, ts_s + dur_s]``."""

    def counter(self, category: str, name: str, ts_s: float | None = None, **values) -> None:
        """Record a counter sample (numeric series over time)."""


#: Shared disabled tracer — the engine default.  Stateless, so one
#: instance serves every engine.
NULL_TRACER = Tracer()


class EventTracer(Tracer):
    """Recording tracer: an append-only event list on a monotonic clock."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._clock_s = 0.0

    @property
    def now_s(self) -> float:
        return self._clock_s

    def advance(self, now_s: float) -> None:
        if now_s < self._clock_s:
            raise ValueError(
                f"tracer clock cannot move backwards: {now_s} < {self._clock_s}"
            )
        self._clock_s = now_s

    def _stamp(self, ts_s: float | None) -> float:
        return self._clock_s if ts_s is None else ts_s

    def instant(self, category: str, name: str, ts_s: float | None = None, **args) -> None:
        self.events.append(
            TraceEvent(name, category, PHASE_INSTANT, self._stamp(ts_s), 0.0, args)
        )

    def complete(self, category: str, name: str, ts_s: float, dur_s: float, **args) -> None:
        if dur_s < 0.0:
            raise ValueError(f"span duration must be >= 0, got {dur_s}")
        self.events.append(
            TraceEvent(name, category, PHASE_COMPLETE, ts_s, dur_s, args)
        )

    def counter(self, category: str, name: str, ts_s: float | None = None, **values) -> None:
        self.events.append(
            TraceEvent(name, category, PHASE_COUNTER, self._stamp(ts_s), 0.0, values)
        )

    # ------------------------------------------------------------------

    def events_in(self, category: str) -> list[TraceEvent]:
        return [e for e in self.events if e.category == category]

    def clear(self) -> None:
        self.events.clear()
        self._clock_s = 0.0
