"""Serving runtime: engine, schedulers, KV allocators, memory, workloads.

Observability: every component accepts a :class:`repro.obs.Tracer`
(default no-op) and emits admit/prefill/decode/preempt/kv events plus
TTFT/ITL histograms when given a recording ``EventTracer``.
"""

from repro.runtime.engine import EngineResult, EngineRun, ServingEngine, resolve_core
from repro.runtime.loadgen import (
    LoadReport,
    ServiceLevelObjective,
    TenantReport,
    find_max_sustainable_rate,
    run_load_test,
    summarize_requests,
)
from repro.runtime.memory_manager import MemoryManager, OutOfMemoryError
from repro.runtime.paged_kv import (
    AllocationError,
    ContiguousKVAllocator,
    KVAllocator,
    PagedKVAllocator,
)
from repro.runtime.scheduler import (
    ContinuousBatchingScheduler,
    Scheduler,
    SchedulerStats,
    StaticBatchingScheduler,
)
from repro.runtime.soa import RequestTable
from repro.runtime.workload import (
    TraceSummary,
    blended_trace,
    fixed_batch_trace,
    open_loop_trace,
    poisson_trace,
    shared_prefix_trace,
)

__all__ = [
    "EngineResult",
    "EngineRun",
    "LoadReport",
    "ServiceLevelObjective",
    "TenantReport",
    "find_max_sustainable_rate",
    "run_load_test",
    "summarize_requests",
    "ServingEngine",
    "MemoryManager",
    "OutOfMemoryError",
    "AllocationError",
    "ContiguousKVAllocator",
    "KVAllocator",
    "PagedKVAllocator",
    "ContinuousBatchingScheduler",
    "RequestTable",
    "Scheduler",
    "SchedulerStats",
    "StaticBatchingScheduler",
    "resolve_core",
    "TraceSummary",
    "blended_trace",
    "fixed_batch_trace",
    "open_loop_trace",
    "poisson_trace",
    "shared_prefix_trace",
]
