"""Struct-of-arrays request state for the vectorized engine core.

:class:`RequestTable` mirrors a scheduler's ``running`` list as parallel
numpy columns (input tokens, output budget, generated so far), row ``i``
always describing ``running[i]``.  The vectorized engine core
(``ServingEngine(core="vector")``) commits whole decode spans and prefill
rider chunks against these columns — one array operation instead of a
Python loop over request objects — and syncs objects back lazily:

* **finishers eagerly** — a request that completes inside a committed
  span has its ``generated_tokens``/``finish_time``/``state`` written
  immediately, so retirement, metrics observation and cluster stitching
  see exactly what the scalar reference core would have written;
* **everything else at flush points** — ``EngineRun.result()`` and the
  reference ``outstanding_tokens_scan()`` call :meth:`flush`, which
  writes ``generated_tokens`` back to requests still owned by the
  scheduler (state PREFILLING/DECODING).  Requests that left the
  engine's custody mid-run (cluster crash victims wound back by the
  control plane) are deliberately skipped so the flush cannot clobber
  control-plane resets.

All columns are int64 and all commits are integer arithmetic, so the
table is exact — equivalence with the scalar core is bit-identity, not
tolerance (enforced by ``tests/test_vector_core.py``).
"""

from __future__ import annotations

import numpy as np

from repro.core.request import GenerationRequest, RequestState

__all__ = ["RequestTable"]

_MIN_CAPACITY = 64


class RequestTable:
    """Parallel int64 columns over a scheduler's running set."""

    __slots__ = ("_input", "_output", "_generated", "n")

    def __init__(self, capacity: int = _MIN_CAPACITY) -> None:
        capacity = max(capacity, _MIN_CAPACITY)
        self._input = np.empty(capacity, dtype=np.int64)
        self._output = np.empty(capacity, dtype=np.int64)
        self._generated = np.empty(capacity, dtype=np.int64)
        self.n = 0

    def __len__(self) -> int:
        return self.n

    # ------------------------------------------------------------------
    # Row maintenance (mirrors scheduler.running mutations).

    def _grow(self) -> None:
        capacity = len(self._input) * 2
        for name in ("_input", "_output", "_generated"):
            column = getattr(self, name)
            grown = np.empty(capacity, dtype=np.int64)
            grown[: self.n] = column[: self.n]
            setattr(self, name, grown)

    def append(self, request: GenerationRequest) -> None:
        """Add a row for a freshly admitted request (``running.append``)."""
        if self.n == len(self._input):
            self._grow()
        i = self.n
        self._input[i] = request.input_tokens
        self._output[i] = request.output_tokens
        self._generated[i] = request.generated_tokens
        self.n = i + 1

    def sync_tail(self, running: list[GenerationRequest], count: int) -> None:
        """Re-copy the last ``count`` rows from their objects.

        Called after a prefill pass mutated the admitted requests through
        the scalar object path (first token, preempted-resume state): the
        admitted set always occupies the table's tail because admission
        appends and nothing retires mid-pass.
        """
        for i in range(self.n - count, self.n):
            self._generated[i] = running[i].generated_tokens

    def drop(self, index: int) -> None:
        """Remove one row preserving order (``running.remove`` analogue)."""
        n = self.n
        if not 0 <= index < n:
            raise IndexError(f"row {index} out of range for table of {n}")
        for name in ("_input", "_output", "_generated"):
            column = getattr(self, name)
            column[index : n - 1] = column[index + 1 : n]
        self.n = n - 1

    def compact(self, keep: np.ndarray) -> None:
        """Keep only rows ``keep`` (sorted indices), preserving order."""
        m = len(keep)
        for name in ("_input", "_output", "_generated"):
            column = getattr(self, name)
            column[:m] = column[: self.n][keep]
        self.n = m

    def clear(self) -> None:
        self.n = 0

    # ------------------------------------------------------------------
    # Reductions the engine's span logic needs (all exact int arithmetic).

    def min_remaining(self) -> int:
        """Fewest output tokens any running request still owes."""
        n = self.n
        return int((self._output[:n] - self._generated[:n]).min())

    def context_sum(self) -> int:
        """Sum of current context lengths (input + generated)."""
        n = self.n
        return int(self._input[:n].sum() + self._generated[:n].sum())

    def finished_rows(self) -> np.ndarray:
        """Sorted row indices whose generation budget is exhausted."""
        n = self.n
        return np.nonzero(self._generated[:n] >= self._output[:n])[0]

    # ------------------------------------------------------------------
    # Vectorized commits.

    def commit_decode(self, steps: int) -> np.ndarray:
        """Advance every row by ``steps`` tokens; returns finished rows.

        The caller guarantees ``steps <= min_remaining()`` (the span rule),
        so no row overshoots its budget and every finisher finishes exactly
        at the span's last step — the same invariant the scalar reference
        loop enforces via ``record_token``.
        """
        n = self.n
        gen = self._generated[:n]
        gen += steps
        return np.nonzero(gen >= self._output[:n])[0]

    def commit_rider_chunk(self, count: int) -> tuple[int, np.ndarray]:
        """One rider token for the first ``count`` rows that still owe output.

        Returns ``(tokens_given, newly_finished_rows)`` — the vectorized
        equivalent of the scalar per-chunk rider loop in ``_run_prefill``.
        """
        gen = self._generated[:count]
        out = self._output[:count]
        active = gen < out
        gen += active  # one token to each still-active rider
        newly = np.nonzero(active & (gen >= out))[0]
        return int(active.sum()), newly

    # ------------------------------------------------------------------
    # Object synchronization.

    def generated_of(self, index: int) -> int:
        return int(self._generated[index])

    def flush(self, running: list[GenerationRequest]) -> None:
        """Write ``generated_tokens`` back to scheduler-owned objects.

        Only requests still in PREFILLING/DECODING state are touched:
        finishers were synced eagerly at commit time, and requests the
        control plane reclaimed (crash victims reset to QUEUED/FAILED)
        must keep their reset state.
        """
        gen = self._generated
        for i in range(self.n):
            request = running[i]
            if request.state in (RequestState.PREFILLING, RequestState.DECODING):
                request.generated_tokens = int(gen[i])
