"""Online-serving load generation and SLO accounting.

The paper's Section VII frames deployment choices around chat SLOs: rapid
first token (TTFT) and smooth streaming (ITL).  This module runs an
open-loop arrival process through the serving engine and reports the
operator-facing statistics the paper's dashboard targets: latency
percentiles, goodput (requests meeting the SLO per second), and sustained
token throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.request import GenerationRequest
from repro.perf.phases import Deployment
from repro.runtime.engine import ServingEngine
from repro.runtime.memory_manager import OutOfMemoryError
from repro.runtime.workload import open_loop_trace

__all__ = [
    "ServiceLevelObjective",
    "TenantReport",
    "LoadReport",
    "summarize_requests",
    "run_load_test",
    "find_max_sustainable_rate",
]


def _json_num(value: float) -> float | None:
    """JSON-safe scalar (non-finite -> null), the repo's snapshot rule."""
    value = float(value)
    return value if math.isfinite(value) else None


def _from_json_num(value: object) -> float:
    """Inverse of :func:`_json_num`; ``null`` loads back as NaN."""
    return float("nan") if value is None else float(value)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ServiceLevelObjective:
    """Per-request latency targets (chat defaults per Section VII-2).

    The single definition of serving objectives shared by the load
    generator, the cluster capacity planner and the control plane's
    SLO-driven autoscaler: TTFT and ITL bounds, an optional end-to-end
    latency bound, and the attainment fraction a fleet must reach for a
    rate to count as sustained.
    """

    ttft_s: float = 1.5
    itl_s: float = 1.0 / 12.0  # >= 12 streamed tokens/s
    e2e_s: float | None = None  # optional end-to-end latency bound
    attainment_target: float = 0.95  # fraction of requests that must meet it

    def __post_init__(self) -> None:
        if self.ttft_s <= 0 or self.itl_s <= 0:
            raise ValueError("SLO bounds must be positive")
        if self.e2e_s is not None and self.e2e_s <= 0:
            raise ValueError("SLO bounds must be positive")
        if not 0 < self.attainment_target <= 1:
            raise ValueError("attainment_target must be in (0, 1]")

    def met_by(self, request: GenerationRequest) -> bool:
        if request.first_token_time is None or request.finish_time is None:
            return False
        if request.ttft_s > self.ttft_s:
            return False
        if self.e2e_s is not None and request.end_to_end_latency_s > self.e2e_s:
            return False
        if request.output_tokens > 1:
            itl = (request.finish_time - request.first_token_time) / (
                request.output_tokens - 1
            )
            if itl > self.itl_s:
                return False
        return True


@dataclass(frozen=True)
class TenantReport:
    """Per-tenant SLO accounting lane inside a :class:`LoadReport`.

    Each tenant (a traffic class from a :mod:`repro.scenarios` mix) is
    judged against its *own* SLO.  A tenant that completed zero requests
    reports NaN latency lanes and zero attainment rather than raising, so
    mixed-outcome sweeps aggregate cleanly.
    """

    tenant: str
    requests: int
    completed_requests: int
    slo_attainment: float
    ntpot_mean_s: float
    ttft_p95_s: float
    failure_rate: float

    def render(self) -> str:
        return (
            f"tenant {self.tenant}: {self.requests} req | "
            f"{self.slo_attainment:.0%} SLO | "
            f"TTFT p95 {self.ttft_p95_s:.2f}s | "
            f"NTPOT {self.ntpot_mean_s * 1e3:.1f}ms | "
            f"{self.failure_rate:.0%} failed"
        )

    def to_json_dict(self) -> dict[str, object]:
        """Deterministic JSON view (non-finite -> null, like snapshots)."""
        return {
            "tenant": self.tenant,
            "requests": self.requests,
            "completed_requests": self.completed_requests,
            "slo_attainment": _json_num(self.slo_attainment),
            "ntpot_mean_s": _json_num(self.ntpot_mean_s),
            "ttft_p95_s": _json_num(self.ttft_p95_s),
            "failure_rate": _json_num(self.failure_rate),
        }

    @classmethod
    def from_json_dict(cls, payload: dict[str, object]) -> "TenantReport":
        return cls(
            tenant=str(payload["tenant"]),
            requests=int(payload["requests"]),  # type: ignore[arg-type]
            completed_requests=int(payload["completed_requests"]),  # type: ignore[arg-type]
            slo_attainment=_from_json_num(payload["slo_attainment"]),
            ntpot_mean_s=_from_json_num(payload["ntpot_mean_s"]),
            ttft_p95_s=_from_json_num(payload["ttft_p95_s"]),
            failure_rate=_from_json_num(payload["failure_rate"]),
        )


@dataclass(frozen=True)
class LoadReport:
    """Aggregate statistics of one load-test run."""

    offered_rate_rps: float
    completed_requests: int
    makespan_s: float
    throughput_tokens_per_s: float
    ttft_p50_s: float
    ttft_p95_s: float
    ttft_p99_s: float
    itl_mean_s: float
    slo_attainment: float  # fraction of requests meeting the SLO
    goodput_rps: float  # SLO-meeting requests per second
    average_power_w: float
    # Normalized time per output token: mean over finished requests of
    # end-to-end latency / output tokens (llm-d-benchmark's NTPOT).
    # Unlike ITL it charges queueing and prefill to every token, so it is
    # the per-token number an operator's cost model should use.  NaN when
    # nothing finished.
    ntpot_mean_s: float = float("nan")
    failure_rate: float = 0.0  # fraction of requests that never finished
    # Per-tenant lanes (scenario traffic mixes); empty for untagged runs.
    tenants: tuple[TenantReport, ...] = ()

    def render(self) -> str:
        line = (
            f"offered {self.offered_rate_rps:.2f} req/s | "
            f"goodput {self.goodput_rps:.2f} req/s "
            f"({self.slo_attainment:.0%} SLO) | "
            f"TTFT p50/p95/p99 {self.ttft_p50_s:.2f}/{self.ttft_p95_s:.2f}/"
            f"{self.ttft_p99_s:.2f}s | ITL {self.itl_mean_s * 1e3:.1f}ms | "
            f"NTPOT {self.ntpot_mean_s * 1e3:.1f}ms | "
            f"{self.throughput_tokens_per_s:,.0f} tok/s | "
            f"{self.average_power_w:,.0f} W"
        )
        if self.failure_rate > 0:
            line += f" | {self.failure_rate:.0%} failed"
        if self.tenants:
            line = "\n".join([line, *(t.render() for t in self.tenants)])
        return line

    def to_json_dict(self) -> dict[str, object]:
        """Deterministic JSON view (non-finite -> null).

        Mirrors the :class:`~repro.obs.metrics.MetricsSnapshot` /
        :class:`~repro.obs.profiler.ProfileReport` conventions so
        capacity plans and optimizer artifacts can embed load reports
        losslessly; NaN lanes (empty completion sets) survive a
        round-trip as NaN.
        """
        return {
            "offered_rate_rps": _json_num(self.offered_rate_rps),
            "completed_requests": self.completed_requests,
            "makespan_s": _json_num(self.makespan_s),
            "throughput_tokens_per_s": _json_num(self.throughput_tokens_per_s),
            "ttft_p50_s": _json_num(self.ttft_p50_s),
            "ttft_p95_s": _json_num(self.ttft_p95_s),
            "ttft_p99_s": _json_num(self.ttft_p99_s),
            "itl_mean_s": _json_num(self.itl_mean_s),
            "slo_attainment": _json_num(self.slo_attainment),
            "goodput_rps": _json_num(self.goodput_rps),
            "average_power_w": _json_num(self.average_power_w),
            "ntpot_mean_s": _json_num(self.ntpot_mean_s),
            "failure_rate": _json_num(self.failure_rate),
            "tenants": [t.to_json_dict() for t in self.tenants],
        }

    @classmethod
    def from_json_dict(cls, payload: dict[str, object]) -> "LoadReport":
        return cls(
            offered_rate_rps=_from_json_num(payload["offered_rate_rps"]),
            completed_requests=int(payload["completed_requests"]),  # type: ignore[arg-type]
            makespan_s=_from_json_num(payload["makespan_s"]),
            throughput_tokens_per_s=_from_json_num(
                payload["throughput_tokens_per_s"]
            ),
            ttft_p50_s=_from_json_num(payload["ttft_p50_s"]),
            ttft_p95_s=_from_json_num(payload["ttft_p95_s"]),
            ttft_p99_s=_from_json_num(payload["ttft_p99_s"]),
            itl_mean_s=_from_json_num(payload["itl_mean_s"]),
            slo_attainment=_from_json_num(payload["slo_attainment"]),
            goodput_rps=_from_json_num(payload["goodput_rps"]),
            average_power_w=_from_json_num(payload["average_power_w"]),
            ntpot_mean_s=_from_json_num(payload["ntpot_mean_s"]),
            failure_rate=_from_json_num(payload["failure_rate"]),
            tenants=tuple(
                TenantReport.from_json_dict(t)
                for t in payload.get("tenants", ())  # type: ignore[union-attr]
            ),
        )


def _tenant_report(
    tenant: str,
    requests: list[GenerationRequest],
    slo: ServiceLevelObjective,
) -> TenantReport:
    """One tenant's lane, NaN-safe when the tenant completed nothing."""
    completed = [r for r in requests if r.first_token_time is not None]
    finished = [r for r in completed if r.finish_time is not None]
    if completed:
        ttft_p95 = float(np.percentile(sorted(r.ttft_s for r in completed), 95))
    else:
        ttft_p95 = float("nan")
    ntpots = [
        r.end_to_end_latency_s / r.output_tokens
        for r in finished
        if r.output_tokens > 0
    ]
    return TenantReport(
        tenant=tenant,
        requests=len(requests),
        completed_requests=len(finished),
        slo_attainment=(
            sum(1 for r in requests if slo.met_by(r)) / len(requests)
            if requests
            else 0.0
        ),
        ntpot_mean_s=sum(ntpots) / len(ntpots) if ntpots else float("nan"),
        ttft_p95_s=ttft_p95,
        failure_rate=(
            1.0 - len(finished) / len(requests) if requests else 0.0
        ),
    )


def summarize_requests(
    requests: list[GenerationRequest],
    makespan_s: float,
    offered_rate_rps: float,
    slo: ServiceLevelObjective | None = None,
    average_power_w: float = 0.0,
    tenant_slos: dict[str, ServiceLevelObjective] | None = None,
) -> LoadReport:
    """Aggregate a finished (or failed) request set into a :class:`LoadReport`.

    The single accounting path for both one engine and a whole cluster:
    percentiles come back NaN (like ``EngineResult.mean_ttft_s``) instead
    of raising when nothing completed — an all-OOM run, a zero-arrival
    window — so sweeps over mixed outcomes never blow up mid-aggregation.

    Tenant lanes appear when either ``tenant_slos`` names traffic classes
    or requests carry ``tenant`` tags; each lane is judged against that
    tenant's own SLO (falling back to the run-level ``slo``), and a
    tenant with zero requests still gets a lane (NaN latencies) so
    dashboards show the gap rather than silently dropping the class.
    """
    if not requests:
        raise ValueError("requests is empty")
    slo = slo or ServiceLevelObjective()
    completed = [r for r in requests if r.first_token_time is not None]
    finished = [r for r in completed if r.finish_time is not None]

    if completed:
        ttfts = np.array(sorted(r.ttft_s for r in completed))
        p50, p95, p99 = (float(np.percentile(ttfts, q)) for q in (50, 95, 99))
    else:
        p50 = p95 = p99 = float("nan")

    total_gap = sum(
        r.finish_time - r.first_token_time for r in finished if r.output_tokens > 1
    )
    intervals = sum(r.output_tokens - 1 for r in finished if r.output_tokens > 1)
    itl_mean = total_gap / intervals if intervals else 0.0

    # NTPOT (normalized time per output token): whole-request latency per
    # generated token, queueing and prefill included.
    ntpots = [
        r.end_to_end_latency_s / r.output_tokens
        for r in finished
        if r.output_tokens > 0
    ]
    ntpot_mean = sum(ntpots) / len(ntpots) if ntpots else float("nan")

    tenant_names: list[str] = []
    for r in requests:
        if r.tenant is not None and r.tenant not in tenant_names:
            tenant_names.append(r.tenant)
    for name in sorted(tenant_slos or ()):
        if name not in tenant_names:
            tenant_names.append(name)
    tenant_reports = tuple(
        _tenant_report(
            name,
            [r for r in requests if r.tenant == name],
            (tenant_slos or {}).get(name, slo),
        )
        for name in sorted(tenant_names)
    )

    total_tokens = sum(r.input_tokens + r.generated_tokens for r in requests)
    met = sum(1 for r in requests if slo.met_by(r))
    return LoadReport(
        offered_rate_rps=offered_rate_rps,
        completed_requests=len(finished),
        makespan_s=makespan_s,
        throughput_tokens_per_s=(
            total_tokens / makespan_s if makespan_s > 0 else 0.0
        ),
        ttft_p50_s=p50,
        ttft_p95_s=p95,
        ttft_p99_s=p99,
        itl_mean_s=itl_mean,
        slo_attainment=met / len(requests),
        goodput_rps=met / makespan_s if makespan_s > 0 else 0.0,
        average_power_w=average_power_w,
        ntpot_mean_s=ntpot_mean,
        failure_rate=1.0 - len(finished) / len(requests),
        tenants=tenant_reports,
    )


def run_load_test(
    deployment: Deployment,
    rate_rps: float,
    num_requests: int = 64,
    mean_input_tokens: int = 512,
    mean_output_tokens: int = 256,
    max_concurrency: int = 32,
    slo: ServiceLevelObjective | None = None,
    seed: int = 0,
) -> LoadReport:
    """Drive Poisson arrivals with blended lengths through the engine.

    A run the engine aborts with :class:`OutOfMemoryError` (a request that
    can never fit) reports zero completions and NaN percentiles rather
    than raising, so capacity sweeps can cross the OOM frontier.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    slo = slo or ServiceLevelObjective()

    trace = open_loop_trace(
        num_requests, rate_rps, mean_input_tokens, mean_output_tokens, seed=seed
    )
    engine = ServingEngine(deployment, max_concurrency=max_concurrency)
    try:
        result = engine.run(trace)
        makespan, power = result.total_time_s, result.average_power_w
    except OutOfMemoryError:
        makespan, power = 0.0, 0.0
    return summarize_requests(
        trace, makespan, rate_rps, slo=slo, average_power_w=power
    )


def find_max_sustainable_rate(
    deployment: Deployment,
    slo: ServiceLevelObjective | None = None,
    attainment_target: float = 0.95,
    num_requests: int = 48,
    max_rate_rps: float = 64.0,
    tolerance_rps: float = 0.25,
    seed: int = 0,
    **workload_kwargs: int,
) -> tuple[float, LoadReport]:
    """Capacity search: the highest offered rate meeting the SLO.

    Bisects the offered Poisson rate until the SLO-attainment fraction
    crosses ``attainment_target`` — the operator question ("how many
    requests per second can this deployment absorb?") the paper's
    dashboard is built to answer.  Returns (rate, report at that rate).
    """
    if not 0 < attainment_target <= 1:
        raise ValueError("attainment_target must be in (0, 1]")
    if max_rate_rps <= tolerance_rps:
        raise ValueError("max_rate_rps must exceed tolerance_rps")
    slo = slo or ServiceLevelObjective()

    def attainment(rate: float) -> LoadReport:
        return run_load_test(
            deployment,
            rate_rps=rate,
            num_requests=num_requests,
            slo=slo,
            seed=seed,
            **workload_kwargs,
        )

    lo, hi = tolerance_rps, max_rate_rps
    lo_report = attainment(lo)
    if lo_report.slo_attainment < attainment_target:
        return 0.0, lo_report  # even the lightest probe misses the SLO
    hi_report = attainment(hi)
    if hi_report.slo_attainment >= attainment_target:
        return hi, hi_report  # never saturates within the probe range
    best_rate, best_report = lo, lo_report
    while hi - lo > tolerance_rps:
        mid = (lo + hi) / 2
        report = attainment(mid)
        if report.slo_attainment >= attainment_target:
            best_rate, best_report = mid, report
            lo = mid
        else:
            hi = mid
    return best_rate, best_report
