"""Deprecated alias for :mod:`repro.runtime.workload`.

``repro.runtime.trace`` held the workload generators before the event
tracer (:mod:`repro.obs.tracer`) took over the word "trace"; import from
``repro.runtime.workload`` instead.  This shim re-exports the public API
and will be removed in a future release.
"""

from __future__ import annotations

import warnings

from repro.runtime.workload import (  # noqa: F401  (re-exports)
    TraceSummary,
    blended_trace,
    fixed_batch_trace,
    poisson_trace,
)

__all__ = ["TraceSummary", "blended_trace", "fixed_batch_trace", "poisson_trace"]

warnings.warn(
    "repro.runtime.trace is deprecated; import from repro.runtime.workload",
    DeprecationWarning,
    stacklevel=2,
)
