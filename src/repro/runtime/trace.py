"""Removed module: the workload generators live in ``repro.runtime.workload``.

``repro.runtime.trace`` held the workload generators before the event
tracer (:mod:`repro.obs.tracer`) took over the word "trace".  The
deprecation shim that re-exported them is gone; importing this module now
fails loudly with a pointer to the new home rather than silently aliasing
two different meanings of "trace".
"""

raise ImportError(
    "repro.runtime.trace was removed; import TraceSummary, blended_trace, "
    "fixed_batch_trace and poisson_trace from repro.runtime.workload instead"
)
