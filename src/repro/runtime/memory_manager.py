"""Device-memory bookkeeping for the serving runtime.

Translates a :class:`~repro.perf.phases.Deployment` into a KV allocator of
the right flavour and size: usable device-group memory, minus resident
weights, divided by per-token KV bytes (inflated by the platform's
workspace factor).  Raises :class:`OutOfMemoryError` when even the weights
do not fit — e.g. a 70B fp16 model on the 4x40 GB A100 node (Fig. 32).
"""

from __future__ import annotations

from repro.models.kvcache import kv_bytes_per_token
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.perf.phases import Deployment
from repro.runtime.paged_kv import (
    ContiguousKVAllocator,
    KVAllocator,
    PagedKVAllocator,
)

__all__ = ["OutOfMemoryError", "MemoryManager"]


class OutOfMemoryError(RuntimeError):
    """A deployment or admission cannot fit in device memory."""


class MemoryManager:
    """Capacity accounting plus allocator construction for one deployment."""

    def __init__(self, deployment: Deployment, tracer: Tracer = NULL_TRACER) -> None:
        self.deployment = deployment
        self.tracer = tracer
        self._mem = deployment.memory_model()
        self.weight_bytes = (
            deployment.model.total_params
            * deployment.quant.weight_bytes_per_param()
            * deployment.framework.memory_overhead_factor
        )
        if self.weight_bytes > self._mem.usable_bytes:
            raise OutOfMemoryError(
                f"{deployment.model.name} weights "
                f"({self.weight_bytes / 1024**3:.1f} GiB) exceed "
                f"{deployment.hardware.name} x{deployment.num_devices} usable "
                f"memory ({self._mem.usable_bytes / 1024**3:.1f} GiB)"
            )

    @property
    def kv_bytes_per_token(self) -> float:
        """Effective per-token KV cost including workspace overhead."""
        raw = kv_bytes_per_token(self.deployment.model, self.deployment.kv_spec.precision)
        return raw * (1.0 + self.deployment.hardware.workspace_overhead_factor)

    @property
    def kv_budget_bytes(self) -> float:
        return max(0.0, self._mem.usable_bytes - self.weight_bytes)

    @property
    def kv_budget_tokens(self) -> int:
        return int(self.kv_budget_bytes // self.kv_bytes_per_token)

    def build_allocator(self) -> KVAllocator:
        """Allocator of the deployment's flavour, sized to the KV budget."""
        budget_tokens = self.kv_budget_tokens
        if budget_tokens < 1:
            raise OutOfMemoryError(
                f"no KV budget left on {self.deployment.hardware.name} after "
                f"{self.weight_bytes / 1024**3:.1f} GiB of weights"
            )
        kv_spec = self.deployment.kv_spec
        if self.tracer.enabled:
            self.tracer.instant(
                "kv_alloc",
                "kv_budget",
                ts_s=0.0,
                budget_tokens=budget_tokens,
                weight_gib=round(self.weight_bytes / 1024**3, 3),
                paged=int(kv_spec.paged),
            )
        if kv_spec.paged:
            total_blocks = budget_tokens // kv_spec.block_size
            if total_blocks < 1:
                raise OutOfMemoryError("KV budget smaller than one block")
            return PagedKVAllocator(total_blocks, kv_spec.block_size, tracer=self.tracer)
        return ContiguousKVAllocator(budget_tokens, tracer=self.tracer)
