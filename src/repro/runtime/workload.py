"""Workload generators: request-arrival and length distributions.

The paper's benchmarks use fixed-shape batches (all requests identical,
arriving together); this module also provides Poisson arrivals and
blended-token length distributions so the serving engine can be exercised
under realistic load (summarization-style long-in/short-out, generation-
style short-in/long-out — Section IV-A2's "blended tokens").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.request import GenerationRequest

__all__ = [
    "fixed_batch_trace",
    "poisson_trace",
    "blended_trace",
    "open_loop_trace",
    "shared_prefix_trace",
    "TraceSummary",
]


def fixed_batch_trace(
    batch_size: int, input_tokens: int, output_tokens: int
) -> list[GenerationRequest]:
    """The paper's benchmark shape: identical requests, all at t=0."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    return [
        GenerationRequest(input_tokens=input_tokens, output_tokens=output_tokens)
        for _ in range(batch_size)
    ]


def poisson_trace(
    num_requests: int,
    rate_per_s: float,
    input_tokens: int,
    output_tokens: int,
    seed: int = 0,
) -> list[GenerationRequest]:
    """Requests with exponential inter-arrival gaps at ``rate_per_s``."""
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if rate_per_s <= 0:
        raise ValueError(f"rate_per_s must be positive, got {rate_per_s}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_per_s, size=num_requests)
    arrivals = np.cumsum(gaps)
    arrivals -= arrivals[0]  # first request arrives at t=0
    return [
        GenerationRequest(
            input_tokens=input_tokens,
            output_tokens=output_tokens,
            arrival_time=float(t),
        )
        for t in arrivals
    ]


def blended_trace(
    num_requests: int,
    mean_input_tokens: int,
    mean_output_tokens: int,
    seed: int = 0,
    min_tokens: int = 8,
    max_tokens: int = 8192,
) -> list[GenerationRequest]:
    """Mixed-length requests (lognormal lengths), all arriving at t=0.

    Lognormal with sigma=0.6 gives the heavy-ish tail real prompt traces
    show while keeping the mean at the requested value.
    """
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if min_tokens < 1 or max_tokens < min_tokens:
        raise ValueError("need 1 <= min_tokens <= max_tokens")
    rng = np.random.default_rng(seed)
    sigma = 0.6
    # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); solve mu for the mean.
    mu_in = np.log(mean_input_tokens) - sigma**2 / 2
    mu_out = np.log(mean_output_tokens) - sigma**2 / 2
    ins = np.clip(rng.lognormal(mu_in, sigma, num_requests), min_tokens, max_tokens)
    outs = np.clip(rng.lognormal(mu_out, sigma, num_requests), min_tokens, max_tokens)
    return [
        GenerationRequest(input_tokens=int(i), output_tokens=int(o))
        for i, o in zip(ins, outs)
    ]


def open_loop_trace(
    num_requests: int,
    rate_per_s: float,
    mean_input_tokens: int,
    mean_output_tokens: int,
    seed: int = 0,
) -> list[GenerationRequest]:
    """Poisson arrivals carrying blended (lognormal) lengths.

    The standard online-serving workload: exponential inter-arrival gaps
    at ``rate_per_s`` combined with the heavy-tailed length mix of
    :func:`blended_trace`, from one seed.  Used by the load generator and
    the cluster simulator CLI.
    """
    arrivals = poisson_trace(num_requests, rate_per_s, 1, 1, seed=seed)
    shaped = blended_trace(
        num_requests, mean_input_tokens, mean_output_tokens, seed=seed
    )
    for arrival, request in zip(arrivals, shaped):
        request.arrival_time = arrival.arrival_time
    return shaped


def shared_prefix_trace(
    num_requests: int,
    rate_per_s: float,
    num_prefixes: int,
    prefix_tokens: int,
    unique_tokens: int,
    output_tokens: int,
    seed: int = 0,
) -> list[GenerationRequest]:
    """Poisson arrivals that reuse ``num_prefixes`` shared prompt prefixes.

    Models system-prompt / multi-turn traffic: every request opens with
    one of ``num_prefixes`` identical ``prefix_tokens``-long prefixes
    (chosen uniformly) followed by ``unique_tokens`` of fresh context.
    A prefix-affinity router can steer repeats of a prefix to the replica
    already holding its KV blocks; other policies hit only by chance.
    """
    if num_prefixes < 1:
        raise ValueError(f"num_prefixes must be >= 1, got {num_prefixes}")
    if prefix_tokens < 1 or unique_tokens < 1:
        raise ValueError("prefix_tokens and unique_tokens must be >= 1")
    arrivals = poisson_trace(num_requests, rate_per_s, 1, 1, seed=seed)
    rng = np.random.default_rng(seed + 1)  # decouple from the arrival draw
    prefix_ids = rng.integers(0, num_prefixes, size=num_requests)
    return [
        GenerationRequest(
            input_tokens=prefix_tokens + unique_tokens,
            output_tokens=output_tokens,
            arrival_time=arrival.arrival_time,
            prefix_id=int(pid),
            prefix_tokens=prefix_tokens,
        )
        for arrival, pid in zip(arrivals, prefix_ids)
    ]


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate shape of a trace (for reports and tests)."""

    num_requests: int
    total_input_tokens: int
    total_output_tokens: int
    first_arrival_s: float
    last_arrival_s: float

    @classmethod
    def of(cls, trace: list[GenerationRequest]) -> "TraceSummary":
        if not trace:
            raise ValueError("trace is empty")
        return cls(
            num_requests=len(trace),
            total_input_tokens=sum(r.input_tokens for r in trace),
            total_output_tokens=sum(r.output_tokens for r in trace),
            first_arrival_s=min(r.arrival_time for r in trace),
            last_arrival_s=max(r.arrival_time for r in trace),
        )
