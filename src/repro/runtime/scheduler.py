"""Request schedulers: continuous (in-flight) batching vs static batching.

Continuous batching (vLLM / TRT-LLM / DS-MII, paper Section IV-A1) admits
new requests into the running batch whenever KV capacity and the
max-concurrency limit allow, "even if the requests arrive at different
times or have different input context lengths".  Static batching
(llama.cpp) admits a full batch only when the engine is idle and holds it
to completion.

Two auxiliary structures keep the engine's per-iteration bookkeeping
O(log n) instead of O(n):

* a sorted list of waiting arrival times (``next_arrival`` is its head,
  ``arrived_count`` a bisect) — submissions arrive in nondecreasing order
  so maintenance is an O(1) append in the common case, and preemptions
  re-insert via ``insort``;
* an optional :class:`~repro.runtime.soa.RequestTable` mirroring the
  running set as numpy columns for the vectorized engine core
  (``track_soa=True``); every running-list mutation updates the table so
  row ``i`` always describes ``running[i]``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.request import GenerationRequest, RequestState
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.paged_kv import KVAllocator
from repro.runtime.soa import RequestTable

__all__ = ["SchedulerStats", "Scheduler", "ContinuousBatchingScheduler", "StaticBatchingScheduler"]


@dataclass
class SchedulerStats:
    admitted: int = 0
    finished: int = 0
    admission_rounds: int = 0
    preemptions: int = 0


class Scheduler:
    """Base scheduler: a waiting queue plus the running set.

    ``optimistic=True`` switches paged admission to vLLM's real policy:
    reserve only the prompt's blocks and grow on demand; the engine then
    handles pool exhaustion by preempting (recompute) via :meth:`preempt`.
    """

    def __init__(
        self,
        allocator: KVAllocator,
        max_concurrency: int,
        optimistic: bool = False,
        tracer: Tracer = NULL_TRACER,
        track_soa: bool = False,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {max_concurrency}")
        from repro.runtime.paged_kv import PagedKVAllocator

        if optimistic and not isinstance(allocator, PagedKVAllocator):
            raise ValueError("optimistic admission requires a paged allocator")
        self.allocator = allocator
        self.max_concurrency = max_concurrency
        self.optimistic = optimistic
        self.tracer = tracer
        self.waiting: deque[GenerationRequest] = deque()
        self.running: list[GenerationRequest] = []
        self.stats = SchedulerStats()
        # Sorted arrival times of everything in ``waiting`` (parallel
        # multiset, not parallel order): submissions arrive nondecreasing
        # so the common-case update is an O(1) append.
        self._arrivals: list[float] = []
        self.table: RequestTable | None = RequestTable() if track_soa else None

    def submit(self, request: GenerationRequest) -> None:
        if request.state != RequestState.QUEUED:
            raise ValueError(f"request {request.request_id} is not queued")
        self.waiting.append(request)
        arrivals = self._arrivals
        at = request.arrival_time
        if not arrivals or at >= arrivals[-1]:
            arrivals.append(at)
        else:
            insort(arrivals, at)

    @property
    def has_work(self) -> bool:
        return bool(self.waiting) or bool(self.running)

    def next_arrival(self) -> float:
        """Earliest arrival time among waiting requests, O(1).

        Exact equivalent of ``min(r.arrival_time for r in waiting)``:
        the sorted multiset holds precisely the waiting set's arrival
        times (tests assert the equivalence under preemption churn).
        """
        return self._arrivals[0]

    def arrived_count(self, now: float) -> int:
        """How many waiting requests have ``arrival_time <= now``, O(log n)."""
        return bisect_right(self._arrivals, now)

    def next_future_arrival(self, now: float) -> float | None:
        """Earliest waiting arrival strictly after ``now`` (None if none).

        The span-coalescing bound: already-arrived requests cannot bound a
        decode span (FIFO admission stays blocked until a retirement, which
        ends the span anyway), but a future arrival is a scheduling event
        the span must not skip.
        """
        arrivals = self._arrivals
        i = bisect_right(arrivals, now)
        return arrivals[i] if i < len(arrivals) else None

    def _pop_head(self) -> GenerationRequest:
        """Remove and return the waiting head, maintaining the arrival index."""
        request = self.waiting.popleft()
        arrivals = self._arrivals
        # Any slot holding an equal float is interchangeable.
        del arrivals[bisect_left(arrivals, request.arrival_time)]
        return request

    def _admission_tokens(self, request: GenerationRequest) -> int:
        """Tokens whose blocks must be free to admit this request."""
        if self.optimistic:
            return request.prefill_tokens_needed
        return request.input_tokens + request.output_tokens

    def _can_admit(self, request: GenerationRequest) -> bool:
        return self.allocator.can_admit(self._admission_tokens(request))

    def _admit_one(self, request: GenerationRequest, now: float) -> None:
        final_ctx = request.input_tokens + request.output_tokens
        prompt_ctx = request.prefill_tokens_needed
        if self.optimistic:
            self.allocator.admit(
                request.request_id, prompt_ctx, final_ctx, optimistic=True
            )
        else:
            self.allocator.admit(request.request_id, prompt_ctx, final_ctx)
        request.state = RequestState.PREFILLING
        if request.admit_time is None:
            request.admit_time = now
        self.running.append(request)
        if self.table is not None:
            self.table.append(request)
        self.stats.admitted += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "admit",
                "admit" if request.preemptions == 0 else "readmit",
                ts_s=now,
                request_id=request.request_id,
                prefill_tokens=prompt_ctx,
                queue_depth=len(self.waiting),
                running=len(self.running),
            )

    def preempt(self, request: GenerationRequest) -> None:
        """Evict a running request (recompute policy): free its KV and
        requeue it at the front of the waiting queue."""
        if request not in self.running:
            raise ValueError(f"request {request.request_id} is not running")
        self.allocator.free(request.request_id)
        if self.table is not None:
            self.table.drop(self.running.index(request))
        self.running.remove(request)
        request.mark_preempted()
        self.waiting.appendleft(request)
        insort(self._arrivals, request.arrival_time)
        self.stats.preemptions += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "preempt",
                "preempt",
                request_id=request.request_id,
                restart_context=request.restart_context,
                running=len(self.running),
            )

    def admit(self, now: float) -> list[GenerationRequest]:
        """Move admissible requests from waiting to running; returns them."""
        raise NotImplementedError

    def retire_finished(self) -> list[GenerationRequest]:
        """Remove finished requests from the running set and free their KV."""
        table = self.table
        if table is None:
            done = [r for r in self.running if r.is_finished]
            for request in done:
                self.allocator.free(request.request_id)
                self.stats.finished += 1
            self.running = [r for r in self.running if not r.is_finished]
            return done
        finished = table.finished_rows()
        if len(finished) == 0:
            return []
        running = self.running
        done = [running[i] for i in finished.tolist()]
        for request in done:
            self.allocator.free(request.request_id)
            self.stats.finished += 1
        keep = np.setdiff1d(
            np.arange(table.n, dtype=np.intp), finished, assume_unique=True
        )
        self.running = [running[i] for i in keep.tolist()]
        table.compact(keep)
        return done


class ContinuousBatchingScheduler(Scheduler):
    """Admit whenever capacity allows, up to ``max_concurrency`` running."""

    def admit(self, now: float) -> list[GenerationRequest]:
        admitted: list[GenerationRequest] = []
        while self.waiting and len(self.running) < self.max_concurrency:
            request = self.waiting[0]
            if request.arrival_time > now:
                break
            if not self._can_admit(request):
                break
            self._pop_head()
            self._admit_one(request, now)
            admitted.append(request)
        if admitted:
            self.stats.admission_rounds += 1
        return admitted


class StaticBatchingScheduler(Scheduler):
    """Admit a batch only when idle; hold it until every member finishes."""

    def admit(self, now: float) -> list[GenerationRequest]:
        if self.running:
            return []
        admitted: list[GenerationRequest] = []
        while self.waiting and len(admitted) < self.max_concurrency:
            request = self.waiting[0]
            if request.arrival_time > now:
                break
            if not self._can_admit(request):
                break
            self._pop_head()
            self._admit_one(request, now)
            admitted.append(request)
        if admitted:
            self.stats.admission_rounds += 1
        return admitted
