"""Request schedulers: continuous (in-flight) batching vs static batching.

Continuous batching (vLLM / TRT-LLM / DS-MII, paper Section IV-A1) admits
new requests into the running batch whenever KV capacity and the
max-concurrency limit allow, "even if the requests arrive at different
times or have different input context lengths".  Static batching
(llama.cpp) admits a full batch only when the engine is idle and holds it
to completion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.request import GenerationRequest, RequestState
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.paged_kv import KVAllocator

__all__ = ["SchedulerStats", "Scheduler", "ContinuousBatchingScheduler", "StaticBatchingScheduler"]


@dataclass
class SchedulerStats:
    admitted: int = 0
    finished: int = 0
    admission_rounds: int = 0
    preemptions: int = 0


class Scheduler:
    """Base scheduler: a waiting queue plus the running set.

    ``optimistic=True`` switches paged admission to vLLM's real policy:
    reserve only the prompt's blocks and grow on demand; the engine then
    handles pool exhaustion by preempting (recompute) via :meth:`preempt`.
    """

    def __init__(
        self,
        allocator: KVAllocator,
        max_concurrency: int,
        optimistic: bool = False,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {max_concurrency}")
        from repro.runtime.paged_kv import PagedKVAllocator

        if optimistic and not isinstance(allocator, PagedKVAllocator):
            raise ValueError("optimistic admission requires a paged allocator")
        self.allocator = allocator
        self.max_concurrency = max_concurrency
        self.optimistic = optimistic
        self.tracer = tracer
        self.waiting: deque[GenerationRequest] = deque()
        self.running: list[GenerationRequest] = []
        self.stats = SchedulerStats()

    def submit(self, request: GenerationRequest) -> None:
        if request.state != RequestState.QUEUED:
            raise ValueError(f"request {request.request_id} is not queued")
        self.waiting.append(request)

    @property
    def has_work(self) -> bool:
        return bool(self.waiting) or bool(self.running)

    def _admission_tokens(self, request: GenerationRequest) -> int:
        """Tokens whose blocks must be free to admit this request."""
        if self.optimistic:
            return request.prefill_tokens_needed
        return request.input_tokens + request.output_tokens

    def _can_admit(self, request: GenerationRequest) -> bool:
        return self.allocator.can_admit(self._admission_tokens(request))

    def _admit_one(self, request: GenerationRequest, now: float) -> None:
        final_ctx = request.input_tokens + request.output_tokens
        prompt_ctx = request.prefill_tokens_needed
        if self.optimistic:
            self.allocator.admit(
                request.request_id, prompt_ctx, final_ctx, optimistic=True
            )
        else:
            self.allocator.admit(request.request_id, prompt_ctx, final_ctx)
        request.state = RequestState.PREFILLING
        if request.admit_time is None:
            request.admit_time = now
        self.running.append(request)
        self.stats.admitted += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "admit",
                "admit" if request.preemptions == 0 else "readmit",
                ts_s=now,
                request_id=request.request_id,
                prefill_tokens=prompt_ctx,
                queue_depth=len(self.waiting),
                running=len(self.running),
            )

    def preempt(self, request: GenerationRequest) -> None:
        """Evict a running request (recompute policy): free its KV and
        requeue it at the front of the waiting queue."""
        if request not in self.running:
            raise ValueError(f"request {request.request_id} is not running")
        self.allocator.free(request.request_id)
        self.running.remove(request)
        request.mark_preempted()
        self.waiting.appendleft(request)
        self.stats.preemptions += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "preempt",
                "preempt",
                request_id=request.request_id,
                restart_context=request.restart_context,
                running=len(self.running),
            )

    def admit(self, now: float) -> list[GenerationRequest]:
        """Move admissible requests from waiting to running; returns them."""
        raise NotImplementedError

    def retire_finished(self) -> list[GenerationRequest]:
        """Remove finished requests from the running set and free their KV."""
        done = [r for r in self.running if r.is_finished]
        for request in done:
            self.allocator.free(request.request_id)
            self.stats.finished += 1
        self.running = [r for r in self.running if not r.is_finished]
        return done


class ContinuousBatchingScheduler(Scheduler):
    """Admit whenever capacity allows, up to ``max_concurrency`` running."""

    def admit(self, now: float) -> list[GenerationRequest]:
        admitted: list[GenerationRequest] = []
        while self.waiting and len(self.running) < self.max_concurrency:
            request = self.waiting[0]
            if request.arrival_time > now:
                break
            if not self._can_admit(request):
                break
            self.waiting.popleft()
            self._admit_one(request, now)
            admitted.append(request)
        if admitted:
            self.stats.admission_rounds += 1
        return admitted


class StaticBatchingScheduler(Scheduler):
    """Admit a batch only when idle; hold it until every member finishes."""

    def admit(self, now: float) -> list[GenerationRequest]:
        if self.running:
            return []
        admitted: list[GenerationRequest] = []
        while self.waiting and len(admitted) < self.max_concurrency:
            request = self.waiting[0]
            if request.arrival_time > now:
                break
            if not self._can_admit(request):
                break
            self.waiting.popleft()
            self._admit_one(request, now)
            admitted.append(request)
        if admitted:
            self.stats.admission_rounds += 1
        return admitted
