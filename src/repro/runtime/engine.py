"""Discrete-event serving engine.

The engine executes a request trace against a deployment the way a real
serving stack iterates: admit -> prefill -> decode steps -> retire, with
per-iteration costs supplied by the analytical phase model
(:mod:`repro.perf.phases`).  It produces per-request TTFT/latency, the
paper's aggregate metrics, and a power estimate integrated over phases.

The engine and the closed-form :class:`~repro.perf.estimator
.InferenceEstimator` are two views of the same model; tests cross-check
them on the paper's fixed-shape workloads.

Execution cores (``ServingEngine(core=...)``):

* ``"vector"`` (default) — the vectorized event core: request state lives
  in a struct-of-arrays :class:`~repro.runtime.soa.RequestTable` and each
  decode span / prefill rider chunk commits as one numpy operation
  instead of a Python loop over request objects.
* ``"scalar"`` — the reference implementation: per-token Python loops
  over request objects.  Bit-identical to ``"vector"`` (same results,
  metrics, traces, profiles — enforced by ``tests/test_vector_core.py``);
  it exists to keep the vectorized core honest.
* ``"legacy"`` — the scalar loops with the pre-vectorization span rule
  (coalesce only when the waiting queue is empty), kept as the measured
  "before" of the ``engine_vectorized`` benchmark entries.

Iteration coalescing: a decode span advances every running sequence in
lockstep, evaluating the step cost at the span's mean context — exact for
the affine-in-context step model.  The ``vector``/``scalar`` cores bound
each span by the *next scheduling event* (the caller's horizon, the next
future arrival, a completion) so saturated runs cost O(events) instead of
O(tokens); an arrived-but-blocked queue head cannot shorten a span, since
only a retirement (which ends the span anyway) can unblock admission.
The environment variable ``REPRO_ENGINE_CORE`` overrides the default
core for engines (and cluster replicas) constructed without an explicit
``core=`` — CI uses it to run the whole test suite under both paths.

Execution is resumable: :meth:`ServingEngine.start` returns an
:class:`EngineRun` whose ``submit``/``step`` pair lets a caller interleave
request injection with engine iterations.  :meth:`ServingEngine.run` is
the classic submit-everything-then-drain wrapper; the cluster simulator
(:mod:`repro.cluster`) drives one ``EngineRun`` per replica and routes
arrivals between steps.
"""

from __future__ import annotations

import math
import os
from collections.abc import Callable
from dataclasses import dataclass
from functools import cached_property

from repro.core.metrics import InferenceMetrics, LatencyBreakdown
from repro.core.request import GenerationRequest, RequestState
from repro.hardware.power import PowerModel
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.profiler import NULL_PROFILER, ProfileReport, StepProfiler
from repro.obs.telemetry import NULL_TELEMETRY, TelemetryHub, TelemetrySnapshot
from repro.obs.timeline import RequestTimeline, build_timelines
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.perf.estimator import phase_utilization
from repro.perf.kernel import get_kernel
from repro.perf.phases import Deployment
from repro.runtime.memory_manager import MemoryManager, OutOfMemoryError
from repro.runtime.scheduler import (
    ContinuousBatchingScheduler,
    Scheduler,
    SchedulerStats,
    StaticBatchingScheduler,
)

__all__ = ["EngineResult", "EngineRun", "ServingEngine", "resolve_core"]

_MAX_ITERATIONS = 10_000_000

_VALID_CORES = ("vector", "scalar", "legacy")


def resolve_core(core: str | None) -> str:
    """Validate a core name; ``None`` reads ``REPRO_ENGINE_CORE`` (default
    ``"vector"``)."""
    if core is None:
        core = os.environ.get("REPRO_ENGINE_CORE", "vector")
    if core not in _VALID_CORES:
        raise ValueError(
            f"core must be one of {_VALID_CORES}, got {core!r}"
        )
    return core


@dataclass
class EngineResult:
    """Outcome of one engine run over a trace.

    Derived aggregates (``total_tokens``, ``mean_ttft_s``, ``mean_itl_s``,
    ``timelines()``) are cached on first access — dashboards and reports
    read them repeatedly and the request list is fixed once the result is
    assembled.
    """

    requests: list[GenerationRequest]
    total_time_s: float
    iterations: int
    decode_steps: int
    average_power_w: float
    scheduler_stats: SchedulerStats
    oom: bool = False
    metrics: MetricsSnapshot | None = None  # registry snapshot (traced runs)
    profile: ProfileReport | None = None  # cost attribution (profiled runs)
    telemetry: TelemetrySnapshot | None = None  # streaming series + alerts

    @cached_property
    def total_tokens(self) -> int:
        return sum(r.input_tokens + r.generated_tokens for r in self.requests)

    @property
    def throughput_tokens_per_s(self) -> float:
        """Eq. 2 aggregate: all (input + output) tokens over the makespan."""
        if self.oom or self.total_time_s <= 0:
            return 0.0
        return self.total_tokens / self.total_time_s

    @cached_property
    def mean_ttft_s(self) -> float:
        """Mean TTFT over requests that produced a first token.

        NaN when no request did (e.g. an OOM point inside a sweep) so
        aggregation over mixed sweeps never raises; callers that need a
        hard failure can check ``math.isnan``.
        """
        done = [r for r in self.requests if r.first_token_time is not None]
        if not done:
            return float("nan")
        return sum(r.ttft_s for r in done) / len(done)

    def timelines(self) -> list[RequestTimeline]:
        """Per-request milestone timelines (arrival order)."""
        return list(self._timelines)

    @cached_property
    def _timelines(self) -> list[RequestTimeline]:
        return build_timelines(self.requests)

    @cached_property
    def mean_itl_s(self) -> float:
        """Mean inter-token gap over all decode intervals (Eq. 1 analogue)."""
        total_gap = 0.0
        intervals = 0
        for r in self.requests:
            if r.finish_time is None or r.first_token_time is None:
                continue
            if r.output_tokens > 1:
                total_gap += r.finish_time - r.first_token_time
                intervals += r.output_tokens - 1
        if intervals == 0:
            return 0.0
        return total_gap / intervals

    def to_metrics(self) -> InferenceMetrics:
        """Collapse to the paper's record shape for uniform workloads."""
        if self.oom:
            first = self.requests[0]
            return InferenceMetrics.out_of_memory(
                len(self.requests), first.input_tokens, first.output_tokens
            )
        first = self.requests[0]
        return InferenceMetrics(
            batch_size=len(self.requests),
            input_tokens=first.input_tokens,
            output_tokens=first.output_tokens,
            ttft_s=self.mean_ttft_s,
            end_to_end_latency_s=self.total_time_s,
            itl_s=self.mean_itl_s,
            average_power_w=self.average_power_w,
        )


class ServingEngine:
    """Simulates a serving stack for one deployment."""

    def __init__(
        self,
        deployment: Deployment,
        max_concurrency: int | None = None,
        coalesce: bool = True,
        optimistic: bool = False,
        tracer: Tracer = NULL_TRACER,
        kernel=None,
        profile: bool = False,
        core: str | None = None,
        telemetry: TelemetryHub = NULL_TELEMETRY,
    ) -> None:
        """``optimistic=True`` enables vLLM's real admission policy:
        reserve only prompt blocks and preempt-and-recompute when the KV
        pool runs dry mid-decode (requires a paged deployment).  Because
        that policy grows each request's KV allocation token by token,
        optimistic runs always commit through the scalar per-token loop,
        whatever ``core`` says about the span rule.

        ``tracer`` (default the no-op :data:`~repro.obs.tracer.NULL_TRACER`)
        records span/instant events and metric histograms as the run
        executes; results are bit-identical either way.

        ``profile=True`` attaches a
        :class:`~repro.obs.profiler.StepProfiler` to each run: every
        committed step is attributed to its roofline components and the
        result carries a :class:`~repro.obs.profiler.ProfileReport`.
        Off (the default) the no-op ``NULL_PROFILER`` keeps the hot path
        untouched and results bit-identical.

        ``kernel`` supplies the per-iteration step costs; the default is
        the deployment's shared :class:`~repro.perf.kernel.StepCostKernel`
        (memoized affine fast path).  Pass a
        :class:`~repro.perf.kernel.DirectStepCost` to force un-memoized
        ``phases.py`` evaluation (benchmark baselines).

        ``core`` selects the execution core (see the module docstring):
        ``"vector"`` (default), ``"scalar"``, or ``"legacy"``.

        ``telemetry`` (default the no-op
        :data:`~repro.obs.telemetry.NULL_TELEMETRY`) attaches a streaming
        :class:`~repro.obs.telemetry.TelemetryHub`: runs sample
        queue/batch/KV gauges per iteration, record completions against
        the hub's SLO, and evaluate burn-rate alerts on the hub's tick
        cadence.  Results stay bit-identical either way — only the
        result's ``telemetry`` snapshot differs.  Hubs carry state; pass
        a fresh one per run."""
        if optimistic and not deployment.kv_spec.paged:
            raise ValueError("optimistic admission requires a paged KV spec")
        self.deployment = deployment
        self.kernel = kernel if kernel is not None else get_kernel(deployment)
        self.tracer = tracer
        self.memory = MemoryManager(deployment, tracer=tracer)  # raises if weights don't fit
        self.max_concurrency = max_concurrency or 1024
        self.coalesce = coalesce
        self.optimistic = optimistic
        self.profile = profile
        self.telemetry = telemetry
        self.core = resolve_core(core)
        # Optimistic admission mutates the allocator per token, so its
        # commits stay on the scalar object path even under core="vector".
        self._vector_commit = self.core == "vector" and not optimistic
        self._power = PowerModel(deployment.hardware, deployment.num_devices)

    def _make_scheduler(self) -> Scheduler:
        allocator = self.memory.build_allocator()
        cls = (
            ContinuousBatchingScheduler
            if self.deployment.framework.continuous_batching
            else StaticBatchingScheduler
        )
        return cls(
            allocator,
            self.max_concurrency,
            optimistic=self.optimistic,
            tracer=self.tracer,
            track_soa=self._vector_commit,
        )

    # ------------------------------------------------------------------

    def start(
        self, pressure: Callable[[], bool] | None = None
    ) -> "EngineRun":
        """Begin a resumable run with an empty queue (see :class:`EngineRun`).

        ``pressure`` is an optional callback the run consults before
        coalescing a decode span: when it returns True, more requests may
        still be submitted at times the caller cannot bound with a step
        ``horizon`` (e.g. disaggregated KV handoffs spawned by another
        replica's in-flight work), so the run keeps single-step iteration
        boundaries — exactly as it would if those requests already sat in
        its waiting queue."""
        return EngineRun(self, pressure=pressure)

    def run(self, trace: list[GenerationRequest]) -> EngineResult:
        """Execute a trace to completion; raises OutOfMemoryError only when
        a request can never fit even on an idle engine."""
        if not trace:
            raise ValueError("trace is empty")
        run = self.start()
        for request in sorted(trace, key=lambda r: r.arrival_time):
            run.submit(request)
        while run.has_work:
            run.step()
        return run.result(requests=list(trace))

    # ------------------------------------------------------------------

    def _run_prefill(
        self,
        run: "EngineRun",
        admitted: list[GenerationRequest],
        decoding: list[GenerationRequest] | None,
        riders: int,
    ) -> None:
        """Prefill newly admitted prompts (advances ``run`` in place).

        With chunked prefill (vLLM chunked prefill / DS-MII Dynamic
        SplitFuse / TRT-LLM in-flight batching), the prompt is processed
        in chunks and already-decoding streams advance one token per
        chunk instead of stalling for the whole prefill — the mechanism
        behind those frameworks' smoother tail ITL under load.

        ``decoding`` lists the rider requests on the scalar/legacy cores;
        the vector core passes ``None`` and rides the first ``riders``
        rows of the scheduler's request table instead (admission appends,
        so pre-admission requests always occupy the table's head).
        """
        batch = len(admitted)
        # Preempted requests re-prefill their full context (recompute).
        max_input = max(r.prefill_tokens_needed for r in admitted)
        # Captured before any mutation: the prefill work this pass retires.
        owed = sum(r.prefill_tokens_needed for r in admitted)
        fw = self.deployment.framework
        chunks = 1
        if fw.chunked_prefill and riders:
            per_chunk_len = max(1, fw.prefill_chunk_tokens // max(1, batch))
            chunks = -(-max_input // per_chunk_len)
        chunk_len = -(-max_input // chunks)

        scheduler = run.scheduler
        table = scheduler.table
        running = scheduler.running
        now = run.now
        traced = self.tracer.enabled
        profiler = run.profiler
        for chunk in range(chunks):
            breakdown = self.kernel.prefill(batch, chunk_len)
            if run.cost_scale != 1.0:  # fault-injected straggler multiplier
                breakdown = breakdown.scaled(run.cost_scale)
            power_w = self._phase_power(breakdown)
            run.energy_j += breakdown.total_s * power_w
            if profiler.enabled:
                profiler.record_prefill(
                    now, breakdown, batch, chunk_len,
                    breakdown.total_s * power_w, admitted,
                )
            if traced:
                self.tracer.complete(
                    "prefill",
                    "prefill" if chunks == 1 else f"prefill_chunk_{chunk}",
                    now,
                    breakdown.total_s,
                    batch=batch,
                    tokens=chunk_len,
                    riders=riders,
                )
                self.tracer.counter(
                    "power_sample", "power_w", ts_s=now, watts=round(power_w, 3)
                )
            now += breakdown.total_s
            if traced:
                self.tracer.advance(now)
            # Decoding streams ride along with the chunk (their token is
            # folded into the fused chunk's batch at negligible marginal
            # cost — the SplitFuse effect).
            if decoding is not None:
                for request in decoding:
                    if request.generated_tokens < request.output_tokens:
                        request.record_token(now)
                        run._outstanding -= 1
            elif riders:
                given, newly = table.commit_rider_chunk(riders)
                run._outstanding -= given
                for i in newly.tolist():
                    request = running[i]
                    request.generated_tokens = request.output_tokens
                    request.finish_time = now
                    request.state = RequestState.FINISHED
        for request in admitted:
            if request.generated_tokens == 0:
                request.record_token(now)  # prefill emits the first token
                run._outstanding -= 1
            else:
                # A preempted request resumed: the re-prefill recreated its
                # KV state; its next token comes from the next decode step.
                request.state = RequestState.DECODING
        if table is not None:
            # The admitted requests mutated through the object path above;
            # refresh their (tail) rows.
            table.sync_tail(running, batch)
        run._outstanding -= owed
        run.now = now

    def _run_decode_span(
        self,
        run: "EngineRun",
        running: list[GenerationRequest],
        steps: int,
    ) -> None:
        now = run.now
        batch = len(running)
        table = run.scheduler.table
        if table is not None:
            ctx_sum = table.context_sum()
        else:
            ctx_sum = sum(r.context_length for r in running)
        mean_ctx = ctx_sum / batch
        # Context at the span's midpoint (contexts grow one token per step).
        span_ctx = max(1, round(mean_ctx + (steps - 1) / 2.0))
        step_bd = self.kernel.decode_step(batch, span_ctx)
        if run.cost_scale != 1.0:  # fault-injected straggler multiplier
            step_bd = step_bd.scaled(run.cost_scale)
        span_bd = step_bd.scaled(float(steps))
        step_power_w = self._phase_power(step_bd)
        run.energy_j += span_bd.total_s * step_power_w
        if run.profiler.enabled:
            run.profiler.record_decode(
                now, step_bd, batch, span_ctx, steps,
                span_bd.total_s * step_power_w, running,
            )
        traced = self.tracer.enabled
        if traced:
            self.tracer.complete(
                "decode_span",
                "decode",
                now,
                span_bd.total_s,
                batch=batch,
                steps=steps,
                span_ctx=span_ctx,
            )
            self.tracer.counter(
                "power_sample", "power_w", ts_s=now, watts=round(step_power_w, 3)
            )
        if table is not None:
            # Vectorized commit: every row advances ``steps`` tokens in one
            # array pass.  The span rule guarantees no mid-span completion,
            # so each finisher's last token lands exactly at the span end —
            # the identical float expression the scalar loop evaluates.
            finished = table.commit_decode(steps)
            last_time = now + step_bd.total_s * steps
            if traced:
                self.tracer.advance(last_time)
            for i in finished.tolist():
                request = running[i]
                request.generated_tokens = request.output_tokens
                request.finish_time = last_time
                request.state = RequestState.FINISHED
            run._outstanding -= batch * steps
        else:
            active = list(running)
            for i in range(steps):
                token_time = now + step_bd.total_s * (i + 1)
                if traced:
                    self.tracer.advance(token_time)
                for request in list(active):
                    if request not in active:
                        continue  # preempted earlier within this step
                    if self.optimistic:
                        self._append_or_preempt(run, active, request)
                    request.record_token(token_time)
                    run._outstanding -= 1
        run.now = now + span_bd.total_s

    def _append_or_preempt(
        self,
        run: "EngineRun",
        active: list[GenerationRequest],
        request: GenerationRequest,
    ) -> None:
        """Grow ``request``'s KV by one token, evicting newer requests
        (recompute preemption) until the pool has room."""
        from repro.runtime.paged_kv import AllocationError

        scheduler = run.scheduler
        while True:
            try:
                scheduler.allocator.append_token(request.request_id)
                return
            except AllocationError:
                victim = self._choose_victim(scheduler, request)
                if victim is None:
                    raise OutOfMemoryError(
                        f"request {request.request_id} cannot grow and no "
                        "victim remains to preempt"
                    )
                pre = (
                    victim.prefill_tokens_needed
                    if victim.state == RequestState.PREFILLING
                    else 0
                )
                scheduler.preempt(victim)
                # Back in the queue the victim owes a full re-prefill of
                # its restart context (beyond whatever it owed running).
                run._outstanding += victim.prefill_tokens_needed - pre
                if victim in active:
                    active.remove(victim)

    @staticmethod
    def _choose_victim(
        scheduler: Scheduler, protect: GenerationRequest
    ) -> GenerationRequest | None:
        """Newest running request other than ``protect`` (vLLM evicts the
        most recently admitted sequence first)."""
        for candidate in reversed(scheduler.running):
            if candidate is not protect and not candidate.is_finished:
                return candidate
        return None

    def _phase_power(self, breakdown: LatencyBreakdown) -> float:
        util = phase_utilization(breakdown, self.deployment.framework.power_intensity)
        return self._power.group_power_w(util)


class EngineRun:
    """Resumable execution state of one :class:`ServingEngine`.

    Holds everything a run accumulates — scheduler, simulation clock,
    energy, iteration counters, metrics registry — so callers can
    interleave :meth:`submit` and :meth:`step`.  ``ServingEngine.run`` is
    the submit-all-then-drain wrapper; the cluster simulator steps many
    runs against a shared arrival stream, routing each request when the
    fleet has caught up to its arrival time.

    ``horizon`` on :meth:`step` caps *voluntary* idle jumps and (on the
    ``vector``/``scalar`` cores) bounds coalesced decode spans: an idle
    engine normally fast-forwards to its next queued arrival, but a
    cluster replica must not skip past a routing instant it cannot yet
    see.  Committed work (a prefill pass, a decode span) may still end
    past the horizon — events are atomic, exactly as a newly arrived
    request waits out the in-flight iteration on a real engine.
    """

    def __init__(
        self,
        engine: ServingEngine,
        pressure: Callable[[], bool] | None = None,
    ) -> None:
        self.engine = engine
        self.scheduler = engine._make_scheduler()
        self.tracer = engine.tracer
        self._traced = engine.tracer.enabled
        self._registry: MetricsRegistry | None = (
            MetricsRegistry() if self._traced else None
        )
        self.telemetry = engine.telemetry
        self._telemetry_on = engine.telemetry.enabled
        self._pressure = pressure
        self.profiler = (
            StepProfiler(
                engine.deployment, kernel=engine.kernel, tracer=engine.tracer
            )
            if engine.profile
            else NULL_PROFILER
        )
        self.now = 0.0
        # Control-plane hook: every committed step cost is multiplied by
        # this factor.  1.0 (the default) is checked by identity before any
        # arithmetic, so un-faulted runs stay bit-identical; a fault
        # schedule sets it >1.0 for the duration of a straggler window.
        self.cost_scale = 1.0
        self.iterations = 0
        self.decode_steps = 0
        self.energy_j = 0.0
        self.idle_s = 0.0
        self.submitted: list[GenerationRequest] = []
        # Outstanding-token tally, maintained incrementally at every
        # submit/record_token/prefill/preemption event so the router-facing
        # ``outstanding_tokens`` property is O(1) instead of an O(n) scan
        # per routing instant (tests assert it equals the scan).
        self._outstanding = 0

    # ------------------------------------------------------------------

    def submit(self, request: GenerationRequest) -> None:
        """Queue a request; callers submit in nondecreasing arrival order."""
        self.scheduler.submit(request)
        self.submitted.append(request)
        self._outstanding += (
            request.prefill_tokens_needed
            + request.output_tokens
            - request.generated_tokens
        )

    @property
    def has_work(self) -> bool:
        return self.scheduler.has_work

    def step(self, horizon: float | None = None) -> list[GenerationRequest]:
        """Execute one engine iteration; returns the requests it retired."""
        scheduler = self.scheduler
        if not scheduler.has_work:
            raise RuntimeError("step() called on a drained run")
        if horizon is not None and horizon <= self.now:
            raise ValueError(f"horizon {horizon} is not ahead of t={self.now}")
        engine = self.engine
        self.iterations += 1
        if self.iterations > _MAX_ITERATIONS:
            raise RuntimeError("engine exceeded the iteration safeguard")
        if self._traced:
            self.tracer.advance(self.now)
            self._sample_gauges()
        if self._telemetry_on:
            self._sample_telemetry()

        admitted = scheduler.admit(self.now)
        if admitted:
            if scheduler.table is not None:
                riders = len(scheduler.running) - len(admitted)
                engine._run_prefill(self, admitted, None, riders)
            else:
                admitted_ids = {id(r) for r in admitted}
                decoding = [
                    r
                    for r in scheduler.running
                    if id(r) not in admitted_ids
                    and r.state == RequestState.DECODING
                    and r.generated_tokens < r.output_tokens
                ]
                engine._run_prefill(self, admitted, decoding, len(decoding))
            retired = scheduler.retire_finished()  # 1-token requests
            self._observe_retired(retired)
            return retired

        running = scheduler.running
        if not running:
            next_arrival = scheduler.next_arrival()
            if next_arrival > self.now:
                # Idle until the next arrival (or the caller's horizon).
                target = next_arrival if horizon is None else min(next_arrival, horizon)
                span = target - self.now
                self.energy_j += span * engine._power.group_power_w(0.0)
                self.idle_s += span
                if self.profiler.enabled:
                    self.profiler.record_idle(
                        self.now, span, span * engine._power.group_power_w(0.0)
                    )
                if self._traced:
                    self.tracer.complete("engine", "idle", self.now, span)
                self.now = target
                return []
            raise OutOfMemoryError(
                "a queued request cannot fit even on an idle engine "
                f"({engine.deployment.hardware.name} x"
                f"{engine.deployment.num_devices})"
            )

        steps = self._coalesced_steps(horizon)
        engine._run_decode_span(self, running, steps)
        self.decode_steps += steps
        retired = scheduler.retire_finished()
        self._observe_retired(retired)
        return retired

    def result(
        self, requests: list[GenerationRequest] | None = None
    ) -> EngineResult:
        """Finalize the run (close gauge series) and assemble the result."""
        table = self.scheduler.table
        if table is not None:
            # Lazily-synced rows (requests still mid-decode, e.g. on a
            # crashed replica) write their progress back to the objects.
            table.flush(self.scheduler.running)
        if self._traced:
            self.tracer.advance(self.now)
            self._sample_gauges()  # close the gauge series
        telemetry_snapshot: TelemetrySnapshot | None = None
        if self._telemetry_on:
            # Closeout: flush buffered completions and settle alerts at
            # the run's horizon.
            self._emit_alerts(self.telemetry.finish(self.now))
            telemetry_snapshot = self.telemetry.snapshot()
        resolved = list(requests) if requests is not None else list(self.submitted)
        return EngineResult(
            requests=resolved,
            total_time_s=self.now,
            iterations=self.iterations,
            decode_steps=self.decode_steps,
            average_power_w=(self.energy_j / self.now if self.now > 0 else 0.0),
            scheduler_stats=self.scheduler.stats,
            metrics=self._final_snapshot(),
            profile=(
                self.profiler.report(self.now, resolved)
                if self.profiler.enabled
                else None
            ),
            telemetry=telemetry_snapshot,
        )

    # ------------------------------------------------------------------
    # Router-facing state summaries (cheap, read-only).

    @property
    def outstanding_tokens(self) -> int:
        """Work not yet done: prefill still owed plus output still to emit.

        O(1): the tally is maintained incrementally at every submit,
        token, prefill and preemption event.  Routers poll this per
        routing instant, so the fleet no longer pays an O(requests) scan
        per arrival.  :meth:`outstanding_tokens_scan` recomputes it from
        scheduler state; tests assert the two agree after every step.
        """
        return self._outstanding

    def outstanding_tokens_scan(self) -> int:
        """Reference O(n) recomputation of :attr:`outstanding_tokens`."""
        table = self.scheduler.table
        if table is not None:
            table.flush(self.scheduler.running)
        total = 0
        for r in self.scheduler.waiting:
            total += r.prefill_tokens_needed + r.output_tokens - r.generated_tokens
        for r in self.scheduler.running:
            total += r.output_tokens - r.generated_tokens
            if r.state == RequestState.PREFILLING:
                total += r.prefill_tokens_needed
        return total

    @property
    def queue_depth(self) -> int:
        return len(self.scheduler.waiting)

    @property
    def kv_used_fraction(self) -> float:
        allocator = self.scheduler.allocator
        capacity = allocator.capacity_tokens
        return allocator.used_tokens / capacity if capacity > 0 else 0.0

    # ------------------------------------------------------------------

    def _coalesced_steps(self, horizon: float | None) -> int:
        """How many decode steps to commit as one span.

        ``legacy`` core: coalesce to the shortest remaining budget only
        when nothing is waiting anywhere (queue or ``pressure``), else 1.

        ``vector``/``scalar`` cores (shared rule — their spans must be
        bit-identical): bound the span by the next *scheduling event* —
        the caller's ``horizon`` and the next future arrival.  An
        arrived-but-blocked head is no bound: FIFO admission stays blocked
        until a retirement, and a retirement ends the span anyway.  The
        step count to reach the bound is estimated from the current batch
        state (one kernel probe); spans may overshoot the bound by part of
        a step, matching the atomic in-flight iteration a real engine
        finishes before admitting new work.  ``pressure`` (work that may
        be injected *before* the horizon, e.g. disaggregated handoffs)
        still forces single-step boundaries.
        """
        scheduler = self.scheduler
        engine = self.engine
        table = scheduler.table
        if table is not None:
            min_remaining = table.min_remaining()
        else:
            min_remaining = min(
                r.output_tokens - r.generated_tokens for r in scheduler.running
            )
        if min_remaining <= 1 or not engine.coalesce:
            return 1
        if engine.core == "legacy":
            if scheduler.waiting:
                return 1
            if self._pressure is not None and self._pressure():
                return 1
            return min_remaining
        if self._pressure is not None and self._pressure():
            return 1
        limit = horizon
        if scheduler.waiting:
            at = scheduler.next_future_arrival(self.now)
            if at is not None and (limit is None or at < limit):
                limit = at
        if limit is None:
            return min_remaining
        batch = len(scheduler.running)
        if table is not None:
            ctx_sum = table.context_sum()
        else:
            ctx_sum = sum(r.context_length for r in scheduler.running)
        est = engine.kernel.decode_step(
            batch, max(1, round(ctx_sum / batch))
        ).total_s
        if self.cost_scale != 1.0:
            est *= self.cost_scale
        k = math.ceil((limit - self.now) / est)
        if k < 1:
            k = 1
        return min(min_remaining, k)

    # ------------------------------------------------------------------
    # Observability helpers (no-ops unless a recording tracer is set).

    def _sample_gauges(self) -> None:
        """One per-iteration sample of the operator-facing gauges."""
        registry = self._registry
        if registry is None:
            return
        now = self.now
        scheduler = self.scheduler
        arrived = scheduler.arrived_count(now)
        registry.gauge("queue_depth").set(arrived, ts_s=now)
        registry.gauge("batch_size").set(len(scheduler.running), ts_s=now)
        allocator = scheduler.allocator
        capacity = allocator.capacity_tokens
        if capacity > 0:
            registry.gauge("kv_occupancy").set(
                allocator.used_tokens / capacity, ts_s=now
            )

    def _observe_retired(self, done: list[GenerationRequest]) -> None:
        """Record per-request latency histograms at retirement."""
        if not done:
            return
        registry = self._registry
        if registry is not None:
            for request in done:
                registry.histogram("ttft_s").record(request.ttft_s)
                registry.histogram("e2e_s").record(request.end_to_end_latency_s)
                if request.output_tokens > 0:
                    # NTPOT: whole-request latency per generated token
                    # (queueing and prefill included, unlike ITL).
                    registry.histogram("ntpot_s").record(
                        request.end_to_end_latency_s / request.output_tokens
                    )
                if request.output_tokens > 1 and request.first_token_time is not None:
                    gap = (request.finish_time - request.first_token_time) / (
                        request.output_tokens - 1
                    )
                    registry.histogram("itl_s").record(gap)
        if self._telemetry_on:
            hub = self.telemetry
            for request in done:
                first = request.first_token_time
                ttft = request.ttft_s if first is not None else float("nan")
                if request.output_tokens > 1 and first is not None:
                    itl = (request.finish_time - first) / (
                        request.output_tokens - 1
                    )
                else:
                    itl = float("nan")
                hub.record_completion(
                    request.finish_time,
                    ttft,
                    itl,
                    hub.slo_for(request.tenant).met_by(request),
                    tenant=request.tenant,
                )

    def _sample_telemetry(self) -> None:
        """Per-iteration telemetry sample plus a throttled budget tick."""
        hub = self.telemetry
        now = self.now
        scheduler = self.scheduler
        hub.sample(
            "engine.queue_depth", now, float(scheduler.arrived_count(now))
        )
        hub.sample("engine.batch_size", now, float(len(scheduler.running)))
        allocator = scheduler.allocator
        capacity = allocator.capacity_tokens
        if capacity > 0:
            hub.sample(
                "engine.kv_occupancy", now, allocator.used_tokens / capacity
            )
        if now - hub.last_tick_s >= hub.tick_interval_s:
            self._emit_alerts(hub.tick(now))

    def _emit_alerts(self, transitions) -> None:
        """Land alert transitions as control-category trace instants."""
        if not self._traced:
            return
        for alert in transitions:
            self.tracer.instant(
                "control",
                f"alert:{alert.name}:{alert.state}",
                ts_s=alert.ts_s,
                severity=alert.severity,
                value=alert.value,
                threshold=alert.threshold,
            )

    def _final_snapshot(self) -> MetricsSnapshot | None:
        registry = self._registry
        if registry is None:
            return None
        stats = self.scheduler.stats
        registry.counter("admitted").inc(stats.admitted)
        registry.counter("finished").inc(stats.finished)
        registry.counter("preemptions").inc(stats.preemptions)
        registry.counter("decode_steps").inc(self.decode_steps)
        return registry.snapshot()
