"""Discrete-event serving engine.

The engine executes a request trace against a deployment the way a real
serving stack iterates: admit -> prefill -> decode steps -> retire, with
per-iteration costs supplied by the analytical phase model
(:mod:`repro.perf.phases`).  It produces per-request TTFT/latency, the
paper's aggregate metrics, and a power estimate integrated over phases.

The engine and the closed-form :class:`~repro.perf.estimator
.InferenceEstimator` are two views of the same model; tests cross-check
them on the paper's fixed-shape workloads.

Iteration coalescing: when every running sequence advances in lockstep and
no admission can occur mid-span (the paper's fixed batches), the engine
executes many decode steps as one span, evaluating the step cost at the
span's mean context — exact for the affine-in-context step model and
O(events) instead of O(tokens).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import InferenceMetrics, LatencyBreakdown
from repro.core.request import GenerationRequest, RequestState
from repro.hardware.power import PowerModel
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.timeline import RequestTimeline, build_timelines
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.perf.estimator import phase_utilization
from repro.perf.phases import Deployment, decode_step_breakdown, prefill_breakdown
from repro.runtime.memory_manager import MemoryManager, OutOfMemoryError
from repro.runtime.scheduler import (
    ContinuousBatchingScheduler,
    Scheduler,
    SchedulerStats,
    StaticBatchingScheduler,
)

__all__ = ["EngineResult", "ServingEngine"]

_MAX_ITERATIONS = 10_000_000


@dataclass
class EngineResult:
    """Outcome of one engine run over a trace."""

    requests: list[GenerationRequest]
    total_time_s: float
    iterations: int
    decode_steps: int
    average_power_w: float
    scheduler_stats: SchedulerStats
    oom: bool = False
    metrics: MetricsSnapshot | None = None  # registry snapshot (traced runs)

    @property
    def total_tokens(self) -> int:
        return sum(r.input_tokens + r.generated_tokens for r in self.requests)

    @property
    def throughput_tokens_per_s(self) -> float:
        """Eq. 2 aggregate: all (input + output) tokens over the makespan."""
        if self.oom or self.total_time_s <= 0:
            return 0.0
        return self.total_tokens / self.total_time_s

    @property
    def mean_ttft_s(self) -> float:
        """Mean TTFT over requests that produced a first token.

        NaN when no request did (e.g. an OOM point inside a sweep) so
        aggregation over mixed sweeps never raises; callers that need a
        hard failure can check ``math.isnan``.
        """
        done = [r for r in self.requests if r.first_token_time is not None]
        if not done:
            return float("nan")
        return sum(r.ttft_s for r in done) / len(done)

    def timelines(self) -> list[RequestTimeline]:
        """Per-request milestone timelines (arrival order)."""
        return build_timelines(self.requests)

    @property
    def mean_itl_s(self) -> float:
        """Mean inter-token gap over all decode intervals (Eq. 1 analogue)."""
        total_gap = 0.0
        intervals = 0
        for r in self.requests:
            if r.finish_time is None or r.first_token_time is None:
                continue
            if r.output_tokens > 1:
                total_gap += r.finish_time - r.first_token_time
                intervals += r.output_tokens - 1
        if intervals == 0:
            return 0.0
        return total_gap / intervals

    def to_metrics(self) -> InferenceMetrics:
        """Collapse to the paper's record shape for uniform workloads."""
        if self.oom:
            first = self.requests[0]
            return InferenceMetrics.out_of_memory(
                len(self.requests), first.input_tokens, first.output_tokens
            )
        first = self.requests[0]
        return InferenceMetrics(
            batch_size=len(self.requests),
            input_tokens=first.input_tokens,
            output_tokens=first.output_tokens,
            ttft_s=self.mean_ttft_s,
            end_to_end_latency_s=self.total_time_s,
            itl_s=self.mean_itl_s,
            average_power_w=self.average_power_w,
        )


class ServingEngine:
    """Simulates a serving stack for one deployment."""

    def __init__(
        self,
        deployment: Deployment,
        max_concurrency: int | None = None,
        coalesce: bool = True,
        optimistic: bool = False,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        """``optimistic=True`` enables vLLM's real admission policy:
        reserve only prompt blocks and preempt-and-recompute when the KV
        pool runs dry mid-decode (requires a paged deployment).

        ``tracer`` (default the no-op :data:`~repro.obs.tracer.NULL_TRACER`)
        records span/instant events and metric histograms as the run
        executes; results are bit-identical either way."""
        if optimistic and not deployment.kv_spec.paged:
            raise ValueError("optimistic admission requires a paged KV spec")
        self.deployment = deployment
        self.tracer = tracer
        self.memory = MemoryManager(deployment, tracer=tracer)  # raises if weights don't fit
        self.max_concurrency = max_concurrency or 1024
        self.coalesce = coalesce
        self.optimistic = optimistic
        self._power = PowerModel(deployment.hardware, deployment.num_devices)
        self._metrics: MetricsRegistry | None = None

    def _make_scheduler(self) -> Scheduler:
        allocator = self.memory.build_allocator()
        cls = (
            ContinuousBatchingScheduler
            if self.deployment.framework.continuous_batching
            else StaticBatchingScheduler
        )
        return cls(
            allocator,
            self.max_concurrency,
            optimistic=self.optimistic,
            tracer=self.tracer,
        )

    # ------------------------------------------------------------------

    def run(self, trace: list[GenerationRequest]) -> EngineResult:
        """Execute a trace to completion; raises OutOfMemoryError only when
        a request can never fit even on an idle engine."""
        if not trace:
            raise ValueError("trace is empty")
        scheduler = self._make_scheduler()
        for request in sorted(trace, key=lambda r: r.arrival_time):
            scheduler.submit(request)

        traced = self.tracer.enabled
        self._metrics = MetricsRegistry() if traced else None

        now = 0.0
        iterations = 0
        decode_steps = 0
        energy_j = 0.0

        while scheduler.has_work:
            iterations += 1
            if iterations > _MAX_ITERATIONS:
                raise RuntimeError("engine exceeded the iteration safeguard")
            if traced:
                self.tracer.advance(now)
                self._sample_gauges(scheduler, now)

            admitted = scheduler.admit(now)
            if admitted:
                decoding = [
                    r
                    for r in scheduler.running
                    if r not in admitted
                    and r.state == RequestState.DECODING
                    and r.generated_tokens < r.output_tokens
                ]
                now, energy_j = self._run_prefill(admitted, decoding, now, energy_j)
                self._observe_retired(scheduler.retire_finished())  # 1-token requests
                continue

            running = scheduler.running
            if not running:
                next_arrival = min(r.arrival_time for r in scheduler.waiting)
                if next_arrival > now:
                    # Idle until the next request arrives.
                    energy_j += (next_arrival - now) * self._power.group_power_w(0.0)
                    if traced:
                        self.tracer.complete(
                            "engine", "idle", now, next_arrival - now
                        )
                    now = next_arrival
                    continue
                raise OutOfMemoryError(
                    "a queued request cannot fit even on an idle engine "
                    f"({self.deployment.hardware.name} x"
                    f"{self.deployment.num_devices})"
                )

            steps = self._coalesced_steps(scheduler, now)
            now, energy_j = self._run_decode_span(
                scheduler, running, steps, now, energy_j
            )
            decode_steps += steps
            self._observe_retired(scheduler.retire_finished())

        if traced:
            self.tracer.advance(now)
            self._sample_gauges(scheduler, now)  # close the gauge series
        return EngineResult(
            requests=list(trace),
            total_time_s=now,
            iterations=iterations,
            decode_steps=decode_steps,
            average_power_w=(energy_j / now if now > 0 else 0.0),
            scheduler_stats=scheduler.stats,
            metrics=self._final_snapshot(scheduler, decode_steps),
        )

    # ------------------------------------------------------------------
    # Observability helpers (no-ops unless a recording tracer is set).

    def _sample_gauges(self, scheduler: Scheduler, now: float) -> None:
        """One per-iteration sample of the operator-facing gauges."""
        registry = self._metrics
        if registry is None:
            return
        arrived = sum(1 for r in scheduler.waiting if r.arrival_time <= now)
        registry.gauge("queue_depth").set(arrived, ts_s=now)
        registry.gauge("batch_size").set(len(scheduler.running), ts_s=now)
        allocator = scheduler.allocator
        capacity = allocator.capacity_tokens
        if capacity > 0:
            registry.gauge("kv_occupancy").set(
                allocator.used_tokens / capacity, ts_s=now
            )

    def _observe_retired(self, done: list[GenerationRequest]) -> None:
        """Record per-request latency histograms at retirement."""
        registry = self._metrics
        if registry is None or not done:
            return
        for request in done:
            registry.histogram("ttft_s").record(request.ttft_s)
            registry.histogram("e2e_s").record(request.end_to_end_latency_s)
            if request.output_tokens > 1 and request.first_token_time is not None:
                gap = (request.finish_time - request.first_token_time) / (
                    request.output_tokens - 1
                )
                registry.histogram("itl_s").record(gap)

    def _final_snapshot(
        self, scheduler: Scheduler, decode_steps: int
    ) -> MetricsSnapshot | None:
        registry = self._metrics
        if registry is None:
            return None
        stats = scheduler.stats
        registry.counter("admitted").inc(stats.admitted)
        registry.counter("finished").inc(stats.finished)
        registry.counter("preemptions").inc(stats.preemptions)
        registry.counter("decode_steps").inc(decode_steps)
        return registry.snapshot()

    # ------------------------------------------------------------------

    def _run_prefill(
        self,
        admitted: list[GenerationRequest],
        decoding: list[GenerationRequest],
        now: float,
        energy_j: float,
    ) -> tuple[float, float]:
        """Prefill newly admitted prompts.

        With chunked prefill (vLLM chunked prefill / DS-MII Dynamic
        SplitFuse / TRT-LLM in-flight batching), the prompt is processed
        in chunks and already-decoding streams advance one token per
        chunk instead of stalling for the whole prefill — the mechanism
        behind those frameworks' smoother tail ITL under load.
        """
        batch = len(admitted)
        # Preempted requests re-prefill their full context (recompute).
        max_input = max(r.prefill_tokens_needed for r in admitted)
        fw = self.deployment.framework
        chunks = 1
        if fw.chunked_prefill and decoding:
            per_chunk_len = max(1, fw.prefill_chunk_tokens // max(1, batch))
            chunks = -(-max_input // per_chunk_len)
        chunk_len = -(-max_input // chunks)

        traced = self.tracer.enabled
        for chunk in range(chunks):
            breakdown = prefill_breakdown(self.deployment, batch, chunk_len)
            power_w = self._phase_power(breakdown)
            energy_j += breakdown.total_s * power_w
            if traced:
                self.tracer.complete(
                    "prefill",
                    "prefill" if chunks == 1 else f"prefill_chunk_{chunk}",
                    now,
                    breakdown.total_s,
                    batch=batch,
                    tokens=chunk_len,
                    riders=len(decoding),
                )
                self.tracer.counter(
                    "power_sample", "power_w", ts_s=now, watts=round(power_w, 3)
                )
            now += breakdown.total_s
            if traced:
                self.tracer.advance(now)
            # Decoding streams ride along with the chunk (their token is
            # folded into the fused chunk's batch at negligible marginal
            # cost — the SplitFuse effect).
            for request in decoding:
                if request.generated_tokens < request.output_tokens:
                    request.record_token(now)
        for request in admitted:
            if request.generated_tokens == 0:
                request.record_token(now)  # prefill emits the first token
            else:
                # A preempted request resumed: the re-prefill recreated its
                # KV state; its next token comes from the next decode step.
                request.state = RequestState.DECODING
        return now, energy_j

    def _coalesced_steps(self, scheduler: Scheduler, now: float) -> int:
        """How many decode steps can run before the running set changes."""
        running = scheduler.running
        min_remaining = min(r.output_tokens - r.generated_tokens for r in running)
        if min_remaining <= 1 or not self.coalesce:
            return 1
        # An admission opportunity mid-span would change the batch: only
        # coalesce when nothing is waiting (arrived or future).
        if scheduler.waiting:
            return 1
        return min_remaining

    def _run_decode_span(
        self,
        scheduler: Scheduler,
        running: list[GenerationRequest],
        steps: int,
        now: float,
        energy_j: float,
    ) -> tuple[float, float]:
        batch = len(running)
        mean_ctx = sum(r.context_length for r in running) / batch
        # Context at the span's midpoint (contexts grow one token per step).
        span_ctx = max(1, round(mean_ctx + (steps - 1) / 2.0))
        step_bd = decode_step_breakdown(self.deployment, batch, span_ctx)
        span_bd = step_bd.scaled(float(steps))
        step_power_w = self._phase_power(step_bd)
        energy_j += span_bd.total_s * step_power_w
        traced = self.tracer.enabled
        if traced:
            self.tracer.complete(
                "decode_span",
                "decode",
                now,
                span_bd.total_s,
                batch=batch,
                steps=steps,
                span_ctx=span_ctx,
            )
            self.tracer.counter(
                "power_sample", "power_w", ts_s=now, watts=round(step_power_w, 3)
            )
        active = list(running)
        for i in range(steps):
            token_time = now + step_bd.total_s * (i + 1)
            if traced:
                self.tracer.advance(token_time)
            for request in list(active):
                if request not in active:
                    continue  # preempted earlier within this step
                if self.optimistic:
                    self._append_or_preempt(scheduler, active, request)
                request.record_token(token_time)
        return now + span_bd.total_s, energy_j

    def _append_or_preempt(
        self,
        scheduler: Scheduler,
        active: list[GenerationRequest],
        request: GenerationRequest,
    ) -> None:
        """Grow ``request``'s KV by one token, evicting newer requests
        (recompute preemption) until the pool has room."""
        from repro.runtime.paged_kv import AllocationError

        while True:
            try:
                scheduler.allocator.append_token(request.request_id)
                return
            except AllocationError:
                victim = self._choose_victim(scheduler, request)
                if victim is None:
                    raise OutOfMemoryError(
                        f"request {request.request_id} cannot grow and no "
                        "victim remains to preempt"
                    )
                scheduler.preempt(victim)
                if victim in active:
                    active.remove(victim)

    @staticmethod
    def _choose_victim(
        scheduler: Scheduler, protect: GenerationRequest
    ) -> GenerationRequest | None:
        """Newest running request other than ``protect`` (vLLM evicts the
        most recently admitted sequence first)."""
        for candidate in reversed(scheduler.running):
            if candidate is not protect and not candidate.is_finished:
                return candidate
        return None

    def _phase_power(self, breakdown: LatencyBreakdown) -> float:
        util = phase_utilization(breakdown, self.deployment.framework.power_intensity)
        return self._power.group_power_w(util)
