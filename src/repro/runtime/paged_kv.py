"""KV-cache allocators: paged (vLLM PagedAttention) and contiguous.

The paged allocator manages a fixed pool of fixed-size blocks with a block
table per sequence — the Fig. 2b mechanism.  The contiguous allocator
reserves a sequence's full final context up front — llama.cpp / Gaudi2 /
SambaFlow behaviour, and the reason those stacks OOM earlier.

Both allocators work in *token* units internally and expose byte accounting
through the deployment's per-token KV size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["AllocationError", "KVAllocator", "PagedKVAllocator", "ContiguousKVAllocator"]


class AllocationError(RuntimeError):
    """Raised when the KV pool cannot satisfy a reservation."""


class KVAllocator:
    """Interface shared by both allocator flavours.

    Allocators optionally carry a :class:`~repro.obs.tracer.Tracer` and
    emit ``kv_alloc`` counter samples on admit/free (pool occupancy over
    time, stamped at the tracer's clock).  Per-token appends are not
    traced — that path is the simulator's hottest."""

    tracer: Tracer = NULL_TRACER

    def _trace_pool(self, name: str) -> None:
        self.tracer.counter(
            "kv_alloc",
            "kv_pool",
            event=name,
            used_tokens=self.used_tokens,
            capacity_tokens=self.capacity_tokens,
        )

    def can_admit(self, final_context_tokens: int) -> bool:
        raise NotImplementedError

    def admit(self, seq_id: int, prompt_tokens: int, final_context_tokens: int) -> None:
        raise NotImplementedError

    def append_token(self, seq_id: int) -> None:
        raise NotImplementedError

    def free(self, seq_id: int) -> None:
        raise NotImplementedError

    @property
    def used_tokens(self) -> int:
        raise NotImplementedError

    @property
    def capacity_tokens(self) -> int:
        raise NotImplementedError


@dataclass
class _PagedSequence:
    prompt_tokens: int
    context_tokens: int
    reserved_blocks: int  # conservative reservation for the final context
    mapped_blocks: int  # blocks actually holding tokens so far
    growable: bool = False  # optimistic admission: reservation grows on demand


class PagedKVAllocator(KVAllocator):
    """Fixed-size block pool with per-sequence block tables.

    Two admission policies: *conservative* (default) reserves the final
    context up front so growth never fails; *optimistic* (vLLM's actual
    policy) reserves only the prompt's blocks and grows on demand, packing
    more sequences at the cost of possible preemption when the pool runs
    dry mid-decode.
    """

    def __init__(
        self, total_blocks: int, block_size: int, tracer: Tracer = NULL_TRACER
    ) -> None:
        if total_blocks < 1:
            raise ValueError(f"total_blocks must be >= 1, got {total_blocks}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.total_blocks = total_blocks
        self.block_size = block_size
        self.tracer = tracer
        self._sequences: dict[int, _PagedSequence] = {}
        self._reserved_blocks = 0

    def _blocks_for(self, tokens: int) -> int:
        return -(-tokens // self.block_size)

    @property
    def free_blocks(self) -> int:
        return self.total_blocks - self._reserved_blocks

    @property
    def num_sequences(self) -> int:
        return len(self._sequences)

    def can_admit(self, final_context_tokens: int) -> bool:
        return self._blocks_for(final_context_tokens) <= self.free_blocks

    def admit(
        self,
        seq_id: int,
        prompt_tokens: int,
        final_context_tokens: int,
        optimistic: bool = False,
    ) -> None:
        """Admit a sequence.

        Conservative (default): reserve blocks for the *final* context up
        front, so growth can never fail.  Optimistic (vLLM's actual
        policy): reserve only the prompt's blocks and allocate on demand
        as the sequence grows — more sequences fit, but ``append_token``
        may raise and force a preemption.
        """
        if seq_id in self._sequences:
            raise AllocationError(f"sequence {seq_id} already admitted")
        if prompt_tokens < 1 or final_context_tokens < prompt_tokens:
            raise ValueError("need 1 <= prompt_tokens <= final_context_tokens")
        reserve_for = prompt_tokens if optimistic else final_context_tokens
        needed = self._blocks_for(reserve_for)
        if needed > self.free_blocks:
            raise AllocationError(
                f"sequence {seq_id} needs {needed} blocks, {self.free_blocks} free"
            )
        self._sequences[seq_id] = _PagedSequence(
            prompt_tokens=prompt_tokens,
            context_tokens=prompt_tokens,
            reserved_blocks=needed,
            mapped_blocks=self._blocks_for(prompt_tokens),
            growable=optimistic,
        )
        self._reserved_blocks += needed
        if self.tracer.enabled:
            self._trace_pool("admit")

    def append_token(self, seq_id: int) -> None:
        seq = self._require(seq_id)
        needed = self._blocks_for(seq.context_tokens + 1)
        if needed > seq.reserved_blocks:
            if not seq.growable:
                raise AllocationError(
                    f"sequence {seq_id} grew past its reservation "
                    f"({seq.context_tokens + 1} tokens > "
                    f"{seq.reserved_blocks * self.block_size})"
                )
            # Grow the reservation on demand (optimistic sequences).
            growth = needed - seq.reserved_blocks
            if growth > self.free_blocks:
                raise AllocationError(
                    f"sequence {seq_id} needs {growth} more block(s); "
                    f"{self.free_blocks} free (preemption required)"
                )
            seq.reserved_blocks = needed
            self._reserved_blocks += growth
        seq.context_tokens += 1
        seq.mapped_blocks = needed

    def free(self, seq_id: int) -> None:
        seq = self._sequences.pop(seq_id, None)
        if seq is None:
            raise AllocationError(f"sequence {seq_id} not admitted")
        self._reserved_blocks -= seq.reserved_blocks
        if self.tracer.enabled:
            self._trace_pool("free")

    def context_tokens(self, seq_id: int) -> int:
        return self._require(seq_id).context_tokens

    @property
    def used_tokens(self) -> int:
        return sum(s.context_tokens for s in self._sequences.values())

    @property
    def mapped_tokens(self) -> int:
        """Tokens of capacity in mapped blocks (>= used_tokens)."""
        return sum(
            s.mapped_blocks * self.block_size for s in self._sequences.values()
        )

    @property
    def capacity_tokens(self) -> int:
        return self.total_blocks * self.block_size

    @property
    def internal_fragmentation_tokens(self) -> int:
        """Capacity wasted inside partially filled mapped blocks."""
        return self.mapped_tokens - self.used_tokens

    def _require(self, seq_id: int) -> _PagedSequence:
        seq = self._sequences.get(seq_id)
        if seq is None:
            raise AllocationError(f"sequence {seq_id} not admitted")
        return seq


@dataclass
class _ContiguousSequence:
    reserved_tokens: int
    context_tokens: int


class ContiguousKVAllocator(KVAllocator):
    """Whole-context up-front reservation (llama.cpp / Gaudi2 / SambaFlow)."""

    def __init__(self, capacity_tokens: int, tracer: Tracer = NULL_TRACER) -> None:
        if capacity_tokens < 1:
            raise ValueError(f"capacity_tokens must be >= 1, got {capacity_tokens}")
        self._capacity = capacity_tokens
        self.tracer = tracer
        self._reserved = 0
        self._sequences: dict[int, _ContiguousSequence] = {}

    @property
    def free_tokens(self) -> int:
        return self._capacity - self._reserved

    @property
    def num_sequences(self) -> int:
        return len(self._sequences)

    def can_admit(self, final_context_tokens: int) -> bool:
        return final_context_tokens <= self.free_tokens

    def admit(self, seq_id: int, prompt_tokens: int, final_context_tokens: int) -> None:
        if seq_id in self._sequences:
            raise AllocationError(f"sequence {seq_id} already admitted")
        if prompt_tokens < 1 or final_context_tokens < prompt_tokens:
            raise ValueError("need 1 <= prompt_tokens <= final_context_tokens")
        if final_context_tokens > self.free_tokens:
            raise AllocationError(
                f"sequence {seq_id} needs {final_context_tokens} tokens, "
                f"{self.free_tokens} free"
            )
        self._sequences[seq_id] = _ContiguousSequence(
            reserved_tokens=final_context_tokens, context_tokens=prompt_tokens
        )
        self._reserved += final_context_tokens
        if self.tracer.enabled:
            self._trace_pool("admit")

    def append_token(self, seq_id: int) -> None:
        seq = self._sequences.get(seq_id)
        if seq is None:
            raise AllocationError(f"sequence {seq_id} not admitted")
        if seq.context_tokens + 1 > seq.reserved_tokens:
            raise AllocationError(f"sequence {seq_id} grew past its reservation")
        seq.context_tokens += 1

    def free(self, seq_id: int) -> None:
        seq = self._sequences.pop(seq_id, None)
        if seq is None:
            raise AllocationError(f"sequence {seq_id} not admitted")
        self._reserved -= seq.reserved_tokens
        if self.tracer.enabled:
            self._trace_pool("free")

    def context_tokens(self, seq_id: int) -> int:
        seq = self._sequences.get(seq_id)
        if seq is None:
            raise AllocationError(f"sequence {seq_id} not admitted")
        return seq.context_tokens

    @property
    def used_tokens(self) -> int:
        return sum(s.context_tokens for s in self._sequences.values())

    @property
    def capacity_tokens(self) -> int:
        return self._capacity
