"""NAS search space: per-layer KV-head counts (paper Section IV-B4).

DeciLM-7B was produced by searching, for every layer, a KV-head count from
the pool {1, 2, 4}; the published model has 67 KV heads across 32 layers
versus LLaMA-style models' uniform 8-per-layer (256 total).  The space here
generalizes that: any per-layer assignment from a pool of divisors of the
query-head count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.config import ModelConfig

__all__ = ["KVHeadSearchSpace"]


@dataclass(frozen=True)
class KVHeadSearchSpace:
    """Per-layer KV-head assignments drawn from ``pool``."""

    base_model: ModelConfig
    pool: tuple[int, ...] = (1, 2, 4)

    def __post_init__(self) -> None:
        if not self.pool:
            raise ValueError("pool is empty")
        heads = self.base_model.num_attention_heads
        for kv in self.pool:
            if kv < 1 or heads % kv != 0:
                raise ValueError(
                    f"pool value {kv} must divide {heads} query heads"
                )

    @property
    def num_layers(self) -> int:
        return self.base_model.num_layers

    @property
    def size(self) -> int:
        """Number of candidate architectures."""
        return len(self.pool) ** self.num_layers

    def random_candidate(self, rng: np.random.Generator) -> tuple[int, ...]:
        choices = rng.integers(0, len(self.pool), size=self.num_layers)
        return tuple(self.pool[int(i)] for i in choices)

    def mutate(
        self,
        candidate: tuple[int, ...],
        rng: np.random.Generator,
        rate: float = 0.1,
    ) -> tuple[int, ...]:
        """Resample each layer's choice with probability ``rate``."""
        if len(candidate) != self.num_layers:
            raise ValueError("candidate length mismatch")
        if not 0 < rate <= 1:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        out = list(candidate)
        for i in range(self.num_layers):
            if rng.random() < rate:
                out[i] = self.pool[int(rng.integers(0, len(self.pool)))]
        return tuple(out)

    def crossover(
        self,
        a: tuple[int, ...],
        b: tuple[int, ...],
        rng: np.random.Generator,
    ) -> tuple[int, ...]:
        """Uniform crossover of two candidates."""
        if len(a) != self.num_layers or len(b) != self.num_layers:
            raise ValueError("candidate length mismatch")
        mask = rng.random(self.num_layers) < 0.5
        return tuple(x if m else y for x, y, m in zip(a, b, mask))

    def realize(
        self, candidate: tuple[int, ...], name: str | None = None
    ) -> ModelConfig:
        """Instantiate a model config for a candidate assignment."""
        return self.base_model.with_kv_heads_per_layer(candidate, name=name)
