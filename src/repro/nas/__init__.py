"""Neural-architecture search over KV-head allocations (DeciLM mechanism)."""

from repro.nas.search import KVHeadSearch, NASResult
from repro.nas.space import KVHeadSearchSpace

__all__ = ["KVHeadSearch", "NASResult", "KVHeadSearchSpace"]
