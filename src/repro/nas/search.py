"""Evolutionary NAS over per-layer KV-head counts (reproduces Fig. 4a's
DeciLM mechanism).

The search maximizes decode throughput on a target (hardware, framework,
workload) while keeping predicted perplexity within a budget of the base
model's — exactly the trade DeciLM's NAS makes: fewer KV heads shrink the
cache (faster decode at batch) but cost model quality, so the optimizer
spends KV heads where the quality model says they matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.request import GenerationConfig
from repro.frameworks.base import FrameworkProfile
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.models.quality import TRAINING_TOKENS, estimate_perplexity
from repro.nas.space import KVHeadSearchSpace
from repro.perf.estimator import InferenceEstimator
from repro.perf.phases import Deployment

__all__ = ["NASResult", "KVHeadSearch"]


@dataclass(frozen=True)
class NASResult:
    """Outcome of a search: the winning architecture and its scores."""

    candidate: tuple[int, ...]
    model: ModelConfig
    throughput_tokens_per_s: float
    perplexity: float
    base_throughput_tokens_per_s: float
    base_perplexity: float
    evaluations: int

    @property
    def speedup(self) -> float:
        return self.throughput_tokens_per_s / self.base_throughput_tokens_per_s

    @property
    def total_kv_heads(self) -> int:
        return self.model.total_kv_heads


@dataclass
class KVHeadSearch:
    """Seeded (mu + lambda) evolutionary search over the KV-head space."""

    space: KVHeadSearchSpace
    hardware: HardwareSpec
    framework: FrameworkProfile
    workload: GenerationConfig
    perplexity_budget: float = 1.15  # candidate ppl <= budget * base ppl
    population: int = 12
    generations: int = 10
    mutation_rate: float = 0.15
    seed: int = 0
    _evaluations: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if self.perplexity_budget < 1.0:
            raise ValueError("perplexity_budget must be >= 1.0")

    # ------------------------------------------------------------------

    def _throughput(self, model: ModelConfig) -> float:
        dep = Deployment(model, self.hardware, self.framework)
        self._evaluations += 1
        return InferenceEstimator(dep).throughput(self.workload)

    def _candidate_perplexity(self, model: ModelConfig) -> float:
        # Candidates inherit the base model's training corpus; without the
        # explicit override the quality model would fall back to its
        # 1T-token default for the unregistered "-nas" name.
        base = self.space.base_model
        tokens = TRAINING_TOKENS.get(base.name.lower())
        return estimate_perplexity(model, training_tokens=tokens)

    def _fitness(self, candidate: tuple[int, ...], base_ppl: float) -> float:
        """Throughput if within the perplexity budget, else 0 (infeasible)."""
        model = self.space.realize(candidate)
        if self._candidate_perplexity(model) > self.perplexity_budget * base_ppl:
            return 0.0
        return self._throughput(model)

    def run(self) -> NASResult:
        rng = np.random.default_rng(self.seed)
        base = self.space.base_model
        base_ppl = estimate_perplexity(base)
        base_tput = self._throughput(base)

        # Seed the population with the uniform assignments plus randoms.
        uniform_seeds = [(kv,) * self.space.num_layers for kv in self.space.pool]
        pop = uniform_seeds[: self.population]
        while len(pop) < self.population:
            pop.append(self.space.random_candidate(rng))

        scored = [(self._fitness(c, base_ppl), c) for c in pop]
        for _ in range(self.generations):
            scored.sort(key=lambda sc: sc[0], reverse=True)
            parents = [c for _, c in scored[: max(2, self.population // 3)]]
            children: list[tuple[int, ...]] = []
            while len(children) < self.population - len(parents):
                a = parents[int(rng.integers(0, len(parents)))]
                b = parents[int(rng.integers(0, len(parents)))]
                child = self.space.crossover(a, b, rng)
                child = self.space.mutate(child, rng, self.mutation_rate)
                children.append(child)
            scored = scored[: len(parents)] + [
                (self._fitness(c, base_ppl), c) for c in children
            ]

        scored.sort(key=lambda sc: sc[0], reverse=True)
        best_fitness, best_candidate = scored[0]
        if best_fitness <= 0.0:
            raise RuntimeError(
                "no feasible candidate found within the perplexity budget"
            )
        best_model = self.space.realize(best_candidate, name=f"{base.name}-nas")
        return NASResult(
            candidate=best_candidate,
            model=best_model,
            throughput_tokens_per_s=best_fitness,
            perplexity=self._candidate_perplexity(best_model),
            base_throughput_tokens_per_s=base_tput,
            base_perplexity=base_ppl,
            evaluations=self._evaluations,
        )
