"""Model-quality (perplexity) estimation for the Fig. 10 / Fig. 29 studies.

The paper measures token-level perplexity on the LongBench mix.  Without
weights we predict it from a Chinchilla-style scaling law plus three
architecture effects the paper itself calls out:

* **data/parameter scale** — older models (OPT, GPT-J, Bloom) trained on
  ~0.2-0.4T tokens sit well above the 2-15T-token LLaMA generation;
* **vocabulary size** — token-level perplexity grows with vocabulary
  because each token carries more information (LLaMA-3-8B's 128K vocab is
  the paper's explanation for its higher perplexity despite better data);
* **GQA sharing** — the paper attributes LLaMA-2-7B's edge over the GQA
  models to full MHSA ("While GQA balances speed and performance, MHSA
  improves the model's validation performance").

Constants are the Hoffmann et al. (Chinchilla) fit; the three penalty
coefficients are calibrated once so the Fig. 10 orderings and the quoted
"Mistral-7B is +0.09 perplexity over LLaMA-2-7B" gap hold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.precision import Precision, precision_spec
from repro.models.config import AttentionType, ModelConfig

__all__ = [
    "QualityModel",
    "TRAINING_TOKENS",
    "estimate_loss",
    "estimate_perplexity",
    "quantization_perplexity_factor",
]

# Chinchilla scaling-law constants (Hoffmann et al. 2022, Eq. 10).
_E = 1.69
_A = 406.4
_B = 410.7
_ALPHA = 0.34
_BETA = 0.28

# Calibrated architecture-penalty coefficients (see module docstring).
_GQA_COEF = 0.045  # loss per ln(query heads per KV head)
_VOCAB_COEF = 0.08  # loss per ln(vocab / 32000)
_LEGACY_ARCH_PENALTY = 0.05  # non-gated-FFN (pre-LLaMA era) architectures
_REFERENCE_VOCAB = 32000.0

# Published (or widely reported) pre-training corpus sizes, in tokens.
TRAINING_TOKENS: dict[str, float] = {
    "llama-2-7b": 2.0e12,
    "llama-3-8b": 15.0e12,
    "mistral-7b": 8.0e12,
    "qwen2-7b": 7.0e12,
    "llama-2-70b": 2.0e12,
    "llama-3-70b": 15.0e12,
    "qwen2-72b": 7.0e12,
    "mixtral-8x7b": 8.0e12,
    "qwen2-57b-a14b": 7.0e12,
    "decilm-7b": 2.0e12,
    "llama-7b": 1.0e12,
    "gpt-j-6b": 0.4e12,
    "opt-6.7b": 0.18e12,
    "gemma-7b": 6.0e12,
    "qwen1.5-7b": 4.0e12,
    "aquila-7b": 2.0e12,
    "bloom-7.1b": 0.366e12,
    "llama-68m": 0.6e12,
}
_DEFAULT_TRAINING_TOKENS = 1.0e12


def _mean_kv_group(config: ModelConfig) -> float:
    """Average query-heads-per-KV-head over layers (1.0 for pure MHSA)."""
    groups = [
        config.num_attention_heads / config.kv_heads_at(layer)
        for layer in range(config.num_layers)
    ]
    return sum(groups) / len(groups)


def estimate_loss(
    config: ModelConfig, training_tokens: float | None = None
) -> float:
    """Predicted per-token cross-entropy (nats) on the LongBench mix."""
    if training_tokens is None:
        training_tokens = TRAINING_TOKENS.get(
            config.name.lower(), _DEFAULT_TRAINING_TOKENS
        )
    if training_tokens <= 0:
        raise ValueError(f"training_tokens must be positive, got {training_tokens}")
    # Non-embedding parameters drive capability (the paper makes the same
    # point for Qwen2-7B: its big vocabulary leaves a smaller core model).
    n = max(config.total_params - config.embedding_params, 1)
    loss = _E + _A / n**_ALPHA + _B / training_tokens**_BETA
    if config.attention_type is AttentionType.GQA:
        loss += _GQA_COEF * math.log(_mean_kv_group(config))
    loss += _VOCAB_COEF * math.log(config.vocab_size / _REFERENCE_VOCAB)
    if not config.gated_ffn:
        loss += _LEGACY_ARCH_PENALTY
    return loss


def estimate_perplexity(
    config: ModelConfig,
    training_tokens: float | None = None,
    precision: Precision | str = Precision.FP16,
) -> float:
    """Predicted perplexity = exp(loss), with quantization degradation."""
    loss = estimate_loss(config, training_tokens)
    return math.exp(loss) * quantization_perplexity_factor(precision)


def quantization_perplexity_factor(precision: Precision | str) -> float:
    """Multiplicative perplexity degradation of running at lower precision.

    16-bit is the reference; FP8/INT8 degrade well under 1% (paper Section
    IV-B3: "without compromising the output quality"); INT4 degrades a few
    percent, consistent with the GPTQ/AWQ literature the paper cites.
    """
    spec = precision_spec(precision)
    if spec.bytes_per_element >= 2.0:
        return 1.0
    if spec.precision is Precision.FP8:
        return 1.003
    if spec.precision is Precision.INT8:
        return 1.005
    return 1.03  # INT4


@dataclass(frozen=True)
class QualityModel:
    """Bound quality estimator for one model (convenience wrapper)."""

    config: ModelConfig
    training_tokens: float | None = None

    @property
    def loss(self) -> float:
        return estimate_loss(self.config, self.training_tokens)

    @property
    def perplexity(self) -> float:
        return estimate_perplexity(self.config, self.training_tokens)

    def perplexity_at(self, precision: Precision | str) -> float:
        return estimate_perplexity(self.config, self.training_tokens, precision)
