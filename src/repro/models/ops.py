"""Operation-level FLOP and byte accounting for decoder-only transformers.

These counters are the substrate of the analytical performance model: each
transformer module (QKV projections, attention score/value matmuls, output
projection, FFN — dense or MoE — and the LM head) contributes FLOPs (for the
compute roofline leg) and weight/KV bytes (for the memory leg).

Conventions
-----------
* One multiply-accumulate = 2 FLOPs, the convention used by every vendor
  whitepaper cited in the paper's Table II.
* ``tokens`` is the number of *new* tokens processed in the step across the
  whole batch: ``batch * input_len`` for prefill, ``batch`` for one decode
  step.
* Attention score/value FLOPs depend on the *context* each new token attends
  to, supplied separately so prefill (causal, growing context) and decode
  (full cached context) can share the code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.precision import Precision, precision_spec
from repro.models.config import ModelConfig

__all__ = [
    "OpCounts",
    "linear_flops",
    "attention_linear_flops",
    "attention_context_flops",
    "ffn_flops",
    "lm_head_flops",
    "layer_flops",
    "model_flops",
    "weight_bytes",
    "activation_bytes_per_token",
]


@dataclass(frozen=True)
class OpCounts:
    """FLOPs and memory traffic of one logical operation or phase."""

    flops: float = 0.0
    weight_bytes: float = 0.0
    kv_read_bytes: float = 0.0
    kv_write_bytes: float = 0.0
    activation_bytes: float = 0.0

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            flops=self.flops + other.flops,
            weight_bytes=self.weight_bytes + other.weight_bytes,
            kv_read_bytes=self.kv_read_bytes + other.kv_read_bytes,
            kv_write_bytes=self.kv_write_bytes + other.kv_write_bytes,
            activation_bytes=self.activation_bytes + other.activation_bytes,
        )

    def scaled(self, factor: float) -> "OpCounts":
        return OpCounts(
            flops=self.flops * factor,
            weight_bytes=self.weight_bytes * factor,
            kv_read_bytes=self.kv_read_bytes * factor,
            kv_write_bytes=self.kv_write_bytes * factor,
            activation_bytes=self.activation_bytes * factor,
        )

    @property
    def memory_bytes(self) -> float:
        """All DRAM traffic of the op."""
        return (
            self.weight_bytes
            + self.kv_read_bytes
            + self.kv_write_bytes
            + self.activation_bytes
        )


def linear_flops(tokens: int, in_features: int, out_features: int) -> float:
    """FLOPs of a dense layer applied to ``tokens`` row vectors."""
    if tokens < 0 or in_features < 1 or out_features < 1:
        raise ValueError("invalid linear dimensions")
    return 2.0 * tokens * in_features * out_features


def attention_linear_flops(config: ModelConfig, layer: int, tokens: int) -> float:
    """QKV + output projection FLOPs for one layer."""
    kv_dim = config.kv_dim_at(layer)
    q = linear_flops(tokens, config.hidden_size, config.q_dim)
    k = linear_flops(tokens, config.hidden_size, kv_dim)
    v = linear_flops(tokens, config.hidden_size, kv_dim)
    o = linear_flops(tokens, config.q_dim, config.hidden_size)
    return q + k + v + o


def attention_context_flops(
    config: ModelConfig, tokens: int, mean_context: float
) -> float:
    """Score (QK^T) plus value (PV) matmul FLOPs for one layer.

    Each new token's query attends to ``mean_context`` cached positions.
    Both matmuls cost ``2 * q_dim`` FLOPs per (token, position) pair; GQA
    does not reduce these FLOPs (every *query* head still attends), it only
    shrinks KV memory — which is exactly why GQA's win is a memory-bandwidth
    story (paper Section V-1).
    """
    if mean_context < 0:
        raise ValueError(f"mean_context must be >= 0, got {mean_context}")
    per_pair = 2.0 * config.q_dim  # QK^T
    per_pair += 2.0 * config.q_dim  # PV
    return tokens * mean_context * per_pair


def ffn_flops(config: ModelConfig, tokens: int) -> float:
    """FFN FLOPs per layer for ``tokens`` tokens (active experts only)."""
    matrices = 3 if config.gated_ffn else 2
    per_expert = (
        matrices * 2.0 * tokens * config.hidden_size * config.ffn_intermediate_size
    )
    experts = config.experts_per_token if config.is_moe else 1
    return per_expert * experts


def lm_head_flops(config: ModelConfig, tokens: int) -> float:
    """Final vocabulary projection FLOPs.

    During prefill only the last position needs logits, but frameworks
    compute them for all positions when computing perplexity; the perf model
    passes the appropriate ``tokens``.
    """
    return linear_flops(tokens, config.hidden_size, config.vocab_size)


def layer_flops(
    config: ModelConfig, layer: int, tokens: int, mean_context: float
) -> float:
    """All FLOPs of one transformer layer."""
    return (
        attention_linear_flops(config, layer, tokens)
        + attention_context_flops(config, tokens, mean_context)
        + ffn_flops(config, tokens)
    )


def model_flops(
    config: ModelConfig,
    tokens: int,
    mean_context: float,
    include_lm_head_tokens: int | None = None,
) -> float:
    """End-to-end FLOPs of one forward pass over ``tokens`` new tokens.

    ``include_lm_head_tokens`` defaults to ``tokens`` (decode); prefill
    passes 1-per-sequence since only the final position's logits matter.
    """
    total = sum(
        layer_flops(config, layer, tokens, mean_context)
        for layer in range(config.num_layers)
    )
    head_tokens = tokens if include_lm_head_tokens is None else include_lm_head_tokens
    total += lm_head_flops(config, head_tokens)
    return total


def weight_bytes(
    config: ModelConfig,
    precision: Precision | str = Precision.FP16,
    active_only: bool = False,
) -> float:
    """Bytes of model weights (optionally only MoE-active weights).

    ``active_only=True`` gives the per-step weight *traffic* for MoE models:
    each decode step touches only the routed experts, though at large batch
    all experts tend to be hit — callers model that separately.
    """
    spec = precision_spec(precision)
    params = config.active_params if active_only else config.total_params
    return params * spec.bytes_per_element


def activation_bytes_per_token(
    config: ModelConfig, precision: Precision | str = Precision.FP16
) -> float:
    """Approximate DRAM activation traffic per token per forward pass.

    Fused-kernel frameworks keep most intermediates in SRAM; what spills is
    roughly the residual stream entering/leaving each layer plus the FFN
    intermediate once.  This term matters only at very large batch.
    """
    spec = precision_spec(precision)
    per_layer = 4.0 * config.hidden_size + 2.0 * config.ffn_intermediate_size
    return config.num_layers * per_layer * spec.bytes_per_element
