"""Model architectures: Table I registry, op accounting, KV cache, quality."""

from repro.models.config import AttentionType, FFNType, ModelConfig
from repro.models.kvcache import KVCacheSpec, kv_bytes_for_sequence, kv_bytes_per_token
from repro.models.ops import (
    OpCounts,
    activation_bytes_per_token,
    attention_context_flops,
    attention_linear_flops,
    ffn_flops,
    layer_flops,
    linear_flops,
    lm_head_flops,
    model_flops,
    weight_bytes,
)
from repro.models.report import ModelReport, model_report
from repro.models.quality import (
    QualityModel,
    estimate_loss,
    estimate_perplexity,
    quantization_perplexity_factor,
)
from repro.models.zoo import (
    MODEL_ZOO,
    PERPLEXITY_ZOO,
    PRIMARY_MODELS,
    SEVEN_B_MODELS,
    SEVENTY_B_MODELS,
    get_model,
    list_models,
    register_model,
)

__all__ = [
    "AttentionType",
    "FFNType",
    "ModelConfig",
    "KVCacheSpec",
    "kv_bytes_for_sequence",
    "kv_bytes_per_token",
    "OpCounts",
    "activation_bytes_per_token",
    "attention_context_flops",
    "attention_linear_flops",
    "ffn_flops",
    "layer_flops",
    "linear_flops",
    "lm_head_flops",
    "model_flops",
    "weight_bytes",
    "ModelReport",
    "model_report",
    "QualityModel",
    "estimate_loss",
    "estimate_perplexity",
    "quantization_perplexity_factor",
    "MODEL_ZOO",
    "PERPLEXITY_ZOO",
    "PRIMARY_MODELS",
    "SEVEN_B_MODELS",
    "SEVENTY_B_MODELS",
    "get_model",
    "list_models",
    "register_model",
]
