"""Per-model architecture reports: parameter/FLOP/KV breakdowns.

An extended Table I: where a model's parameters live (attention vs FFN vs
embeddings), what one token costs, and how much KV it drags along — the
quantities the paper's model-wise takeaways (Section VII-3) reason with.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig
from repro.models.kvcache import kv_bytes_per_token
from repro.models.ops import model_flops

__all__ = ["ModelReport", "model_report"]


@dataclass(frozen=True)
class ModelReport:
    """Architecture accounting for one model."""

    name: str
    total_params: int
    active_params: int
    attention_params: int
    ffn_params: int
    embedding_params: int
    kv_bytes_per_token: float
    decode_flops_per_token: float
    prefill_flops_per_token_at_4k: float

    @property
    def attention_share(self) -> float:
        return self.attention_params / self.total_params

    @property
    def ffn_share(self) -> float:
        return self.ffn_params / self.total_params

    @property
    def embedding_share(self) -> float:
        return self.embedding_params / self.total_params

    def render(self) -> str:
        return (
            f"{self.name}: {self.total_params / 1e9:.2f}B params "
            f"({self.active_params / 1e9:.2f}B active) | "
            f"attn {self.attention_share:.0%}, ffn {self.ffn_share:.0%}, "
            f"embed {self.embedding_share:.0%} | "
            f"KV {self.kv_bytes_per_token / 1024:.0f} KiB/token | "
            f"{self.decode_flops_per_token / 1e9:.1f} GFLOP/token decode"
        )


def model_report(config: ModelConfig) -> ModelReport:
    """Build the accounting report for one architecture."""
    attention = sum(
        config.attention_params_at(layer) for layer in range(config.num_layers)
    )
    ffn = config.num_layers * config.num_experts * config.ffn_params_per_expert
    return ModelReport(
        name=config.name,
        total_params=config.total_params,
        active_params=config.active_params,
        attention_params=attention,
        ffn_params=ffn,
        embedding_params=config.embedding_params,
        kv_bytes_per_token=kv_bytes_per_token(config),
        decode_flops_per_token=model_flops(config, 1, mean_context=1024),
        prefill_flops_per_token_at_4k=model_flops(
            config, 4096, mean_context=2048.5, include_lm_head_tokens=1
        )
        / 4096,
    )
