"""LLM architecture configuration (the paper's Table I schema).

A :class:`ModelConfig` carries exactly the hyperparameters Table I reports —
hidden layers, hidden size, attention type and head counts, FFN type and
expert counts, intermediate size, maximum sequence length, and vocabulary
size — plus derived quantities (parameter counts, active parameters for MoE)
that the performance model consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["AttentionType", "FFNType", "ModelConfig"]


class AttentionType(str, enum.Enum):
    """Attention operator family (paper Section II-A / Appendix A-B)."""

    MHSA = "mhsa"  # each head has unique K/V (LLaMA-2-7B)
    GQA = "gqa"  # query heads grouped over shared K/V heads

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class FFNType(str, enum.Enum):
    """Feed-forward family: dense MLP or mixture-of-experts."""

    DENSE = "dense"
    MOE = "moe"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ModelConfig:
    """Architecture description of a decoder-only transformer LLM.

    All models in the paper use gated (SwiGLU-style) FFNs with three weight
    matrices, rotary position embeddings, RMSNorm, and untied embeddings for
    the 7B+ class; ``gated_ffn`` / ``tied_embeddings`` let the extra zoo
    models (GPT-J, OPT, Bloom, ...) deviate.
    """

    name: str
    num_layers: int
    hidden_size: int
    attention_type: AttentionType
    num_attention_heads: int
    num_kv_heads: int
    ffn_type: FFNType
    num_experts: int
    ffn_intermediate_size: int
    max_sequence_length: int
    vocab_size: int
    experts_per_token: int = 2  # active experts per token for MoE (Mixtral: 2)
    head_dim: int | None = None
    gated_ffn: bool = True
    tied_embeddings: bool = False
    # Per-layer KV head override for NAS-searched models (DeciLM-7B): maps
    # layer index -> kv head count; None means uniform ``num_kv_heads``.
    kv_heads_per_layer: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {self.num_layers}")
        if self.hidden_size < 1:
            raise ValueError(f"hidden_size must be >= 1, got {self.hidden_size}")
        if self.num_attention_heads < 1:
            raise ValueError("num_attention_heads must be >= 1")
        if self.num_kv_heads < 1:
            raise ValueError("num_kv_heads must be >= 1")
        if self.num_attention_heads % self.num_kv_heads != 0:
            raise ValueError(
                f"{self.name}: attention heads ({self.num_attention_heads}) must "
                f"be divisible by KV heads ({self.num_kv_heads})"
            )
        if self.attention_type is AttentionType.MHSA:
            if self.num_kv_heads != self.num_attention_heads:
                raise ValueError(
                    f"{self.name}: MHSA requires num_kv_heads == num_attention_heads"
                )
        if self.ffn_type is FFNType.DENSE and self.num_experts != 1:
            raise ValueError(f"{self.name}: dense FFN must have exactly 1 expert")
        if self.ffn_type is FFNType.MOE and self.num_experts < 2:
            raise ValueError(f"{self.name}: MoE needs >= 2 experts")
        if self.ffn_type is FFNType.MOE and self.experts_per_token > self.num_experts:
            raise ValueError(
                f"{self.name}: experts_per_token ({self.experts_per_token}) "
                f"exceeds num_experts ({self.num_experts})"
            )
        if self.experts_per_token < 1:
            raise ValueError(f"{self.name}: experts_per_token must be >= 1")
        if self.head_dim is None:
            if self.hidden_size % self.num_attention_heads != 0:
                raise ValueError(
                    f"{self.name}: hidden_size not divisible by attention heads; "
                    "pass head_dim explicitly"
                )
            object.__setattr__(
                self, "head_dim", self.hidden_size // self.num_attention_heads
            )
        if self.kv_heads_per_layer is not None:
            if len(self.kv_heads_per_layer) != self.num_layers:
                raise ValueError(
                    f"{self.name}: kv_heads_per_layer has "
                    f"{len(self.kv_heads_per_layer)} entries for "
                    f"{self.num_layers} layers"
                )
            for i, kv in enumerate(self.kv_heads_per_layer):
                if kv < 1 or self.num_attention_heads % kv != 0:
                    raise ValueError(
                        f"{self.name}: layer {i} kv heads ({kv}) must divide "
                        f"attention heads ({self.num_attention_heads})"
                    )

    # ------------------------------------------------------------------
    # Derived per-layer quantities
    # ------------------------------------------------------------------

    def kv_heads_at(self, layer: int) -> int:
        """KV head count of a specific layer (honours NAS overrides)."""
        if not 0 <= layer < self.num_layers:
            raise IndexError(f"layer {layer} out of range for {self.name}")
        if self.kv_heads_per_layer is not None:
            return self.kv_heads_per_layer[layer]
        return self.num_kv_heads

    @property
    def total_kv_heads(self) -> int:
        """Sum of KV heads over all layers (paper: LLaMA-3-8B has 256)."""
        return sum(self.kv_heads_at(layer) for layer in range(self.num_layers))

    @property
    def q_dim(self) -> int:
        assert self.head_dim is not None
        return self.num_attention_heads * self.head_dim

    def kv_dim_at(self, layer: int) -> int:
        assert self.head_dim is not None
        return self.kv_heads_at(layer) * self.head_dim

    # ------------------------------------------------------------------
    # Parameter counts
    # ------------------------------------------------------------------

    def attention_params_at(self, layer: int) -> int:
        """Attention weights in one layer: Wq, Wk, Wv, Wo."""
        kv_dim = self.kv_dim_at(layer)
        wq = self.hidden_size * self.q_dim
        wk = self.hidden_size * kv_dim
        wv = self.hidden_size * kv_dim
        wo = self.q_dim * self.hidden_size
        return wq + wk + wv + wo

    @property
    def ffn_params_per_expert(self) -> int:
        """Weights in one FFN expert (3 matrices when gated, else 2)."""
        matrices = 3 if self.gated_ffn else 2
        return matrices * self.hidden_size * self.ffn_intermediate_size

    def layer_params_at(self, layer: int) -> int:
        """All weights in one transformer layer (attention + FFN + norms)."""
        norms = 2 * self.hidden_size
        return (
            self.attention_params_at(layer)
            + self.num_experts * self.ffn_params_per_expert
            + norms
        )

    @property
    def embedding_params(self) -> int:
        """Token embedding table (and untied LM head if present)."""
        table = self.vocab_size * self.hidden_size
        return table if self.tied_embeddings else 2 * table

    @property
    def total_params(self) -> int:
        """All weights stored in memory (MoE counts every expert)."""
        layers = sum(self.layer_params_at(i) for i in range(self.num_layers))
        final_norm = self.hidden_size
        return layers + self.embedding_params + final_norm

    @property
    def active_params(self) -> int:
        """Weights touched per generated token.

        For MoE models only ``experts_per_token`` experts run per token, so
        Mixtral-8x7B behaves like a ~14B dense model (paper Section V-1).
        """
        active_experts = self.experts_per_token if self.is_moe else 1
        active_layers = 0
        for layer in range(self.num_layers):
            norms = 2 * self.hidden_size
            active_layers += (
                self.attention_params_at(layer)
                + active_experts * self.ffn_params_per_expert
                + norms
            )
        return active_layers + self.embedding_params + self.hidden_size

    @property
    def is_moe(self) -> bool:
        return self.ffn_type is FFNType.MOE

    @property
    def uses_gqa(self) -> bool:
        return self.attention_type is AttentionType.GQA

    def with_kv_heads_per_layer(
        self, kv_heads_per_layer: tuple[int, ...], name: str | None = None
    ) -> "ModelConfig":
        """Derive a NAS variant with per-layer KV head counts."""
        from dataclasses import replace

        return replace(
            self,
            name=name or f"{self.name}-nas",
            kv_heads_per_layer=tuple(kv_heads_per_layer),
            attention_type=AttentionType.GQA
            if any(kv < self.num_attention_heads for kv in kv_heads_per_layer)
            else self.attention_type,
            num_kv_heads=kv_heads_per_layer[0],
        )
