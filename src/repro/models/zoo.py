"""Model registry reproducing the paper's Table I plus the extra ~7B zoo.

The eight primary models come verbatim from Table I ("LLaMA Model Family
Summary").  The additional ~7B-class models (DeciLM-7B, GPT-J-6B, OPT-6.7B,
Gemma-7B, Qwen1.5-7B, Aquila-7B, Bloom-7.1B, LLaMA-7B) appear in the
perplexity-vs-throughput studies (Fig. 10 and Fig. 29), and LLaMA-68M is the
speculative-decoding draft model (Fig. 4b).
"""

from __future__ import annotations

from repro.models.config import AttentionType, FFNType, ModelConfig

__all__ = [
    "MODEL_ZOO",
    "PRIMARY_MODELS",
    "SEVEN_B_MODELS",
    "SEVENTY_B_MODELS",
    "PERPLEXITY_ZOO",
    "get_model",
    "list_models",
    "register_model",
]


def _dense(
    name: str,
    layers: int,
    hidden: int,
    attn: AttentionType,
    heads: int,
    kv_heads: int,
    inter: int,
    max_seq: int,
    vocab: int,
    **kwargs: object,
) -> ModelConfig:
    return ModelConfig(
        name=name,
        num_layers=layers,
        hidden_size=hidden,
        attention_type=attn,
        num_attention_heads=heads,
        num_kv_heads=kv_heads,
        ffn_type=FFNType.DENSE,
        num_experts=1,
        ffn_intermediate_size=inter,
        max_sequence_length=max_seq,
        vocab_size=vocab,
        **kwargs,  # type: ignore[arg-type]
    )


# DeciLM-7B's NAS-searched per-layer KV head counts.  The paper reports 67
# KV heads total across 32 layers drawn from the pool {1, 2, 4}; this tuple
# realizes that budget (7x1 + 20x2 + 5x4 = 67) with more KV capacity in the
# middle of the network, matching the published DeciLM pattern of cheap
# early/late layers.
DECILM_KV_HEADS: tuple[int, ...] = (
    1, 1, 2, 2, 2, 2, 2, 2,
    2, 4, 4, 2, 2, 4, 2, 2,
    2, 2, 4, 2, 2, 4, 2, 2,
    2, 2, 2, 1, 1, 1, 1, 1,
)
assert sum(DECILM_KV_HEADS) == 67, "DeciLM KV budget must match the paper"


MODEL_ZOO: dict[str, ModelConfig] = {}


def register_model(config: ModelConfig) -> ModelConfig:
    """Add a model to the global registry (used by the NAS subsystem too)."""
    key = config.name.lower()
    if key in MODEL_ZOO:
        raise ValueError(f"model {config.name!r} already registered")
    MODEL_ZOO[key] = config
    return config


# ----------------------------------------------------------------------
# Table I: the eight primary models
# ----------------------------------------------------------------------

LLAMA_2_7B = register_model(
    _dense("LLaMA-2-7B", 32, 4096, AttentionType.MHSA, 32, 32, 11008, 4096, 32000)
)
LLAMA_3_8B = register_model(
    _dense("LLaMA-3-8B", 32, 4096, AttentionType.GQA, 32, 8, 14336, 8192, 128256)
)
MISTRAL_7B = register_model(
    _dense("Mistral-7B", 32, 4096, AttentionType.GQA, 32, 8, 14336, 32768, 32000)
)
QWEN_2_7B = register_model(
    _dense("Qwen2-7B", 28, 3584, AttentionType.GQA, 28, 4, 18944, 131072, 152064)
)
LLAMA_2_70B = register_model(
    _dense("LLaMA-2-70B", 80, 8192, AttentionType.GQA, 64, 8, 28672, 4096, 32000)
)
LLAMA_3_70B = register_model(
    _dense("LLaMA-3-70B", 80, 8192, AttentionType.GQA, 64, 8, 28672, 8192, 128256)
)
QWEN_2_72B = register_model(
    _dense("Qwen2-72B", 80, 8192, AttentionType.GQA, 64, 8, 29568, 131072, 152064)
)
MIXTRAL_8X7B = register_model(
    ModelConfig(
        name="Mixtral-8x7B",
        num_layers=32,
        hidden_size=4096,
        attention_type=AttentionType.GQA,
        num_attention_heads=32,
        num_kv_heads=8,
        ffn_type=FFNType.MOE,
        num_experts=8,
        experts_per_token=2,
        ffn_intermediate_size=14336,
        max_sequence_length=32768,
        vocab_size=32000,
    )
)

# ----------------------------------------------------------------------
# Extra ~7B zoo for the perplexity/throughput studies (Fig. 10, Fig. 29)
# ----------------------------------------------------------------------

DECILM_7B = register_model(
    _dense(
        "DeciLM-7B",
        32,
        4096,
        AttentionType.GQA,
        32,
        4,
        11008,
        8192,
        32000,
        kv_heads_per_layer=DECILM_KV_HEADS,
    )
)
LLAMA_7B = register_model(
    _dense("LLaMA-7B", 32, 4096, AttentionType.MHSA, 32, 32, 11008, 2048, 32000)
)
GPT_J_6B = register_model(
    _dense(
        "GPT-J-6B",
        28,
        4096,
        AttentionType.MHSA,
        16,
        16,
        16384,
        2048,
        50400,
        gated_ffn=False,
    )
)
OPT_6_7B = register_model(
    _dense(
        "OPT-6.7B",
        32,
        4096,
        AttentionType.MHSA,
        32,
        32,
        16384,
        2048,
        50272,
        gated_ffn=False,
        tied_embeddings=True,
    )
)
GEMMA_7B = register_model(
    _dense(
        "Gemma-7B",
        28,
        3072,
        AttentionType.MHSA,
        16,
        16,
        24576,
        8192,
        256000,
        head_dim=256,
        tied_embeddings=True,
    )
)
QWEN_1_5_7B = register_model(
    _dense("Qwen1.5-7B", 32, 4096, AttentionType.MHSA, 32, 32, 11008, 32768, 151936)
)
AQUILA_7B = register_model(
    _dense("Aquila-7B", 32, 4096, AttentionType.MHSA, 32, 32, 11008, 2048, 100008)
)
BLOOM_7B = register_model(
    _dense(
        "Bloom-7.1B",
        30,
        4096,
        AttentionType.MHSA,
        32,
        32,
        16384,
        2048,
        250880,
        gated_ffn=False,
        tied_embeddings=True,
    )
)

# Speculative-decoding draft model (Fig. 4b)
LLAMA_68M = register_model(
    _dense("LLaMA-68M", 2, 768, AttentionType.MHSA, 12, 12, 3072, 2048, 32000)
)

# Appendix A-1's second MoE example: Qwen2-57B-A14B (64 routed experts,
# top-8, plus a large shared expert).  The shared expert is folded into a
# higher effective experts-per-token (12) so active parameters land at the
# published ~14B without a dedicated shared-expert code path.
QWEN_2_57B_A14B = register_model(
    ModelConfig(
        name="Qwen2-57B-A14B",
        num_layers=28,
        hidden_size=3584,
        attention_type=AttentionType.GQA,
        num_attention_heads=28,
        num_kv_heads=4,
        ffn_type=FFNType.MOE,
        num_experts=64,
        experts_per_token=12,
        ffn_intermediate_size=2880,
        max_sequence_length=65536,
        vocab_size=151936,
    )
)

PRIMARY_MODELS: tuple[str, ...] = (
    "LLaMA-2-7B",
    "LLaMA-3-8B",
    "Mistral-7B",
    "Qwen2-7B",
    "LLaMA-2-70B",
    "LLaMA-3-70B",
    "Qwen2-72B",
    "Mixtral-8x7B",
)
SEVEN_B_MODELS: tuple[str, ...] = ("LLaMA-2-7B", "LLaMA-3-8B", "Mistral-7B", "Qwen2-7B")
SEVENTY_B_MODELS: tuple[str, ...] = ("LLaMA-2-70B", "LLaMA-3-70B", "Qwen2-72B")
PERPLEXITY_ZOO: tuple[str, ...] = (
    "LLaMA-2-7B",
    "LLaMA-3-8B",
    "Mistral-7B",
    "DeciLM-7B",
    "LLaMA-7B",
    "GPT-J-6B",
    "OPT-6.7B",
    "Gemma-7B",
    "Qwen1.5-7B",
    "Aquila-7B",
    "Bloom-7.1B",
)


def get_model(name: str) -> ModelConfig:
    """Case-insensitive registry lookup with a helpful error."""
    key = name.lower()
    if key not in MODEL_ZOO:
        known = ", ".join(sorted(MODEL_ZOO))
        raise KeyError(f"unknown model {name!r}; known models: {known}")
    return MODEL_ZOO[key]


def list_models() -> list[str]:
    """Registered model names in registration order."""
    return [cfg.name for cfg in MODEL_ZOO.values()]
