"""KV-cache sizing (paper Section IV-B1/B2).

The KV cache stores, per token and per layer, one key and one value vector
of ``kv_heads * head_dim`` elements.  GQA models therefore carry
``num_attention_heads / num_kv_heads`` times less cache than MHSA models —
the central mechanism behind most of the paper's model-ordering results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.precision import Precision, precision_spec
from repro.models.config import ModelConfig

__all__ = ["KVCacheSpec", "kv_bytes_per_token", "kv_bytes_for_sequence"]


def kv_bytes_per_token(
    config: ModelConfig, precision: Precision | str = Precision.FP16
) -> float:
    """KV-cache bytes added per token across all layers (2 = K and V)."""
    spec = precision_spec(precision)
    assert config.head_dim is not None
    elements = 2 * config.head_dim * config.total_kv_heads
    return elements * spec.bytes_per_element


def kv_bytes_for_sequence(
    config: ModelConfig,
    context_length: int,
    precision: Precision | str = Precision.FP16,
) -> float:
    """Total KV-cache bytes for one sequence at a given context length."""
    if context_length < 0:
        raise ValueError(f"context_length must be >= 0, got {context_length}")
    return context_length * kv_bytes_per_token(config, precision)


@dataclass(frozen=True)
class KVCacheSpec:
    """KV-cache configuration for a model deployment.

    ``enabled=False`` models the recompute regime of Fig. 2a: without a
    cache, every decode step re-runs attention projections over the whole
    context.  ``paged`` + ``block_size`` model vLLM's PagedAttention
    (Fig. 2b): memory is allocated in fixed blocks of ``block_size`` tokens;
    small blocks add per-block lookup overhead, huge blocks waste capacity
    to internal fragmentation.
    """

    enabled: bool = True
    paged: bool = True
    block_size: int = 16
    precision: Precision = Precision.FP16

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")

    def bytes_per_token(self, config: ModelConfig) -> float:
        return kv_bytes_per_token(config, self.precision)

    def blocks_for(self, context_length: int) -> int:
        """Blocks needed to hold a context (ceiling division)."""
        if context_length < 0:
            raise ValueError("context_length must be >= 0")
        return -(-context_length // self.block_size)

    def allocated_tokens(self, context_length: int, max_context: int) -> int:
        """Token capacity actually reserved for a sequence.

        Paged allocation reserves whole blocks as the context grows;
        contiguous (non-paged) allocation must reserve the *maximum* context
        up front — the mechanism behind Gaudi2's early OOMs (Section VI-4).
        """
        if self.paged:
            return self.blocks_for(context_length) * self.block_size
        return max_context

    def allocated_bytes(
        self, config: ModelConfig, context_length: int, max_context: int
    ) -> float:
        return self.allocated_tokens(context_length, max_context) * self.bytes_per_token(
            config
        )

    def fragmentation_waste(self, context_length: int, max_context: int) -> int:
        """Tokens of capacity reserved but unused at this context length."""
        return self.allocated_tokens(context_length, max_context) - context_length
