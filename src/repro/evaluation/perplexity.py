"""Perplexity evaluation pipeline: a real n-gram LM plus the bridge to the
architecture-level quality model.

Two layers:

* :class:`NGramLanguageModel` — a from-scratch interpolated (Jelinek-
  Mercer) n-gram LM over token ids.  It trains, scores held-out text, and
  computes genuine perplexity; tests verify classic LM invariants (more
  data/higher order => lower perplexity on in-domain text, probabilities
  normalize, smoothing handles unseen tokens).
* :func:`model_perplexity_on_corpus` — the paper's Fig. 10/29 quantity for
  a named LLM architecture: the architecture's scaling-law loss
  (:mod:`repro.models.quality`) evaluated against the tokenization the
  architecture's vocabulary implies on the given corpus.  Larger
  vocabularies compress the corpus into fewer tokens, concentrating more
  information per token — measured here with trained BPE tokenizers, not
  assumed.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.evaluation.tokenizer import ByteBPETokenizer
from repro.models.config import ModelConfig
from repro.models.quality import estimate_loss

__all__ = [
    "NGramLanguageModel",
    "perplexity_of_stream",
    "model_perplexity_on_corpus",
]


@dataclass
class NGramLanguageModel:
    """Interpolated n-gram LM over integer token streams.

    ``P(w | h) = sum_k lambda_k * P_ML(w | h_k)`` over orders k = 0..n-1,
    with uniform-over-vocab backstop so unseen tokens keep finite
    perplexity.  Weights follow a geometric profile favouring the highest
    order that has evidence.
    """

    order: int = 3
    vocab_size: int = 512
    interpolation: float = 0.4  # weight decay per backoff level
    _counts: list[dict[tuple[int, ...], Counter]] = field(
        default_factory=list, repr=False
    )
    _context_totals: list[dict[tuple[int, ...], int]] = field(
        default_factory=list, repr=False
    )
    _trained: bool = False

    def __post_init__(self) -> None:
        if self.order < 1:
            raise ValueError(f"order must be >= 1, got {self.order}")
        if self.vocab_size < 2:
            raise ValueError(f"vocab_size must be >= 2, got {self.vocab_size}")
        if not 0 < self.interpolation < 1:
            raise ValueError("interpolation must be in (0, 1)")
        self._counts = [defaultdict(Counter) for _ in range(self.order)]
        self._context_totals = [defaultdict(int) for _ in range(self.order)]

    def fit(self, tokens: list[int]) -> "NGramLanguageModel":
        """Accumulate counts from a token stream (callable repeatedly)."""
        if len(tokens) < self.order:
            raise ValueError(
                f"need at least {self.order} tokens to fit an order-"
                f"{self.order} model"
            )
        for t in tokens:
            if not 0 <= t < self.vocab_size:
                raise ValueError(f"token {t} outside vocab of {self.vocab_size}")
        for k in range(self.order):
            counts = self._counts[k]
            totals = self._context_totals[k]
            for i in range(k, len(tokens)):
                context = tuple(tokens[i - k : i])
                counts[context][tokens[i]] += 1
                totals[context] += 1
        self._trained = True
        return self

    def probability(self, token: int, history: list[int]) -> float:
        """Interpolated P(token | history); always > 0."""
        if not self._trained:
            raise RuntimeError("model is not trained")
        if not 0 <= token < self.vocab_size:
            raise ValueError(f"token {token} outside vocab")
        # Uniform backstop gets the residual weight.
        prob = 0.0
        weight = 1.0
        for k in range(self.order - 1, -1, -1):
            context = tuple(history[-k:]) if k > 0 else ()
            total = self._context_totals[k].get(context, 0)
            if total > 0:
                level_weight = weight * (1.0 - self.interpolation)
                prob += level_weight * self._counts[k][context][token] / total
                weight *= self.interpolation
        prob += weight / self.vocab_size
        return prob

    def log_likelihood(self, tokens: list[int]) -> float:
        """Total natural-log likelihood of a held-out stream."""
        if not tokens:
            raise ValueError("token stream is empty")
        ll = 0.0
        for i, token in enumerate(tokens):
            history = tokens[max(0, i - self.order + 1) : i]
            ll += math.log(self.probability(token, history))
        return ll

    def perplexity(self, tokens: list[int]) -> float:
        """exp(mean negative log-likelihood) of a held-out stream."""
        return math.exp(-self.log_likelihood(tokens) / len(tokens))


def perplexity_of_stream(
    train_tokens: list[int],
    eval_tokens: list[int],
    vocab_size: int,
    order: int = 3,
) -> float:
    """Convenience: train an n-gram LM and score a held-out stream."""
    model = NGramLanguageModel(order=order, vocab_size=vocab_size).fit(train_tokens)
    return model.perplexity(eval_tokens)


def model_perplexity_on_corpus(
    config: ModelConfig,
    corpus: str,
    reference_vocab: int = 32000,
    reference_tokenizer_vocab: int = 512,
) -> float:
    """Fig. 10/29 quantity: an architecture's token-level perplexity.

    The architecture's per-token cross-entropy comes from the calibrated
    scaling law.  The *tokenization correction* is measured: we train two
    BPE tokenizers — one sized proportionally to the model's vocabulary,
    one to the 32K reference — on the corpus, and rescale the loss by the
    token-count ratio (fewer tokens for the same text means more nats per
    token).  This turns the paper's "bigger vocab, higher perplexity"
    narrative into a measured quantity.
    """
    base_loss = estimate_loss(config)
    # The calibrated scaling law already carries an analytical vocab term;
    # remove it and substitute the measured compression ratio.
    analytical_vocab_term = 0.08 * math.log(config.vocab_size / reference_vocab)
    loss_wo_vocab = base_loss - analytical_vocab_term

    # BPE vocabulary scaled so the ratio of tokenizer sizes matches the
    # ratio of model vocabularies (bounded to keep training cheap).
    scale = config.vocab_size / reference_vocab
    model_vocab = int(min(4096, max(260, reference_tokenizer_vocab * scale)))
    ref_tok = ByteBPETokenizer(vocab_size=reference_tokenizer_vocab).train(corpus)
    model_tok = ByteBPETokenizer(vocab_size=model_vocab).train(corpus)
    ref_tokens = len(ref_tok.encode(corpus))
    model_tokens = len(model_tok.encode(corpus))
    if model_tokens < 1 or ref_tokens < 1:
        raise ValueError("corpus too small to tokenize")
    # Same total information, spread over fewer tokens => higher per-token
    # loss by the inverse token-count ratio.
    measured_loss = loss_wo_vocab * (ref_tokens / model_tokens)
    return math.exp(measured_loss)
