"""Validation substrate: tokenizer, synthetic LongBench, perplexity."""

from repro.evaluation.datasets import (
    LONGBENCH_SUBSETS,
    SyntheticDataset,
    generate_subset,
    unified_corpus,
)
from repro.evaluation.generation import GenerationResult, TextGenerator
from repro.evaluation.perplexity import (
    NGramLanguageModel,
    model_perplexity_on_corpus,
    perplexity_of_stream,
)
from repro.evaluation.tokenizer import ByteBPETokenizer

__all__ = [
    "LONGBENCH_SUBSETS",
    "SyntheticDataset",
    "generate_subset",
    "unified_corpus",
    "GenerationResult",
    "TextGenerator",
    "NGramLanguageModel",
    "model_perplexity_on_corpus",
    "perplexity_of_stream",
    "ByteBPETokenizer",
]
