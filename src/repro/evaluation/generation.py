"""Autoregressive text generation on the n-gram substrate.

The performance model simulates *how fast* tokens come out; this module
makes the evaluation substrate actually *produce* tokens: greedy or
temperature sampling from the interpolated n-gram LM over the BPE
vocabulary.  It exists so the suite contains a genuine end-to-end
generator — prompt in, text out — whose autoregressive loop mirrors the
decode loop the performance model charges for (one token per step,
KV-style growing context).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.perplexity import NGramLanguageModel
from repro.evaluation.tokenizer import ByteBPETokenizer

__all__ = ["GenerationResult", "TextGenerator"]


@dataclass(frozen=True)
class GenerationResult:
    """Output of one generation call."""

    prompt_tokens: tuple[int, ...]
    generated_tokens: tuple[int, ...]
    text: str

    @property
    def num_generated(self) -> int:
        return len(self.generated_tokens)


class TextGenerator:
    """Tokenizer + n-gram LM + sampling loop."""

    def __init__(
        self,
        tokenizer: ByteBPETokenizer,
        model: NGramLanguageModel,
    ) -> None:
        if model.vocab_size < tokenizer.actual_vocab_size:
            raise ValueError(
                "LM vocabulary smaller than the tokenizer's "
                f"({model.vocab_size} < {tokenizer.actual_vocab_size})"
            )
        self.tokenizer = tokenizer
        self.model = model

    @classmethod
    def fit(
        cls, corpus: str, vocab_size: int = 512, order: int = 3
    ) -> "TextGenerator":
        """Train tokenizer and LM on a corpus in one call."""
        tokenizer = ByteBPETokenizer(vocab_size=vocab_size).train(corpus)
        model = NGramLanguageModel(
            order=order, vocab_size=tokenizer.actual_vocab_size
        ).fit(tokenizer.encode(corpus))
        return cls(tokenizer, model)

    # ------------------------------------------------------------------

    def _distribution(self, history: list[int]) -> np.ndarray:
        probs = np.array(
            [
                self.model.probability(token, history)
                for token in range(self.model.vocab_size)
            ]
        )
        return probs / probs.sum()

    def generate(
        self,
        prompt: str,
        max_new_tokens: int = 32,
        temperature: float = 1.0,
        seed: int = 0,
    ) -> GenerationResult:
        """Autoregressive generation: one token per step.

        ``temperature=0`` is greedy decoding; higher values flatten the
        sampling distribution.  Deterministic for a fixed seed.
        """
        if max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        if temperature < 0:
            raise ValueError("temperature must be >= 0")
        rng = np.random.default_rng(seed)
        prompt_tokens = self.tokenizer.encode(prompt)
        context = list(prompt_tokens)
        generated: list[int] = []
        for _ in range(max_new_tokens):
            history = context[-(self.model.order - 1) :] if self.model.order > 1 else []
            probs = self._distribution(history)
            if temperature == 0.0:
                token = int(np.argmax(probs))
            else:
                logits = np.log(probs) / temperature
                logits -= logits.max()
                weights = np.exp(logits)
                weights /= weights.sum()
                token = int(rng.choice(len(weights), p=weights))
            generated.append(token)
            context.append(token)
        return GenerationResult(
            prompt_tokens=tuple(prompt_tokens),
            generated_tokens=tuple(generated),
            text=self.tokenizer.decode(generated),
        )

    def score(self, text: str) -> float:
        """Perplexity of arbitrary text under the generator's LM."""
        tokens = self.tokenizer.encode(text)
        if not tokens:
            raise ValueError("text tokenized to nothing")
        return self.model.perplexity(tokens)
