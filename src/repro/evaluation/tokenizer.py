"""Byte-level BPE tokenizer, from scratch.

The perplexity pipeline (paper Appendix D) needs a real tokenizer: the
paper's central vocabulary-size observations (LLaMA-3's 128K vocab vs
LLaMA-2's 32K) are token-level effects.  This is a compact but genuine BPE:
train on a corpus by iteratively merging the most frequent adjacent symbol
pair; encode by applying merges in training order.

Vocabulary size is a constructor parameter, so tests can instantiate
"small-vocab" and "large-vocab" tokenizers and verify the paper's
direction: a larger vocabulary compresses text into fewer tokens, raising
per-token information content (and hence token-level perplexity).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["ByteBPETokenizer"]

_BYTE_VOCAB = 256


@dataclass
class ByteBPETokenizer:
    """Trainable byte-pair-encoding tokenizer over UTF-8 bytes."""

    vocab_size: int = 512
    merges: list[tuple[int, int]] = field(default_factory=list)
    _merge_ranks: dict[tuple[int, int], int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.vocab_size < _BYTE_VOCAB:
            raise ValueError(
                f"vocab_size must be >= {_BYTE_VOCAB}, got {self.vocab_size}"
            )
        self._merge_ranks = {pair: i for i, pair in enumerate(self.merges)}

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def train(self, corpus: str) -> "ByteBPETokenizer":
        """Learn merges from ``corpus`` until the vocab target is reached."""
        if not corpus:
            raise ValueError("training corpus is empty")
        # Word-level pre-segmentation keeps merges inside whitespace-
        # delimited chunks (standard BPE practice) and makes training fast.
        words = Counter(corpus.split())
        if not words:
            raise ValueError("corpus contains only whitespace")
        # GPT-2-style: each word carries its leading space, so decode can
        # reconstruct the text exactly (up to whitespace normalization).
        sequences: dict[tuple[int, ...], int] = {
            tuple((" " + word).encode("utf-8")): count
            for word, count in words.items()
        }
        self.merges = []
        next_id = _BYTE_VOCAB
        while next_id < self.vocab_size:
            pair_counts: Counter[tuple[int, int]] = Counter()
            for seq, count in sequences.items():
                for a, b in zip(seq, seq[1:]):
                    pair_counts[(a, b)] += count
            if not pair_counts:
                break
            best, best_count = pair_counts.most_common(1)[0]
            if best_count < 2:
                break
            self.merges.append(best)
            sequences = {
                self._apply_merge(seq, best, next_id): count
                for seq, count in sequences.items()
            }
            next_id += 1
        self._merge_ranks = {pair: i for i, pair in enumerate(self.merges)}
        return self

    @staticmethod
    def _apply_merge(
        seq: tuple[int, ...], pair: tuple[int, int], new_id: int
    ) -> tuple[int, ...]:
        out: list[int] = []
        i = 0
        while i < len(seq):
            if i + 1 < len(seq) and (seq[i], seq[i + 1]) == pair:
                out.append(new_id)
                i += 2
            else:
                out.append(seq[i])
                i += 1
        return tuple(out)

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------

    @property
    def actual_vocab_size(self) -> int:
        """Base bytes plus learned merges (may be below the target)."""
        return _BYTE_VOCAB + len(self.merges)

    def encode(self, text: str) -> list[int]:
        """Tokenize text by greedily applying merges in rank order."""
        tokens: list[int] = []
        for word in text.split():
            seq = list((" " + word).encode("utf-8"))
            while len(seq) > 1:
                # Find the lowest-rank (earliest-learned) applicable merge.
                best_rank = None
                best_index = -1
                for i, pair in enumerate(zip(seq, seq[1:])):
                    rank = self._merge_ranks.get(pair)
                    if rank is not None and (best_rank is None or rank < best_rank):
                        best_rank = rank
                        best_index = i
                if best_rank is None:
                    break
                new_id = _BYTE_VOCAB + best_rank
                seq = seq[:best_index] + [new_id] + seq[best_index + 2 :]
            tokens.extend(seq)
        return tokens

    def decode(self, tokens: list[int]) -> str:
        """Inverse of :meth:`encode` up to whitespace normalization."""
        id_to_pair = {
            _BYTE_VOCAB + rank: pair for pair, rank in self._merge_ranks.items()
        }

        def expand(token: int) -> bytes:
            if token < _BYTE_VOCAB:
                return bytes([token])
            a, b = id_to_pair[token]
            return expand(a) + expand(b)

        pieces: list[bytes] = []
        for token in tokens:
            if token >= self.actual_vocab_size or token < 0:
                raise ValueError(f"token id {token} out of range")
            pieces.append(expand(token))
        return b"".join(pieces).decode("utf-8", errors="replace").lstrip(" ")

    def tokens_per_word(self, text: str) -> float:
        """Compression: mean tokens per whitespace word (lower = larger vocab)."""
        words = text.split()
        if not words:
            raise ValueError("text contains no words")
        return len(self.encode(text)) / len(words)
