"""Synthetic LongBench-style evaluation corpus (paper Appendix D).

The paper evaluates perplexity on LongBench's fifteen sub-datasets combined
into one unified corpus.  LongBench itself is not redistributable here, so
we synthesize a stand-in with the same *structure*: fifteen named subsets
spanning QA, summarization, few-shot and code tasks, each generated from a
seeded Markov-style template sampler with task-flavoured vocabulary.  The
generator is deterministic per (subset, seed) and produces text with
realistic word-frequency skew (Zipfian base vocabulary), which is what the
n-gram perplexity pipeline and tokenizer training need.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

__all__ = ["LONGBENCH_SUBSETS", "SyntheticDataset", "generate_subset", "unified_corpus"]

# The fifteen LongBench sub-datasets the paper lists, with a task family
# used to flavour the synthetic text.
LONGBENCH_SUBSETS: dict[str, str] = {
    "hotpotqa": "qa",
    "2wikimqa": "qa",
    "musique": "qa",
    "dureader": "qa",
    "narrativeqa": "qa",
    "qasper": "qa",
    "gov_report": "summarization",
    "qmsum": "summarization",
    "vcsum": "summarization",
    "triviaqa": "fewshot",
    "samsum": "fewshot",
    "multi_news": "summarization",
    "trec": "fewshot",
    "lcc": "code",
    "repobench": "code",
}

_BASE_WORDS = [
    "the", "of", "and", "to", "in", "a", "is", "that", "for", "it",
    "with", "as", "was", "on", "are", "by", "this", "be", "at", "from",
    "report", "question", "answer", "document", "meeting", "summary",
    "system", "model", "data", "result", "analysis", "section", "figure",
    "table", "value", "method", "process", "performance", "study", "work",
]

_FAMILY_WORDS: dict[str, list[str]] = {
    "qa": ["who", "what", "where", "when", "why", "passage", "evidence",
           "entity", "hop", "reasoning", "context", "query"],
    "summarization": ["summary", "transcript", "agenda", "minutes", "topic",
                      "speaker", "paragraph", "highlights", "overview",
                      "abstract", "conclusion", "bullet"],
    "fewshot": ["example", "label", "category", "input", "output", "task",
                "classify", "dialogue", "utterance", "response", "shot",
                "demonstration"],
    "code": ["def", "return", "class", "import", "self", "function",
             "variable", "loop", "index", "buffer", "module", "parse"],
}


@dataclass(frozen=True)
class SyntheticDataset:
    """One generated subset: name, family, and its documents."""

    name: str
    family: str
    documents: tuple[str, ...]

    @property
    def text(self) -> str:
        return "\n".join(self.documents)

    @property
    def num_words(self) -> int:
        return sum(len(doc.split()) for doc in self.documents)


def _zipf_probabilities(n: int, exponent: float = 1.1) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


def generate_subset(
    name: str,
    num_documents: int = 8,
    words_per_document: int = 200,
    seed: int = 0,
) -> SyntheticDataset:
    """Generate one named LongBench-style subset deterministically."""
    if name not in LONGBENCH_SUBSETS:
        known = ", ".join(sorted(LONGBENCH_SUBSETS))
        raise KeyError(f"unknown subset {name!r}; known subsets: {known}")
    if num_documents < 1 or words_per_document < 1:
        raise ValueError("need at least one document of at least one word")
    family = LONGBENCH_SUBSETS[name]
    vocab = _BASE_WORDS + _FAMILY_WORDS[family]
    probs = _zipf_probabilities(len(vocab))
    # Stable per-subset stream regardless of generation order elsewhere
    # (crc32, not hash(): str hashing is salted per process).
    rng = np.random.default_rng([seed, zlib.crc32(name.encode("utf-8"))])
    documents = []
    for _ in range(num_documents):
        words = rng.choice(vocab, size=words_per_document, p=probs)
        # Light sentence structure: a period every 8-15 words.
        out: list[str] = []
        next_stop = int(rng.integers(8, 16))
        for i, word in enumerate(words):
            out.append(str(word))
            if i + 1 == next_stop:
                out[-1] += "."
                next_stop += int(rng.integers(8, 16))
        documents.append(" ".join(out))
    return SyntheticDataset(name=name, family=family, documents=tuple(documents))


def unified_corpus(
    num_documents: int = 8, words_per_document: int = 200, seed: int = 0
) -> str:
    """All fifteen subsets combined, the paper's unified evaluation set."""
    parts = [
        generate_subset(name, num_documents, words_per_document, seed).text
        for name in LONGBENCH_SUBSETS
    ]
    return "\n".join(parts)
