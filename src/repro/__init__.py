"""LLM-Inference-Bench reproduction.

A simulation-backed reimplementation of *LLM-Inference-Bench: Inference
Benchmarking of Large Language Models on AI Accelerators* (SC 2024).  The
package models the paper's full measurement matrix — LLaMA/Mistral/Qwen
model families, seven accelerator platforms, four inference frameworks —
with a first-principles analytical performance model plus a discrete-event
serving runtime, and regenerates every table and figure in the paper's
evaluation (see DESIGN.md and EXPERIMENTS.md).

Quickstart
----------
>>> from repro import BenchmarkRunner, GenerationConfig
>>> runner = BenchmarkRunner()
>>> dep = runner.deployment("LLaMA-3-8B", "A100", "vLLM")
>>> metrics = runner.run_point(dep, GenerationConfig(1024, 1024, 16))
>>> metrics.throughput_tokens_per_s  # doctest: +SKIP
"""

from repro.analysis import BottleneckReport, analyze, find_peak_batch
from repro.bench import BenchmarkRunner, run_experiment
from repro.cluster import (
    ClusterCapacityPlanner,
    ClusterSimulator,
    DisaggregationSpec,
    get_router,
)
from repro.control import (
    ControlPlane,
    FaultSchedule,
    RetryPolicy,
    get_autoscaler,
)
from repro.core import GenerationConfig, InferenceMetrics, Precision, ResultTable
from repro.frameworks import get_framework, list_frameworks
from repro.hardware import get_hardware, list_hardware
from repro.models import get_model, list_models
from repro.obs import EventTracer, MetricsRegistry, NULL_TRACER, Tracer
from repro.perf import Deployment, InferenceEstimator, ParallelismPlan
from repro.runtime import ServingEngine, fixed_batch_trace
from repro.scenarios import Scenario, get_scenario, list_scenarios

__version__ = "1.0.0"

__all__ = [
    "BottleneckReport",
    "analyze",
    "find_peak_batch",
    "BenchmarkRunner",
    "run_experiment",
    "ClusterCapacityPlanner",
    "ClusterSimulator",
    "DisaggregationSpec",
    "get_router",
    "ControlPlane",
    "FaultSchedule",
    "RetryPolicy",
    "get_autoscaler",
    "GenerationConfig",
    "InferenceMetrics",
    "Precision",
    "ResultTable",
    "get_framework",
    "list_frameworks",
    "get_hardware",
    "list_hardware",
    "get_model",
    "list_models",
    "Deployment",
    "InferenceEstimator",
    "ParallelismPlan",
    "ServingEngine",
    "fixed_batch_trace",
    "Scenario",
    "get_scenario",
    "list_scenarios",
    "EventTracer",
    "MetricsRegistry",
    "NULL_TRACER",
    "Tracer",
    "__version__",
]
