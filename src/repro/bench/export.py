"""Artifact export: per-experiment CSV series and a JSON bundle.

The paper's repository ships raw result files alongside the dashboard;
this module does the same for the reproduction: one CSV per experiment
(the exact rows the figure plots) plus an ``index.json`` manifest.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.bench.experiments import EXPERIMENTS, ExperimentResult

__all__ = ["export_csv", "export_bundle"]


def export_csv(result: ExperimentResult, path: str | Path) -> Path:
    """Write one experiment's sweep table as CSV."""
    out = Path(path)
    rows = result.table.to_dicts()
    if not rows:
        raise ValueError(f"{result.experiment_id} has no rows to export")
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with out.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns, restval="")
        writer.writeheader()
        writer.writerows(rows)
    return out


def export_bundle(
    results: list[ExperimentResult], directory: str | Path
) -> Path:
    """Write every experiment's CSV plus an index manifest.

    The manifest records, per experiment: the paper section, the CSV
    filename, and every headline claim with its paper value — enough to
    rebuild EXPERIMENTS.md or feed a plotting pipeline.
    """
    if not results:
        raise ValueError("no results to export")
    outdir = Path(directory)
    outdir.mkdir(parents=True, exist_ok=True)
    manifest: dict[str, dict] = {}
    for result in results:
        filename = f"{result.experiment_id}.csv"
        export_csv(result, outdir / filename)
        exp = EXPERIMENTS.get(result.experiment_id)
        manifest[result.experiment_id] = {
            "title": result.title,
            "section": exp.section if exp else "",
            "csv": filename,
            "claims": [
                {
                    "name": name,
                    "measured": measured,
                    "paper": result.paper.get(name),
                }
                for name, measured in result.measured.items()
            ],
        }
    index = outdir / "index.json"
    index.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
    return index
