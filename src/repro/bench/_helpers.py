"""Shared helpers for the per-figure reproduction modules."""

from __future__ import annotations

from repro.bench.runner import BenchmarkRunner
from repro.core.request import GenerationConfig
from repro.core.results import ResultTable
from repro.models.kvcache import KVCacheSpec
from repro.perf.parallelism import ParallelismPlan
from repro.perf.quantization import QuantizationScheme

__all__ = ["throughput_point", "sweep_batches", "GenerationConfig"]


def throughput_point(
    runner: BenchmarkRunner,
    model: str,
    hardware: str,
    framework: str,
    batch_size: int,
    input_tokens: int,
    output_tokens: int | None = None,
    plan: ParallelismPlan | None = None,
    quant: QuantizationScheme | None = None,
    kv_spec: KVCacheSpec | None = None,
) -> float:
    """Throughput (tokens/s) of one benchmark point; 0.0 on OOM."""
    dep = runner.deployment(
        model, hardware, framework, plan=plan, quant=quant, kv_spec=kv_spec
    )
    config = GenerationConfig(
        input_tokens,
        output_tokens if output_tokens is not None else input_tokens,
        batch_size,
    )
    return runner.run_point(dep, config).throughput_tokens_per_s


def sweep_batches(
    runner: BenchmarkRunner,
    table: ResultTable,
    model: str,
    hardware: str,
    framework: str,
    batch_sizes: tuple[int, ...] = (1, 16, 32, 64),
    lengths: tuple[int, ...] = (128, 1024),
    plan: ParallelismPlan | None = None,
    **extra_keys: object,
) -> ResultTable:
    """Standard paper sweep for one (model, hardware, framework) triple."""
    dep = runner.deployment(model, hardware, framework, plan=plan)
    configs = [
        GenerationConfig(length, length, bs)
        for length in lengths
        for bs in batch_sizes
    ]
    return runner.run_sweep(table, dep, configs, **extra_keys)
