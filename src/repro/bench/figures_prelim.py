"""Reproductions of the preliminary-study artifacts (paper Section IV).

Figures 1-5: batching and blended tokens, KV caching (plain and blocked),
quantization, NAS (DeciLM) and speculative decoding, and parallelism.
"""

from __future__ import annotations

from repro.bench._helpers import GenerationConfig, sweep_batches
from repro.bench.experiments import ExperimentResult, register_experiment
from repro.bench.runner import BenchmarkRunner
from repro.core.results import ResultTable
from repro.models.kvcache import KVCacheSpec
from repro.models.zoo import get_model
from repro.perf.parallelism import ParallelismPlan
from repro.perf.quantization import FP8_SCHEME, FP16_SCHEME, INT8_SCHEME
from repro.perf.speculative import SpeculativeConfig, speculative_speedup

__all__: list[str] = []


@register_experiment(
    "fig1a",
    "Throughput vs batch size and length (LLaMA-3-8B, vLLM, A100)",
    "Fig. 1a / Section IV-A1",
    tags=("prelim", "batching"),
)
def fig1a(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig1a")
    dep = runner.deployment("LLaMA-3-8B", "A100", "vLLM")
    configs = [
        GenerationConfig(length, length, bs)
        for bs in (1, 16, 32, 64)
        for length in (128, 256, 512, 1024, 2048)
    ]
    runner.run_sweep(table, dep, configs)
    result = ExperimentResult("fig1a", "vLLM batch-size scaling on A100", table)
    t1 = table.single(
        "throughput_tokens_per_s", batch_size=1, input_tokens=2048
    )
    t64 = table.single(
        "throughput_tokens_per_s", batch_size=64, input_tokens=2048
    )
    result.claim("bs64_over_bs1_at_2048", t64 / t1, paper=26.6)
    return result


@register_experiment(
    "fig1b",
    "Blended tokens: input vs output length heatmap (TRT-LLM, A100)",
    "Fig. 1b / Section IV-A2",
    tags=("prelim", "batching"),
)
def fig1b(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig1b")
    dep = runner.deployment("LLaMA-3-8B", "A100", "TRT-LLM")
    lengths = (128, 256, 512, 1024)
    configs = [GenerationConfig(i, o, 1) for i in lengths for o in lengths]
    runner.run_sweep(table, dep, configs)
    result = ExperimentResult("fig1b", "TRT-LLM blended-token heatmap", table)
    short_out = table.single(
        "throughput_tokens_per_s", input_tokens=1024, output_tokens=128
    )
    long_out = table.single(
        "throughput_tokens_per_s", input_tokens=128, output_tokens=1024
    )
    result.claim("in1024_out128_over_in128_out1024", short_out / long_out, paper=14.6)
    return result


@register_experiment(
    "fig2a",
    "KV cache on vs off (70B on Gaudi2, 8 HPUs)",
    "Fig. 2a / Section IV-B1",
    tags=("prelim", "kvcache"),
)
def fig2a(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig2a")
    plan = ParallelismPlan(tp=8)
    for enabled in (True, False):
        kv = KVCacheSpec(enabled=enabled, paged=False)
        dep = runner.deployment(
            "LLaMA-2-70B", "Gaudi2", "vLLM", plan=plan, kv_spec=kv
        )
        configs = [GenerationConfig(length, length, 1) for length in (128, 1024)]
        runner.run_sweep(table, dep, configs, kv_cache="on" if enabled else "off")
    result = ExperimentResult("fig2a", "KV-cache benefit on Gaudi2", table)
    for length, paper_ratio in ((128, 2.0), (1024, 7.0)):
        on = table.single(
            "throughput_tokens_per_s", kv_cache="on", input_tokens=length
        )
        off = table.single(
            "throughput_tokens_per_s", kv_cache="off", input_tokens=length
        )
        result.claim(f"kv_speedup_at_{length}", on / off, paper=paper_ratio)
    return result


@register_experiment(
    "fig2b",
    "Blocked KV cache: block-size sweep (LLaMA-3-8B, vLLM, A100)",
    "Fig. 2b / Section IV-B2",
    tags=("prelim", "kvcache"),
)
def fig2b(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig2b")
    for block_size in (1, 2, 4, 8, 16, 32, 64, 128):
        kv = KVCacheSpec(paged=True, block_size=block_size)
        dep = runner.deployment("LLaMA-3-8B", "A100", "vLLM", kv_spec=kv)
        configs = [GenerationConfig(1024, 1024, bs) for bs in (16, 64)]
        runner.run_sweep(table, dep, configs, block_size=block_size)
    result = ExperimentResult("fig2b", "Paged-KV block-size sensitivity", table)
    t16 = table.single("throughput_tokens_per_s", block_size=16, batch_size=64)
    t8 = table.single("throughput_tokens_per_s", block_size=8, batch_size=64)
    t128 = table.single("throughput_tokens_per_s", block_size=128, batch_size=64)
    result.claim("block16_over_block8_bs64", t16 / t8, paper=1.27)
    # ">= 16 produces optimal throughput": 128 should be within a few % of 16.
    result.claim("block128_over_block16_bs64", t128 / t16, paper=1.0)
    return result


@register_experiment(
    "fig3",
    "Quantization: FP16 vs FP8 vs INT8 (LLaMA-3-8B, A100/H100)",
    "Fig. 3 / Section IV-B3",
    tags=("prelim", "quantization"),
)
def fig3(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig3")
    combos = [
        ("A100", "vLLM", FP16_SCHEME),
        ("A100", "vLLM", INT8_SCHEME),
        ("A100", "TRT-LLM", FP16_SCHEME),
        ("A100", "TRT-LLM", INT8_SCHEME),
        ("H100", "vLLM", FP16_SCHEME),
        ("H100", "vLLM", FP8_SCHEME),
        ("H100", "vLLM", INT8_SCHEME),
        ("H100", "TRT-LLM", FP16_SCHEME),
        ("H100", "TRT-LLM", FP8_SCHEME),
        ("H100", "TRT-LLM", INT8_SCHEME),
    ]
    for hw, fw, scheme in combos:
        dep = runner.deployment("LLaMA-3-8B", hw, fw, quant=scheme)
        configs = [GenerationConfig(1024, 1024, bs) for bs in (1, 16, 64)]
        runner.run_sweep(table, dep, configs, precision=scheme.label)
    result = ExperimentResult("fig3", "Quantization benefit", table)
    h100_fp8 = table.single(
        "throughput_tokens_per_s",
        hardware="H100",
        framework="TRT-LLM",
        precision="fp8",
        batch_size=64,
    )
    h100_fp16 = table.single(
        "throughput_tokens_per_s",
        hardware="H100",
        framework="TRT-LLM",
        precision="fp16",
        batch_size=64,
    )
    a100_int8 = table.single(
        "throughput_tokens_per_s",
        hardware="A100",
        framework="TRT-LLM",
        precision="wint8-kvfp16",
        batch_size=64,
    )
    a100_fp16 = table.single(
        "throughput_tokens_per_s",
        hardware="A100",
        framework="TRT-LLM",
        precision="fp16",
        batch_size=64,
    )
    result.claim("h100_fp8_over_fp16", h100_fp8 / h100_fp16, paper=1.3)
    result.claim("a100_int8_over_fp16", a100_int8 / a100_fp16, paper=1.2)
    return result


@register_experiment(
    "fig4a",
    "NAS: DeciLM-7B vs LLaMA-3-8B vs Mistral-7B (A100, H100)",
    "Fig. 4a / Section IV-B4",
    tags=("prelim", "nas"),
)
def fig4a(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig4a")
    for hw in ("A100", "H100"):
        for model in ("DeciLM-7B", "LLaMA-3-8B", "Mistral-7B"):
            sweep_batches(
                runner, table, model, hw, "vLLM", batch_sizes=(1, 16, 64),
                lengths=(1024,),
            )
    result = ExperimentResult("fig4a", "DeciLM NAS benefit", table)
    for hw in ("A100", "H100"):
        deci = table.single(
            "throughput_tokens_per_s", model="DeciLM-7B", hardware=hw, batch_size=64
        )
        llama = table.single(
            "throughput_tokens_per_s", model="LLaMA-3-8B", hardware=hw, batch_size=64
        )
        result.claim(f"deci_over_llama3_{hw.lower()}", deci / llama, paper=1.2)
    return result


@register_experiment(
    "fig4b",
    "Speculative decoding: LLaMA-2-7B vs Mixtral-8x7B with 68M draft",
    "Fig. 4b / Section IV-B5",
    tags=("prelim", "speculative"),
)
def fig4b(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig4b")
    draft = get_model("LLaMA-68M")
    spec = SpeculativeConfig(draft_model=draft, gamma=4)
    for model in ("LLaMA-2-7B", "Mixtral-8x7B"):
        dep = runner.deployment(model, "A100", "vLLM")
        for length in (128, 256, 512, 1024, 2048):
            config = GenerationConfig(length, length, 1)
            speedup = speculative_speedup(dep, spec, config)
            table.add(
                {"model": model, "length": length},
                {"sd_speedup": speedup},
            )
    result = ExperimentResult("fig4b", "Speculative-decoding speedup", table)
    s7b_short = table.single("sd_speedup", model="LLaMA-2-7B", length=128)
    s7b_long = table.single("sd_speedup", model="LLaMA-2-7B", length=2048)
    smoe = table.single("sd_speedup", model="Mixtral-8x7B", length=128)
    result.claim("llama2_speedup_at_128", s7b_short, paper=1.3)
    result.claim("llama2_speedup_decay", s7b_long / s7b_short, paper=0.7)
    result.claim("mixtral_speedup_at_128", smoe, paper=0.95)
    return result


def _parallelism_table(
    runner: BenchmarkRunner, model: str, plans: list[ParallelismPlan]
) -> ResultTable:
    table = ResultTable("parallelism")
    for plan in plans:
        dep = runner.deployment(model, "A100", "vLLM", plan=plan)
        configs = [GenerationConfig(1024, 1024, 16)]
        runner.run_sweep(table, dep, configs, plan=plan.label)
    return table


@register_experiment(
    "fig5a",
    "TP vs PP vs hybrid on 4 A100s (LLaMA-3-8B)",
    "Fig. 5a / Section IV-C",
    tags=("prelim", "parallelism"),
)
def fig5a(runner: BenchmarkRunner) -> ExperimentResult:
    plans = [
        ParallelismPlan(tp=1),
        ParallelismPlan(tp=2),
        ParallelismPlan(tp=4),
        ParallelismPlan(pp=4),
        ParallelismPlan(tp=2, pp=2),
    ]
    table = _parallelism_table(runner, "LLaMA-3-8B", plans)
    result = ExperimentResult("fig5a", "Parallelism comparison (dense)", table)
    tp4 = table.single("throughput_tokens_per_s", plan="TP4")
    pp4 = table.single("throughput_tokens_per_s", plan="PP4")
    hybrid = table.single("throughput_tokens_per_s", plan="TP2+PP2")
    result.claim("tp_over_hybrid", tp4 / hybrid, paper=1.30)
    result.claim("tp_over_pp", tp4 / pp4, paper=1.94)
    return result


@register_experiment(
    "fig5b",
    "TP vs PP vs EP on 4 A100s (Mixtral-8x7B)",
    "Fig. 5b / Section IV-C",
    tags=("prelim", "parallelism"),
)
def fig5b(runner: BenchmarkRunner) -> ExperimentResult:
    plans = [
        ParallelismPlan(tp=4),
        ParallelismPlan(pp=4),
        ParallelismPlan(tp=2, pp=2),
        ParallelismPlan(tp=4, ep=4),
    ]
    table = _parallelism_table(runner, "Mixtral-8x7B", plans)
    result = ExperimentResult("fig5b", "Parallelism comparison (MoE)", table)
    tp = table.single("throughput_tokens_per_s", plan="TP4")
    ep = table.single("throughput_tokens_per_s", plan="TP4+EP4")
    pp = table.single("throughput_tokens_per_s", plan="PP4")
    result.claim("tp_over_pp_moe", tp / pp, paper=1.9)
    result.claim("tp_over_ep_moe", tp / ep, paper=1.2)
    return result
