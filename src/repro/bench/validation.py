"""Cross-validation between the closed-form estimator and the event engine.

The suite has two independent implementations of the same performance
model: the analytical estimator (fast path, powers the figure
reproductions) and the discrete-event engine (request-level simulation).
This module samples random benchmark points and compares them — the
simulator's internal consistency check, exposed to users via
``llm-inference-bench validate``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.request import GenerationConfig
from repro.frameworks.base import get_framework
from repro.frameworks.support import supported_pairs
from repro.hardware.zoo import get_hardware
from repro.models.zoo import SEVEN_B_MODELS, get_model
from repro.perf.estimator import InferenceEstimator
from repro.perf.phases import Deployment
from repro.runtime.engine import ServingEngine
from repro.runtime.memory_manager import OutOfMemoryError
from repro.runtime.workload import fixed_batch_trace

__all__ = ["ValidationPoint", "ValidationSummary", "cross_validate"]


@dataclass(frozen=True)
class ValidationPoint:
    """One sampled configuration and both implementations' answers."""

    model: str
    hardware: str
    framework: str
    batch_size: int
    length: int
    estimator_tput: float
    engine_tput: float

    @property
    def relative_error(self) -> float:
        if self.estimator_tput == 0.0 and self.engine_tput == 0.0:
            return 0.0
        denom = max(self.estimator_tput, self.engine_tput)
        return abs(self.estimator_tput - self.engine_tput) / denom


@dataclass(frozen=True)
class ValidationSummary:
    points: tuple[ValidationPoint, ...]
    skipped_oom: int

    @property
    def max_relative_error(self) -> float:
        if not self.points:
            return 0.0
        return max(p.relative_error for p in self.points)

    @property
    def mean_relative_error(self) -> float:
        if not self.points:
            return 0.0
        return sum(p.relative_error for p in self.points) / len(self.points)

    def worst(self, n: int = 5) -> list[ValidationPoint]:
        return sorted(self.points, key=lambda p: p.relative_error, reverse=True)[:n]

    def render(self) -> str:
        lines = [
            f"validated {len(self.points)} points ({self.skipped_oom} OOM skipped)",
            f"mean relative error: {self.mean_relative_error:.2%}",
            f"max relative error:  {self.max_relative_error:.2%}",
        ]
        for p in self.worst(3):
            lines.append(
                f"  worst: {p.model}/{p.hardware}/{p.framework} "
                f"bs={p.batch_size} len={p.length}: "
                f"est {p.estimator_tput:,.0f} vs engine {p.engine_tput:,.0f} "
                f"({p.relative_error:.1%})"
            )
        return "\n".join(lines)


def cross_validate(
    num_points: int = 20,
    seed: int = 0,
    max_relative_error: float | None = None,
) -> ValidationSummary:
    """Sample random 7B-class configurations and compare both paths.

    Only in-capacity workloads are compared (the estimator's fractional
    waves intentionally approximate the engine's integer waves under
    memory pressure).  Raises AssertionError if ``max_relative_error`` is
    given and exceeded.
    """
    if num_points < 1:
        raise ValueError("num_points must be >= 1")
    rng = np.random.default_rng(seed)
    pairs = supported_pairs()
    points: list[ValidationPoint] = []
    skipped = 0
    attempts = 0
    while len(points) < num_points and attempts < num_points * 10:
        attempts += 1
        fw_name, hw_name = pairs[int(rng.integers(0, len(pairs)))]
        model_name = SEVEN_B_MODELS[int(rng.integers(0, len(SEVEN_B_MODELS)))]
        batch = int(rng.choice([1, 2, 4, 8, 16]))
        length = int(rng.choice([128, 256, 512, 1024]))
        try:
            dep = Deployment(
                get_model(model_name), get_hardware(hw_name), get_framework(fw_name)
            )
        except ValueError:
            skipped += 1
            continue
        config = GenerationConfig(length, length, batch)
        estimator = InferenceEstimator(dep)
        est_metrics = estimator.estimate(config)
        if est_metrics.oom or (
            est_metrics.effective_concurrency is not None
            and est_metrics.effective_concurrency < batch
        ):
            skipped += 1
            continue
        try:
            engine = ServingEngine(dep, max_concurrency=batch)
            result = engine.run(fixed_batch_trace(batch, length, length))
        except OutOfMemoryError:
            skipped += 1
            continue
        points.append(
            ValidationPoint(
                model=model_name,
                hardware=hw_name,
                framework=fw_name,
                batch_size=batch,
                length=length,
                estimator_tput=est_metrics.throughput_tokens_per_s,
                engine_tput=result.throughput_tokens_per_s,
            )
        )
    summary = ValidationSummary(points=tuple(points), skipped_oom=skipped)
    if max_relative_error is not None:
        assert summary.max_relative_error <= max_relative_error, summary.render()
    return summary
