"""Benchmark runner: sweeps deployments over workloads into result tables.

``BenchmarkRunner`` is the one entry point every figure reproduction uses.
It resolves names to registry objects, picks the paper's default
parallelism plan (TP = number of devices, sized so the weights fit), runs
either the closed-form estimator (fast, default) or the discrete-event
engine (slower, higher fidelity), and appends rows to a
:class:`~repro.core.results.ResultTable`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.metrics import InferenceMetrics
from repro.core.request import GenerationConfig
from repro.core.results import ResultTable
from repro.frameworks.base import FrameworkProfile, get_framework
from repro.hardware.spec import HardwareSpec
from repro.hardware.zoo import get_hardware
from repro.models.config import ModelConfig
from repro.models.kvcache import KVCacheSpec
from repro.models.zoo import get_model
from repro.perf.estimator import InferenceEstimator
from repro.perf.parallelism import ParallelismPlan
from repro.perf.phases import Deployment
from repro.obs.telemetry import TelemetryHub
from repro.obs.tracer import Tracer
from repro.perf.quantization import QuantizationScheme
from repro.runtime.engine import EngineResult, ServingEngine
from repro.runtime.memory_manager import OutOfMemoryError
from repro.runtime.workload import fixed_batch_trace

__all__ = ["BenchmarkRunner", "default_plan"]


def default_plan(model: ModelConfig, hardware: HardwareSpec) -> ParallelismPlan:
    """The paper's deployment rule: pure TP over as few devices as fit.

    7B-class models run on one device where they fit; 70B-class models
    take the whole node ("the number of GPUs is equal to the TP size",
    Section V).  If the weights do not fit even on the full node the full-
    node plan is returned and the capacity check downstream reports OOM
    (e.g. llama.cpp's 70B-on-A100 exclusion, Fig. 32).
    """
    weight_bytes = model.total_params * 2.0  # fp16 sizing rule
    tp = 1
    while tp < hardware.devices_per_node:
        usable = hardware.usable_memory_bytes(tp)
        if weight_bytes <= usable * 0.85:  # leave KV headroom
            break
        tp *= 2
    tp = min(tp, hardware.devices_per_node)
    if model.uses_gqa:
        tp = min(tp, model.num_kv_heads)
    return ParallelismPlan(tp=tp)


@dataclass
class BenchmarkRunner:
    """Runs benchmark points and accumulates results.

    ``use_engine=True`` swaps the closed-form estimator for the discrete-
    event serving engine (identical metrics on in-capacity workloads,
    higher fidelity under memory pressure — and slower).

    ``telemetry_factory`` (engine mode only) builds a fresh
    :class:`~repro.obs.telemetry.TelemetryHub` for every engine point;
    each point's snapshot is appended to ``telemetry_log`` keyed by its
    deployment/workload shape (the ``--telemetry-output`` payload).
    """

    use_engine: bool = False
    max_concurrency: int | None = None
    telemetry_factory: Callable[[], TelemetryHub] | None = None
    telemetry_log: list[dict] = field(default_factory=list)

    # ------------------------------------------------------------------

    def resolve(
        self,
        model: ModelConfig | str,
        hardware: HardwareSpec | str,
        framework: FrameworkProfile | str,
    ) -> tuple[ModelConfig, HardwareSpec, FrameworkProfile]:
        if isinstance(model, str):
            model = get_model(model)
        if isinstance(hardware, str):
            hardware = get_hardware(hardware)
        if isinstance(framework, str):
            framework = get_framework(framework)
        return model, hardware, framework

    def deployment(
        self,
        model: ModelConfig | str,
        hardware: HardwareSpec | str,
        framework: FrameworkProfile | str,
        plan: ParallelismPlan | None = None,
        quant: QuantizationScheme | None = None,
        kv_spec: KVCacheSpec | None = None,
    ) -> Deployment:
        model, hardware, framework = self.resolve(model, hardware, framework)
        if plan is None:
            plan = default_plan(model, hardware)
        dep = Deployment(model, hardware, framework, plan=plan)
        if quant is not None:
            dep = dep.with_quant(quant)
        if kv_spec is not None:
            dep = dep.with_kv_spec(kv_spec)
        return dep

    # ------------------------------------------------------------------

    def run_point(
        self, deployment: Deployment, config: GenerationConfig
    ) -> InferenceMetrics:
        """One benchmark point; OOM comes back as an OOM record."""
        if not self.use_engine:
            return InferenceEstimator(deployment).estimate(config)
        try:
            hub = (
                self.telemetry_factory()
                if self.telemetry_factory is not None
                else None
            )
            engine = ServingEngine(
                deployment,
                max_concurrency=self.max_concurrency or config.batch_size,
                **({"telemetry": hub} if hub is not None else {}),
            )
            trace = fixed_batch_trace(
                config.batch_size, config.input_tokens, config.output_tokens
            )
            result = engine.run(trace)
            if hub is not None and result.telemetry is not None:
                self.telemetry_log.append(
                    {
                        "model": deployment.model.name,
                        "hardware": deployment.hardware.name,
                        "framework": deployment.framework.name,
                        "devices": deployment.num_devices,
                        "batch_size": config.batch_size,
                        "input_tokens": config.input_tokens,
                        "output_tokens": config.output_tokens,
                        "telemetry": result.telemetry.to_json_dict(),
                    }
                )
            return result.to_metrics()
        except OutOfMemoryError:
            return InferenceMetrics.out_of_memory(
                config.batch_size, config.input_tokens, config.output_tokens
            )

    def run_traced(
        self,
        deployment: Deployment,
        trace: list,
        tracer: Tracer,
        max_concurrency: int | None = None,
        optimistic: bool = False,
    ) -> EngineResult:
        """Run a request trace on the event engine with tracing enabled.

        The observability entry point behind ``llm-inference-bench trace``:
        always uses the discrete-event engine (the estimator has no events
        to record) and returns the full :class:`EngineResult`, whose
        ``metrics`` snapshot carries the TTFT/ITL histograms.  Raises
        :class:`OutOfMemoryError` — callers decide how to report OOM.
        """
        engine = ServingEngine(
            deployment,
            max_concurrency=max_concurrency
            or self.max_concurrency
            or len(trace),
            optimistic=optimistic,
            tracer=tracer,
        )
        return engine.run(trace)

    def run_profiled(
        self,
        deployment: Deployment,
        trace: list,
        max_concurrency: int | None = None,
        optimistic: bool = False,
        tracer: Tracer | None = None,
    ) -> EngineResult:
        """Run a request trace with cost-attribution profiling enabled.

        The entry point behind ``llm-inference-bench profile``: the
        returned :class:`EngineResult` carries a
        :class:`~repro.obs.profiler.ProfileReport` in ``profile``.  Pass
        a recording ``tracer`` to also capture Perfetto counter tracks
        (mfu, mbu, tokens/s, watts, joules/token) alongside the engine's
        span events.  Raises :class:`OutOfMemoryError` like
        :meth:`run_traced`.
        """
        kwargs = {} if tracer is None else {"tracer": tracer}
        engine = ServingEngine(
            deployment,
            max_concurrency=max_concurrency
            or self.max_concurrency
            or len(trace),
            optimistic=optimistic,
            profile=True,
            **kwargs,
        )
        return engine.run(trace)

    def run_sweep(
        self,
        table: ResultTable,
        deployment: Deployment,
        configs: list[GenerationConfig],
        **extra_keys: object,
    ) -> ResultTable:
        """Append one row per workload config, tagged with ``extra_keys``."""
        for config in configs:
            metrics = self.run_point(deployment, config)
            keys = {
                "model": deployment.model.name,
                "hardware": deployment.hardware.name,
                "framework": deployment.framework.name,
                "devices": deployment.num_devices,
                "batch_size": config.batch_size,
                "input_tokens": config.input_tokens,
                "output_tokens": config.output_tokens,
                **extra_keys,
            }
            values = {
                "throughput_tokens_per_s": metrics.throughput_tokens_per_s,
                "ttft_s": metrics.ttft_s,
                "itl_s": metrics.itl_s if metrics.itl_s != float("inf") else 0.0,
                "e2e_s": (
                    metrics.end_to_end_latency_s
                    if metrics.end_to_end_latency_s != float("inf")
                    else 0.0
                ),
                "oom": 1.0 if metrics.oom else 0.0,
            }
            if metrics.average_power_w is not None:
                values["power_w"] = metrics.average_power_w
                values["tokens_per_s_per_w"] = metrics.perf_per_watt or 0.0
            table.add(keys, values)
        return table

    def paper_grid(
        self,
        models: list[str],
        hardwares: list[str],
        frameworks: list[str],
        lengths: tuple[int, ...] = (128, 1024),
        batch_sizes: tuple[int, ...] = (1, 16, 32, 64),
        table_name: str = "grid",
    ) -> ResultTable:
        """The paper's standard grid, skipping unsupported pairs."""
        table = ResultTable(name=table_name)
        for hw_name in hardwares:
            for fw_name in frameworks:
                framework = get_framework(fw_name)
                if not framework.supports_hardware(hw_name):
                    continue
                for model_name in models:
                    dep = self.deployment(model_name, hw_name, fw_name)
                    configs = [
                        GenerationConfig(length, length, bs)
                        for length in lengths
                        for bs in batch_sizes
                    ]
                    self.run_sweep(table, dep, configs)
        return table
