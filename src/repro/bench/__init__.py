"""Benchmark harness: runner, experiment registry, per-figure reproductions."""

from repro.bench.experiments import (
    EXPERIMENTS,
    Experiment,
    ExperimentResult,
    get_experiment,
    list_experiments,
    register_experiment,
    run_experiment,
)
from repro.bench.export import export_bundle, export_csv
from repro.bench.perfbench import (
    BenchReport,
    check_regression,
    load_baseline,
    run_benchmarks,
    write_report,
)
from repro.bench.runner import BenchmarkRunner, default_plan
from repro.bench.validation import cross_validate
from repro.bench.report import experiments_markdown, render_results, run_all

# Importing the figure modules populates the experiment registry.
from repro.bench import (  # noqa: E402,F401  (registration side effects)
    figures_extensions,
    figures_frameworks,
    figures_hardware,
    figures_prelim,
    figures_quality,
    tables,
)

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "register_experiment",
    "run_experiment",
    "BenchmarkRunner",
    "default_plan",
    "BenchReport",
    "check_regression",
    "load_baseline",
    "run_benchmarks",
    "write_report",
    "export_bundle",
    "export_csv",
    "cross_validate",
    "experiments_markdown",
    "render_results",
    "run_all",
]
