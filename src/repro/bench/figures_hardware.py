"""Reproductions of the hardware-wise benchmarking artifacts.

Figures 16-25 (Sections VI/VII) plus the appendix MI250 and Gaudi2 studies
(Figs. 35, 36, 38).
"""

from __future__ import annotations

from repro.bench._helpers import GenerationConfig, sweep_batches
from repro.bench.experiments import ExperimentResult, register_experiment
from repro.bench.runner import BenchmarkRunner
from repro.core.results import ResultTable
from repro.perf.estimator import InferenceEstimator
from repro.perf.parallelism import ParallelismPlan

__all__: list[str] = []

_7B = ("LLaMA-2-7B", "LLaMA-3-8B", "Mistral-7B")

# The paper's cross-hardware comparisons deploy the SN40L as 8 RDUs
# (TP = 8, its fixed configuration) against 4-GPU (or single-GPU) nodes.
_SN40L_PLAN = ParallelismPlan(tp=8)


@register_experiment(
    "fig16",
    "Power and throughput-per-watt (A100/H100/GH200, vLLM/TRT-LLM)",
    "Fig. 16 / Section VI-1",
    tags=("hardware", "power"),
)
def fig16(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig16")
    for hw in ("A100", "H100", "GH200"):
        for fw in ("vLLM", "TRT-LLM"):
            for model in ("LLaMA-2-7B", "LLaMA-3-8B"):
                sweep_batches(
                    runner, table, model, hw, fw,
                    batch_sizes=(16,), lengths=(1024,),
                )
    result = ExperimentResult("fig16", "Power and efficiency", table)
    trt_power = table.single(
        "power_w", hardware="A100", framework="TRT-LLM", model="LLaMA-3-8B"
    )
    vllm_power = table.single(
        "power_w", hardware="A100", framework="vLLM", model="LLaMA-3-8B"
    )
    result.claim("trtllm_power_over_vllm_a100", trt_power / vllm_power, paper=1.1)
    trt_eff = table.single(
        "tokens_per_s_per_w", hardware="A100", framework="TRT-LLM", model="LLaMA-3-8B"
    )
    vllm_eff = table.single(
        "tokens_per_s_per_w", hardware="A100", framework="vLLM", model="LLaMA-3-8B"
    )
    result.claim("trtllm_perf_per_watt_over_vllm", trt_eff / vllm_eff, paper=1.1)
    l3_eff = table.single(
        "tokens_per_s_per_w", hardware="H100", framework="TRT-LLM", model="LLaMA-3-8B"
    )
    l2_eff = table.single(
        "tokens_per_s_per_w", hardware="H100", framework="TRT-LLM", model="LLaMA-2-7B"
    )
    result.claim("llama3_perf_per_watt_over_llama2", l3_eff / l2_eff)
    gh200_power = table.single(
        "power_w", hardware="GH200", framework="TRT-LLM", model="LLaMA-2-7B"
    )
    a100_power = table.single(
        "power_w", hardware="A100", framework="TRT-LLM", model="LLaMA-2-7B"
    )
    result.claim("gh200_power_over_a100", gh200_power / a100_power)
    return result


@register_experiment(
    "fig17",
    "MI250 early saturation (LLaMA-3-8B, vLLM)",
    "Fig. 17 / Section VI-2",
    tags=("hardware", "mi250"),
)
def fig17(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig17")
    for length in (128, 512, 1024, 2048):
        sweep_batches(
            runner, table, "LLaMA-3-8B", "MI250", "vLLM",
            batch_sizes=(1, 16, 32, 64), lengths=(length,),
        )
    result = ExperimentResult("fig17", "MI250 saturation knee", table)
    t32 = table.single(
        "throughput_tokens_per_s", batch_size=32, input_tokens=1024
    )
    t64 = table.single(
        "throughput_tokens_per_s", batch_size=64, input_tokens=1024
    )
    # The paper observes a *decline* past batch 32 at longer lengths.
    result.claim("bs64_over_bs32_at_1024", t64 / t32, paper=0.95)
    return result


@register_experiment(
    "fig18",
    "SN40L (8 RDUs) vs 4xH100 / 4xA100: 7B models",
    "Fig. 18 / Section VI-3",
    tags=("hardware", "sn40l"),
)
def fig18(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig18")
    gpu_plan = ParallelismPlan(tp=4)
    for length in (128, 256, 512, 1024, 2048):
        for model in _7B:
            sweep_batches(
                runner, table, model, "SN40L", "SambaFlow",
                batch_sizes=(1, 16), lengths=(length,), plan=_SN40L_PLAN,
            )
            for hw in ("H100", "A100"):
                sweep_batches(
                    runner, table, model, hw, "vLLM",
                    batch_sizes=(1, 16), lengths=(length,), plan=gpu_plan,
                )
    result = ExperimentResult("fig18", "SN40L vs GPUs, 7B", table)
    sn = table.single(
        "throughput_tokens_per_s",
        model="LLaMA-3-8B",
        hardware="SN40L",
        batch_size=16,
        input_tokens=512,
    )
    h100 = table.single(
        "throughput_tokens_per_s",
        model="LLaMA-3-8B",
        hardware="H100",
        batch_size=16,
        input_tokens=512,
    )
    result.claim("sn40l_over_4xh100_bs16_len512", sn / h100, paper=1.2)
    # "Throughput increases with increasing input/output length (till 512)".
    sn128 = table.single(
        "throughput_tokens_per_s",
        model="LLaMA-3-8B",
        hardware="SN40L",
        batch_size=16,
        input_tokens=128,
    )
    result.claim("sn40l_len512_over_len128", sn / sn128, paper=1.5)
    gqa = table.single(
        "throughput_tokens_per_s",
        model="Mistral-7B",
        hardware="SN40L",
        batch_size=16,
        input_tokens=512,
    )
    mhsa = table.single(
        "throughput_tokens_per_s",
        model="LLaMA-2-7B",
        hardware="SN40L",
        batch_size=16,
        input_tokens=512,
    )
    result.claim("sn40l_gqa_over_mhsa", gqa / mhsa)
    return result


@register_experiment(
    "fig19",
    "SN40L (8 RDUs) vs 4xH100 / 4xA100: 70B model",
    "Fig. 19 / Section VI-3",
    tags=("hardware", "sn40l"),
)
def fig19(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig19")
    gpu_plan = ParallelismPlan(tp=4)
    for length in (128, 512, 1024):
        sweep_batches(
            runner, table, "LLaMA-2-70B", "SN40L", "SambaFlow",
            batch_sizes=(1, 16), lengths=(length,), plan=_SN40L_PLAN,
        )
        for hw in ("H100", "A100"):
            sweep_batches(
                runner, table, "LLaMA-2-70B", hw, "vLLM",
                batch_sizes=(1, 16), lengths=(length,), plan=gpu_plan,
            )
    result = ExperimentResult("fig19", "SN40L vs GPUs, 70B", table)
    sn = table.single(
        "throughput_tokens_per_s",
        hardware="SN40L",
        batch_size=16,
        input_tokens=512,
    )
    a100 = table.single(
        "throughput_tokens_per_s",
        hardware="A100",
        batch_size=16,
        input_tokens=512,
    )
    result.claim("sn40l_over_4xa100_70b", sn / a100, paper=2.0)
    return result


@register_experiment(
    "fig20",
    "Gaudi2 vs H100 vs A100: 7B models",
    "Fig. 20 / Section VI-4",
    tags=("hardware", "gaudi2"),
)
def fig20(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig20")
    for hw, fw in (("Gaudi2", "vLLM"), ("H100", "vLLM"), ("A100", "vLLM")):
        for model in _7B:
            sweep_batches(
                runner, table, model, hw, fw,
                batch_sizes=(1, 16, 32, 64), lengths=(1024,),
            )
    result = ExperimentResult("fig20", "Gaudi2 position among GPUs, 7B", table)
    gaudi = table.single(
        "throughput_tokens_per_s",
        model="LLaMA-3-8B",
        hardware="Gaudi2",
        batch_size=16,
    )
    a100 = table.single(
        "throughput_tokens_per_s", model="LLaMA-3-8B", hardware="A100", batch_size=16
    )
    h100 = table.single(
        "throughput_tokens_per_s", model="LLaMA-3-8B", hardware="H100", batch_size=16
    )
    result.claim("gaudi2_over_a100_bs16", gaudi / a100, paper=1.2)
    result.claim("h100_over_gaudi2_bs16", h100 / gaudi, paper=1.3)
    # "memory issues quicker than other accelerators": OOM at large batch.
    oom64 = table.single(
        "oom", model="LLaMA-2-7B", hardware="Gaudi2", batch_size=64
    )
    result.claim("gaudi2_oom_at_bs64", oom64, paper=1.0)
    return result


@register_experiment(
    "fig38",
    "Gaudi2 vs H100 vs A100: 70B models",
    "Fig. 38 / Appendix E-F",
    tags=("hardware", "gaudi2"),
)
def fig38(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig38")
    gaudi_plan = ParallelismPlan(tp=8)
    gpu_plan = ParallelismPlan(tp=4)
    for model in ("LLaMA-2-70B", "LLaMA-3-70B"):
        sweep_batches(
            runner, table, model, "Gaudi2", "vLLM",
            batch_sizes=(1, 16), lengths=(1024,), plan=gaudi_plan,
        )
        for hw in ("H100", "A100"):
            sweep_batches(
                runner, table, model, hw, "vLLM",
                batch_sizes=(1, 16), lengths=(1024,), plan=gpu_plan,
            )
    result = ExperimentResult("fig38", "Gaudi2 position among GPUs, 70B", table)
    gaudi = table.single(
        "throughput_tokens_per_s",
        model="LLaMA-2-70B",
        hardware="Gaudi2",
        batch_size=16,
    )
    a100 = table.single(
        "throughput_tokens_per_s",
        model="LLaMA-2-70B",
        hardware="A100",
        batch_size=16,
    )
    h100 = table.single(
        "throughput_tokens_per_s",
        model="LLaMA-2-70B",
        hardware="H100",
        batch_size=16,
    )
    result.claim("gaudi2_over_a100_70b", gaudi / a100, paper=1.3)
    result.claim("h100_over_gaudi2_70b", h100 / gaudi, paper=1.5)
    return result


def _hardware_panel(runner: BenchmarkRunner) -> list[tuple[str, str, ParallelismPlan]]:
    """The Fig. 21-25 hardware panel: platform, framework, plan."""
    return [
        ("A100", "vLLM", ParallelismPlan(tp=4)),
        ("H100", "vLLM", ParallelismPlan(tp=4)),
        ("MI250", "vLLM", ParallelismPlan(tp=4)),
        ("Gaudi2", "vLLM", ParallelismPlan(tp=8)),
        ("SN40L", "SambaFlow", _SN40L_PLAN),
    ]


@register_experiment(
    "fig21",
    "Time to First Token across hardware",
    "Fig. 21 / Section VII-2",
    tags=("hardware", "latency"),
)
def fig21(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig21")
    for hw, fw, plan in _hardware_panel(runner):
        for model in _7B:
            dep = runner.deployment(model, hw, fw, plan=plan)
            # Paper method: TTFT measured with max output of one token.
            ttft = InferenceEstimator(dep).estimate_ttft(
                GenerationConfig(1024, 1, 1)
            )
            table.add(
                {"model": model, "hardware": hw, "framework": fw},
                {"ttft_s": ttft},
            )
    result = ExperimentResult("fig21", "TTFT panel", table)
    sn40l = table.single("ttft_s", model="LLaMA-3-8B", hardware="SN40L")
    gpu_max = max(
        table.single("ttft_s", model="LLaMA-3-8B", hardware=hw)
        for hw in ("A100", "H100", "MI250", "Gaudi2")
    )
    result.claim("sn40l_ttft_over_worst_gpu", sn40l / gpu_max, paper=2.0)
    return result


@register_experiment(
    "fig22",
    "Inter-Token Latency across hardware",
    "Fig. 22 / Section VII-2",
    tags=("hardware", "latency"),
)
def fig22(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig22")
    for hw, fw, plan in _hardware_panel(runner):
        for model in _7B:
            dep = runner.deployment(model, hw, fw, plan=plan)
            itl = InferenceEstimator(dep).estimate_itl(GenerationConfig(1024, 1024, 1))
            table.add(
                {"model": model, "hardware": hw, "framework": fw},
                {"itl_s": itl},
            )
    result = ExperimentResult("fig22", "ITL panel", table)
    sn40l = table.single("itl_s", model="LLaMA-3-8B", hardware="SN40L")
    gpu_min = min(
        table.single("itl_s", model="LLaMA-3-8B", hardware=hw)
        for hw in ("A100", "H100", "MI250", "Gaudi2")
    )
    result.claim("sn40l_itl_over_best_gpu", sn40l / gpu_min, paper=0.9)
    return result


@register_experiment(
    "fig23",
    "Throughput vs batch size across hardware (LLaMA-3-8B)",
    "Fig. 23 / Section VII-2",
    tags=("hardware",),
)
def fig23(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig23")
    for hw, fw, plan in _hardware_panel(runner):
        sweep_batches(
            runner, table, "LLaMA-3-8B", hw, fw,
            batch_sizes=(1, 16, 32, 64), lengths=(1024,), plan=plan,
        )
    result = ExperimentResult("fig23", "Cross-hardware batch scaling", table)
    sn32 = table.single(
        "throughput_tokens_per_s", hardware="SN40L", batch_size=32
    )
    others32 = max(
        table.single("throughput_tokens_per_s", hardware=hw, batch_size=32)
        for hw in ("A100", "H100", "MI250", "Gaudi2")
    )
    result.claim("sn40l_best_up_to_bs32", sn32 / others32, paper=1.1)
    return result


@register_experiment(
    "fig24",
    "Throughput vs input/output length across hardware (LLaMA-3-8B)",
    "Fig. 24 / Section VII-2",
    tags=("hardware",),
)
def fig24(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig24")
    for hw, fw, plan in _hardware_panel(runner):
        for length in (128, 512, 1024, 2048):
            sweep_batches(
                runner, table, "LLaMA-3-8B", hw, fw,
                batch_sizes=(16,), lengths=(length,), plan=plan,
            )
    result = ExperimentResult("fig24", "Cross-hardware length scaling", table)
    # GPUs: throughput decreases with length; SN40L: rises until 512.
    for hw in ("A100", "H100"):
        short = table.single(
            "throughput_tokens_per_s", hardware=hw, input_tokens=128
        )
        long = table.single(
            "throughput_tokens_per_s", hardware=hw, input_tokens=2048
        )
        result.claim(f"{hw.lower()}_len128_over_len2048", short / long)
    sn512 = table.single(
        "throughput_tokens_per_s", hardware="SN40L", input_tokens=512
    )
    sn128 = table.single(
        "throughput_tokens_per_s", hardware="SN40L", input_tokens=128
    )
    result.claim("sn40l_len512_over_len128", sn512 / sn128, paper=1.5)
    return result


@register_experiment(
    "fig25",
    "Peak throughput per hardware platform (7B models)",
    "Fig. 25 / Section VII-2",
    tags=("hardware",),
)
def fig25(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig25")
    for hw, fw, plan in _hardware_panel(runner):
        for model in _7B:
            best = 0.0
            best_bs = 0
            dep = runner.deployment(model, hw, fw, plan=plan)
            for bs in (1, 16, 32, 64):
                metrics = runner.run_point(dep, GenerationConfig(1024, 1024, bs))
                if metrics.throughput_tokens_per_s > best:
                    best = metrics.throughput_tokens_per_s
                    best_bs = bs
            table.add(
                {"model": model, "hardware": hw, "best_batch": best_bs},
                {"peak_throughput": best},
            )
    result = ExperimentResult("fig25", "Peak performance panel", table)
    h100 = table.single("peak_throughput", model="LLaMA-3-8B", hardware="H100")
    a100 = table.single("peak_throughput", model="LLaMA-3-8B", hardware="A100")
    mi250 = table.single("peak_throughput", model="LLaMA-3-8B", hardware="MI250")
    result.claim("h100_peak_over_a100", h100 / a100, paper=2.5)
    result.claim("a100_peak_over_mi250", a100 / mi250)
    return result


@register_experiment(
    "fig35",
    "MI250 vLLM: 7B models across batch sizes",
    "Fig. 35 / Appendix E-E",
    tags=("hardware", "mi250"),
)
def fig35(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig35")
    for model in _7B + ("Qwen2-7B",):
        sweep_batches(
            runner, table, model, "MI250", "vLLM",
            batch_sizes=(1, 16, 32, 64), lengths=(1024,),
        )
    result = ExperimentResult("fig35", "MI250 7B batch behaviour", table)
    qwen32 = table.single(
        "throughput_tokens_per_s", model="Qwen2-7B", batch_size=32
    )
    mistral32 = table.single(
        "throughput_tokens_per_s", model="Mistral-7B", batch_size=32
    )
    result.claim("qwen2_over_mistral_bs32", qwen32 / mistral32, paper=1.1)
    # GQA models peak at 32 and decline at 64 on MI250.
    l3_32 = table.single(
        "throughput_tokens_per_s", model="LLaMA-3-8B", batch_size=32
    )
    l3_64 = table.single(
        "throughput_tokens_per_s", model="LLaMA-3-8B", batch_size=64
    )
    result.claim("llama3_bs64_over_bs32", l3_64 / l3_32, paper=0.95)
    return result


@register_experiment(
    "fig36",
    "MI250 llama.cpp: 7B models (MHSA wins)",
    "Fig. 36 / Appendix E-E",
    tags=("hardware", "mi250"),
)
def fig36(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig36")
    for model in _7B + ("Qwen2-7B",):
        sweep_batches(
            runner, table, model, "MI250", "llama.cpp",
            batch_sizes=(1, 16, 32), lengths=(1024,),
        )
    result = ExperimentResult("fig36", "MI250 llama.cpp ordering", table)
    l2 = table.single(
        "throughput_tokens_per_s", model="LLaMA-2-7B", batch_size=32
    )
    best_gqa = max(
        table.single("throughput_tokens_per_s", model=m, batch_size=32)
        for m in ("LLaMA-3-8B", "Mistral-7B", "Qwen2-7B")
    )
    result.claim("llama2_over_best_gqa", l2 / best_gqa, paper=1.1)
    return result
