"""Perplexity-vs-throughput reproductions (Fig. 10 on A100, Fig. 29 on H100).

Perplexity comes from the calibrated quality model evaluated against the
synthetic LongBench corpus (measured tokenizer-compression correction);
throughput from the standard deployment on the target GPU.
"""

from __future__ import annotations

from repro.bench._helpers import GenerationConfig
from repro.bench.experiments import ExperimentResult, register_experiment
from repro.bench.runner import BenchmarkRunner
from repro.core.results import ResultTable
from repro.evaluation.datasets import unified_corpus
from repro.models.quality import estimate_perplexity
from repro.models.zoo import PERPLEXITY_ZOO, get_model

__all__: list[str] = []


def _quality_table(
    runner: BenchmarkRunner, hardware: str, name: str
) -> ResultTable:
    table = ResultTable(name)
    config = GenerationConfig(1024, 1024, 16)
    for model_name in PERPLEXITY_ZOO:
        model = get_model(model_name)
        ppl = estimate_perplexity(model)
        dep = runner.deployment(model_name, hardware, "vLLM")
        tput = runner.run_point(dep, config).throughput_tokens_per_s
        table.add(
            {"model": model_name, "hardware": hardware},
            {"perplexity": ppl, "throughput_tokens_per_s": tput},
        )
    return table


def _claims(result: ExperimentResult, table: ResultTable) -> None:
    l2 = table.single("perplexity", model="LLaMA-2-7B")
    mistral = table.single("perplexity", model="Mistral-7B")
    l3 = table.single("perplexity", model="LLaMA-3-8B")
    result.claim("mistral_ppl_minus_llama2", mistral - l2, paper=0.09)
    result.claim("llama2_ppl_below_llama3", l3 - l2)
    deci_tput = table.single("throughput_tokens_per_s", model="DeciLM-7B")
    best_other = max(
        table.single("throughput_tokens_per_s", model=m)
        for m in table.unique("model")
        if m != "DeciLM-7B"
    )
    result.claim("decilm_highest_throughput", deci_tput / best_other, paper=1.1)
    mistral_tput = table.single("throughput_tokens_per_s", model="Mistral-7B")
    result.claim("mistral_tput_vs_decilm", mistral_tput / deci_tput, paper=0.8)
    # Legacy models (OPT, GPT-J, Bloom) sit above the LLaMA generation.
    legacy_min = min(
        table.single("perplexity", model=m)
        for m in ("OPT-6.7B", "GPT-J-6B", "Bloom-7.1B")
    )
    result.claim("legacy_ppl_above_llama2", legacy_min / l2)


@register_experiment(
    "fig10",
    "Perplexity vs throughput: ~7B zoo on A100 (LongBench)",
    "Fig. 10 / Section V-2",
    tags=("quality",),
)
def fig10(runner: BenchmarkRunner) -> ExperimentResult:
    table = _quality_table(runner, "A100", "fig10")
    result = ExperimentResult("fig10", "Perplexity/throughput trade, A100", table)
    _claims(result, table)
    return result


@register_experiment(
    "fig29",
    "Perplexity vs throughput: ~7B zoo on H100 (LongBench)",
    "Fig. 29 / Appendix D",
    tags=("quality",),
)
def fig29(runner: BenchmarkRunner) -> ExperimentResult:
    table = _quality_table(runner, "H100", "fig29")
    result = ExperimentResult("fig29", "Perplexity/throughput trade, H100", table)
    _claims(result, table)
    return result


@register_experiment(
    "longbench",
    "Measured tokenizer effect on the synthetic LongBench corpus",
    "Appendix D (methodology)",
    tags=("quality", "methodology"),
)
def longbench_tokenization(runner: BenchmarkRunner) -> ExperimentResult:
    """Measured (not assumed) vocabulary-compression effect.

    Trains BPE tokenizers of increasing vocabulary on the unified corpus
    and records tokens-per-word: the mechanism behind the vocabulary
    correction in the perplexity model.
    """
    from repro.evaluation.tokenizer import ByteBPETokenizer

    corpus = unified_corpus(num_documents=4, words_per_document=150, seed=7)
    table = ResultTable("longbench")
    for vocab in (260, 320, 512, 1024):
        tok = ByteBPETokenizer(vocab_size=vocab).train(corpus)
        table.add(
            {"vocab_size": vocab},
            {
                "tokens_per_word": tok.tokens_per_word(corpus),
                "actual_vocab": float(tok.actual_vocab_size),
            },
        )
    result = ExperimentResult("longbench", "Tokenizer compression", table)
    small = table.single("tokens_per_word", vocab_size=260)
    large = table.single("tokens_per_word", vocab_size=1024)
    result.claim("small_vocab_tokens_over_large", small / large, paper=None)
    return result
