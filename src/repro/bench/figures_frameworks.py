"""Reproductions of the framework-wise benchmarking artifacts.

Figures 6-15 (Section V) and the appendix scaling studies 30-37.
"""

from __future__ import annotations

from repro.bench._helpers import sweep_batches
from repro.bench.experiments import ExperimentResult, register_experiment
from repro.bench.runner import BenchmarkRunner
from repro.core.results import ResultTable
from repro.perf.parallelism import ParallelismPlan

__all__: list[str] = []

_BS = (1, 16, 32, 64)
_7B = ("LLaMA-2-7B", "LLaMA-3-8B", "Mistral-7B")


@register_experiment(
    "fig6",
    "TRT-LLM: 7B models on GH200/H100/A100",
    "Fig. 6 / Section V-1",
    tags=("frameworks", "trtllm"),
)
def fig6(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig6")
    for hw in ("GH200", "H100", "A100"):
        for model in _7B:
            sweep_batches(
                runner, table, model, hw, "TRT-LLM",
                batch_sizes=_BS, lengths=(1024,),
            )
    result = ExperimentResult("fig6", "TRT-LLM 7B throughput", table)
    for hw, paper in (("H100", 1.9), ("A100", 2.79)):
        gqa = table.single(
            "throughput_tokens_per_s", model="Mistral-7B", hardware=hw, batch_size=64
        )
        mhsa = table.single(
            "throughput_tokens_per_s", model="LLaMA-2-7B", hardware=hw, batch_size=64
        )
        result.claim(f"gqa_over_mhsa_bs64_{hw.lower()}", gqa / mhsa, paper=paper)
    # Newer generations win at every batch size.
    gh200 = table.single(
        "throughput_tokens_per_s", model="LLaMA-3-8B", hardware="GH200", batch_size=64
    )
    a100 = table.single(
        "throughput_tokens_per_s", model="LLaMA-3-8B", hardware="A100", batch_size=64
    )
    result.claim("gh200_over_a100_bs64", gh200 / a100)
    return result


@register_experiment(
    "fig7",
    "TRT-LLM: 70B and MoE models on H100/A100",
    "Fig. 7 / Section V-1",
    tags=("frameworks", "trtllm"),
)
def fig7(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig7")
    plan = ParallelismPlan(tp=4)
    for hw in ("H100", "A100"):
        for model in ("LLaMA-2-70B", "LLaMA-3-70B", "Mixtral-8x7B"):
            sweep_batches(
                runner, table, model, hw, "TRT-LLM",
                batch_sizes=_BS, lengths=(1024,), plan=plan,
            )
    result = ExperimentResult("fig7", "TRT-LLM 70B/MoE throughput", table)
    h100 = table.single(
        "throughput_tokens_per_s", model="LLaMA-3-70B", hardware="H100", batch_size=64
    )
    a100 = table.single(
        "throughput_tokens_per_s", model="LLaMA-3-70B", hardware="A100", batch_size=64
    )
    result.claim("llama3_70b_h100_over_a100_bs64", h100 / a100, paper=7.8)
    h100_1 = table.single(
        "throughput_tokens_per_s", model="LLaMA-3-70B", hardware="H100", batch_size=1
    )
    a100_1 = table.single(
        "throughput_tokens_per_s", model="LLaMA-3-70B", hardware="A100", batch_size=1
    )
    result.claim("h100_batch_scaling_1_to_64", h100 / h100_1, paper=39.0)
    result.claim("a100_batch_scaling_1_to_64", a100 / a100_1, paper=3.0)
    mixtral = table.single(
        "throughput_tokens_per_s", model="Mixtral-8x7B", hardware="H100", batch_size=64
    )
    l2_70b = table.single(
        "throughput_tokens_per_s", model="LLaMA-2-70B", hardware="H100", batch_size=64
    )
    result.claim("mixtral_over_llama2_70b_h100", mixtral / l2_70b)
    result.claim(
        "llama2_70b_over_llama3_70b_h100",
        l2_70b
        / table.single(
            "throughput_tokens_per_s",
            model="LLaMA-3-70B",
            hardware="H100",
            batch_size=64,
        ),
    )
    return result


@register_experiment(
    "fig8",
    "vLLM: 7B models across GH200/H100/A100/MI250",
    "Fig. 8 / Section V-2",
    tags=("frameworks", "vllm"),
)
def fig8(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig8")
    models = _7B + ("Qwen2-7B",)
    for hw in ("GH200", "H100", "A100", "MI250"):
        for model in models:
            sweep_batches(
                runner, table, model, hw, "vLLM", batch_sizes=_BS, lengths=(1024,)
            )
    result = ExperimentResult("fig8", "vLLM 7B throughput across hardware", table)
    by_hw = {
        hw: table.single(
            "throughput_tokens_per_s", model="LLaMA-3-8B", hardware=hw, batch_size=64
        )
        for hw in ("GH200", "H100", "A100", "MI250")
    }
    result.claim("gh200_over_h100", by_hw["GH200"] / by_hw["H100"], paper=1.2)
    result.claim("a100_over_mi250", by_hw["A100"] / by_hw["MI250"], paper=1.1)
    qwen_gh200 = table.single(
        "throughput_tokens_per_s", model="Qwen2-7B", hardware="GH200", batch_size=64
    )
    result.claim(
        "qwen2_best_7b_on_gh200",
        qwen_gh200
        / max(
            table.single(
                "throughput_tokens_per_s", model=m, hardware="GH200", batch_size=64
            )
            for m in _7B
        ),
    )
    l3 = table.single(
        "throughput_tokens_per_s", model="LLaMA-3-8B", hardware="H100", batch_size=64
    )
    l2 = table.single(
        "throughput_tokens_per_s", model="LLaMA-2-7B", hardware="H100", batch_size=64
    )
    result.claim("llama3_over_llama2_large_batch", l3 / l2)
    return result


@register_experiment(
    "fig9",
    "vLLM: 70B models on H100/A100 (4-way TP)",
    "Fig. 9 / Section V-2",
    tags=("frameworks", "vllm"),
)
def fig9(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig9")
    plan = ParallelismPlan(tp=4)
    for hw in ("H100", "A100"):
        for model in ("LLaMA-2-70B", "LLaMA-3-70B", "Qwen2-72B", "Mixtral-8x7B"):
            sweep_batches(
                runner, table, model, hw, "vLLM",
                batch_sizes=_BS, lengths=(1024,), plan=plan,
            )
    result = ExperimentResult("fig9", "vLLM 70B throughput", table)
    l2 = table.single(
        "throughput_tokens_per_s", model="LLaMA-2-70B", hardware="H100", batch_size=64
    )
    l3 = table.single(
        "throughput_tokens_per_s", model="LLaMA-3-70B", hardware="H100", batch_size=64
    )
    qwen = table.single(
        "throughput_tokens_per_s", model="Qwen2-72B", hardware="H100", batch_size=64
    )
    mixtral = table.single(
        "throughput_tokens_per_s", model="Mixtral-8x7B", hardware="H100", batch_size=64
    )
    result.claim("llama2_over_llama3_70b", l2 / l3)
    result.claim("llama2_over_qwen72b", l2 / qwen)
    result.claim("mixtral_over_llama2_70b", mixtral / l2)
    return result


@register_experiment(
    "fig11",
    "DeepSpeed-MII: 7B models on A100 (GQA-oblivious ordering)",
    "Fig. 11 / Section V-3",
    tags=("frameworks", "dsmii"),
)
def fig11(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig11")
    for devices in (1, 2, 4):
        plan = ParallelismPlan(tp=devices)
        for model in _7B:
            sweep_batches(
                runner, table, model, "A100", "DeepSpeed-MII",
                batch_sizes=_BS, lengths=(128,), plan=plan,
            )
    result = ExperimentResult("fig11", "DS-MII 7B ordering", table)
    l2 = table.single(
        "throughput_tokens_per_s", model="LLaMA-2-7B", devices=1, batch_size=64
    )
    l3 = table.single(
        "throughput_tokens_per_s", model="LLaMA-3-8B", devices=1, batch_size=64
    )
    result.claim("llama2_over_llama3_bs64_len128", l2 / l3, paper=1.18)
    # Scaling across 1 -> 4 devices at large batch.
    one = table.single(
        "throughput_tokens_per_s", model="LLaMA-2-7B", devices=1, batch_size=64
    )
    four = table.single(
        "throughput_tokens_per_s", model="LLaMA-2-7B", devices=4, batch_size=64
    )
    result.claim("llama2_scaling_1_to_4_gpus", four / one)
    return result


@register_experiment(
    "fig12",
    "Mixtral-8x7B: DS-MII vs vLLM on A100",
    "Fig. 12 / Section V-3",
    tags=("frameworks", "dsmii"),
)
def fig12(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig12")
    plan = ParallelismPlan(tp=4)
    for fw in ("DeepSpeed-MII", "vLLM"):
        for length in (512, 1024, 2048):
            sweep_batches(
                runner, table, "Mixtral-8x7B", "A100", fw,
                batch_sizes=_BS, lengths=(length,), plan=plan,
            )
    result = ExperimentResult("fig12", "DS-MII vs vLLM on Mixtral", table)
    ds = table.single(
        "throughput_tokens_per_s",
        framework="DeepSpeed-MII",
        batch_size=64,
        input_tokens=2048,
    )
    vllm = table.single(
        "throughput_tokens_per_s",
        framework="vLLM",
        batch_size=64,
        input_tokens=2048,
    )
    result.claim("dsmii_over_vllm_bs64_len2048", ds / vllm, paper=1.04)
    ds_small = table.single(
        "throughput_tokens_per_s",
        framework="DeepSpeed-MII",
        batch_size=1,
        input_tokens=512,
    )
    vllm_small = table.single(
        "throughput_tokens_per_s",
        framework="vLLM",
        batch_size=1,
        input_tokens=512,
    )
    result.claim("dsmii_over_vllm_bs1_len512", ds_small / vllm_small)
    return result


@register_experiment(
    "fig13",
    "llama.cpp: 7B models across platforms and GPU counts",
    "Fig. 13 / Section V-4",
    tags=("frameworks", "llamacpp"),
)
def fig13(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig13")
    for hw in ("A100", "H100", "MI250"):
        for devices in (1, 2, 4):
            plan = ParallelismPlan(tp=devices)
            sweep_batches(
                runner, table, "LLaMA-2-7B", hw, "llama.cpp",
                batch_sizes=(1, 16), lengths=(512,), plan=plan,
            )
    result = ExperimentResult("fig13", "llama.cpp device scaling", table)
    one = table.single(
        "throughput_tokens_per_s", hardware="A100", devices=1, batch_size=16
    )
    four = table.single(
        "throughput_tokens_per_s", hardware="A100", devices=4, batch_size=16
    )
    result.claim("a100_scaling_1_to_4_gpus", four / one, paper=1.3)
    return result


@register_experiment(
    "fig14",
    "llama.cpp: MHSA beats GQA (weak GQA support)",
    "Fig. 14 / Section V-4",
    tags=("frameworks", "llamacpp"),
)
def fig14(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig14")
    for model in _7B:
        for devices in (1, 2, 4):
            plan = ParallelismPlan(tp=devices)
            sweep_batches(
                runner, table, model, "A100", "llama.cpp",
                batch_sizes=(1, 16, 32), lengths=(512,), plan=plan,
            )
    result = ExperimentResult("fig14", "llama.cpp GQA-oblivious ordering", table)
    l2 = table.single(
        "throughput_tokens_per_s", model="LLaMA-2-7B", devices=1, batch_size=32
    )
    l3 = table.single(
        "throughput_tokens_per_s", model="LLaMA-3-8B", devices=1, batch_size=32
    )
    mistral = table.single(
        "throughput_tokens_per_s", model="Mistral-7B", devices=1, batch_size=32
    )
    result.claim("llama2_over_llama3", l2 / l3, paper=1.2)
    result.claim("mistral_over_llama3", mistral / l3, paper=1.1)
    return result


@register_experiment(
    "fig15",
    "Framework shoot-out: 7B models on A100",
    "Fig. 15 / Section VI-1",
    tags=("frameworks", "hardware"),
)
def fig15(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig15")
    for fw in ("TRT-LLM", "vLLM", "DeepSpeed-MII", "llama.cpp"):
        for model in _7B:
            sweep_batches(
                runner, table, model, "A100", fw,
                batch_sizes=(1, 16, 64), lengths=(1024,),
            )
    result = ExperimentResult("fig15", "Framework ordering on A100", table)
    by_fw = {
        fw: table.single(
            "throughput_tokens_per_s",
            model="Mistral-7B",
            framework=fw,
            batch_size=64,
        )
        for fw in ("TRT-LLM", "vLLM", "DeepSpeed-MII", "llama.cpp")
    }
    result.claim("trtllm_over_vllm", by_fw["TRT-LLM"] / by_fw["vLLM"], paper=1.2)
    result.claim("vllm_over_dsmii", by_fw["vLLM"] / by_fw["DeepSpeed-MII"])
    result.claim(
        "dsmii_over_llamacpp", by_fw["DeepSpeed-MII"] / by_fw["llama.cpp"]
    )
    mistral = table.single(
        "throughput_tokens_per_s",
        model="Mistral-7B",
        framework="TRT-LLM",
        batch_size=64,
    )
    llama3 = table.single(
        "throughput_tokens_per_s",
        model="LLaMA-3-8B",
        framework="TRT-LLM",
        batch_size=64,
    )
    result.claim("mistral_over_llama3_vocab_effect", mistral / llama3)
    return result


@register_experiment(
    "fig30",
    "TRT-LLM: 7B models on 1/2/4 A100s",
    "Fig. 30 / Appendix E-A",
    tags=("frameworks", "scaling"),
)
def fig30(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig30")
    for devices in (1, 2, 4):
        plan = ParallelismPlan(tp=devices)
        for model in _7B:
            sweep_batches(
                runner, table, model, "A100", "TRT-LLM",
                batch_sizes=_BS, lengths=(1024,), plan=plan,
            )
    result = ExperimentResult("fig30", "TRT-LLM multi-GPU scaling", table)
    one = table.single(
        "throughput_tokens_per_s", model="Mistral-7B", devices=1, batch_size=64
    )
    four = table.single(
        "throughput_tokens_per_s", model="Mistral-7B", devices=4, batch_size=64
    )
    result.claim("mistral_scaling_1_to_4", four / one, paper=2.5)
    mistral = table.single(
        "throughput_tokens_per_s", model="Mistral-7B", devices=4, batch_size=64
    )
    llama3 = table.single(
        "throughput_tokens_per_s", model="LLaMA-3-8B", devices=4, batch_size=64
    )
    result.claim("mistral_over_llama3_4gpu", mistral / llama3)
    return result


@register_experiment(
    "fig31",
    "vLLM: 7B models on 1/2/4 H100/A100/MI250",
    "Fig. 31 / Appendix E-B",
    tags=("frameworks", "scaling"),
)
def fig31(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig31")
    for hw in ("H100", "A100", "MI250"):
        for devices in (1, 2, 4):
            plan = ParallelismPlan(tp=devices)
            for model in ("Mistral-7B", "LLaMA-3-8B"):
                sweep_batches(
                    runner, table, model, hw, "vLLM",
                    batch_sizes=(16, 64), lengths=(1024,), plan=plan,
                )
    result = ExperimentResult("fig31", "vLLM multi-GPU scaling", table)
    h100 = table.single(
        "throughput_tokens_per_s",
        model="LLaMA-3-8B",
        hardware="H100",
        devices=4,
        batch_size=64,
    )
    a100 = table.single(
        "throughput_tokens_per_s",
        model="LLaMA-3-8B",
        hardware="A100",
        devices=4,
        batch_size=64,
    )
    result.claim("h100_over_a100_4gpu", h100 / a100)
    return result


@register_experiment(
    "fig32",
    "llama.cpp: 70B models on H100/MI250 (A100 OOM-excluded)",
    "Fig. 32 / Appendix E-C",
    tags=("frameworks", "llamacpp"),
)
def fig32(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig32")
    plan = ParallelismPlan(tp=4)
    for hw in ("H100", "MI250", "A100"):
        for model in ("LLaMA-2-70B", "LLaMA-3-70B", "Mixtral-8x7B"):
            sweep_batches(
                runner, table, model, hw, "llama.cpp",
                batch_sizes=(1, 16), lengths=(512,), plan=plan,
            )
    result = ExperimentResult("fig32", "llama.cpp 70B models", table)
    # The paper excludes A100: 70B fp16 exceeds the 4x40 GB node.
    a100_oom = table.single(
        "oom", model="LLaMA-2-70B", hardware="A100", batch_size=16
    )
    result.claim("llama2_70b_a100_oom", a100_oom, paper=1.0)
    h100 = table.single(
        "throughput_tokens_per_s",
        model="LLaMA-2-70B",
        hardware="H100",
        batch_size=16,
    )
    mi250 = table.single(
        "throughput_tokens_per_s",
        model="LLaMA-2-70B",
        hardware="MI250",
        batch_size=16,
    )
    result.claim("h100_over_mi250", h100 / mi250)
    mixtral = table.single(
        "throughput_tokens_per_s",
        model="Mixtral-8x7B",
        hardware="H100",
        batch_size=16,
    )
    result.claim("mixtral_over_llama2_70b", mixtral / h100)
    return result


@register_experiment(
    "fig33",
    "Framework comparison: 7B models on H100 at length 1024",
    "Fig. 33 / Appendix E-D",
    tags=("frameworks",),
)
def fig33(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig33")
    models = _7B + ("Qwen2-7B",)
    for fw in ("TRT-LLM", "vLLM", "llama.cpp"):
        for model in models:
            sweep_batches(
                runner, table, model, "H100", fw,
                batch_sizes=(16, 64), lengths=(1024,),
            )
    result = ExperimentResult("fig33", "H100 framework comparison", table)
    qwen_trt = table.single(
        "throughput_tokens_per_s",
        model="Qwen2-7B",
        framework="TRT-LLM",
        batch_size=64,
    )
    best_other = max(
        table.single(
            "throughput_tokens_per_s", model=m, framework=fw, batch_size=64
        )
        for m in models
        for fw in ("vLLM", "llama.cpp")
    )
    result.claim("qwen2_trtllm_is_best", qwen_trt / best_other)
    return result


@register_experiment(
    "fig34",
    "70B models: TRT-LLM and vLLM on A100/H100",
    "Fig. 34 / Appendix E-D",
    tags=("frameworks",),
)
def fig34(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig34")
    plan = ParallelismPlan(tp=4)
    for fw in ("TRT-LLM", "vLLM"):
        for hw in ("A100", "H100"):
            for model in ("LLaMA-2-70B", "LLaMA-3-70B", "Mixtral-8x7B"):
                sweep_batches(
                    runner, table, model, hw, fw,
                    batch_sizes=(16, 64), lengths=(1024,), plan=plan,
                )
    result = ExperimentResult("fig34", "70B cross-framework", table)
    mixtral = table.single(
        "throughput_tokens_per_s",
        model="Mixtral-8x7B",
        framework="TRT-LLM",
        hardware="H100",
        batch_size=64,
    )
    l2 = table.single(
        "throughput_tokens_per_s",
        model="LLaMA-2-70B",
        framework="TRT-LLM",
        hardware="H100",
        batch_size=64,
    )
    l3 = table.single(
        "throughput_tokens_per_s",
        model="LLaMA-3-70B",
        framework="TRT-LLM",
        hardware="H100",
        batch_size=64,
    )
    result.claim("mixtral_margin_over_70b", mixtral / l2)
    result.claim("llama2_slightly_over_llama3", l2 / l3)
    return result


@register_experiment(
    "fig37",
    "MI250: 70B/MoE models on 4 GPUs with vLLM",
    "Fig. 37 / Appendix E-E",
    tags=("frameworks", "mi250"),
)
def fig37(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("fig37")
    plan = ParallelismPlan(tp=4)
    for model in ("LLaMA-2-70B", "LLaMA-3-70B", "Mixtral-8x7B", "Qwen2-72B"):
        sweep_batches(
            runner, table, model, "MI250", "vLLM",
            batch_sizes=(1, 16, 32), lengths=(1024,), plan=plan,
        )
    result = ExperimentResult("fig37", "MI250 70B models", table)
    mixtral = table.single(
        "throughput_tokens_per_s", model="Mixtral-8x7B", batch_size=32
    )
    best_dense = max(
        table.single("throughput_tokens_per_s", model=m, batch_size=32)
        for m in ("LLaMA-2-70B", "LLaMA-3-70B", "Qwen2-72B")
    )
    result.claim("mixtral_over_best_dense_70b", mixtral / best_dense)
    return result
