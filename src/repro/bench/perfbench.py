"""Before/after performance benchmarks for the step-cost kernel.

Times the simulator's hot paths twice — once through the un-memoized
``phases.py`` roofline (:class:`~repro.perf.kernel.DirectStepCost`) and
once through the shared :class:`~repro.perf.kernel.StepCostKernel` — and
writes a ``BENCH_<date>.json`` record so the repo carries a measured perf
trajectory across PRs:

* **sweep_grid** — a batch x input x output metric grid: scalar estimator
  loop vs one vectorized :meth:`evaluate_grid` pass;
* **estimator_points** — repeated single-workload estimates;
* **engine_iteration_rate** — a full :meth:`ServingEngine.run` over an
  open-loop trace (iterations/s is the CI regression metric);
* **cluster_run** — a multi-replica :class:`ClusterSimulator` run with one
  kernel shared across the fleet;
* **profiler_overhead** — the same engine run unprofiled vs with the
  cost-attribution profiler on (``speedup`` < 1 reports the overhead of
  ``profile=True``; the CI gate stays on the unprofiled iteration rate);
* **telemetry_overhead** — the same engine run with ``NULL_TELEMETRY``
  vs a fresh :class:`~repro.obs.telemetry.TelemetryHub` attached
  (``overhead_factor`` reports the cost of the streaming telemetry bus;
  gated by the baseline's ``max_overhead_factor`` ceiling);
* **scenario_trace** — building a :mod:`repro.scenarios` request trace
  (arrivals, multi-turn sessions, length sampling), cold vs warm, so
  trace-generation cost is tracked alongside the simulator hot paths;
* **engine_vectorized** — the same engine run through the ``legacy``
  (pre-vectorization, single-step-while-waiting) core vs the ``vector``
  core (struct-of-arrays commits + event-horizon decode spans), with a
  scalar-core bit-identity check first;
* **cluster_vectorized** — a multi-replica run, ``legacy`` vs ``vector``
  core (batched replica selection + coalesced spans), same checks;
* **optimize_screening** — the deployment optimizer's analytic screening
  pass (:func:`repro.analysis.optimize.screen`, one vectorized kernel
  grid per deployment) vs a scalar per-config estimator loop timed on a
  sample and extrapolated; ``configs_per_s`` is gated by the baseline's
  ``min_configs_per_s`` floor.

Every pair is checked for agreement before timings are reported — a
benchmark that got faster by computing something else is a bug, not a win.
CI runs the reduced grid and fails when the kernel-path engine iteration
rate regresses more than ``--max-regression`` against
``benchmarks/baseline.json``, or when the vectorized-core speedups fall
below the baseline's ``min_speedup`` floors (see docs/performance.md).
"""

from __future__ import annotations

import datetime
import json
import platform
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro.bench.runner import default_plan
from repro.cluster.simulator import ClusterSimulator
from repro.core.request import GenerationConfig
from repro.frameworks.base import get_framework
from repro.hardware.zoo import get_hardware
from repro.models.zoo import get_model
from repro.perf.estimator import InferenceEstimator
from repro.perf.kernel import DirectStepCost, StepCostKernel
from repro.perf.phases import Deployment
from repro.runtime.engine import ServingEngine
from repro.runtime.workload import open_loop_trace

__all__ = [
    "BenchReport",
    "check_regression",
    "load_baseline",
    "run_benchmarks",
    "write_report",
]

# The reference deployment: the paper's most-covered configuration, sized
# so nothing OOMs and every phase (prefill, decode, waves) is exercised.
_MODEL = "LLaMA-3-8B"
_HARDWARE = "A100"
_FRAMEWORK = "vLLM"

_AGREEMENT_RTOL = 1e-9  # sanity bar here; tests enforce 1e-12


@dataclass
class BenchReport:
    """One harness invocation's results plus environment context."""

    date: str
    reduced: bool
    deployment: str
    python: str
    machine: str
    benchmarks: dict[str, dict[str, float]]

    def to_json(self) -> str:
        return json.dumps(self.__dict__, indent=2, sort_keys=True) + "\n"


def _reference_deployment() -> Deployment:
    model = get_model(_MODEL)
    hardware = get_hardware(_HARDWARE)
    framework = get_framework(_FRAMEWORK)
    return Deployment(
        model, hardware, framework, plan=default_plan(model, hardware)
    )


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best wall-clock seconds over ``repeats`` calls (steady-state cost:
    the first call may pay cache warm-up, later calls measure the memoized
    fast path — exactly the regime long sweeps and cluster runs live in)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _close(a: float, b: float) -> bool:
    return a == b or abs(a - b) <= _AGREEMENT_RTOL * max(abs(a), abs(b))


def _bench_sweep_grid(
    dep: Deployment, kernel: StepCostKernel, reduced: bool, repeats: int
) -> dict[str, float]:
    if reduced:
        batches = (1, 8, 32, 128)
        inputs = (128, 1024)
        outputs = (128, 512)
    else:
        batches = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
        inputs = (128, 256, 512, 1024, 2048)
        outputs = (1, 128, 256, 512, 1024)
    points = len(batches) * len(inputs) * len(outputs)
    direct = InferenceEstimator(dep, kernel=DirectStepCost(dep))

    def scalar_loop() -> list[float]:
        return [
            direct.estimate(GenerationConfig(i, o, b)).throughput_tokens_per_s
            for b in batches
            for i in inputs
            for o in outputs
        ]

    def grid_pass():
        return kernel.evaluate_grid(batches, inputs, outputs)

    scalar = scalar_loop()
    grid = grid_pass()
    flat = grid.throughput_tokens_per_s.reshape(-1)
    for idx, value in enumerate(scalar):
        if not _close(value, float(flat[idx])):
            raise AssertionError(
                f"sweep grid disagrees with scalar estimator at point {idx}"
            )

    before = _best_of(scalar_loop, repeats)
    after = _best_of(grid_pass, repeats)
    return {
        "points": float(points),
        "before_s": before,
        "after_s": after,
        "before_points_per_s": points / before,
        "after_points_per_s": points / after,
        "speedup": before / after,
    }


def _bench_estimator_points(
    dep: Deployment, kernel: StepCostKernel, reduced: bool, repeats: int
) -> dict[str, float]:
    lengths = (128, 256, 512, 1024) if reduced else (128, 256, 512, 1024, 2048)
    batches = (1, 16, 64) if reduced else (1, 4, 16, 32, 64)
    workloads = [
        GenerationConfig(n, n, b) for n in lengths for b in batches
    ]
    direct = InferenceEstimator(dep, kernel=DirectStepCost(dep))
    fast = InferenceEstimator(dep, kernel=kernel)

    for config in workloads:
        a = direct.estimate(config).end_to_end_latency_s
        b = fast.estimate(config).end_to_end_latency_s
        if not _close(a, b):
            raise AssertionError(f"estimator disagreement at {config}")

    before = _best_of(
        lambda: [direct.estimate(c) for c in workloads], repeats
    )
    after = _best_of(lambda: [fast.estimate(c) for c in workloads], repeats)
    return {
        "points": float(len(workloads)),
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
    }


def _bench_engine(
    dep: Deployment, kernel: StepCostKernel, reduced: bool, repeats: int
) -> dict[str, float]:
    num_requests = 24 if reduced else 64
    trace_args = (num_requests, 4.0, 384, 160)

    def run_with(step_kernel) -> object:
        engine = ServingEngine(dep, max_concurrency=16, kernel=step_kernel)
        return engine.run(open_loop_trace(*trace_args, seed=7))

    direct_result = run_with(DirectStepCost(dep))
    kernel_result = run_with(kernel)
    if not _close(direct_result.total_time_s, kernel_result.total_time_s):
        raise AssertionError("engine makespan diverged between step-cost paths")
    iterations = kernel_result.iterations

    before = _best_of(lambda: run_with(DirectStepCost(dep)), repeats)
    after = _best_of(lambda: run_with(kernel), repeats)
    return {
        "iterations": float(iterations),
        "before_s": before,
        "after_s": after,
        "before_iters_per_s": iterations / before,
        "after_iters_per_s": iterations / after,
        "speedup": before / after,
    }


def _bench_cluster(
    dep: Deployment, kernel: StepCostKernel, reduced: bool, repeats: int
) -> dict[str, float]:
    num_replicas = 2 if reduced else 4
    num_requests = 32 if reduced else 96

    def run_with(step_kernel) -> object:
        simulator = ClusterSimulator(
            dep, num_replicas, max_concurrency=16, kernel=step_kernel
        )
        trace = open_loop_trace(num_requests, 8.0, 384, 160, seed=11)
        return simulator.run(trace)

    direct_result = run_with(DirectStepCost(dep))
    kernel_result = run_with(kernel)
    if not _close(direct_result.makespan_s, kernel_result.makespan_s):
        raise AssertionError("cluster makespan diverged between step-cost paths")

    before = _best_of(lambda: run_with(DirectStepCost(dep)), repeats)
    after = _best_of(lambda: run_with(kernel), repeats)
    return {
        "replicas": float(num_replicas),
        "requests": float(num_requests),
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
    }


def _bench_profiler_overhead(
    dep: Deployment, kernel: StepCostKernel, reduced: bool, repeats: int
) -> dict[str, float]:
    """Cost of the cost profiler itself: unprofiled vs profiled engine run.

    ``before_s`` is the plain kernel-path run (profiling off — the default
    every other benchmark and production sweep uses), ``after_s`` the same
    run with ``profile=True``.  The simulated clock must be bit-identical
    between the two; ``speedup`` < 1 here is expected and reports the
    overhead factor of turning attribution on.  The CI regression gate
    stays on the unprofiled ``engine_iteration_rate`` benchmark, which
    this entry deliberately leaves untouched.
    """
    num_requests = 24 if reduced else 64
    trace_args = (num_requests, 4.0, 384, 160)

    def run_with(profile: bool) -> object:
        engine = ServingEngine(
            dep, max_concurrency=16, kernel=kernel, profile=profile
        )
        return engine.run(open_loop_trace(*trace_args, seed=7))

    plain_result = run_with(False)
    profiled_result = run_with(True)
    if plain_result.total_time_s != profiled_result.total_time_s:
        raise AssertionError("profiling changed the simulated clock")
    if profiled_result.profile is None:
        raise AssertionError("profiled run produced no ProfileReport")

    before = _best_of(lambda: run_with(False), repeats)
    after = _best_of(lambda: run_with(True), repeats)
    return {
        "iterations": float(plain_result.iterations),
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
        "overhead_factor": after / before,
    }


def _bench_telemetry_overhead(
    dep: Deployment, kernel: StepCostKernel, reduced: bool, repeats: int
) -> dict[str, float]:
    """Cost of the streaming telemetry bus: hub off vs hub attached.

    ``before_s`` is the plain kernel-path run (``NULL_TELEMETRY``, the
    default), ``after_s`` the same run with a fresh ``TelemetryHub``
    sampling gauges, flushing completions and evaluating the SLO budget
    on every tick.  The simulated clock must be bit-identical between
    the two (the telemetry-off identity contract); ``overhead_factor``
    reports the wall-clock cost of turning the bus on.  The CI
    regression gate keys on the baseline's ``max_overhead_factor``.
    """
    from repro.obs.telemetry import TelemetryHub

    num_requests = 24 if reduced else 64
    trace_args = (num_requests, 4.0, 384, 160)

    def run_with(telemetry: bool) -> object:
        kwargs = {"telemetry": TelemetryHub()} if telemetry else {}
        engine = ServingEngine(
            dep, max_concurrency=16, kernel=kernel, **kwargs
        )
        return engine.run(open_loop_trace(*trace_args, seed=7))

    plain_result = run_with(False)
    telemetry_result = run_with(True)
    if plain_result.total_time_s != telemetry_result.total_time_s:
        raise AssertionError("telemetry changed the simulated clock")
    if telemetry_result.telemetry is None:
        raise AssertionError("telemetry run produced no snapshot")

    before = _best_of(lambda: run_with(False), repeats)
    after = _best_of(lambda: run_with(True), repeats)
    return {
        "iterations": float(plain_result.iterations),
        "series": float(len(telemetry_result.telemetry.series)),
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
        "overhead_factor": after / before,
    }


def _bench_engine_vectorized(
    dep: Deployment, kernel: StepCostKernel, reduced: bool, repeats: int
) -> dict[str, float]:
    """Vectorized event core vs the pre-vectorization engine loop.

    ``before_s`` runs ``core="legacy"`` (per-token object loops, spans
    collapse to single steps whenever anything waits), ``after_s`` runs
    ``core="vector"`` (struct-of-arrays commits, spans extend to the next
    arrival/completion event).  The scalar core must be bit-identical to
    the vector core first (the equivalence contract); legacy only has to
    agree on physics to span-boundary rounding.

    The workload is a saturation regime — arrivals outpace service so a
    queue persists through most of the run.  That is where the two cores
    diverge most (legacy single-steps whenever anything waits, the vector
    core's spans are bounded only by genuine future events) and it is the
    regime fleet-scale sweeps live in.
    """
    num_requests = 32 if reduced else 64
    trace_args = (num_requests, 16.0, 128, 768)

    def run_with(core: str) -> object:
        engine = ServingEngine(
            dep, max_concurrency=8, kernel=kernel, core=core
        )
        return engine.run(open_loop_trace(*trace_args, seed=7))

    scalar_result = run_with("scalar")
    vector_result = run_with("vector")
    if scalar_result.total_time_s != vector_result.total_time_s:
        raise AssertionError("vector core is not bit-identical to scalar core")
    if scalar_result.iterations != vector_result.iterations:
        raise AssertionError("vector core iteration count diverged from scalar")
    legacy_result = run_with("legacy")
    gap = abs(legacy_result.total_time_s - vector_result.total_time_s)
    if gap > 1e-3 * legacy_result.total_time_s:
        raise AssertionError("vector core physics diverged from legacy core")

    before = _best_of(lambda: run_with("legacy"), repeats)
    after = _best_of(lambda: run_with("vector"), repeats)
    return {
        "legacy_iterations": float(legacy_result.iterations),
        "vector_iterations": float(vector_result.iterations),
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
    }


def _bench_cluster_vectorized(
    dep: Deployment, kernel: StepCostKernel, reduced: bool, repeats: int
) -> dict[str, float]:
    """Batched cluster stepping (``core="vector"``) vs the legacy loop.

    Same saturation regime as ``engine_vectorized``, spread across a
    fleet so replica selection and horizon computation are exercised too.
    """
    num_replicas = 2 if reduced else 4
    num_requests = 48 if reduced else 96
    rate = 24.0 if reduced else 48.0

    def run_with(core: str) -> object:
        simulator = ClusterSimulator(
            dep, num_replicas, max_concurrency=8, kernel=kernel, core=core
        )
        trace = open_loop_trace(num_requests, rate, 128, 768, seed=11)
        return simulator.run(trace)

    scalar_result = run_with("scalar")
    vector_result = run_with("vector")
    if scalar_result.makespan_s != vector_result.makespan_s:
        raise AssertionError(
            "vector cluster core is not bit-identical to scalar core"
        )
    legacy_result = run_with("legacy")
    gap = abs(legacy_result.makespan_s - vector_result.makespan_s)
    if gap > 1e-3 * legacy_result.makespan_s:
        raise AssertionError("vector cluster physics diverged from legacy core")

    before = _best_of(lambda: run_with("legacy"), repeats)
    after = _best_of(lambda: run_with("vector"), repeats)
    return {
        "replicas": float(num_replicas),
        "requests": float(num_requests),
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
    }


def _bench_scenario_trace(reduced: bool, repeats: int) -> dict[str, float]:
    """Cost of building a scenario trace (arrivals, turns, lengths, tenants).

    Trace generation sits upstream of every scenario run and experiment
    replication, so its cost is tracked like the simulator hot paths.
    There is no before/after pair here — ``before_s`` is the cold first
    build, ``after_s`` the steady-state best-of, so the record still fits
    the harness schema and ``speedup`` reports warm-up amortization.  Two
    same-seed builds are checked identical first (the determinism
    contract the replay CI gate depends on).
    """
    from repro.scenarios import get_scenario, trace_json_dicts

    scenario = get_scenario("chat-sharegpt").with_sessions(64 if reduced else 256)

    if trace_json_dicts(scenario.build(seed=5)) != trace_json_dicts(
        scenario.build(seed=5)
    ):
        raise AssertionError("same-seed scenario builds diverged")

    start = time.perf_counter()
    requests = scenario.build(seed=5)
    before = time.perf_counter() - start
    after = _best_of(lambda: scenario.build(seed=5), repeats)
    return {
        "sessions": float(scenario.num_sessions),
        "requests": float(len(requests)),
        "before_s": before,
        "after_s": after,
        "requests_per_s": len(requests) / after,
        "speedup": before / after,
    }


def _bench_optimize_screening(reduced: bool, repeats: int) -> dict[str, float]:
    """Optimizer screening throughput: configurations priced per second.

    ``after_s`` is a full :func:`repro.analysis.optimize.screen` pass —
    one vectorized ``evaluate_grid`` call per valid deployment covering
    the whole batch axis.  The honest "before" (the repo's pre-optimizer
    capability: one scalar ``InferenceEstimator.estimate`` per
    configuration) would take minutes at this scale, so it is timed on a
    deterministic sample and extrapolated linearly to the screened count
    (``extrapolated_before`` flags the entry).  Sampled lanes are checked
    against the screening grid first — same kernel, so they must agree to
    float-reassociation tolerance.

    The full (non-reduced) space deliberately crosses the 10^4-config
    bar from the ISSUE 9 acceptance criteria; the entry raises if the
    valid subset ever shrinks below it.  ``configs_per_s`` is the CI
    regression metric (``min_configs_per_s`` floor in baseline.json).
    """
    from repro.analysis.optimize import SearchSpace, build_deployment, screen

    if reduced:
        space = SearchSpace(
            models=("llama-2-7b", "llama-3-8b"),
            hardware=("A100", "H100", "MI300X"),
            frameworks=("vLLM", "TRT-LLM"),
            quant_schemes=("fp16", "fp8", "int8"),
            tensor_parallel=(1, 2, 4),
            batch_sizes=(1, 2, 4, 8, 16, 32, 64, 128),
        )
        required = 0
    else:
        space = SearchSpace(
            models=(
                "llama-2-7b", "llama-3-8b", "mistral-7b", "qwen2-7b",
                "gemma-7b", "qwen1.5-7b", "llama-7b", "decilm-7b",
            ),
            hardware=("A100", "H100", "GH200", "MI250", "MI300X", "Gaudi2", "SN40L"),
            frameworks=("vLLM", "TRT-LLM", "DeepSpeed-MII"),
            quant_schemes=("fp16", "fp8", "int8"),
            tensor_parallel=(1, 2, 4),
            batch_sizes=(
                1, 2, 3, 4, 6, 8, 12, 16, 24, 32,
                48, 64, 96, 128, 192, 256, 384, 512, 768, 1024,
            ),
        )
        required = 10_000

    configs, stats = screen(space)
    if stats.configs_screened < required:
        raise AssertionError(
            f"screening covered {stats.configs_screened} configs, "
            f"acceptance bar is {required}"
        )

    workload_tokens = (space.input_tokens, space.output_tokens)
    sample = [c for c in configs[:: max(1, len(configs) // 16)] if not c.oom]

    def scalar_sample() -> None:
        for c in sample:
            dep = build_deployment(c.model, c.hardware, c.framework, c.quant, c.tp)
            InferenceEstimator(dep, kernel=DirectStepCost(dep)).estimate(
                GenerationConfig(*workload_tokens, c.batch_size)
            )

    for c in sample:
        dep = build_deployment(c.model, c.hardware, c.framework, c.quant, c.tp)
        metrics = InferenceEstimator(dep, kernel=DirectStepCost(dep)).estimate(
            GenerationConfig(*workload_tokens, c.batch_size)
        )
        if not _close(metrics.end_to_end_latency_s, c.e2e_s):
            raise AssertionError(f"screening disagrees with estimator at {c.key}")

    before_sample = _best_of(scalar_sample, repeats)
    before = before_sample * (stats.configs_screened / len(sample))
    after = _best_of(lambda: screen(space), repeats)
    return {
        "configs": float(stats.configs_screened),
        "configs_per_s": stats.configs_screened / after,
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
        "extrapolated_before": 1.0,
    }


def run_benchmarks(reduced: bool = False, repeats: int | None = None) -> BenchReport:
    """Run the ten before/after benchmarks and assemble a report."""
    if repeats is None:
        repeats = 2 if reduced else 3
    dep = _reference_deployment()
    kernel = StepCostKernel(dep)  # fresh, private: cold caches at start
    benchmarks = {
        "sweep_grid": _bench_sweep_grid(dep, kernel, reduced, repeats),
        "estimator_points": _bench_estimator_points(dep, kernel, reduced, repeats),
        "engine_iteration_rate": _bench_engine(dep, kernel, reduced, repeats),
        "cluster_run": _bench_cluster(dep, kernel, reduced, repeats),
        "profiler_overhead": _bench_profiler_overhead(
            dep, kernel, reduced, repeats
        ),
        "telemetry_overhead": _bench_telemetry_overhead(
            dep, kernel, reduced, repeats
        ),
        "scenario_trace": _bench_scenario_trace(reduced, repeats),
        "engine_vectorized": _bench_engine_vectorized(
            dep, kernel, reduced, repeats
        ),
        "cluster_vectorized": _bench_cluster_vectorized(
            dep, kernel, reduced, repeats
        ),
        "optimize_screening": _bench_optimize_screening(reduced, repeats),
    }
    return BenchReport(
        date=datetime.date.today().isoformat(),
        reduced=reduced,
        deployment=f"{_MODEL}/{_HARDWARE}/{_FRAMEWORK}",
        python=platform.python_version(),
        machine=platform.machine(),
        benchmarks=benchmarks,
    )


def write_report(report: BenchReport, output: str | Path | None = None) -> Path:
    """Write the report to ``output`` (default ``BENCH_<date>.json``)."""
    path = Path(output) if output is not None else Path(f"BENCH_{report.date}.json")
    path.write_text(report.to_json())
    return path


def load_baseline(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


def check_regression(
    report: BenchReport, baseline: dict, max_regression: float = 2.0
) -> list[str]:
    """Regression messages (empty = pass).

    The gates:

    * the kernel-path engine iteration rate must stay above
      ``baseline / max_regression`` — the baseline is a deliberately
      conservative committed number so machine-to-machine variance does
      not trip CI, while an accidental return to un-memoized evaluation
      (a >5x cliff) always does;
    * the vectorized-core speedup ratios (``engine_vectorized`` and
      ``cluster_vectorized``, legacy core vs vector core on the same
      machine) must stay above the baseline's ``min_speedup`` floors.
      Ratios of two same-process timings are machine-independent, so
      these floors are tight (10x / 5x, the ISSUE 8 acceptance bar);
    * the telemetry bus overhead (``telemetry_overhead``, hub attached
      vs ``NULL_TELEMETRY`` on the same machine) must stay below the
      baseline's ``max_overhead_factor`` ceiling — also a same-process
      ratio, so the ceiling holds across machines.
    """
    if max_regression <= 1.0:
        raise ValueError("max_regression must be > 1.0")
    failures: list[str] = []
    base_rate = baseline["engine_iteration_rate"]["after_iters_per_s"]
    rate = report.benchmarks["engine_iteration_rate"]["after_iters_per_s"]
    floor = base_rate / max_regression
    if rate < floor:
        failures.append(
            "engine iteration rate regressed: "
            f"{rate:.1f} iters/s < floor {floor:.1f} "
            f"(baseline {base_rate:.1f} / {max_regression:g})"
        )
    for name in ("engine_vectorized", "cluster_vectorized"):
        if name not in baseline:
            continue
        min_speedup = baseline[name]["min_speedup"]
        speedup = report.benchmarks[name]["speedup"]
        if speedup < min_speedup:
            failures.append(
                f"{name} speedup regressed: {speedup:.1f}x < "
                f"required {min_speedup:g}x (legacy vs vector core)"
            )
    if "telemetry_overhead" in baseline:
        max_overhead = baseline["telemetry_overhead"]["max_overhead_factor"]
        overhead = report.benchmarks["telemetry_overhead"]["overhead_factor"]
        if overhead > max_overhead:
            failures.append(
                "telemetry overhead regressed: "
                f"{overhead:.2f}x > ceiling {max_overhead:g}x "
                "(hub attached vs NULL_TELEMETRY)"
            )
    if "optimize_screening" in baseline:
        min_rate = baseline["optimize_screening"]["min_configs_per_s"]
        config_rate = report.benchmarks["optimize_screening"]["configs_per_s"]
        if config_rate < min_rate:
            failures.append(
                "optimize screening rate regressed: "
                f"{config_rate:.0f} configs/s < floor {min_rate:g}"
            )
    return failures


def render(report: BenchReport) -> str:
    lines = [
        f"step-cost kernel benchmarks ({report.deployment}, "
        f"{'reduced' if report.reduced else 'full'} grid)",
        f"{'benchmark':<24}{'before s':>12}{'after s':>12}{'speedup':>10}",
    ]
    for name, row in report.benchmarks.items():
        lines.append(
            f"{name:<24}{row['before_s']:>12.4f}{row['after_s']:>12.4f}"
            f"{row['speedup']:>9.1f}x"
        )
    return "\n".join(lines)
