"""Reproductions of the paper's tables (I: models, II: hardware, III:
framework support), as checkable experiments.
"""

from __future__ import annotations

from repro.bench.experiments import ExperimentResult, register_experiment
from repro.bench.runner import BenchmarkRunner
from repro.core.results import ResultTable
from repro.frameworks.support import support_matrix
from repro.hardware.spec import GB
from repro.hardware.zoo import HARDWARE_ZOO
from repro.models.zoo import PRIMARY_MODELS, get_model

__all__: list[str] = []

# Table I verbatim: (layers, hidden, attention, heads, kv, ffn, experts,
# intermediate, max seq, vocab).
_TABLE_I = {
    "LLaMA-2-7B": (32, 4096, "mhsa", 32, 32, "dense", 1, 11008, 4096, 32000),
    "LLaMA-3-8B": (32, 4096, "gqa", 32, 8, "dense", 1, 14336, 8192, 128256),
    "Mistral-7B": (32, 4096, "gqa", 32, 8, "dense", 1, 14336, 32768, 32000),
    "Qwen2-7B": (28, 3584, "gqa", 28, 4, "dense", 1, 18944, 131072, 152064),
    "LLaMA-2-70B": (80, 8192, "gqa", 64, 8, "dense", 1, 28672, 4096, 32000),
    "LLaMA-3-70B": (80, 8192, "gqa", 64, 8, "dense", 1, 28672, 8192, 128256),
    "Qwen2-72B": (80, 8192, "gqa", 64, 8, "dense", 1, 29568, 131072, 152064),
    "Mixtral-8x7B": (32, 4096, "gqa", 32, 8, "moe", 8, 14336, 32768, 32000),
}

# Table II memory per device, in GB.
_TABLE_II_MEMORY = {
    "A100": 40,
    "H100": 80,
    "GH200": 96,
    "MI250": 128,
    "MI300X": 192,
    "Gaudi2": 96,
    "SN40L": 64,
}

# Table III (plus the extensions documented in frameworks.support).
_TABLE_III = {
    ("vLLM", "A100"): True,
    ("vLLM", "H100"): True,
    ("vLLM", "GH200"): True,
    ("vLLM", "MI250"): True,
    ("vLLM", "Gaudi2"): True,
    ("llama.cpp", "A100"): True,
    ("llama.cpp", "H100"): True,
    ("llama.cpp", "GH200"): True,
    ("llama.cpp", "MI250"): True,
    ("llama.cpp", "Gaudi2"): False,
    ("TRT-LLM", "A100"): True,
    ("TRT-LLM", "H100"): True,
    ("TRT-LLM", "GH200"): True,
    ("TRT-LLM", "MI250"): False,
    ("TRT-LLM", "Gaudi2"): False,
    ("DeepSpeed-MII", "A100"): True,
    ("DeepSpeed-MII", "H100"): False,
    ("DeepSpeed-MII", "GH200"): False,
    ("DeepSpeed-MII", "MI250"): False,
    ("DeepSpeed-MII", "Gaudi2"): True,
}


@register_experiment(
    "tab1",
    "Table I: model architecture configurations",
    "Table I / Appendix C",
    tags=("tables",),
)
def tab1(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("tab1")
    mismatches = 0
    for name, expected in _TABLE_I.items():
        cfg = get_model(name)
        actual = (
            cfg.num_layers,
            cfg.hidden_size,
            cfg.attention_type.value,
            cfg.num_attention_heads,
            cfg.num_kv_heads,
            cfg.ffn_type.value,
            cfg.num_experts,
            cfg.ffn_intermediate_size,
            cfg.max_sequence_length,
            cfg.vocab_size,
        )
        match = actual == expected
        mismatches += 0 if match else 1
        table.add(
            {"model": name, "match": match},
            {"total_params_b": cfg.total_params / 1e9},
        )
    result = ExperimentResult("tab1", "Model configuration fidelity", table)
    result.claim("config_mismatches", float(mismatches), paper=0.0)
    result.claim("models_covered", float(len(PRIMARY_MODELS)), paper=8.0)
    return result


@register_experiment(
    "tab2",
    "Table II: hardware platform features",
    "Table II / Appendix B",
    tags=("tables",),
)
def tab2(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("tab2")
    mismatches = 0
    for name, memory_gb in _TABLE_II_MEMORY.items():
        spec = HARDWARE_ZOO[name.lower()]
        actual_gb = spec.memory_per_device_bytes / GB
        match = abs(actual_gb - memory_gb) < 0.5
        mismatches += 0 if match else 1
        table.add(
            {"hardware": name, "match": match},
            {
                "memory_gb": actual_gb,
                "bandwidth_tb_s": spec.memory_bandwidth_bytes_s / 1e12,
                "peak_fp16_tflops": spec.peak_fp16_tflops,
                "devices_per_node": float(spec.devices_per_node),
            },
        )
    result = ExperimentResult("tab2", "Hardware spec fidelity", table)
    result.claim("memory_mismatches", float(mismatches), paper=0.0)
    result.claim("platforms_covered", float(len(_TABLE_II_MEMORY)), paper=7.0)
    return result


@register_experiment(
    "tab3",
    "Table III: framework x hardware support matrix",
    "Table III / Appendix C",
    tags=("tables",),
)
def tab3(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("tab3")
    matrix = support_matrix()
    mismatches = 0
    for (fw, hw), expected in _TABLE_III.items():
        actual = matrix[fw][hw]
        match = actual == expected
        mismatches += 0 if match else 1
        table.add(
            {"framework": fw, "hardware": hw, "match": match},
            {"supported": 1.0 if actual else 0.0},
        )
    result = ExperimentResult("tab3", "Support-matrix fidelity", table)
    result.claim("support_mismatches", float(mismatches), paper=0.0)
    return result
