"""Experiment registry: one entry per table/figure the paper reports.

Every experiment is a named, self-contained reproduction that returns an
:class:`ExperimentResult`: the raw sweep table plus headline quantities
(ratios, orderings) paired with the paper's claimed values, so
EXPERIMENTS.md can be generated mechanically and benches can assert shape
fidelity.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.bench.runner import BenchmarkRunner
from repro.core.results import ResultTable

__all__ = [
    "ExperimentResult",
    "Experiment",
    "EXPERIMENTS",
    "register_experiment",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]


@dataclass
class ExperimentResult:
    """Outcome of one reproduction run."""

    experiment_id: str
    title: str
    table: ResultTable
    # Headline quantities: name -> (measured, paper-claimed or None).
    measured: dict[str, float] = field(default_factory=dict)
    paper: dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def claim(self, name: str, measured: float, paper: float | None = None) -> None:
        self.measured[name] = measured
        if paper is not None:
            self.paper[name] = paper

    def summary_lines(self) -> list[str]:
        lines = [f"[{self.experiment_id}] {self.title}"]
        for name, value in self.measured.items():
            paper = self.paper.get(name)
            if paper is not None:
                lines.append(f"  {name}: measured {value:.3g} (paper {paper:.3g})")
            else:
                lines.append(f"  {name}: measured {value:.3g}")
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return lines

    def render(self) -> str:
        return "\n".join(self.summary_lines())


@dataclass(frozen=True)
class Experiment:
    """A registered reproduction target."""

    id: str
    title: str
    section: str  # paper section/figure reference
    run: Callable[[BenchmarkRunner], ExperimentResult]
    tags: tuple[str, ...] = ()


EXPERIMENTS: dict[str, Experiment] = {}


def register_experiment(
    id: str, title: str, section: str, tags: tuple[str, ...] = ()
) -> Callable[[Callable[[BenchmarkRunner], ExperimentResult]], Experiment]:
    """Decorator registering a reproduction function under an id."""

    def decorator(fn: Callable[[BenchmarkRunner], ExperimentResult]) -> Experiment:
        if id in EXPERIMENTS:
            raise ValueError(f"experiment {id!r} already registered")
        experiment = Experiment(id=id, title=title, section=section, run=fn, tags=tags)
        EXPERIMENTS[id] = experiment
        return experiment

    return decorator


def get_experiment(experiment_id: str) -> Experiment:
    if experiment_id not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    return EXPERIMENTS[experiment_id]


def list_experiments(tag: str | None = None) -> list[str]:
    if tag is None:
        return sorted(EXPERIMENTS)
    return sorted(e.id for e in EXPERIMENTS.values() if tag in e.tags)


def run_experiment(
    experiment_id: str, runner: BenchmarkRunner | None = None
) -> ExperimentResult:
    """Run one registered experiment (estimator-backed by default)."""
    experiment = get_experiment(experiment_id)
    return experiment.run(runner or BenchmarkRunner())
