"""Extension experiments beyond the paper's published figures.

These cover the paper's explicitly deferred or footnoted items:

* **ext-energy** — power/energy on *all* platforms ("these measurements on
  other hardware are planned for future work", Section III-5e);
* **ext-mi300x** — the MI300X appears in Table II but gets no dedicated
  figure; this compares it against H100 and MI250;
* **ext-peak-batch** — footnote 1: peak throughput beyond batch 64 on
  Nvidia/SN40L, and the AMD decline knee;
* **ext-int4** — the INT4/GPTQ/AWQ path the paper references (Section
  IV-B3) including the quality cost;
* **ext-slo** — online serving goodput under Poisson load, the dashboard's
  operator-facing view (Section VII).
"""

from __future__ import annotations

from repro.bench._helpers import GenerationConfig, sweep_batches
from repro.bench.experiments import ExperimentResult, register_experiment
from repro.bench.runner import BenchmarkRunner
from repro.core.precision import Precision
from repro.core.results import ResultTable
from repro.hardware.energy import energy_report
from repro.models.quality import estimate_perplexity
from repro.models.zoo import get_model
from repro.analysis import find_peak_batch
from repro.perf.parallelism import ParallelismPlan
from repro.perf.quantization import QuantizationScheme
from repro.perf.multinode import ClusterDeployment
from repro.runtime.loadgen import run_load_test
from repro.frameworks.base import get_framework
from repro.hardware.zoo import get_hardware

__all__: list[str] = []


@register_experiment(
    "ext-energy",
    "Energy per token across all seven platforms (deferred in the paper)",
    "Extension of Section III-5e",
    tags=("extension", "power"),
)
def ext_energy(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("ext-energy")
    panel = [
        ("A100", "vLLM", None),
        ("H100", "vLLM", None),
        ("GH200", "vLLM", None),
        ("MI250", "vLLM", None),
        ("MI300X", "vLLM", None),
        ("Gaudi2", "vLLM", None),
        ("SN40L", "SambaFlow", ParallelismPlan(tp=8)),
    ]
    config = GenerationConfig(1024, 1024, 16)
    for hw, fw, plan in panel:
        dep = runner.deployment("LLaMA-3-8B", hw, fw, plan=plan)
        metrics = runner.run_point(dep, config)
        if metrics.oom:
            continue
        report = energy_report(metrics)
        table.add(
            {"hardware": hw, "framework": fw, "devices": dep.num_devices},
            {
                "joules_per_token": report.joules_per_token,
                "tokens_per_joule": report.tokens_per_joule,
                "power_w": report.average_power_w,
            },
        )
    result = ExperimentResult("ext-energy", "Cross-platform energy", table)
    h100 = table.single("joules_per_token", hardware="H100")
    a100 = table.single("joules_per_token", hardware="A100")
    mi250 = table.single("joules_per_token", hardware="MI250")
    # H100 tokens come cheaper than A100's despite the higher TDP.
    result.claim("a100_joules_over_h100", a100 / h100)
    result.claim("mi250_joules_over_h100", mi250 / h100)
    return result


@register_experiment(
    "ext-mi300x",
    "MI300X vs H100 vs MI250 (Table II platform without a paper figure)",
    "Extension of Section VI-2",
    tags=("extension", "mi300x"),
)
def ext_mi300x(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("ext-mi300x")
    for hw in ("MI300X", "H100", "MI250"):
        for model in ("LLaMA-3-8B", "Mixtral-8x7B"):
            sweep_batches(
                runner, table, model, hw, "vLLM",
                batch_sizes=(1, 16, 32, 64), lengths=(1024,),
            )
    result = ExperimentResult("ext-mi300x", "MI300X positioning", table)
    mi300x = table.single(
        "throughput_tokens_per_s", model="LLaMA-3-8B", hardware="MI300X",
        batch_size=64,
    )
    mi250 = table.single(
        "throughput_tokens_per_s", model="LLaMA-3-8B", hardware="MI250",
        batch_size=64,
    )
    h100 = table.single(
        "throughput_tokens_per_s", model="LLaMA-3-8B", hardware="H100",
        batch_size=64,
    )
    result.claim("mi300x_over_mi250", mi300x / mi250)
    result.claim("h100_over_mi300x", h100 / mi300x)
    # Mixtral fits on ONE MI300X (192 GB) — no TP communication at all.
    mixtral_one_dev = table.filter(
        model="Mixtral-8x7B", hardware="MI300X", batch_size=64
    ).records[0]
    result.claim(
        "mixtral_fits_single_mi300x",
        1.0 if mixtral_one_dev.keys["devices"] == 1 else 0.0,
    )
    return result


@register_experiment(
    "ext-peak-batch",
    "Peak-throughput batch search beyond the paper's sweep (footnote 1)",
    "Extension of Section VII-2",
    tags=("extension", "batching"),
)
def ext_peak_batch(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("ext-peak-batch")
    panel = [
        ("A100", "vLLM", None),
        ("H100", "vLLM", None),
        ("MI250", "vLLM", None),
        ("SN40L", "SambaFlow", ParallelismPlan(tp=8)),
    ]
    for hw, fw, plan in panel:
        dep = runner.deployment("LLaMA-3-8B", hw, fw, plan=plan)
        peak = find_peak_batch(dep, 1024, 1024, max_batch=512)
        table.add(
            {"hardware": hw, "framework": fw},
            {
                "peak_batch": float(peak.batch_size),
                "peak_throughput": peak.throughput_tokens_per_s,
                "memory_limited": 1.0 if peak.memory_limited else 0.0,
            },
        )
    result = ExperimentResult("ext-peak-batch", "Peak-batch search", table)
    result.claim(
        "mi250_peak_batch", table.single("peak_batch", hardware="MI250"), paper=32.0
    )
    result.claim(
        "h100_peak_beyond_64",
        1.0 if table.single("peak_batch", hardware="H100") > 64 else 0.0,
        paper=1.0,
    )
    return result


@register_experiment(
    "ext-int4",
    "INT4 weight quantization: throughput gain vs perplexity cost",
    "Extension of Section IV-B3",
    tags=("extension", "quantization"),
)
def ext_int4(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("ext-int4")
    schemes = {
        "fp16": QuantizationScheme(),
        "int8": QuantizationScheme(weight_precision=Precision.INT8),
        "int4": QuantizationScheme(weight_precision=Precision.INT4),
    }
    model = get_model("LLaMA-3-8B")
    config = GenerationConfig(1024, 1024, 16)
    for label, scheme in schemes.items():
        dep = runner.deployment("LLaMA-3-8B", "A100", "vLLM", quant=scheme)
        metrics = runner.run_point(dep, config)
        table.add(
            {"precision": label},
            {
                "throughput_tokens_per_s": metrics.throughput_tokens_per_s,
                "perplexity": estimate_perplexity(
                    model, precision=scheme.weight_precision
                ),
            },
        )
    result = ExperimentResult("ext-int4", "INT4 trade-off", table)
    result.claim(
        "int4_speedup_over_fp16",
        table.single("throughput_tokens_per_s", precision="int4")
        / table.single("throughput_tokens_per_s", precision="fp16"),
    )
    result.claim(
        "int4_ppl_over_fp16",
        table.single("perplexity", precision="int4")
        / table.single("perplexity", precision="fp16"),
    )
    result.claim(
        "int8_ppl_over_fp16",
        table.single("perplexity", precision="int8")
        / table.single("perplexity", precision="fp16"),
    )
    return result


@register_experiment(
    "ext-slo",
    "Online goodput under Poisson load (operator view of Section VII)",
    "Extension of Section VII-2",
    tags=("extension", "serving"),
)
def ext_slo(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("ext-slo")
    dep = runner.deployment("Mistral-7B", "A100", "vLLM")
    for rate in (0.5, 2.0, 8.0):
        report = run_load_test(
            dep, rate_rps=rate, num_requests=48, max_concurrency=32, seed=7
        )
        table.add(
            {"offered_rps": rate},
            {
                "goodput_rps": report.goodput_rps,
                "slo_attainment": report.slo_attainment,
                "ttft_p95_s": report.ttft_p95_s,
                "throughput_tokens_per_s": report.throughput_tokens_per_s,
            },
        )
    result = ExperimentResult("ext-slo", "Goodput under load", table)
    light = table.single("slo_attainment", offered_rps=0.5)
    heavy = table.single("ttft_p95_s", offered_rps=8.0)
    light_p95 = table.single("ttft_p95_s", offered_rps=0.5)
    result.claim("light_load_slo_attainment", light)
    result.claim("p95_ttft_inflation_under_load", heavy / light_p95)
    return result


@register_experiment(
    "ext-multinode",
    "Multi-node scaling: TP-inside / PP-across nodes (GH200 NVL32 theme)",
    "Extension of Appendix B-2",
    tags=("extension", "scaling"),
)
def ext_multinode(runner: BenchmarkRunner) -> ExperimentResult:
    table = ResultTable("ext-multinode")
    config = GenerationConfig(1024, 1024, 64)
    for hw in ("H100", "A100"):
        for nodes in (1, 2, 4):
            cluster = ClusterDeployment(
                get_model("LLaMA-3-70B"),
                get_hardware(hw),
                get_framework("vLLM"),
                num_nodes=nodes,
            )
            estimate = cluster.estimate(config)
            table.add(
                {"hardware": hw, "nodes": nodes, "devices": cluster.total_devices},
                {
                    "throughput_tokens_per_s": estimate.throughput_tokens_per_s,
                    "ttft_s": estimate.metrics.ttft_s,
                    "inter_node_ms_per_step": (
                        estimate.inter_node_time_per_step_s * 1e3
                    ),
                },
            )
    result = ExperimentResult("ext-multinode", "Cross-node scaling", table)
    h100_1 = table.single("throughput_tokens_per_s", hardware="H100", nodes=1)
    h100_4 = table.single("throughput_tokens_per_s", hardware="H100", nodes=4)
    a100_1 = table.single("throughput_tokens_per_s", hardware="A100", nodes=1)
    a100_2 = table.single("throughput_tokens_per_s", hardware="A100", nodes=2)
    # Compute-rich nodes scale sublinearly (pipeline bubble)...
    result.claim("h100_scaling_1_to_4_nodes", h100_4 / h100_1)
    # ...memory-starved nodes scale superlinearly (capacity relief).
    result.claim("a100_scaling_1_to_2_nodes", a100_2 / a100_1)
    return result


@register_experiment(
    "ext-moe",
    "MoE architectures compared: Mixtral-8x7B vs Qwen2-57B-A14B",
    "Extension of Appendix A-1",
    tags=("extension", "moe"),
)
def ext_moe(runner: BenchmarkRunner) -> ExperimentResult:
    """Two MoE designs from the paper's appendix: Mixtral's 8 big experts
    (top-2) vs Qwen2-57B-A14B's 64 small experts (high effective top-k).
    Fine-grained experts keep the batch-1 active share lower (12/64 vs
    2/8), but both pools are fully hot by batch 64 — the large-batch MoE
    weight-traffic penalty is universal."""
    from repro.perf.phases import Deployment, moe_expected_active_experts

    table = ResultTable("ext-moe")
    plan = ParallelismPlan(tp=4)
    for model in ("Mixtral-8x7B", "Qwen2-57B-A14B"):
        for bs in (1, 16, 64):
            dep = runner.deployment(model, "H100", "vLLM", plan=plan)
            metrics = runner.run_point(dep, GenerationConfig(1024, 1024, bs))
            table.add(
                {"model": model, "batch_size": bs},
                {
                    "throughput_tokens_per_s": metrics.throughput_tokens_per_s,
                    "active_experts": moe_expected_active_experts(
                        get_model(model), bs
                    ),
                },
            )
    result = ExperimentResult("ext-moe", "MoE design comparison", table)
    mix1 = table.single("active_experts", model="Mixtral-8x7B", batch_size=1)
    qwen1 = table.single("active_experts", model="Qwen2-57B-A14B", batch_size=1)
    mix64 = table.single("active_experts", model="Mixtral-8x7B", batch_size=64)
    qwen64 = table.single("active_experts", model="Qwen2-57B-A14B", batch_size=64)
    result.claim("mixtral_pool_hot_fraction_bs64", mix64 / 8.0)
    result.claim("qwen_moe_pool_hot_fraction_bs64", qwen64 / 64.0)
    result.claim("qwen_moe_active_share_bs1", qwen1 / 64.0)
    result.claim("mixtral_active_share_bs1", mix1 / 8.0)
    tput_mix = table.single(
        "throughput_tokens_per_s", model="Mixtral-8x7B", batch_size=64
    )
    tput_qwen = table.single(
        "throughput_tokens_per_s", model="Qwen2-57B-A14B", batch_size=64
    )
    result.claim("mixtral_over_qwen_moe_bs64", tput_mix / tput_qwen)
    return result
