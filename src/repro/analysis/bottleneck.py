"""Bottleneck attribution: *why* is a configuration as fast as it is?

The paper's Insights section (VII) reasons about bottlenecks — KV-cache
bandwidth, compute saturation, communication, host overhead.  This module
makes that reasoning a first-class query: decompose a phase's latency into
mechanism shares, name the dominant one, and report operational intensity
against the hardware's roofline ridge point.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.metrics import CostComponents, LatencyBreakdown
from repro.core.request import GenerationConfig
from repro.perf.estimator import InferenceEstimator
from repro.perf.phases import Deployment

__all__ = ["Bottleneck", "PhaseAttribution", "BottleneckReport", "analyze"]


class Bottleneck(str, enum.Enum):
    """Dominant mechanism of a phase."""

    COMPUTE = "compute"
    WEIGHT_BANDWIDTH = "weight-bandwidth"
    KV_BANDWIDTH = "kv-bandwidth"
    COMMUNICATION = "communication"
    OVERHEAD = "overhead"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class PhaseAttribution:
    """Mechanism shares of one phase (fractions of total time, sum <= ~1
    plus overlap slack)."""

    phase: str
    compute: float
    weight_bandwidth: float
    kv_bandwidth: float
    activation_bandwidth: float
    communication: float
    overhead: float

    @property
    def dominant(self) -> Bottleneck:
        shares = {
            Bottleneck.COMPUTE: self.compute,
            Bottleneck.WEIGHT_BANDWIDTH: self.weight_bandwidth,
            Bottleneck.KV_BANDWIDTH: self.kv_bandwidth + self.activation_bandwidth,
            Bottleneck.COMMUNICATION: self.communication,
            Bottleneck.OVERHEAD: self.overhead,
        }
        return max(shares, key=shares.get)  # type: ignore[arg-type]

    @classmethod
    def from_breakdown(cls, phase: str, bd: LatencyBreakdown) -> "PhaseAttribution":
        if bd.total_s <= 0:
            raise ValueError(f"{phase}: empty breakdown")
        t = bd.total_s
        return cls(
            phase=phase,
            compute=bd.compute_s / t,
            weight_bandwidth=bd.weight_memory_s / t,
            kv_bandwidth=bd.kv_memory_s / t,
            activation_bandwidth=bd.activation_memory_s / t,
            communication=bd.communication_s / t,
            overhead=bd.overhead_s / t,
        )

    @classmethod
    def from_components(
        cls, phase: str, components: CostComponents
    ) -> "PhaseAttribution":
        """Attribution from an exact-sum runtime partition.

        The runtime profiler's :class:`~repro.core.metrics.CostComponents`
        scales every raw leg by the same factor, so these fractions sum to
        1 and share the *ordering* of :meth:`from_breakdown`'s — the two
        paths always agree on :attr:`dominant` (the consistency-bridge
        test in ``tests/test_profiler.py`` enforces this).
        """
        if components.total_s <= 0:
            raise ValueError(f"{phase}: empty component partition")
        shares = components.fractions()
        return cls(
            phase=phase,
            compute=shares["compute_s"],
            weight_bandwidth=shares["weight_s"],
            kv_bandwidth=shares["kv_s"],
            activation_bandwidth=shares["activation_s"],
            communication=shares["communication_s"],
            overhead=shares["overhead_s"],
        )


@dataclass(frozen=True)
class BottleneckReport:
    """Full attribution for one (deployment, workload) point."""

    prefill: PhaseAttribution
    decode: PhaseAttribution
    decode_share_of_e2e: float
    operational_intensity_decode: float  # FLOPs per byte moved
    ridge_point: float  # hardware FLOPs/byte at which compute == memory

    @property
    def end_to_end_bottleneck(self) -> Bottleneck:
        """Dominant mechanism of the dominant phase."""
        if self.decode_share_of_e2e >= 0.5:
            return self.decode.dominant
        return self.prefill.dominant

    @property
    def decode_is_memory_bound(self) -> bool:
        return self.operational_intensity_decode < self.ridge_point

    def render(self) -> str:
        lines = [
            f"end-to-end bottleneck: {self.end_to_end_bottleneck} "
            f"(decode is {self.decode_share_of_e2e:.0%} of e2e)",
            f"decode operational intensity: "
            f"{self.operational_intensity_decode:.1f} FLOP/B "
            f"(ridge {self.ridge_point:.0f} FLOP/B -> "
            f"{'memory' if self.decode_is_memory_bound else 'compute'}-bound)",
        ]
        for attribution in (self.prefill, self.decode):
            lines.append(
                f"{attribution.phase}: compute {attribution.compute:.0%}, "
                f"weights {attribution.weight_bandwidth:.0%}, "
                f"kv {attribution.kv_bandwidth:.0%}, "
                f"comm {attribution.communication:.0%}, "
                f"overhead {attribution.overhead:.0%} "
                f"-> {attribution.dominant}"
            )
        return "\n".join(lines)


def analyze(dep: Deployment, config: GenerationConfig) -> BottleneckReport:
    """Attribute a benchmark point's latency to mechanisms."""
    estimator = InferenceEstimator(dep)
    metrics = estimator.estimate(config)
    if metrics.oom:
        raise ValueError("configuration does not fit in memory")
    prefill_bd = metrics.prefill_breakdown
    decode_bd = metrics.decode_breakdown
    assert prefill_bd is not None
    if decode_bd is None or decode_bd.total_s == 0:
        raise ValueError("workload has no decode phase (single output token)")

    # Decode operational intensity: FLOPs per DRAM byte in one step.
    from repro.models.kvcache import kv_bytes_per_token
    from repro.models.ops import activation_bytes_per_token
    from repro.perf.phases import forward_flops, step_weight_bytes

    batch = int(metrics.effective_concurrency or config.batch_size)
    mean_ctx = config.input_tokens + config.output_tokens // 2
    flops = forward_flops(dep.model, batch, float(mean_ctx), batch)
    bytes_moved = (
        step_weight_bytes(dep, batch)
        + batch * mean_ctx * kv_bytes_per_token(dep.model, dep.kv_spec.precision)
        + batch * activation_bytes_per_token(dep.model)
    )
    intensity = flops / bytes_moved

    ridge = (
        dep.hardware.peak_flops(dep.quant.activation_compute_precision(dep.hardware))
        * dep.hardware.mfu_ceiling
        / dep.hardware.effective_bandwidth_bytes_s
    )
    return BottleneckReport(
        prefill=PhaseAttribution.from_breakdown("prefill", prefill_bd),
        decode=PhaseAttribution.from_breakdown("decode", decode_bd),
        decode_share_of_e2e=decode_bd.total_s
        / (prefill_bd.total_s + decode_bd.total_s),
        operational_intensity_decode=intensity,
        ridge_point=ridge,
    )
