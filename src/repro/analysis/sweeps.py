"""Configuration-space search utilities.

The paper's footnote 1 notes that "NVIDIA GPUs and SN40L can handle batch
sizes beyond 32 and 64 ... peak throughput might be higher" while "the
performance of AMD GPUs declines beyond a certain batch size".  These
helpers make that exploration a query: find the throughput-maximizing batch
(golden-section-style integer search over a unimodal-with-saturation
curve), and locate the knee where marginal ITL cost stops paying for
marginal throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.request import GenerationConfig
from repro.perf.estimator import InferenceEstimator
from repro.perf.phases import Deployment

__all__ = ["PeakBatchResult", "find_peak_batch", "throughput_curve"]


@dataclass(frozen=True)
class PeakBatchResult:
    """Outcome of the peak-batch search."""

    batch_size: int
    throughput_tokens_per_s: float
    itl_s: float
    memory_limited: bool  # peak set by KV capacity rather than the curve
    evaluated: tuple[int, ...]


def throughput_curve(
    dep: Deployment,
    input_tokens: int,
    output_tokens: int,
    batch_sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
) -> dict[int, float]:
    """Throughput at each batch size (0.0 where the point OOMs)."""
    estimator = InferenceEstimator(dep)
    return {
        bs: estimator.throughput(GenerationConfig(input_tokens, output_tokens, bs))
        for bs in batch_sizes
    }


def find_peak_batch(
    dep: Deployment,
    input_tokens: int,
    output_tokens: int,
    max_batch: int = 1024,
) -> PeakBatchResult:
    """Throughput-maximizing batch size via a bounded probe ladder.

    Probes powers of two up to ``max_batch`` (stopping after two
    consecutive non-improvements), then refines with eight evenly spaced
    probes between ``best/2`` and ``best*2``.  Bounded and deterministic;
    handles both the saturating Nvidia curve and MI250's
    rise-then-decline shape.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    estimator = InferenceEstimator(dep)
    evaluated: dict[int, float] = {}

    def tput(bs: int) -> float:
        if bs not in evaluated:
            evaluated[bs] = estimator.throughput(
                GenerationConfig(input_tokens, output_tokens, bs)
            )
        return evaluated[bs]

    # Doubling ladder.
    best = 1
    misses = 0
    bs = 1
    while bs <= max_batch and misses < 2:
        if tput(bs) > tput(best):
            best = bs
            misses = 0
        else:
            misses += 1 if bs > 1 else 0
        bs *= 2
    # Refinement: eight evenly spaced probes around the ladder's best.
    lo = max(1, best // 2)
    hi = min(max_batch, best * 2)
    for i in range(1, 9):
        probe = lo + (hi - lo) * i // 9
        if probe >= 1:
            tput(probe)

    peak = max(evaluated, key=evaluated.get)  # type: ignore[arg-type]
    metrics = estimator.estimate(
        GenerationConfig(input_tokens, output_tokens, peak)
    )
    capacity = estimator.capacity(
        GenerationConfig(input_tokens, output_tokens, peak)
    )
    return PeakBatchResult(
        batch_size=peak,
        throughput_tokens_per_s=evaluated[peak],
        itl_s=metrics.itl_s,
        memory_limited=peak >= capacity.max_concurrency,
        evaluated=tuple(sorted(evaluated)),
    )
