"""Configuration-space search utilities.

The paper's footnote 1 notes that "NVIDIA GPUs and SN40L can handle batch
sizes beyond 32 and 64 ... peak throughput might be higher" while "the
performance of AMD GPUs declines beyond a certain batch size".  These
helpers make that exploration a query: find the throughput-maximizing batch
(golden-section-style integer search over a unimodal-with-saturation
curve), and locate the knee where marginal ITL cost stops paying for
marginal throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.request import GenerationConfig
from repro.perf.estimator import InferenceEstimator
from repro.perf.kernel import get_kernel
from repro.perf.phases import Deployment

__all__ = ["PeakBatchResult", "find_peak_batch", "throughput_curve"]


@dataclass(frozen=True)
class PeakBatchResult:
    """Outcome of the peak-batch search."""

    batch_size: int
    throughput_tokens_per_s: float
    itl_s: float
    memory_limited: bool  # peak set by KV capacity rather than the curve
    evaluated: tuple[int, ...]


def throughput_curve(
    dep: Deployment,
    input_tokens: int,
    output_tokens: int,
    batch_sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
    kernel=None,
) -> dict[int, float]:
    """Throughput at each batch size (0.0 where the point OOMs).

    The whole batch axis is evaluated in one vectorized
    :meth:`~repro.perf.kernel.StepCostKernel.evaluate_grid` pass (matches
    the scalar estimator to <= 1e-12 relative; tested).  A ``kernel``
    without a grid API (e.g. :class:`~repro.perf.kernel.DirectStepCost`)
    falls back to one shared estimator looping over the batch sizes.
    """
    kernel = kernel if kernel is not None else get_kernel(dep)
    if hasattr(kernel, "evaluate_grid"):
        grid = kernel.evaluate_grid(batch_sizes, (input_tokens,), (output_tokens,))
        return {
            bs: float(grid.throughput_tokens_per_s[i, 0, 0])
            for i, bs in enumerate(batch_sizes)
        }
    estimator = InferenceEstimator(dep, kernel=kernel)
    return {
        bs: estimator.throughput(GenerationConfig(input_tokens, output_tokens, bs))
        for bs in batch_sizes
    }


def find_peak_batch(
    dep: Deployment,
    input_tokens: int,
    output_tokens: int,
    max_batch: int = 1024,
    estimator: InferenceEstimator | None = None,
) -> PeakBatchResult:
    """Throughput-maximizing batch size via a bounded probe ladder.

    Probes powers of two up to ``max_batch`` (stopping after two
    consecutive non-improvements), then refines with eight evenly spaced
    probes between ``best/2`` and ``best*2``.  Bounded and deterministic;
    handles both the saturating Nvidia curve and MI250's
    rise-then-decline shape.

    One ``estimator`` (kernel-backed by default) serves every probe, and
    refinement probes already evaluated by the ladder are skipped outright,
    so each distinct batch size costs exactly one estimate.  Callers
    sweeping many workloads on one deployment should pass their own
    estimator to share its capacity cache across calls.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    if estimator is None:
        estimator = InferenceEstimator(dep)
    evaluated: dict[int, float] = {}

    def tput(bs: int) -> float:
        if bs not in evaluated:
            evaluated[bs] = estimator.throughput(
                GenerationConfig(input_tokens, output_tokens, bs)
            )
        return evaluated[bs]

    # Doubling ladder.
    best = 1
    misses = 0
    bs = 1
    while bs <= max_batch and misses < 2:
        if tput(bs) > tput(best):
            best = bs
            misses = 0
        else:
            misses += 1 if bs > 1 else 0
        bs *= 2
    # Refinement: evenly spaced probes around the ladder's best, deduped
    # against the ladder's evaluations (probes collapse onto ladder points
    # when ``hi - lo`` is small).
    lo = max(1, best // 2)
    hi = min(max_batch, best * 2)
    probes = {lo + (hi - lo) * i // 9 for i in range(1, 9)}
    for probe in sorted(probes - evaluated.keys()):
        if probe >= 1:
            tput(probe)

    peak = max(evaluated, key=evaluated.get)  # type: ignore[arg-type]
    metrics = estimator.estimate(
        GenerationConfig(input_tokens, output_tokens, peak)
    )
    capacity = estimator.capacity(
        GenerationConfig(input_tokens, output_tokens, peak)
    )
    return PeakBatchResult(
        batch_size=peak,
        throughput_tokens_per_s=evaluated[peak],
        itl_s=metrics.itl_s,
        memory_limited=peak >= capacity.max_concurrency,
        evaluated=tuple(sorted(evaluated)),
    )
