"""Analysis tooling: bottleneck attribution, peak-batch search, energy."""

from repro.analysis.bottleneck import (
    Bottleneck,
    BottleneckReport,
    PhaseAttribution,
    analyze,
)
from repro.analysis.sweeps import PeakBatchResult, find_peak_batch, throughput_curve

__all__ = [
    "Bottleneck",
    "BottleneckReport",
    "PhaseAttribution",
    "analyze",
    "PeakBatchResult",
    "find_peak_batch",
    "throughput_curve",
]
