"""Analysis tooling: bottlenecks, peak-batch search, deployment optimization."""

from repro.analysis.bottleneck import (
    Bottleneck,
    BottleneckReport,
    PhaseAttribution,
    analyze,
)
from repro.analysis.sweeps import PeakBatchResult, find_peak_batch, throughput_curve

# Imported after sweeps/bottleneck on purpose: the optimizer pulls in
# repro.experiments, whose bench extensions import back from
# repro.analysis — the names they need must already be bound.
from repro.analysis.optimize import (  # noqa: E402
    OptimizationReport,
    ScreenedConfig,
    SearchSpace,
    optimize,
)

__all__ = [
    "Bottleneck",
    "BottleneckReport",
    "OptimizationReport",
    "PhaseAttribution",
    "ScreenedConfig",
    "SearchSpace",
    "analyze",
    "optimize",
    "PeakBatchResult",
    "find_peak_batch",
    "throughput_curve",
]
