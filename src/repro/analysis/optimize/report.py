"""Frontier assembly and the ``OptimizationReport`` artifact.

Three frontiers, all exact non-dominated sets over the screened
configurations (minimization; maximized axes negated before extraction):

* ``cost_vs_slo`` — cost-per-token vs SLO headroom (maximize), over
  non-OOM configurations whose fleet fits ``max_replicas``;
* ``energy_vs_latency`` — joules-per-token vs end-to-end latency, over
  every non-OOM configuration;
* ``throughput_vs_perplexity`` — per-replica throughput (maximize) vs
  predicted perplexity (:mod:`repro.models.quality`), the paper's
  speed-vs-quality Fig. 10 axis pair.

The report serialises with the repo's artifact discipline — sorted keys,
indent 1, trailing newline, non-finite scalars as ``null`` — so a double
run over the same space byte-diffs clean (CI's ``optimize`` job).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.optimize.evaluate import (
    OBJECTIVES,
    RefinedCandidate,
    ScreenedConfig,
    ScreeningStats,
    best_config,
    refine,
    screen,
)
from repro.analysis.optimize.pareto import non_dominated_indices
from repro.analysis.optimize.space import SearchSpace

__all__ = ["FRONTIER_NAMES", "OptimizationReport", "extract_frontiers", "optimize"]

# name -> (eligibility predicate, objective vector [minimization]).
_FRONTIER_SPECS = {
    "cost_vs_slo": (
        lambda c: not c.oom and c.feasible,
        lambda c: (c.cost_per_token_usd, -c.slo_headroom),
    ),
    "energy_vs_latency": (
        lambda c: not c.oom,
        lambda c: (c.energy_per_token_j, c.e2e_s),
    ),
    "throughput_vs_perplexity": (
        lambda c: not c.oom,
        lambda c: (-c.throughput_tokens_per_s, c.perplexity),
    ),
}

FRONTIER_NAMES = tuple(sorted(_FRONTIER_SPECS))


def extract_frontiers(
    configs: list[ScreenedConfig],
) -> dict[str, tuple[ScreenedConfig, ...]]:
    """Exact non-dominated set per frontier, sorted along the frontier.

    Output order is (objective vector, config key) ascending — walking a
    frontier left to right trades the first axis for the second — and the
    key tie-break keeps duplicate-objective configs in a fixed order.
    """
    frontiers: dict[str, tuple[ScreenedConfig, ...]] = {}
    for name in FRONTIER_NAMES:
        eligible_fn, objectives_fn = _FRONTIER_SPECS[name]
        eligible = [c for c in configs if eligible_fn(c)]
        points = [objectives_fn(c) for c in eligible]
        members = [eligible[i] for i in non_dominated_indices(points)]
        members.sort(key=lambda c: (objectives_fn(c), c.key))
        frontiers[name] = tuple(members)
    return frontiers


@dataclass(frozen=True)
class OptimizationReport:
    """Everything one optimizer run decided, as a plain-JSON value."""

    space: SearchSpace
    objective: str
    seed: int
    stats: ScreeningStats
    best: ScreenedConfig | None
    frontiers: dict[str, tuple[ScreenedConfig, ...]]
    refined: tuple[RefinedCandidate, ...]

    def to_json_dict(self) -> dict[str, object]:
        return {
            "space": self.space.to_json_dict(),
            "objective": self.objective,
            "seed": self.seed,
            "stats": self.stats.to_json_dict(),
            "best": None if self.best is None else self.best.to_json_dict(),
            "frontiers": {
                name: [c.to_json_dict() for c in members]
                for name, members in self.frontiers.items()
            },
            "refined": [r.to_json_dict() for r in self.refined],
        }

    def to_json(self) -> str:
        """Canonical byte representation (sorted keys, indent 1)."""
        return json.dumps(self.to_json_dict(), indent=1, sort_keys=True) + "\n"

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    def render(self) -> str:
        """Terminal summary: verdict line plus frontier sizes."""
        stats = self.stats
        lines = [
            f"screened {stats.configs_screened}/{stats.configs_nominal} configs "
            f"({stats.skipped_invalid} invalid, {stats.oom_lanes} OOM lanes)"
        ]
        if self.best is None:
            lines.append(
                f"no configuration meets the SLO within "
                f"{self.space.max_replicas} replicas"
            )
        else:
            best = self.best
            lines.append(
                f"best {self.objective}: {best.key} -> "
                f"{getattr(best, OBJECTIVES[self.objective]):.3e} "
                f"({best.replicas} replicas x {best.num_devices} devices)"
            )
        for name in FRONTIER_NAMES:
            lines.append(f"frontier {name}: {len(self.frontiers[name])} points")
        if self.refined:
            lines.append(f"refined {len(self.refined)} candidate(s) via DES")
        return "\n".join(lines)


def optimize(
    space: SearchSpace,
    objective: str = "cost_per_token",
    refine_top: int = 0,
    seed: int = 0,
    refine_num_requests: int = 24,
) -> OptimizationReport:
    """Run the full pipeline: screen, extract frontiers, optionally refine.

    ``refine_top=0`` (the default) stays analytic — the shape used by
    benchmarks and the determinism gate.  With ``refine_top=k`` the best
    ``k`` distinct deployments by ``objective`` additionally run through
    the discrete-event capacity planner per router in the space.
    """
    if objective not in OBJECTIVES:
        known = ", ".join(sorted(OBJECTIVES))
        raise KeyError(f"unknown objective {objective!r} (known: {known})")
    configs, stats = screen(space)
    frontiers = extract_frontiers(configs)
    best = best_config(configs, objective)
    refined = tuple(
        refine(
            space,
            configs,
            top_k=refine_top,
            objective=objective,
            seed=seed,
            num_requests=refine_num_requests,
        )
    )
    return OptimizationReport(
        space=space,
        objective=objective,
        seed=seed,
        stats=stats,
        best=best,
        frontiers=frontiers,
        refined=refined,
    )
