"""Two-stage deployment evaluation: vectorized screening + DES refinement.

**Stage 1 (screening)** prices every configuration analytically: each
valid deployment-axis point gets one
:meth:`~repro.perf.kernel.StepCostKernel.evaluate_grid` call covering
the whole batch axis in a single vectorized pass, and each batch lane
becomes a :class:`ScreenedConfig` — steady-state latency/throughput from
the grid, fleet sizing from the closed-form
:func:`~repro.perf.multinode.replicas_for_rate`, cost-per-token from the
zoo's per-device hourly rates, joules-per-token from the roofline power
integral, and perplexity from :mod:`repro.models.quality`.  This is the
path that screens 10^4+ configurations in seconds (benchmarked as
``optimize_screening``).

**Stage 2 (refinement)** re-evaluates the top frontier candidates
through the discrete-event :class:`~repro.cluster.ClusterCapacityPlanner`
— real queueing, router choice, per-request SLO attainment — and derives
autoscaler bounds from the resulting :class:`~repro.cluster.planner
.CapacityPlan` plus a parallelism-plan ranking for the winning device
budget.  Screening is optimistic about queueing (it prices steady-state
saturation); refinement is where the optimistic candidates pay for their
tails.  The accuracy trade-off is documented in ``docs/optimize.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import partial

from repro.cluster.planner import CapacityPlan, ClusterCapacityPlanner
from repro.cluster.router import get_router
from repro.control.autoscale import derive_autoscaler_bounds
from repro.core.request import GenerationConfig
from repro.experiments.spec import QUANT_SCHEMES
from repro.frameworks.base import get_framework
from repro.hardware.zoo import get_hardware
from repro.models.quality import estimate_perplexity
from repro.models.zoo import get_model
from repro.perf.kernel import get_kernel
from repro.perf.multinode import replicas_for_rate
from repro.perf.planner import PlanScore, rank_plans
from repro.analysis.optimize.space import SearchSpace, build_deployment

__all__ = [
    "OBJECTIVES",
    "RefinedCandidate",
    "ScreenedConfig",
    "ScreeningStats",
    "best_config",
    "refine",
    "screen",
]

#: Objective label -> ScreenedConfig attribute holding the value to
#: minimize.  ``joules_per_token`` is the TokenPowerBench name for the
#: energy objective; both labels address the same column.
OBJECTIVES: dict[str, str] = {
    "cost_per_token": "cost_per_token_usd",
    "energy_per_token": "energy_per_token_j",
    "joules_per_token": "energy_per_token_j",
}


def _json_num(value: float) -> float | None:
    """JSON-safe scalar (non-finite -> null), the snapshot convention."""
    value = float(value)
    return value if math.isfinite(value) else None


def _from_json_num(value: object) -> float:
    """Inverse of :func:`_json_num`; ``null`` loads back as NaN."""
    return float("nan") if value is None else float(value)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ScreenedConfig:
    """One fully priced configuration (a deployment at one batch size).

    ``replicas`` is the closed-form fleet size absorbing the space's
    ``target_rate_rps``; ``feasible`` is False when that exceeds
    ``max_replicas`` (cost stays finite — the price of the capped fleet
    is still informative, the flag carries the verdict).  OOM lanes keep
    the estimator's sentinels (inf latency, zero throughput) and are
    excluded from every frontier.
    """

    model: str
    hardware: str
    framework: str
    quant: str
    tp: int
    batch_size: int
    num_devices: int
    replicas: int
    feasible: bool
    oom: bool
    slo_ok: bool
    ttft_s: float
    itl_s: float
    e2e_s: float
    per_replica_rps: float
    throughput_tokens_per_s: float
    average_power_w: float
    cost_per_token_usd: float
    energy_per_token_j: float
    perplexity: float
    slo_headroom: float

    @property
    def key(self) -> str:
        return (
            f"{self.model}/{self.hardware}/{self.framework}/"
            f"{self.quant}/tp{self.tp}/bs{self.batch_size}"
        )

    @property
    def deployment_key(self) -> str:
        return (
            f"{self.model}/{self.hardware}/{self.framework}/"
            f"{self.quant}/tp{self.tp}"
        )

    def to_json_dict(self) -> dict[str, object]:
        return {
            "model": self.model,
            "hardware": self.hardware,
            "framework": self.framework,
            "quant": self.quant,
            "tp": self.tp,
            "batch_size": self.batch_size,
            "num_devices": self.num_devices,
            "replicas": self.replicas,
            "feasible": self.feasible,
            "oom": self.oom,
            "slo_ok": self.slo_ok,
            "ttft_s": _json_num(self.ttft_s),
            "itl_s": _json_num(self.itl_s),
            "e2e_s": _json_num(self.e2e_s),
            "per_replica_rps": _json_num(self.per_replica_rps),
            "throughput_tokens_per_s": _json_num(self.throughput_tokens_per_s),
            "average_power_w": _json_num(self.average_power_w),
            "cost_per_token_usd": _json_num(self.cost_per_token_usd),
            "energy_per_token_j": _json_num(self.energy_per_token_j),
            "perplexity": _json_num(self.perplexity),
            "slo_headroom": _json_num(self.slo_headroom),
        }

    @classmethod
    def from_json_dict(cls, payload: dict[str, object]) -> "ScreenedConfig":
        kwargs: dict[str, object] = {}
        for label in ("model", "hardware", "framework", "quant"):
            kwargs[label] = str(payload[label])
        for label in ("tp", "batch_size", "num_devices", "replicas"):
            kwargs[label] = int(payload[label])  # type: ignore[arg-type]
        for label in ("feasible", "oom", "slo_ok"):
            kwargs[label] = bool(payload[label])
        for label in (
            "ttft_s",
            "itl_s",
            "e2e_s",
            "per_replica_rps",
            "throughput_tokens_per_s",
            "average_power_w",
            "cost_per_token_usd",
            "energy_per_token_j",
            "perplexity",
            "slo_headroom",
        ):
            kwargs[label] = _from_json_num(payload[label])
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ScreeningStats:
    """Bookkeeping for one screening pass."""

    configs_nominal: int  # full cross product, before compatibility skips
    configs_screened: int  # lanes actually priced through the kernel
    skipped_invalid: int  # configs rejected by deployment validation
    oom_lanes: int

    def to_json_dict(self) -> dict[str, object]:
        return {
            "configs_nominal": self.configs_nominal,
            "configs_screened": self.configs_screened,
            "skipped_invalid": self.skipped_invalid,
            "oom_lanes": self.oom_lanes,
        }


def screen(space: SearchSpace) -> tuple[list[ScreenedConfig], ScreeningStats]:
    """Stage 1: price every valid configuration analytically.

    One ``evaluate_grid`` call per deployment-axis point covers the
    whole batch axis; ordering follows the space's enumeration order, so
    the returned list (and everything derived from it) is deterministic.
    """
    candidates, skipped_combos = space.enumerate_deployments()
    inp, out = space.input_tokens, space.output_tokens
    tokens_per_request = float(inp + out)
    target = space.target_rate_rps
    slo = space.slo

    configs: list[ScreenedConfig] = []
    oom_lanes = 0
    for cand in candidates:
        dep = cand.deployment
        grid = get_kernel(dep).evaluate_grid(space.batch_sizes, (inp,), (out,))
        hourly = dep.hardware.hourly_cost * dep.num_devices
        perplexity = estimate_perplexity(
            dep.model, precision=QUANT_SCHEMES[cand.quant].weight_precision
        )
        for b, batch in enumerate(space.batch_sizes):
            oom = bool(grid.oom[b, 0, 0])
            ttft = float(grid.ttft_s[b, 0, 0])
            itl = float(grid.itl_s[b, 0, 0])
            e2e = float(grid.end_to_end_s[b, 0, 0])
            throughput = float(grid.throughput_tokens_per_s[b, 0, 0])
            power = float(grid.average_power_w[b, 0, 0])
            if oom:
                oom_lanes += 1
                per_replica_rps = 0.0
                replicas = 0
                feasible = False
                slo_ok = False
                cost = float("inf")
                energy = float("inf")
                headroom = float("-inf")
            else:
                per_replica_rps = batch / e2e
                replicas = replicas_for_rate(target, per_replica_rps)
                feasible = replicas <= space.max_replicas
                # Steady-state latency proxy for per-request SLO checks;
                # the DES refinement stage replaces this with measured
                # per-request attainment under real queueing.
                margins = [1.0 - ttft / slo.ttft_s, 1.0 - itl / slo.itl_s]
                if slo.e2e_s is not None:
                    margins.append(1.0 - e2e / slo.e2e_s)
                headroom = min(margins)
                slo_ok = headroom >= 0.0
                # Provisioned fleet cost over delivered tokens: replicas
                # are billed whole (idle headroom included), tokens flow
                # at the planned rate.
                capped = min(replicas, space.max_replicas)
                cost = (capped * hourly / 3600.0) / (
                    target * tokens_per_request
                )
                # Marginal busy-device energy (J/token), the profiler's
                # joules_per_token convention.
                energy = power / throughput
            configs.append(
                ScreenedConfig(
                    model=cand.model,
                    hardware=cand.hardware,
                    framework=cand.framework,
                    quant=cand.quant,
                    tp=cand.tp,
                    batch_size=batch,
                    num_devices=dep.num_devices,
                    replicas=replicas,
                    feasible=feasible,
                    oom=oom,
                    slo_ok=slo_ok,
                    ttft_s=ttft,
                    itl_s=itl,
                    e2e_s=e2e,
                    per_replica_rps=per_replica_rps,
                    throughput_tokens_per_s=throughput,
                    average_power_w=power,
                    cost_per_token_usd=cost,
                    energy_per_token_j=energy,
                    perplexity=perplexity,
                    slo_headroom=headroom,
                )
            )
    stats = ScreeningStats(
        configs_nominal=space.size,
        configs_screened=len(configs),
        skipped_invalid=skipped_combos * len(space.batch_sizes),
        oom_lanes=oom_lanes,
    )
    return configs, stats


def best_config(
    configs: list[ScreenedConfig], objective: str
) -> ScreenedConfig | None:
    """Minimum-objective config among SLO-meeting feasible lanes.

    Ties break on the config key, which is unique per lane — the
    argument order never decides the winner.
    """
    try:
        attr = OBJECTIVES[objective]
    except KeyError:
        known = ", ".join(sorted(OBJECTIVES))
        raise KeyError(f"unknown objective {objective!r} (known: {known})") from None
    eligible = [
        c for c in configs if not c.oom and c.feasible and c.slo_ok
    ]
    if not eligible:
        return None
    return min(eligible, key=lambda c: (getattr(c, attr), c.key))


@dataclass(frozen=True)
class RefinedCandidate:
    """Stage-2 verdict for one frontier candidate under one router."""

    config: ScreenedConfig
    router: str
    capacity_plan: CapacityPlan
    autoscaler_min_replicas: int | None  # None when the plan is infeasible
    autoscaler_max_replicas: int | None
    plan_ranking: tuple[PlanScore, ...]

    def to_json_dict(self) -> dict[str, object]:
        return {
            "config": self.config.to_json_dict(),
            "router": self.router,
            "capacity_plan": self.capacity_plan.to_json_dict(),
            "autoscaler_min_replicas": self.autoscaler_min_replicas,
            "autoscaler_max_replicas": self.autoscaler_max_replicas,
            "plan_ranking": [s.to_json_dict() for s in self.plan_ranking],
        }


def refine(
    space: SearchSpace,
    configs: list[ScreenedConfig],
    top_k: int,
    objective: str = "cost_per_token",
    seed: int = 0,
    num_requests: int = 24,
    plan_ranking_depth: int = 4,
) -> list[RefinedCandidate]:
    """Stage 2: discrete-event capacity planning for top candidates.

    Takes the ``top_k`` best *distinct deployments* (cheapest batch lane
    each) by the screening objective, sizes each through the
    :class:`ClusterCapacityPlanner` once per router in the space, derives
    :class:`~repro.control.autoscale` bounds from feasible plans, and
    attaches the device-budget parallelism ranking.  Everything is keyed
    off ``seed``, so refinement output is as deterministic as screening.
    """
    if top_k < 0:
        raise ValueError(f"top_k must be >= 0, got {top_k}")
    attr = OBJECTIVES[objective]
    eligible = sorted(
        (c for c in configs if not c.oom and c.feasible and c.slo_ok),
        key=lambda c: (getattr(c, attr), c.key),
    )
    chosen: list[ScreenedConfig] = []
    seen: set[str] = set()
    for config in eligible:
        if len(chosen) >= top_k:
            break
        if config.deployment_key in seen:
            continue
        seen.add(config.deployment_key)
        chosen.append(config)

    refined: list[RefinedCandidate] = []
    for config in chosen:
        dep = build_deployment(
            config.model, config.hardware, config.framework, config.quant, config.tp
        )
        workload = GenerationConfig(
            space.input_tokens, space.output_tokens, config.batch_size
        )
        ranking = tuple(
            rank_plans(
                get_model(config.model),
                get_hardware(config.hardware),
                get_framework(config.framework),
                workload,
                num_devices=config.tp,
            )[:plan_ranking_depth]
        )
        for router in space.routers:
            planner = ClusterCapacityPlanner(
                dep,
                slo=space.slo,
                router_factory=partial(get_router, router, seed=seed),
                num_requests=num_requests,
                mean_input_tokens=space.input_tokens,
                mean_output_tokens=space.output_tokens,
                max_concurrency=config.batch_size,
                seed=seed,
            )
            plan = planner.plan(space.target_rate_rps, space.max_replicas)
            if plan.feasible:
                lo, hi = derive_autoscaler_bounds(plan)
            else:
                lo = hi = None
            refined.append(
                RefinedCandidate(
                    config=config,
                    router=router,
                    capacity_plan=plan,
                    autoscaler_min_replicas=lo,
                    autoscaler_max_replicas=hi,
                    plan_ranking=ranking,
                )
            )
    return refined
