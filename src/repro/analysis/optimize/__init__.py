"""Fleet-scale what-if optimizer: Pareto search over the deployment space.

Turns the paper's cross-accelerator comparison grid into an automated
search: a declarative :class:`SearchSpace` (hardware zoo x framework x
parallelism x quantization x batch, plus one workload shape, SLO, and
routing options), a two-stage evaluator (vectorized analytic screening
through the step-cost kernel, optional discrete-event refinement through
the cluster capacity planner), exact Pareto-frontier extraction, and a
byte-deterministic :class:`OptimizationReport` artifact.

See ``docs/optimize.md`` for objectives, frontier definitions and the
screening-vs-refinement accuracy trade-off.
"""

from repro.analysis.optimize.evaluate import (
    OBJECTIVES,
    RefinedCandidate,
    ScreenedConfig,
    ScreeningStats,
    best_config,
    refine,
    screen,
)
from repro.analysis.optimize.pareto import dominates, non_dominated_indices
from repro.analysis.optimize.report import (
    FRONTIER_NAMES,
    OptimizationReport,
    extract_frontiers,
    optimize,
)
from repro.analysis.optimize.space import (
    DeploymentCandidate,
    SearchSpace,
    build_deployment,
)

__all__ = [
    "FRONTIER_NAMES",
    "OBJECTIVES",
    "DeploymentCandidate",
    "OptimizationReport",
    "RefinedCandidate",
    "ScreenedConfig",
    "ScreeningStats",
    "SearchSpace",
    "best_config",
    "build_deployment",
    "dominates",
    "extract_frontiers",
    "non_dominated_indices",
    "optimize",
    "refine",
    "screen",
]
