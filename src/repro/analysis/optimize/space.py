"""Declarative deployment search spaces for the what-if optimizer.

A :class:`SearchSpace` names *axes* — registry labels for models,
hardware, frameworks, quantization schemes, tensor-parallel degrees and
batch sizes, plus one workload shape and one SLO — and the optimizer
takes their cross product.  Validation is fail-fast and happens twice:

* **at construction** — every label must resolve in its registry
  (model/hardware/framework zoos, ``QUANT_SCHEMES``, ``ROUTER_NAMES``)
  and every numeric axis must be positive, so a typo dies before any
  kernel work starts;
* **at enumeration** — combinations that are *individually* valid but
  jointly unsupported (Table III framework x hardware gaps, FP8 on
  non-FP8 silicon, TP degrees exceeding a node, MoE on non-MoE
  frameworks) are skipped and counted, reusing the exact rules
  :class:`~repro.perf.phases.Deployment` enforces — the optimizer never
  re-implements compatibility logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.router import ROUTER_NAMES
from repro.experiments.spec import QUANT_SCHEMES
from repro.frameworks.base import get_framework
from repro.hardware.zoo import get_hardware
from repro.models.zoo import get_model
from repro.perf.parallelism import ParallelismPlan
from repro.perf.phases import Deployment
from repro.runtime.loadgen import ServiceLevelObjective

__all__ = ["DeploymentCandidate", "SearchSpace", "build_deployment"]


def build_deployment(
    model: str, hardware: str, framework: str, quant: str, tp: int
) -> Deployment:
    """Construct the (validated) deployment for one axis combination.

    Raises ``ValueError`` for unsupported combinations — callers decide
    whether that is fatal (direct use) or a skip (space enumeration).
    """
    return Deployment(
        get_model(model),
        get_hardware(hardware),
        get_framework(framework),
        plan=ParallelismPlan(tp=tp),
        quant=QUANT_SCHEMES[quant],
    )


@dataclass(frozen=True)
class DeploymentCandidate:
    """One valid point on the deployment axes (batch not yet bound)."""

    model: str
    hardware: str
    framework: str
    quant: str
    tp: int
    deployment: Deployment = field(compare=False)

    @property
    def key(self) -> str:
        return f"{self.model}/{self.hardware}/{self.framework}/{self.quant}/tp{self.tp}"


@dataclass(frozen=True)
class SearchSpace:
    """The deployment cross product the optimizer searches.

    Axis order is load-bearing: enumeration walks the declared tuples in
    nested order (models, hardware, frameworks, quant, tp, batch), which
    fixes candidate ordering and therefore every downstream tie-break —
    the root of the optimizer's byte-determinism.
    """

    models: tuple[str, ...]
    hardware: tuple[str, ...]
    frameworks: tuple[str, ...]
    quant_schemes: tuple[str, ...] = ("fp16",)
    tensor_parallel: tuple[int, ...] = (1,)
    batch_sizes: tuple[int, ...] = (1, 8, 16, 32)
    routers: tuple[str, ...] = ("least-outstanding",)
    input_tokens: int = 512
    output_tokens: int = 256
    target_rate_rps: float = 4.0
    max_replicas: int = 16
    slo: ServiceLevelObjective = field(default_factory=ServiceLevelObjective)

    def __post_init__(self) -> None:
        for axis in (
            "models",
            "hardware",
            "frameworks",
            "quant_schemes",
            "tensor_parallel",
            "batch_sizes",
            "routers",
        ):
            values = tuple(getattr(self, axis))
            if not values:
                raise ValueError(f"search space axis {axis!r} is empty")
            object.__setattr__(self, axis, values)
        for name in self.models:
            get_model(name)
        for name in self.hardware:
            get_hardware(name)
        for name in self.frameworks:
            get_framework(name)
        for label in self.quant_schemes:
            if label not in QUANT_SCHEMES:
                known = ", ".join(sorted(QUANT_SCHEMES))
                raise ValueError(
                    f"unknown quant scheme {label!r} (known: {known})"
                )
        for name in self.routers:
            if name not in ROUTER_NAMES:
                known = ", ".join(sorted(ROUTER_NAMES))
                raise ValueError(f"unknown router {name!r} (known: {known})")
        if any(tp < 1 for tp in self.tensor_parallel):
            raise ValueError("tensor_parallel degrees must be >= 1")
        if any(b < 1 for b in self.batch_sizes):
            raise ValueError("batch_sizes must be >= 1")
        if len(set(self.batch_sizes)) != len(self.batch_sizes):
            raise ValueError("batch_sizes must be unique")
        if self.input_tokens < 1 or self.output_tokens < 1:
            raise ValueError("input_tokens and output_tokens must be >= 1")
        if self.target_rate_rps <= 0:
            raise ValueError(
                f"target_rate_rps must be positive, got {self.target_rate_rps}"
            )
        if self.max_replicas < 1:
            raise ValueError(f"max_replicas must be >= 1, got {self.max_replicas}")

    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Nominal configuration count (before compatibility skips)."""
        return (
            len(self.models)
            * len(self.hardware)
            * len(self.frameworks)
            * len(self.quant_schemes)
            * len(self.tensor_parallel)
            * len(self.batch_sizes)
        )

    def enumerate_deployments(self) -> tuple[list[DeploymentCandidate], int]:
        """All valid deployment-axis points, plus the skip count.

        Each skipped combination represents ``len(batch_sizes)``
        configurations that never reach the kernel.
        """
        candidates: list[DeploymentCandidate] = []
        skipped = 0
        for model in self.models:
            for hardware in self.hardware:
                for framework in self.frameworks:
                    for quant in self.quant_schemes:
                        for tp in self.tensor_parallel:
                            try:
                                dep = build_deployment(
                                    model, hardware, framework, quant, tp
                                )
                            except ValueError:
                                skipped += 1
                                continue
                            candidates.append(
                                DeploymentCandidate(
                                    model=model,
                                    hardware=hardware,
                                    framework=framework,
                                    quant=quant,
                                    tp=tp,
                                    deployment=dep,
                                )
                            )
        return candidates, skipped

    def to_json_dict(self) -> dict[str, object]:
        """Deterministic JSON view (embedded in optimization reports)."""
        return {
            "models": list(self.models),
            "hardware": list(self.hardware),
            "frameworks": list(self.frameworks),
            "quant_schemes": list(self.quant_schemes),
            "tensor_parallel": list(self.tensor_parallel),
            "batch_sizes": list(self.batch_sizes),
            "routers": list(self.routers),
            "input_tokens": self.input_tokens,
            "output_tokens": self.output_tokens,
            "target_rate_rps": self.target_rate_rps,
            "max_replicas": self.max_replicas,
            "slo": {
                "ttft_s": self.slo.ttft_s,
                "itl_s": self.slo.itl_s,
                "e2e_s": self.slo.e2e_s,
                "attainment_target": self.slo.attainment_target,
            },
        }

    @classmethod
    def from_json_dict(cls, payload: dict[str, object]) -> "SearchSpace":
        slo = payload["slo"]
        return cls(
            models=tuple(payload["models"]),  # type: ignore[arg-type]
            hardware=tuple(payload["hardware"]),  # type: ignore[arg-type]
            frameworks=tuple(payload["frameworks"]),  # type: ignore[arg-type]
            quant_schemes=tuple(payload["quant_schemes"]),  # type: ignore[arg-type]
            tensor_parallel=tuple(int(t) for t in payload["tensor_parallel"]),  # type: ignore[union-attr]
            batch_sizes=tuple(int(b) for b in payload["batch_sizes"]),  # type: ignore[union-attr]
            routers=tuple(payload["routers"]),  # type: ignore[arg-type]
            input_tokens=int(payload["input_tokens"]),  # type: ignore[arg-type]
            output_tokens=int(payload["output_tokens"]),  # type: ignore[arg-type]
            target_rate_rps=float(payload["target_rate_rps"]),  # type: ignore[arg-type]
            max_replicas=int(payload["max_replicas"]),  # type: ignore[arg-type]
            slo=ServiceLevelObjective(
                ttft_s=float(slo["ttft_s"]),  # type: ignore[index]
                itl_s=float(slo["itl_s"]),  # type: ignore[index]
                e2e_s=(
                    None
                    if slo["e2e_s"] is None  # type: ignore[index]
                    else float(slo["e2e_s"])  # type: ignore[index]
                ),
                attainment_target=float(slo["attainment_target"]),  # type: ignore[index]
            ),
        )
