"""Exact non-dominated-set extraction.

Minimization convention throughout: a point ``a`` *dominates* ``b`` when
``a`` is no worse on every objective and strictly better on at least
one.  Maximized objectives are negated by the caller before extraction.

The extractor is the exact O(n^2) pairwise definition — no sorting
heuristics, no epsilon — so the frontier equals the brute-force
non-dominated set by construction (and the test suite cross-checks it
against an independent brute-force pass anyway).  Ties are kept: two
identical points do not dominate each other, and both survive, which
keeps extraction order-independent and therefore deterministic under the
search space's fixed enumeration order.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["dominates", "non_dominated_indices"]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` Pareto-dominates ``b`` (minimization)."""
    if len(a) != len(b):
        raise ValueError(f"objective arity mismatch: {len(a)} vs {len(b)}")
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def non_dominated_indices(points: Sequence[Sequence[float]]) -> list[int]:
    """Indices (input order) of the exact non-dominated subset.

    NaN objectives are rejected outright — NaN comparisons are false in
    both directions, which would make "dominated" silently depend on
    operand order.  Callers filter unevaluable candidates (OOM lanes,
    infeasible replica counts) *before* extraction; infinities are legal
    (an inf objective simply never wins that dimension).
    """
    for index, point in enumerate(points):
        if any(math.isnan(value) for value in point):
            raise ValueError(f"point {index} has NaN objectives: {tuple(point)}")
    frontier: list[int] = []
    for i, candidate in enumerate(points):
        if not any(
            dominates(other, candidate)
            for j, other in enumerate(points)
            if j != i
        ):
            frontier.append(i)
    return frontier
