"""Parallelism plans and their communication/utilization costs.

Implements the paper's Section IV-C taxonomy: tensor parallelism (TP,
per-GEMM sharding with all-reduces), pipeline parallelism (PP, layer
splitting with point-to-point activation handoffs and pipeline bubbles),
expert parallelism (EP, expert sharding with all-to-all token exchange and
load imbalance), and hybrid combinations (HP).

Key reproduced behaviour (Fig. 5): on 4 A100s with LLaMA-3-8B, TP=4 beats
the TP=2/PP=2 hybrid by ~1.3x and pure PP=4 by ~1.9x, because TP
parallelizes every step's weight/KV streaming while PP serializes stages
for each microbatch and only recovers throughput via pipelining.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.precision import Precision, precision_spec
from repro.frameworks.base import FrameworkProfile, MultiGpuStyle
from repro.hardware.interconnect import all_to_all_time, allreduce_time, p2p_time
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig

__all__ = ["ParallelismPlan", "CommCosts", "comm_costs_per_forward", "pipeline_factor"]

# Expert-parallel load imbalance: "A load balancing issue may exist when
# experts assigned to a GPU are not active" (Section IV-C3).
_EP_IMBALANCE = 1.30


@dataclass(frozen=True)
class ParallelismPlan:
    """How a deployment spreads one model over ``num_devices`` accelerators.

    ``tp * pp`` must equal the device count; ``ep`` (expert parallelism)
    reuses the same devices for MoE expert sharding and must divide
    ``tp * pp``.  ``ep=1`` keeps every expert replicated on every TP shard.
    """

    tp: int = 1
    pp: int = 1
    ep: int = 1

    def __post_init__(self) -> None:
        for name in ("tp", "pp", "ep"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.num_devices % self.ep != 0:
            raise ValueError(
                f"ep ({self.ep}) must divide tp*pp ({self.num_devices})"
            )

    @property
    def num_devices(self) -> int:
        return self.tp * self.pp

    @property
    def label(self) -> str:
        parts = []
        if self.tp > 1:
            parts.append(f"TP{self.tp}")
        if self.pp > 1:
            parts.append(f"PP{self.pp}")
        if self.ep > 1:
            parts.append(f"EP{self.ep}")
        return "+".join(parts) if parts else "single"

    def validate_for(self, config: ModelConfig, spec: HardwareSpec) -> None:
        """Reject plans the model/hardware cannot realize."""
        if self.num_devices > spec.devices_per_node:
            raise ValueError(
                f"plan needs {self.num_devices} devices; {spec.name} node has "
                f"{spec.devices_per_node}"
            )
        if self.tp > config.num_kv_heads and config.uses_gqa:
            # KV heads are the finest TP sharding grain for attention.
            raise ValueError(
                f"{config.name}: TP={self.tp} exceeds {config.num_kv_heads} KV heads"
            )
        if self.pp > config.num_layers:
            raise ValueError(
                f"{config.name}: PP={self.pp} exceeds {config.num_layers} layers"
            )
        if self.ep > 1 and not config.is_moe:
            raise ValueError(f"{config.name} is dense; expert parallelism needs MoE")
        if self.ep > config.num_experts:
            raise ValueError(
                f"{config.name}: EP={self.ep} exceeds {config.num_experts} experts"
            )


@dataclass(frozen=True)
class CommCosts:
    """Per-forward-pass communication time, split by mechanism (seconds)."""

    tp_allreduce_s: float = 0.0
    pp_p2p_s: float = 0.0
    ep_all_to_all_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.tp_allreduce_s + self.pp_p2p_s + self.ep_all_to_all_s


def comm_costs_per_forward(
    config: ModelConfig,
    spec: HardwareSpec,
    framework: FrameworkProfile,
    plan: ParallelismPlan,
    tokens: int,
    precision: Precision | str = Precision.FP16,
) -> CommCosts:
    """Communication time of one forward pass over ``tokens`` new tokens.

    TP: two all-reduces per layer (after attention and after FFN) of the
    activation tensor.  PP: one activation handoff per stage boundary.
    EP: two all-to-alls per MoE layer (scatter tokens to experts, gather
    results), inflated by the load-imbalance factor.

    llama.cpp's ``LAYER_SPLIT`` style has no TP all-reduces — only the
    serial stage handoffs — which is also why it barely scales (Fig. 13).
    """
    if tokens < 1:
        raise ValueError(f"tokens must be >= 1, got {tokens}")
    spec_bytes = precision_spec(precision).bytes_per_element
    act_bytes = tokens * config.hidden_size * spec_bytes
    link = spec.interconnect
    factor = framework.comm_overhead_factor

    tp_time = 0.0
    if plan.tp > 1 and framework.multi_gpu_style is MultiGpuStyle.TENSOR_PARALLEL:
        per_layer = 2.0 * allreduce_time(link, act_bytes, plan.tp)
        tp_time = per_layer * config.num_layers * factor

    pp_time = 0.0
    stage_count = plan.pp
    if framework.multi_gpu_style is MultiGpuStyle.LAYER_SPLIT:
        # llama.cpp splits layers across all devices regardless of the
        # requested plan shape.
        stage_count = plan.num_devices
    if stage_count > 1:
        pp_time = (stage_count - 1) * p2p_time(link, act_bytes) * factor

    ep_time = 0.0
    if plan.ep > 1 and config.is_moe:
        # Tokens (and their expert assignments) shuffle twice per MoE layer.
        ep_time = (
            2.0
            * all_to_all_time(link, act_bytes, plan.ep)
            * config.num_layers
            * _EP_IMBALANCE
            * factor
        )

    return CommCosts(tp_allreduce_s=tp_time, pp_p2p_s=pp_time, ep_all_to_all_s=ep_time)


def pipeline_factor(
    plan: ParallelismPlan, batch_size: int, microbatch_limit: int | None = None
) -> float:
    """Pipeline-bubble inflation on per-step time.

    A PP deployment splits the batch into ``m`` microbatches; one step over
    the whole batch costs ``(m + pp - 1) / m`` stage-times relative to the
    perfectly parallel aggregate-resource execution (which is what the
    roofline legs compute, with all ``tp*pp`` devices contributing).

    ``microbatch_limit`` caps ``m``: decode steps offer tiny GEMMs and
    serving engines split them into at most ~2 microbatches before the
    per-microbatch weight re-streaming erases the benefit; prefill chunks
    pipeline much deeper.  With ``pp=1`` this is 1.0.  With ``pp=4,
    batch=1`` it is 4.0: stages run strictly serially, so the four
    devices' bandwidth is not actually aggregated — matching the paper's
    TP-beats-PP finding (Fig. 5).
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if microbatch_limit is not None and microbatch_limit < 1:
        raise ValueError(f"microbatch_limit must be >= 1, got {microbatch_limit}")
    if plan.pp == 1:
        return 1.0
    microbatches = min(batch_size, plan.pp)
    if microbatch_limit is not None:
        microbatches = min(microbatches, microbatch_limit)
    return (microbatches + plan.pp - 1) / microbatches
