"""Multi-node inference scaling (extension).

The paper's study is intra-node, but its hardware appendix describes the
scale-out path (GH200 NVL32's 32-GPU NVLink domain, InfiniBand-connected
MGX systems) and its takeaways ask that frameworks "scale with an
increasing number of computing chips".  This module extends the analytical
model across nodes using the standard deployment shape: **tensor
parallelism inside each node, pipeline parallelism across nodes**, with
activations crossing the inter-node fabric once per stage boundary.

Approximation note: each pipeline stage is modelled as a layer slice of
the full model that also carries the embedding/LM-head weights (in
reality only the first/last stage do), overcounting per-stage weight
traffic by the embedding share — a few percent for 32K vocabularies,
up to ~13% for 128K-vocabulary models.  This keeps slices expressible as
ordinary :class:`~repro.models.config.ModelConfig` objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.metrics import InferenceMetrics
from repro.core.precision import Precision, precision_spec
from repro.core.request import GenerationConfig
from repro.frameworks.base import FrameworkProfile
from repro.hardware.interconnect import p2p_time
from repro.hardware.spec import HardwareSpec, InterconnectSpec
from repro.models.config import ModelConfig
from repro.perf.estimator import InferenceEstimator
from repro.perf.parallelism import ParallelismPlan
from repro.perf.phases import Deployment

__all__ = [
    "INFINIBAND_NDR",
    "ClusterDeployment",
    "ClusterEstimate",
    "replicas_for_rate",
]

# NVIDIA NDR InfiniBand: 400 Gb/s per port = 50 GB/s, ~2x the latency of
# intra-node NVLink hops.
INFINIBAND_NDR = InterconnectSpec("InfiniBand-NDR", bandwidth_gb_s=50.0,
                                  latency_us=5.0)


def replicas_for_rate(target_rps: float, per_replica_rps: float) -> int:
    """Closed-form data-parallel fleet sizing: ``ceil(target / capacity)``.

    Independent replicas behind an ideal router scale request capacity
    linearly (no shared state, unlike the TP/PP paths above), so the
    replica count for an offered rate is the ceiling ratio.  The
    discrete-event :class:`repro.cluster.ClusterCapacityPlanner` is
    cross-checked against this estimate on uniform workloads.
    """
    if target_rps <= 0:
        raise ValueError(f"target_rps must be positive, got {target_rps}")
    if per_replica_rps <= 0:
        raise ValueError(
            f"per_replica_rps must be positive, got {per_replica_rps}"
        )
    # Tolerate float ratio noise so e.g. 3 * capacity never rounds to 4.
    return max(1, math.ceil(target_rps / per_replica_rps - 1e-9))


@dataclass(frozen=True)
class ClusterEstimate:
    """Multi-node estimate plus its single-node-equivalent reference."""

    metrics: InferenceMetrics
    num_nodes: int
    stage_layers: int
    inter_node_time_per_step_s: float

    @property
    def throughput_tokens_per_s(self) -> float:
        return self.metrics.throughput_tokens_per_s


@dataclass(frozen=True)
class ClusterDeployment:
    """TP-inside / PP-across deployment over ``num_nodes`` identical nodes."""

    model: ModelConfig
    hardware: HardwareSpec
    framework: FrameworkProfile
    num_nodes: int
    tp_per_node: int | None = None  # default: whole node
    inter_node: InterconnectSpec = INFINIBAND_NDR
    precision: Precision = Precision.FP16

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        tp = self.tp_per_node or self.hardware.devices_per_node
        if not 1 <= tp <= self.hardware.devices_per_node:
            raise ValueError(
                f"tp_per_node must be in [1, {self.hardware.devices_per_node}]"
            )
        if self.model.num_layers < self.num_nodes:
            raise ValueError(
                f"{self.model.name}: {self.num_nodes} nodes exceed "
                f"{self.model.num_layers} layers"
            )
        object.__setattr__(self, "tp_per_node", tp)

    @property
    def total_devices(self) -> int:
        assert self.tp_per_node is not None
        return self.num_nodes * self.tp_per_node

    # ------------------------------------------------------------------

    def _stage_model(self) -> ModelConfig:
        """The layer slice one node executes (see module approximation)."""
        layers = self.model.num_layers // self.num_nodes
        slice_model = replace(
            self.model,
            name=f"{self.model.name}-stage",
            num_layers=layers,
            kv_heads_per_layer=(
                self.model.kv_heads_per_layer[:layers]
                if self.model.kv_heads_per_layer is not None
                else None
            ),
        )
        return slice_model

    def _stage_deployment(self) -> Deployment:
        assert self.tp_per_node is not None
        return Deployment(
            self._stage_model(),
            self.hardware,
            self.framework,
            plan=ParallelismPlan(tp=self.tp_per_node),
        )

    def _inter_node_time(self, tokens: int) -> float:
        """Activation handoffs across the (num_nodes - 1) stage boundaries."""
        if self.num_nodes == 1:
            return 0.0
        bytes_per_boundary = (
            tokens
            * self.model.hidden_size
            * precision_spec(self.precision).bytes_per_element
        )
        per_boundary = p2p_time(self.inter_node, bytes_per_boundary)
        return (self.num_nodes - 1) * per_boundary * (
            self.framework.comm_overhead_factor
        )

    def estimate(self, config: GenerationConfig) -> ClusterEstimate:
        """End-to-end metrics for the cluster deployment.

        Stage times come from the single-node estimator on the layer
        slice; the pipeline over nodes inflates per-step time by
        ``(m + N - 1)/m`` (decode microbatch limit 2, as intra-node) and
        adds the inter-node activation handoffs.
        """
        stage = self._stage_deployment()
        stage_metrics = InferenceEstimator(stage).estimate(config)
        if stage_metrics.oom:
            return ClusterEstimate(
                metrics=stage_metrics,
                num_nodes=self.num_nodes,
                stage_layers=self._stage_model().num_layers,
                inter_node_time_per_step_s=0.0,
            )

        decode_steps = max(0, config.output_tokens - 1)
        microbatches = min(config.batch_size, self.num_nodes, 2)
        pf = (microbatches + self.num_nodes - 1) / microbatches

        decode_total = (
            stage_metrics.end_to_end_latency_s - stage_metrics.ttft_s
        )
        inter_decode = self._inter_node_time(config.batch_size)
        decode_cluster = decode_total * pf + decode_steps * inter_decode

        prefill_m = min(config.batch_size * 4, self.num_nodes * 4)
        prefill_pf = (prefill_m + self.num_nodes - 1) / prefill_m
        inter_prefill = self._inter_node_time(
            config.batch_size * config.input_tokens
        )
        ttft_cluster = stage_metrics.ttft_s * prefill_pf + inter_prefill

        power = (
            stage_metrics.average_power_w * self.num_nodes
            if stage_metrics.average_power_w is not None
            else None
        )
        metrics = InferenceMetrics(
            batch_size=config.batch_size,
            input_tokens=config.input_tokens,
            output_tokens=config.output_tokens,
            ttft_s=ttft_cluster,
            end_to_end_latency_s=ttft_cluster + decode_cluster,
            average_power_w=power,
            effective_concurrency=stage_metrics.effective_concurrency,
        )
        return ClusterEstimate(
            metrics=metrics,
            num_nodes=self.num_nodes,
            stage_layers=self._stage_model().num_layers,
            inter_node_time_per_step_s=inter_decode,
        )
