"""Prefill and decode-step latency models.

This module evaluates the roofline for one forward pass of a deployed LLM:

* **prefill** — the whole prompt batch in one pass: compute-rich (large
  GEMMs run near peak), writes the KV cache, determines TTFT;
* **decode step** — one token per sequence: memory-rich (the entire active
  weight set plus the whole KV cache stream from DRAM per step), determines
  ITL and, iterated ``output_tokens - 1`` times, the decode phase.

Every mechanism the paper measures enters here: GQA's smaller KV traffic,
MoE's active-expert weight traffic, paged-KV block granularity, tensor/
pipeline/expert parallelism, quantization, per-platform efficiency curves,
the MI250 saturation penalty and the SN40L's tiered memory and per-request
setup cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.metrics import LatencyBreakdown
from repro.frameworks.base import FrameworkProfile, MultiGpuStyle
from repro.hardware.memory import MemoryModel
from repro.hardware.roofline import mfu_at_batch, saturation_penalty
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.models.kvcache import KVCacheSpec, kv_bytes_per_token
from repro.models.ops import (
    activation_bytes_per_token,
    attention_context_flops,
    attention_linear_flops,
    ffn_flops,
    lm_head_flops,
)
from repro.perf.attention import kv_time_multiplier
from repro.perf.parallelism import (
    ParallelismPlan,
    comm_costs_per_forward,
    pipeline_factor,
)
from repro.perf.quantization import QuantizationScheme

__all__ = [
    "Deployment",
    "moe_expected_active_experts",
    "step_weight_bytes",
    "forward_flops",
    "prefill_breakdown",
    "decode_step_breakdown",
    "prefill_traffic",
    "decode_step_traffic",
]


@dataclass(frozen=True)
class Deployment:
    """A fully specified serving configuration.

    Bundles everything fixed for a benchmark point except the workload:
    model x hardware x framework x parallelism plan x quantization x KV
    policy.  ``framework`` is specialized to the hardware at construction
    (Table III validation plus platform overrides such as Gaudi2's
    contiguous KV).
    """

    model: ModelConfig
    hardware: HardwareSpec
    framework: FrameworkProfile
    plan: ParallelismPlan = field(default_factory=ParallelismPlan)
    quant: QuantizationScheme = field(default_factory=QuantizationScheme)
    kv_spec: KVCacheSpec = field(default_factory=KVCacheSpec)

    def __post_init__(self) -> None:
        specialized = self.framework.on_hardware(self.hardware.name)
        object.__setattr__(self, "framework", specialized)
        self.plan.validate_for(self.model, self.hardware)
        self.quant.validate_for(self.hardware, self.framework)
        if self.model.is_moe and not self.framework.supports_moe:
            raise ValueError(
                f"{self.framework.name} cannot serve MoE model {self.model.name}"
            )
        # The KV policy follows the framework unless explicitly overridden;
        # a paged KV spec on a contiguous-only framework is contradictory.
        if self.kv_spec.paged and not self.framework.paged_kv:
            object.__setattr__(self, "kv_spec", replace(self.kv_spec, paged=False))

    @property
    def num_devices(self) -> int:
        return self.plan.num_devices

    def memory_model(self) -> MemoryModel:
        """Memory model for this deployment (cached; pure function of the
        frozen fields, so one instance serves every roofline call)."""
        cached = self.__dict__.get("_memory_model")
        if cached is None:
            cached = MemoryModel(self.hardware, self.num_devices)
            # Frozen dataclass: stash via object.__setattr__.  The slot is
            # excluded from generated __eq__/__hash__ (not a field), so
            # caching never perturbs Deployment identity semantics.
            object.__setattr__(self, "_memory_model", cached)
        return cached

    # ------------------------------------------------------------------

    def with_kv_spec(self, kv_spec: KVCacheSpec) -> "Deployment":
        return replace(self, kv_spec=kv_spec)

    def with_plan(self, plan: ParallelismPlan) -> "Deployment":
        return replace(self, plan=plan)

    def with_quant(self, quant: QuantizationScheme) -> "Deployment":
        return replace(self, quant=quant)


def moe_expected_active_experts(config: ModelConfig, routed_tokens: int) -> float:
    """Expected distinct experts hit per layer by ``routed_tokens`` tokens.

    With top-k routing over n experts, a token misses a given expert with
    probability (1 - k/n); ``routed_tokens`` independent tokens leave
    ``n * (1 - k/n)^tokens`` experts cold.  At batch 1 Mixtral touches ~2
    experts per layer (the paper's "equivalent to a 14B model"); at batch
    16+ essentially all 8 are hot, so large-batch weight traffic grows.
    """
    if not config.is_moe:
        return 1.0
    if routed_tokens < 1:
        raise ValueError(f"routed_tokens must be >= 1, got {routed_tokens}")
    n = config.num_experts
    k = config.experts_per_token
    return n * (1.0 - (1.0 - k / n) ** routed_tokens)


def step_weight_bytes(dep: Deployment, routed_tokens: int) -> float:
    """Weight bytes streamed from memory in one forward pass.

    Dense models stream every weight once.  MoE models stream attention
    weights plus the *expected active* experts only.
    """
    config = dep.model
    wbytes = dep.quant.weight_bytes_per_param()
    if not config.is_moe:
        return config.total_params * wbytes
    attn_and_norms = sum(
        config.attention_params_at(layer) + 2 * config.hidden_size
        for layer in range(config.num_layers)
    )
    active_experts = moe_expected_active_experts(config, routed_tokens)
    expert_params = (
        config.num_layers * active_experts * config.ffn_params_per_expert
    )
    other = config.embedding_params + config.hidden_size
    return (attn_and_norms + expert_params + other) * wbytes


def forward_flops(
    config: ModelConfig,
    new_tokens: int,
    mean_context: float,
    lm_head_tokens: int,
) -> float:
    """FLOPs of one forward pass over ``new_tokens`` across the batch."""
    total = 0.0
    for layer in range(config.num_layers):
        total += attention_linear_flops(config, layer, new_tokens)
        total += attention_context_flops(config, new_tokens, mean_context)
        total += ffn_flops(config, new_tokens)
    total += lm_head_flops(config, lm_head_tokens)
    return total


def _memory_leg_bandwidth(dep: Deployment, step_bytes: float) -> float:
    """Aggregate streaming bandwidth for this step's working set."""
    mem = dep.memory_model()
    return (
        mem.effective_stream_bandwidth(step_bytes)
        * dep.framework.bandwidth_quality
    )


def _roofline(
    dep: Deployment,
    flops: float,
    mem_parts: dict[str, float],
    gemm_rows: float,
    batch_size: int,
    comm_tokens: int,
    phase: str,
) -> LatencyBreakdown:
    """Assemble one forward pass's latency breakdown."""
    if phase not in ("prefill", "decode"):
        raise ValueError(f"phase must be 'prefill' or 'decode', got {phase!r}")
    spec = dep.hardware
    fw = dep.framework
    total_bytes = sum(mem_parts.values())

    kernel_quality = fw.effective_kernel_quality(gemm_rows)
    mfu = mfu_at_batch(spec, gemm_rows, kernel_quality)
    rate = dep.quant.compute_rate_flops(spec) * dep.num_devices
    t_compute = flops * dep.quant.compute_overhead(spec) / (rate * mfu)

    bandwidth = _memory_leg_bandwidth(dep, total_bytes)
    t_memory = total_bytes / bandwidth

    # Partial compute/memory overlap (ideal roofline at overlap=1).
    hi, lo = max(t_compute, t_memory), min(t_compute, t_memory)
    t_kernels = hi + (1.0 - fw.overlap) * lo

    # MoE expert dispatch runs at the framework's grouped-GEMM efficiency.
    if dep.model.is_moe:
        t_kernels /= fw.moe_efficiency

    # Decode microbatches are tiny, so engines split a step into at most
    # ~2 of them; prefill chunks pipeline deeply.
    microbatch_limit = 2 if phase == "decode" else 4 * max(1, dep.plan.pp)

    # Pipeline-parallel serialization (and llama.cpp's layer-split mode).
    if fw.multi_gpu_style is MultiGpuStyle.LAYER_SPLIT and dep.num_devices > 1:
        microbatches = min(batch_size, microbatch_limit)
        stages = dep.num_devices
        pf = (microbatches + stages - 1) / microbatches
    else:
        pf = pipeline_factor(dep.plan, batch_size, microbatch_limit)
    t_kernels *= pf

    # Expert-parallel load imbalance slows the compute path too: hot
    # experts queue on their device while cold ones idle (Section IV-C3).
    if dep.plan.ep > 1 and dep.model.is_moe:
        t_kernels *= 1.0 + 0.15 * (1.0 - 1.0 / dep.plan.ep)

    comm = comm_costs_per_forward(
        dep.model, spec, fw, dep.plan, comm_tokens, dep.quant.activation_precision
    )
    # Per-step sampling over the logit vector, once per sequence.
    sampling = (
        dep.model.vocab_size
        * batch_size
        * fw.sampling_ns_per_vocab_token
        * 1e-9
    )
    overhead = (
        dep.model.num_layers * spec.layer_overhead_s
        + spec.step_overhead_s * fw.host_overhead_factor
        + fw.host_step_latency_s
        + sampling
    )

    penalty = saturation_penalty(spec, batch_size)
    total = (t_kernels + comm.total_s + overhead) * penalty

    scale = total_bytes if total_bytes > 0 else 1.0
    mem_time = {k: v / scale * t_memory for k, v in mem_parts.items()}
    return LatencyBreakdown(
        compute_s=t_compute,
        weight_memory_s=mem_time.get("weights", 0.0),
        kv_memory_s=mem_time.get("kv_read", 0.0) + mem_time.get("kv_write", 0.0),
        activation_memory_s=mem_time.get("activations", 0.0),
        communication_s=comm.total_s,
        overhead_s=overhead,
        total_s=total,
    )


def prefill_breakdown(
    dep: Deployment, batch_size: int, input_tokens: int
) -> LatencyBreakdown:
    """Latency of prefilling ``batch_size`` prompts of ``input_tokens``.

    Causal attention means the t-th prompt token attends ~t/2 positions on
    average.  Only the final position's logits are needed, so the LM head
    runs once per sequence.  The per-request pipeline-setup cost (SN40L) is
    charged here, once per batch admission.
    """
    if batch_size < 1 or input_tokens < 1:
        raise ValueError("batch_size and input_tokens must be >= 1")
    config = dep.model
    tokens = batch_size * input_tokens
    mean_context = (input_tokens + 1) / 2.0

    flops = forward_flops(config, tokens, mean_context, lm_head_tokens=batch_size)
    kv_write = tokens * kv_bytes_per_token(config, dep.kv_spec.precision)
    mem_parts = {
        "weights": step_weight_bytes(dep, tokens),
        "kv_write": kv_write if dep.kv_spec.enabled else 0.0,
        "activations": tokens
        * activation_bytes_per_token(config, dep.quant.activation_precision),
    }
    breakdown = _roofline(
        dep,
        flops,
        mem_parts,
        gemm_rows=float(tokens),
        batch_size=batch_size,
        comm_tokens=tokens,
        phase="prefill",
    )
    if dep.hardware.request_setup_s > 0.0:
        setup = dep.hardware.request_setup_s
        breakdown = LatencyBreakdown(
            compute_s=breakdown.compute_s,
            weight_memory_s=breakdown.weight_memory_s,
            kv_memory_s=breakdown.kv_memory_s,
            activation_memory_s=breakdown.activation_memory_s,
            communication_s=breakdown.communication_s,
            overhead_s=breakdown.overhead_s + setup,
            total_s=breakdown.total_s + setup,
        )
    return breakdown


def decode_step_breakdown(
    dep: Deployment, batch_size: int, context_length: int
) -> LatencyBreakdown:
    """Latency of one decode iteration: one new token per sequence.

    With the KV cache enabled, each sequence reads its whole cached context
    (scaled by the framework's GQA awareness and the paged-block overhead)
    and writes one token.  With the cache *disabled* (Fig. 2a) the step
    degenerates to a full re-prefill of the entire context.
    """
    if batch_size < 1 or context_length < 1:
        raise ValueError("batch_size and context_length must be >= 1")
    config = dep.model

    if not dep.kv_spec.enabled:
        # Recompute regime: every step reprocesses the full context.
        tokens = batch_size * context_length
        mean_context = (context_length + 1) / 2.0
        flops = forward_flops(
            config, tokens, mean_context, lm_head_tokens=batch_size
        )
        mem_parts = {
            "weights": step_weight_bytes(dep, tokens),
            "activations": tokens
            * activation_bytes_per_token(config, dep.quant.activation_precision),
        }
        return _roofline(
            dep,
            flops,
            mem_parts,
            gemm_rows=float(tokens),
            batch_size=batch_size,
            comm_tokens=tokens,
            phase="decode",
        )

    tokens = batch_size
    flops = forward_flops(
        config, tokens, float(context_length), lm_head_tokens=tokens
    )
    kv_tok = kv_bytes_per_token(config, dep.kv_spec.precision)
    kv_read = (
        batch_size
        * context_length
        * kv_tok
        * kv_time_multiplier(config, dep.framework, dep.kv_spec)
    )
    mem_parts = {
        "weights": step_weight_bytes(dep, tokens),
        "kv_read": kv_read,
        "kv_write": tokens * kv_tok,
        "activations": tokens
        * activation_bytes_per_token(config, dep.quant.activation_precision),
    }
    return _roofline(
        dep,
        flops,
        mem_parts,
        gemm_rows=float(tokens),
        batch_size=batch_size,
        comm_tokens=tokens,
        phase="decode",
    )


def prefill_traffic(
    dep: Deployment, batch_size: int, input_tokens: int
) -> tuple[float, float]:
    """``(flops, bytes_moved)`` of one prefill pass.

    The same forward-pass FLOPs and modeled memory traffic that
    :func:`prefill_breakdown` prices (KV reads scaled by the framework's
    GQA/paging multiplier count as their *modeled* stream bytes), exposed
    for utilization accounting: MFU and MBU in the runtime profiler
    divide these by the hardware's peak rates.
    """
    if batch_size < 1 or input_tokens < 1:
        raise ValueError("batch_size and input_tokens must be >= 1")
    config = dep.model
    tokens = batch_size * input_tokens
    mean_context = (input_tokens + 1) / 2.0
    flops = forward_flops(config, tokens, mean_context, lm_head_tokens=batch_size)
    kv_write = (
        tokens * kv_bytes_per_token(config, dep.kv_spec.precision)
        if dep.kv_spec.enabled
        else 0.0
    )
    bytes_moved = (
        step_weight_bytes(dep, tokens)
        + kv_write
        + tokens * activation_bytes_per_token(config, dep.quant.activation_precision)
    )
    return flops, bytes_moved


def decode_step_traffic(
    dep: Deployment, batch_size: int, context_length: int
) -> tuple[float, float]:
    """``(flops, bytes_moved)`` of one decode iteration.

    Mirrors :func:`decode_step_breakdown`'s two regimes: with the KV
    cache on, the step streams weights, the (multiplier-scaled) cached
    context, one written token and activations; with it off, the step is
    a full re-prefill of the context.
    """
    if batch_size < 1 or context_length < 1:
        raise ValueError("batch_size and context_length must be >= 1")
    config = dep.model
    if not dep.kv_spec.enabled:
        tokens = batch_size * context_length
        mean_context = (context_length + 1) / 2.0
        flops = forward_flops(
            config, tokens, mean_context, lm_head_tokens=batch_size
        )
        bytes_moved = step_weight_bytes(dep, tokens) + tokens * (
            activation_bytes_per_token(config, dep.quant.activation_precision)
        )
        return flops, bytes_moved
    tokens = batch_size
    flops = forward_flops(
        config, tokens, float(context_length), lm_head_tokens=tokens
    )
    kv_tok = kv_bytes_per_token(config, dep.kv_spec.precision)
    kv_read = (
        batch_size
        * context_length
        * kv_tok
        * kv_time_multiplier(config, dep.framework, dep.kv_spec)
    )
    bytes_moved = (
        step_weight_bytes(dep, tokens)
        + kv_read
        + tokens * kv_tok
        + tokens * activation_bytes_per_token(config, dep.quant.activation_precision)
    )
    return flops, bytes_moved
