"""Automatic parallelism planning.

Fig. 5's conclusion — "TP is effective [within a node] due to more device
utilization and less communication overhead" — as an algorithm: enumerate
every valid (TP, PP, EP) decomposition for a device budget, score each with
the estimator, and return the ranking.  Useful both as a library feature
(deployment autotuning) and as a consistency check that the simulator's
preferences match the paper's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.request import GenerationConfig
from repro.frameworks.base import FrameworkProfile
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.perf.estimator import InferenceEstimator
from repro.perf.parallelism import ParallelismPlan
from repro.perf.phases import Deployment

__all__ = ["PlanScore", "enumerate_plans", "rank_plans", "best_plan"]


@dataclass(frozen=True)
class PlanScore:
    """One candidate plan and its predicted performance."""

    plan: ParallelismPlan
    throughput_tokens_per_s: float
    ttft_s: float
    oom: bool

    @property
    def feasible(self) -> bool:
        return not self.oom and self.throughput_tokens_per_s > 0

    def to_json_dict(self) -> dict[str, object]:
        """Deterministic JSON view (non-finite -> null).

        Mirrors the ``MetricsSnapshot`` conventions so optimizer
        artifacts embed plan rankings losslessly; the OOM sentinel
        ``ttft_s=inf`` serialises as ``null`` (the ``oom`` flag carries
        the information).
        """
        return {
            "plan": {"tp": self.plan.tp, "pp": self.plan.pp, "ep": self.plan.ep},
            "throughput_tokens_per_s": _json_num(self.throughput_tokens_per_s),
            "ttft_s": _json_num(self.ttft_s),
            "oom": self.oom,
        }

    @classmethod
    def from_json_dict(cls, payload: dict[str, object]) -> "PlanScore":
        plan = payload["plan"]
        return cls(
            plan=ParallelismPlan(
                tp=int(plan["tp"]),  # type: ignore[index]
                pp=int(plan["pp"]),  # type: ignore[index]
                ep=int(plan["ep"]),  # type: ignore[index]
            ),
            throughput_tokens_per_s=_from_json_num(
                payload["throughput_tokens_per_s"]
            ),
            ttft_s=_from_json_num(payload["ttft_s"]),
            oom=bool(payload["oom"]),
        )


def _json_num(value: float) -> float | None:
    """JSON-safe scalar (non-finite -> null), the snapshot convention."""
    value = float(value)
    return value if math.isfinite(value) else None


def _from_json_num(value: object) -> float:
    """Inverse of :func:`_json_num`; ``null`` loads back as NaN."""
    return float("nan") if value is None else float(value)  # type: ignore[arg-type]


def _divisors(n: int) -> list[int]:
    return [d for d in range(1, n + 1) if n % d == 0]


def enumerate_plans(
    model: ModelConfig, hardware: HardwareSpec, num_devices: int
) -> list[ParallelismPlan]:
    """All valid (tp, pp, ep) plans using exactly ``num_devices`` devices."""
    if not 1 <= num_devices <= hardware.devices_per_node:
        raise ValueError(
            f"num_devices must be in [1, {hardware.devices_per_node}]"
        )
    plans: list[ParallelismPlan] = []
    for tp in _divisors(num_devices):
        pp = num_devices // tp
        ep_options = [1]
        if model.is_moe:
            ep_options = [
                ep
                for ep in _divisors(num_devices)
                if ep <= model.num_experts
            ]
        for ep in ep_options:
            plan = ParallelismPlan(tp=tp, pp=pp, ep=ep)
            try:
                plan.validate_for(model, hardware)
            except ValueError:
                continue
            plans.append(plan)
    return plans


def rank_plans(
    model: ModelConfig,
    hardware: HardwareSpec,
    framework: FrameworkProfile,
    workload: GenerationConfig,
    num_devices: int,
) -> list[PlanScore]:
    """Score every valid plan, best throughput first.

    Each candidate deployment is scored through its shared
    :class:`~repro.perf.kernel.StepCostKernel` (the estimator's default),
    so re-ranking the same plans — e.g. across workloads in an autotuning
    sweep — reuses memoized step costs instead of rebuilding rooflines.
    """
    scores: list[PlanScore] = []
    for plan in enumerate_plans(model, hardware, num_devices):
        try:
            dep = Deployment(model, hardware, framework, plan=plan)
        except ValueError:
            continue
        metrics = InferenceEstimator(dep).estimate(workload)
        scores.append(
            PlanScore(
                plan=plan,
                throughput_tokens_per_s=metrics.throughput_tokens_per_s,
                ttft_s=metrics.ttft_s if not metrics.oom else float("inf"),
                oom=metrics.oom,
            )
        )
    scores.sort(key=lambda s: s.throughput_tokens_per_s, reverse=True)
    return scores


def best_plan(
    model: ModelConfig,
    hardware: HardwareSpec,
    framework: FrameworkProfile,
    workload: GenerationConfig,
    num_devices: int,
) -> PlanScore:
    """The throughput-optimal plan; raises if nothing is feasible."""
    ranking = rank_plans(model, hardware, framework, workload, num_devices)
    feasible = [s for s in ranking if s.feasible]
    if not feasible:
        raise RuntimeError(
            f"no feasible plan for {model.name} on {num_devices}x"
            f"{hardware.name} under {framework.name}"
        )
    return feasible[0]
