"""Analytical performance model: phases, parallelism, quantization, SD."""

from repro.perf.attention import (
    gqa_read_multiplier,
    kv_time_multiplier,
    paged_block_multiplier,
)
from repro.perf.estimator import CapacityReport, InferenceEstimator
from repro.perf.kernel import (
    DecodeCoeffs,
    DirectStepCost,
    StepCostKernel,
    SweepGrid,
    clear_kernel_cache,
    get_kernel,
)
from repro.perf.parallelism import (
    CommCosts,
    ParallelismPlan,
    comm_costs_per_forward,
    pipeline_factor,
)
from repro.perf.multinode import INFINIBAND_NDR, ClusterDeployment, ClusterEstimate
from repro.perf.planner import PlanScore, best_plan, enumerate_plans, rank_plans
from repro.perf.phases import (
    Deployment,
    decode_step_breakdown,
    forward_flops,
    moe_expected_active_experts,
    prefill_breakdown,
    step_weight_bytes,
)
from repro.perf.quantization import (
    FP8_SCHEME,
    FP16_SCHEME,
    INT8_SCHEME,
    QuantizationScheme,
)
from repro.perf.speculative import (
    SpeculativeConfig,
    acceptance_rate,
    expected_tokens_per_iteration,
    speculative_speedup,
)

__all__ = [
    "gqa_read_multiplier",
    "kv_time_multiplier",
    "paged_block_multiplier",
    "CapacityReport",
    "InferenceEstimator",
    "DecodeCoeffs",
    "DirectStepCost",
    "StepCostKernel",
    "SweepGrid",
    "clear_kernel_cache",
    "get_kernel",
    "CommCosts",
    "ParallelismPlan",
    "comm_costs_per_forward",
    "pipeline_factor",
    "INFINIBAND_NDR",
    "ClusterDeployment",
    "ClusterEstimate",
    "PlanScore",
    "best_plan",
    "enumerate_plans",
    "rank_plans",
    "Deployment",
    "decode_step_breakdown",
    "forward_flops",
    "moe_expected_active_experts",
    "prefill_breakdown",
    "step_weight_bytes",
    "FP8_SCHEME",
    "FP16_SCHEME",
    "INT8_SCHEME",
    "QuantizationScheme",
    "SpeculativeConfig",
    "acceptance_rate",
    "expected_tokens_per_iteration",
    "speculative_speedup",
]
