"""Attention-kernel cost modifiers: GQA awareness and paged-KV block size.

Two multiplicative effects on KV-cache read traffic/time:

* :func:`gqa_read_multiplier` — frameworks whose attention kernels do not
  exploit shared KV heads (llama.cpp, DeepSpeed-MII) effectively re-gather
  the K/V blocks per query-head group, so their GQA models lose (part of)
  the bandwidth advantage GQA exists to provide (Figs. 11/14/36).
* :func:`paged_block_multiplier` — PagedAttention fetches KV through a
  block table; tiny blocks mean more table lookups, worse coalescing and
  more partially-filled fetches.  The penalty decays with block size and is
  negligible from 16 up, reproducing Fig. 2b ("any KV cache block size
  >= 16 produces optimal throughput, while low block sizes hurt").
"""

from __future__ import annotations

from repro.frameworks.base import FrameworkProfile
from repro.models.config import ModelConfig
from repro.models.kvcache import KVCacheSpec

__all__ = ["gqa_read_multiplier", "paged_block_multiplier", "kv_time_multiplier"]

# PagedAttention kernels fetch KV at warp/cache-line granularity: blocks
# below _COALESCE_TOKENS leave lanes idle and fetch partially-used lines,
# inflating effective traffic by ~_COALESCE_TOKENS/block.  On top, each
# block costs one table lookup (the 1/block term).  Calibrated so block 16
# vs 8 gives the paper's 1.27x at batch 64 while sizes >= 16 are flat.
_COALESCE_TOKENS = 12.0


def gqa_read_multiplier(config: ModelConfig, framework: FrameworkProfile) -> float:
    """KV-read inflation for GQA models on GQA-oblivious kernels.

    The inflation is capped at the model's query-per-KV-head group size:
    a kernel can at worst degenerate to MHSA-style per-query-head reads.
    """
    if not config.uses_gqa:
        return 1.0
    group = config.num_attention_heads / config.num_kv_heads
    return min(framework.gqa_kv_penalty, group)


def paged_block_multiplier(kv_spec: KVCacheSpec) -> float:
    """KV-read inflation from paged block granularity (>= 1.0)."""
    if not kv_spec.paged:
        return 1.0
    coalescing = max(1.0, _COALESCE_TOKENS / kv_spec.block_size)
    table_lookup = 1.0 + 1.0 / kv_spec.block_size
    return coalescing * table_lookup


def kv_time_multiplier(
    config: ModelConfig, framework: FrameworkProfile, kv_spec: KVCacheSpec
) -> float:
    """Combined multiplier applied to KV-cache read traffic."""
    return gqa_read_multiplier(config, framework) * paged_block_multiplier(kv_spec)
