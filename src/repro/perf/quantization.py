"""Quantized-execution model (paper Section IV-B3, Fig. 3).

A :class:`QuantizationScheme` fixes the storage precision of weights and of
the KV cache.  Effects on the roofline:

* weight (and KV) *memory traffic* shrinks by the byte-width ratio on every
  platform — this is why INT8 helps even on A100, which has no FP8 engine;
* *compute rate* only improves where the hardware natively executes the
  format (FP8 on H100/GH200/MI300X); elsewhere weights are dequantized
  on the fly into 16-bit GEMMs, charged as a small compute overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.precision import Precision, precision_spec
from repro.frameworks.base import FrameworkProfile
from repro.hardware.spec import HardwareSpec

__all__ = ["QuantizationScheme", "FP16_SCHEME", "FP8_SCHEME", "INT8_SCHEME"]

# Extra compute charged when the GEMM must dequantize weights on the fly.
_DEQUANT_OVERHEAD = 1.08


@dataclass(frozen=True)
class QuantizationScheme:
    """Weight + KV-cache precision selection for a deployment."""

    weight_precision: Precision = Precision.FP16
    kv_precision: Precision = Precision.FP16
    activation_precision: Precision = Precision.FP16

    @property
    def label(self) -> str:
        if self.weight_precision == self.kv_precision == self.activation_precision:
            return str(self.weight_precision)
        return f"w{self.weight_precision}-kv{self.kv_precision}"

    def weight_bytes_per_param(self) -> float:
        return precision_spec(self.weight_precision).bytes_per_element

    def validate_for(
        self, spec: HardwareSpec, framework: FrameworkProfile
    ) -> None:
        """Reject schemes the software stack cannot run at all.

        Note: *hardware* lacking native support is fine (dequant path);
        the framework must merely implement the format.  The one hard
        hardware gate from the paper is FP8 on pre-Hopper GPUs: "the
        absence of FP8 support on A100 limits the framework's ability to
        leverage low precision" — FP8 *storage* requires FP8 tensor-core
        or conversion hardware, so we reject FP8 where unsupported.
        """
        for name, prec in (
            ("weight", self.weight_precision),
            ("kv", self.kv_precision),
        ):
            if not framework.supports_precision(prec):
                raise ValueError(
                    f"{framework.name} does not implement {prec} {name} precision"
                )
            if prec is Precision.FP8 and not spec.supports(Precision.FP8):
                raise ValueError(f"{spec.name} has no FP8 support (paper Fig. 3)")

    def compute_rate_flops(self, spec: HardwareSpec) -> float:
        """Per-device peak FLOP/s under this scheme."""
        return spec.peak_flops(self.activation_compute_precision(spec))

    def activation_compute_precision(self, spec: HardwareSpec) -> Precision:
        """Precision the GEMMs actually execute in on this hardware."""
        if spec.supports(self.weight_precision):
            return self.weight_precision
        return Precision.FP16

    def compute_overhead(self, spec: HardwareSpec) -> float:
        """Multiplier on compute time for on-the-fly dequantization."""
        w = precision_spec(self.weight_precision)
        if w.bytes_per_element >= 2.0:
            return 1.0
        if spec.supports(self.weight_precision):
            return 1.0
        return _DEQUANT_OVERHEAD


FP16_SCHEME = QuantizationScheme()
FP8_SCHEME = QuantizationScheme(
    weight_precision=Precision.FP8,
    kv_precision=Precision.FP8,
    activation_precision=Precision.FP8,
)
INT8_SCHEME = QuantizationScheme(
    weight_precision=Precision.INT8,
    kv_precision=Precision.FP16,
    activation_precision=Precision.FP16,
)
