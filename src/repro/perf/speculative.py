"""Speculative-decoding performance model (paper Section IV-B5, Fig. 4b).

A draft model proposes ``gamma`` tokens per iteration; the target model
verifies them in a single forward pass.  Expected tokens accepted per
iteration with per-token acceptance probability ``a`` is the truncated
geometric sum ``(1 - a^(gamma+1)) / (1 - a)`` (Leviathan et al.).

Two mechanisms make the paper's observed behaviour emerge:

* **acceptance decays with context length** — a 68M draft cannot track a
  long context, so the benefit "vanishes with an increase in sequence
  length";
* **MoE verification is expensive** — verifying ``gamma`` tokens routes
  each to its own experts, so the verify pass streams ~``gamma``x more
  expert weights than a single decode step (``moe_expected_active_experts``
  grows with tokens), which is why SD "improves the performance of only
  the 7B model" and not Mixtral-8x7B.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.request import GenerationConfig
from repro.models.config import ModelConfig
from repro.models.quality import estimate_loss
from repro.perf.phases import (
    Deployment,
    decode_step_breakdown,
    forward_flops,
    step_weight_bytes,
)

__all__ = [
    "SpeculativeConfig",
    "acceptance_rate",
    "expected_tokens_per_iteration",
    "speculative_speedup",
]

# Acceptance-model calibration: token-level agreement between draft and
# target decays with their quality gap and with context length.
_QUALITY_DECAY = 0.45
_CONTEXT_DECAY_TOKENS = 4096.0
_MAX_ACCEPTANCE = 0.95


@dataclass(frozen=True)
class SpeculativeConfig:
    """Draft-model setup: who drafts and how many tokens per iteration."""

    draft_model: ModelConfig
    gamma: int = 4  # draft tokens proposed per iteration

    def __post_init__(self) -> None:
        if self.gamma < 1:
            raise ValueError(f"gamma must be >= 1, got {self.gamma}")


def acceptance_rate(
    target: ModelConfig, draft: ModelConfig, context_length: int
) -> float:
    """Per-token probability the target accepts a draft token."""
    if context_length < 1:
        raise ValueError("context_length must be >= 1")
    gap = max(0.0, estimate_loss(draft) - estimate_loss(target))
    base = _MAX_ACCEPTANCE * math.exp(-_QUALITY_DECAY * gap)
    context_factor = math.exp(-context_length / _CONTEXT_DECAY_TOKENS)
    # Even at long context some easy tokens (punctuation, copying) accept.
    return max(0.05, base * (0.35 + 0.65 * context_factor))


def expected_tokens_per_iteration(a: float, gamma: int) -> float:
    """Expected tokens produced per draft-verify iteration (>= 1)."""
    if not 0.0 <= a < 1.0:
        if a == 1.0:
            return float(gamma + 1)
        raise ValueError(f"acceptance must be in [0, 1], got {a}")
    return (1.0 - a ** (gamma + 1)) / (1.0 - a)


def _verify_step_seconds(
    dep: Deployment, batch_size: int, context_length: int, gamma: int
) -> float:
    """Target forward over ``gamma + 1`` positions per sequence.

    Approximated by scaling a decode step's compute/weight legs: the KV
    read happens once, but the token-parallel work (GEMMs, expert weight
    traffic for MoE) covers ``gamma + 1`` positions.
    """
    base = decode_step_breakdown(dep, batch_size, context_length)
    tokens = batch_size * (gamma + 1)
    # Recompute the token-scaled legs.
    flops_scale = (
        forward_flops(dep.model, tokens, float(context_length), tokens)
        / forward_flops(dep.model, batch_size, float(context_length), batch_size)
    )
    weight_scale = step_weight_bytes(dep, tokens) / step_weight_bytes(
        dep, batch_size
    )
    verify = (
        base.compute_s * flops_scale
        + base.weight_memory_s * weight_scale
        + base.kv_memory_s
        + base.activation_memory_s * (gamma + 1)
        + base.communication_s
        + base.overhead_s
    )
    return verify


def speculative_speedup(
    target_dep: Deployment,
    spec: SpeculativeConfig,
    config: GenerationConfig,
) -> float:
    """Decode-phase speedup of speculative decoding over plain decoding.

    Values > 1 mean SD helps.  Fig. 4b's pattern: gains for LLaMA-2-7B at
    short sequences, shrinking with length; no gain for Mixtral-8x7B.
    """
    if not target_dep.framework.supports_speculative_decoding:
        raise ValueError(
            f"{target_dep.framework.name} does not implement speculative decoding"
        )
    batch = config.batch_size
    mean_ctx = config.input_tokens + (config.output_tokens + 1) // 2
    draft_dep = Deployment(
        model=spec.draft_model,
        hardware=target_dep.hardware,
        framework=target_dep.framework,
        plan=target_dep.plan,
        quant=target_dep.quant,
        kv_spec=target_dep.kv_spec,
    )

    t_target = decode_step_breakdown(target_dep, batch, mean_ctx).total_s
    t_draft = decode_step_breakdown(draft_dep, batch, mean_ctx).total_s
    t_verify = _verify_step_seconds(target_dep, batch, mean_ctx, spec.gamma)

    a = acceptance_rate(target_dep.model, spec.draft_model, mean_ctx)
    tokens_per_iter = expected_tokens_per_iteration(a, spec.gamma)
    iteration = spec.gamma * t_draft + t_verify
    return tokens_per_iter * t_target / iteration
