"""End-to-end inference estimation: the closed-form fast path.

:class:`InferenceEstimator` turns a :class:`~repro.perf.phases.Deployment`
plus a workload (:class:`~repro.core.request.GenerationConfig`) into the
paper's metrics (TTFT, ITL, throughput, power).  It layers on top of the
per-phase roofline:

* **memory-capacity feasibility** — weights + KV + workspace must fit the
  device group; otherwise OOM (Gaudi2 at batch 32/64, llama.cpp 70B on
  A100, Fig. 32);
* **concurrency waves** — when the nominal batch's KV does not fit, a
  continuous-batching scheduler keeps only ``C_max`` sequences resident and
  refills as they finish, so throughput saturates at ``C_max`` (the
  mechanism behind H100's 39x vs A100's 3x batch scaling on LLaMA-3-70B,
  Section V-1); static-batching frameworks run integer waves instead;
* **power integration** — utilization-weighted average over the prefill
  and decode phases.

The discrete-event engine (:mod:`repro.runtime.engine`) reproduces the same
quantities by simulation; tests cross-check the two.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import InferenceMetrics, LatencyBreakdown
from repro.core.request import GenerationConfig
from repro.hardware.power import PowerModel
from repro.models.kvcache import kv_bytes_per_token
from repro.perf.kernel import get_kernel
from repro.perf.phases import Deployment

__all__ = ["InferenceEstimator", "CapacityReport", "phase_utilization"]


def phase_utilization(breakdown: LatencyBreakdown, power_intensity: float = 1.0) -> float:
    """Roofline occupancy of a phase in [0, 1], for the power model.

    Compute-bound phases run near their compute fraction; memory-bound
    phases still draw substantial dynamic power (HBM + data movement),
    captured by the 0.70 weighting on the memory fraction.
    """
    if breakdown.total_s <= 0:
        return 0.0
    compute_frac = min(1.0, breakdown.compute_s / breakdown.total_s)
    memory = (
        breakdown.weight_memory_s
        + breakdown.kv_memory_s
        + breakdown.activation_memory_s
    )
    memory_frac = min(1.0, memory / breakdown.total_s)
    util = max(compute_frac, 0.70 * memory_frac) * power_intensity
    return min(1.0, max(0.05, util))


@dataclass(frozen=True)
class CapacityReport:
    """Memory-capacity accounting for one (deployment, workload) pair."""

    weight_bytes: float
    kv_allocated_per_sequence_bytes: float
    usable_bytes: float
    max_concurrency: int

    @property
    def weights_fit(self) -> bool:
        return self.weight_bytes <= self.usable_bytes

    def fits_batch(self, batch_size: int) -> bool:
        return self.weights_fit and batch_size <= self.max_concurrency


class InferenceEstimator:
    """Closed-form estimator for one deployment.

    ``kernel`` supplies the per-phase step costs; the default is the
    deployment's shared :class:`~repro.perf.kernel.StepCostKernel`, so
    repeated estimates (sweeps, peak search) reuse memoized coefficients.
    Pass :class:`~repro.perf.kernel.DirectStepCost` to force un-memoized
    ``phases.py`` evaluation.
    """

    def __init__(self, deployment: Deployment, kernel=None) -> None:
        self.deployment = deployment
        self.kernel = kernel if kernel is not None else get_kernel(deployment)
        # Pure functions of the frozen deployment/workload shape, cached
        # so per-estimate cost is dominated by the step model, not by
        # re-deriving constants (see docs/performance.md).
        self._weight_footprint: float | None = None
        self._capacity_by_ctx: dict[int, CapacityReport] = {}

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    def weight_footprint_bytes(self) -> float:
        """Resident runtime bytes: weights (MoE keeps *all* experts
        resident) inflated by the framework's buffer/workspace overhead.

        Pure function of the frozen deployment, computed once per
        estimator."""
        if self._weight_footprint is None:
            dep = self.deployment
            raw = dep.model.total_params * dep.quant.weight_bytes_per_param()
            self._weight_footprint = raw * dep.framework.memory_overhead_factor
        return self._weight_footprint

    def kv_allocated_per_sequence(self, config: GenerationConfig) -> float:
        """KV + workspace bytes reserved for one sequence at full length.

        Paged allocators reserve whole blocks up to the final context;
        contiguous allocators (llama.cpp, Gaudi2 ports, SambaFlow) reserve
        the full context up front.  The platform's workspace factor models
        per-sequence scratch (attention workspaces, static-shape padding).
        """
        dep = self.deployment
        final_ctx = config.total_tokens_per_sequence
        allocated_tokens = dep.kv_spec.allocated_tokens(final_ctx, final_ctx)
        kv = allocated_tokens * kv_bytes_per_token(dep.model, dep.kv_spec.precision)
        return kv * (1.0 + dep.hardware.workspace_overhead_factor)

    def capacity(self, config: GenerationConfig) -> CapacityReport:
        # Capacity depends on the workload only through the final context
        # length, so reports are cached per total-tokens value.
        final_ctx = config.total_tokens_per_sequence
        cached = self._capacity_by_ctx.get(final_ctx)
        if cached is not None:
            return cached
        dep = self.deployment
        mem = dep.memory_model()
        weights = self.weight_footprint_bytes()
        per_seq = self.kv_allocated_per_sequence(config)
        budget = mem.kv_budget_bytes(weights, 0.0)
        report = CapacityReport(
            weight_bytes=weights,
            kv_allocated_per_sequence_bytes=per_seq,
            usable_bytes=mem.usable_bytes,
            max_concurrency=int(budget // per_seq),
        )
        self._capacity_by_ctx[final_ctx] = report
        return report

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def _decode_total(
        self, batch_size: int, config: GenerationConfig
    ) -> tuple[LatencyBreakdown, LatencyBreakdown]:
        """(single representative step, whole decode phase) breakdowns.

        The per-step cost is affine in context length, so evaluating at the
        mean context and multiplying by the step count is exact.
        """
        steps = config.output_tokens - 1
        if steps == 0:
            zero = LatencyBreakdown()
            return zero, zero
        mean_ctx = config.input_tokens + (config.output_tokens + 1) / 2.0
        step = self.kernel.decode_step(batch_size, max(1, round(mean_ctx)))
        return step, step.scaled(float(steps))

    def estimate(self, config: GenerationConfig) -> InferenceMetrics:
        """Full metrics for a workload, including OOM and wave behaviour."""
        dep = self.deployment
        cap = self.capacity(config)
        if not cap.weights_fit or cap.max_concurrency < 1:
            return InferenceMetrics.out_of_memory(
                config.batch_size, config.input_tokens, config.output_tokens
            )

        batch = config.batch_size
        if batch <= cap.max_concurrency:
            effective = batch
            waves = 1.0
        elif dep.framework.continuous_batching:
            # The scheduler keeps C_max sequences resident and refills as
            # they finish; aggregate time scales by the (fractional) number
            # of refills.
            effective = cap.max_concurrency
            waves = batch / effective
        else:
            # Static batching cannot split a batch it cannot hold.
            return InferenceMetrics.out_of_memory(
                config.batch_size, config.input_tokens, config.output_tokens
            )

        prefill = self.kernel.prefill(effective, config.input_tokens)
        step, decode = self._decode_total(effective, config)
        e2e_one_wave = prefill.total_s + decode.total_s
        e2e = e2e_one_wave * waves

        power = self._average_power(prefill, decode)
        return InferenceMetrics(
            batch_size=batch,
            input_tokens=config.input_tokens,
            output_tokens=config.output_tokens,
            ttft_s=prefill.total_s,
            end_to_end_latency_s=e2e,
            average_power_w=power,
            prefill_breakdown=prefill,
            decode_breakdown=decode,
            effective_concurrency=float(effective),
        )

    def estimate_ttft(self, config: GenerationConfig) -> float:
        """TTFT per the paper's method: max output of one token."""
        one_token = GenerationConfig(config.input_tokens, 1, config.batch_size)
        return self.estimate(one_token).ttft_s

    def estimate_itl(self, config: GenerationConfig) -> float:
        return self.estimate(config).itl_s

    def throughput(self, config: GenerationConfig) -> float:
        """Eq. 2 throughput in tokens/s (0.0 on OOM)."""
        return self.estimate(config).throughput_tokens_per_s

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------

    def _phase_utilization(self, breakdown: LatencyBreakdown) -> float:
        """Roofline occupancy of a phase, for the power model."""
        return phase_utilization(
            breakdown, self.deployment.framework.power_intensity
        )

    def _average_power(
        self, prefill: LatencyBreakdown, decode: LatencyBreakdown
    ) -> float:
        model = PowerModel(self.deployment.hardware, self.deployment.num_devices)
        durations: list[float] = []
        utils: list[float] = []
        for phase in (prefill, decode):
            if phase.total_s > 0:
                durations.append(phase.total_s)
                utils.append(self._phase_utilization(phase))
        if not durations:
            return model.group_power_w(0.05)
        return model.average_power_w(durations, utils)
