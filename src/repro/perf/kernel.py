"""Affine step-cost kernel: memoized roofline coefficients + vectorized sweeps.

Every quantity the paper reports flows through ``prefill_breakdown`` /
``decode_step_breakdown`` (:mod:`repro.perf.phases`).  Those functions
rebuild the full roofline — per-layer FLOP loops, communication costs,
tiered-bandwidth walks — on every call, which dominates the cost of engine
runs, cluster simulations and figure sweeps.

The step model is *affine in context length* for a fixed (deployment,
batch): everything except the attention-context FLOPs and the KV read
stream is constant, and both of those scale linearly with ``ctx``.
:class:`StepCostKernel` exploits that twice:

* **scalar fast path** — :meth:`StepCostKernel.decode_step` lowers the
  decode roofline into :class:`DecodeCoeffs` (``cost(ctx) = base +
  per_ctx_token * ctx`` per batch size, built once and held in a bounded
  LRU) and evaluates it in O(1), mirroring ``_roofline``'s arithmetic
  operation-for-operation so results agree with the direct path to within
  floating-point reassociation (<= 1e-12 relative, enforced by
  ``tests/test_kernel.py``).  Prefill and the KV-disabled recompute regime
  are not affine in their token counts, so those calls are *memoized*
  direct evaluations — bit-identical by construction.
* **vectorized sweeps** — :meth:`StepCostKernel.evaluate_grid` replays the
  whole :meth:`~repro.perf.estimator.InferenceEstimator.estimate` pipeline
  (capacity, waves, prefill, decode, power) over a batch x input x output
  grid as numpy array operations, one pass for the entire grid.

Kernels are cached per (hashable, frozen) :class:`Deployment` via
:func:`get_kernel`, so the engine, estimator, sweeps and the cluster
simulator's replicas all share one coefficient store.  Cached state is
derived purely from the frozen deployment, so there is no invalidation
protocol: a different deployment is a different cache key.

:class:`DirectStepCost` adapts the un-memoized ``phases.py`` functions to
the same call surface; the benchmark harness (:mod:`repro.bench.perfbench`)
and the equivalence tests use it as the "before" path.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.metrics import LatencyBreakdown
from repro.core.precision import precision_spec
from repro.frameworks.base import MultiGpuStyle
from repro.hardware.roofline import mfu_at_batch, saturation_penalty
from repro.models.kvcache import kv_bytes_per_token
from repro.models.ops import (
    activation_bytes_per_token,
    attention_context_flops,
    attention_linear_flops,
    ffn_flops,
    lm_head_flops,
)
from repro.perf import parallelism
from repro.perf.attention import kv_time_multiplier
from repro.perf.phases import (
    Deployment,
    decode_step_breakdown,
    decode_step_traffic,
    forward_flops,
    prefill_breakdown,
    prefill_traffic,
    step_weight_bytes,
)

__all__ = [
    "DecodeCoeffs",
    "DirectStepCost",
    "StepCostKernel",
    "SweepGrid",
    "clear_kernel_cache",
    "get_kernel",
]

# Bounded cache sizes.  Coefficient sets are tiny (a dozen floats) and
# breakdowns are 7 floats, so these bounds are generous; they exist to keep
# long-lived processes (sweep services, capacity planners probing many
# workloads) from growing without bound.
_COEFFS_CACHE_SIZE = 256
_STEP_CACHE_SIZE = 8192
_PREFILL_CACHE_SIZE = 4096
_KERNEL_CACHE_SIZE = 64


@dataclass(frozen=True)
class DecodeCoeffs:
    """Affine decode-step coefficients for one (deployment, batch size).

    ``flops(ctx) = flops_base + flops_per_ctx * ctx`` and
    ``kv_read_bytes(ctx) = kv_read_per_ctx * ctx``; every other roofline
    input is constant in ``ctx`` and precomputed here.
    """

    batch_size: int
    flops_base: float
    flops_per_ctx: float
    weight_bytes: float
    kv_read_per_ctx: float
    kv_write_bytes: float
    activation_bytes: float
    compute_overhead: float
    rate_mfu: float  # (peak rate * devices) * mfu, the t_compute denominator
    bandwidth_quality: float
    overlap: float
    moe_divisor: float | None
    pipeline_factor: float
    ep_factor: float | None
    comm_total_s: float
    overhead_s: float
    penalty: float


@dataclass(frozen=True)
class SweepGrid:
    """Vectorized sweep results over a batch x input x output grid.

    All arrays have shape ``(len(batch_sizes), len(input_tokens),
    len(output_tokens))`` except ``max_concurrency`` which is per-workload
    ``(len(input_tokens), len(output_tokens))``.  OOM lanes carry the
    estimator's sentinel values (TTFT 0, e2e/ITL inf, throughput 0) and
    NaN power.
    """

    batch_sizes: tuple[int, ...]
    input_tokens: tuple[int, ...]
    output_tokens: tuple[int, ...]
    ttft_s: np.ndarray
    itl_s: np.ndarray
    end_to_end_s: np.ndarray
    throughput_tokens_per_s: np.ndarray
    average_power_w: np.ndarray
    effective_concurrency: np.ndarray
    oom: np.ndarray
    max_concurrency: np.ndarray

    def index(self, batch_size: int, inp: int, out: int) -> tuple[int, int, int]:
        return (
            self.batch_sizes.index(batch_size),
            self.input_tokens.index(inp),
            self.output_tokens.index(out),
        )

    def point(self, batch_size: int, inp: int, out: int) -> dict[str, float]:
        """One lane's metrics as plain floats."""
        b, i, o = self.index(batch_size, inp, out)
        return {
            "ttft_s": float(self.ttft_s[b, i, o]),
            "itl_s": float(self.itl_s[b, i, o]),
            "end_to_end_s": float(self.end_to_end_s[b, i, o]),
            "throughput_tokens_per_s": float(
                self.throughput_tokens_per_s[b, i, o]
            ),
            "average_power_w": float(self.average_power_w[b, i, o]),
            "oom": bool(self.oom[b, i, o]),
        }


class DirectStepCost:
    """Un-memoized pass-through to the ``phases.py`` step functions.

    Same call surface as :class:`StepCostKernel` for the scalar step costs,
    so engines, estimators and cluster replicas can be pointed at the
    direct path (benchmark baselines, equivalence tests) without branching.
    """

    def __init__(self, deployment: Deployment) -> None:
        self.deployment = deployment

    def prefill(self, batch_size: int, input_tokens: int) -> LatencyBreakdown:
        return prefill_breakdown(self.deployment, batch_size, input_tokens)

    def decode_step(
        self, batch_size: int, context_length: int
    ) -> LatencyBreakdown:
        return decode_step_breakdown(self.deployment, batch_size, context_length)

    def prefill_traffic(
        self, batch_size: int, input_tokens: int
    ) -> tuple[float, float]:
        return prefill_traffic(self.deployment, batch_size, input_tokens)

    def decode_step_traffic(
        self, batch_size: int, context_length: int
    ) -> tuple[float, float]:
        return decode_step_traffic(self.deployment, batch_size, context_length)


class _LruDict(OrderedDict):
    """Tiny bounded LRU used for every kernel-internal memo table."""

    def __init__(self, max_size: int) -> None:
        super().__init__()
        self.max_size = max_size

    def touch(self, key):  # noqa: ANN001 - heterogeneous keys
        value = self.get(key)
        if value is not None:
            self.move_to_end(key)
        return value

    def store(self, key, value):  # noqa: ANN001
        self[key] = value
        while len(self) > self.max_size:
            self.popitem(last=False)
        return value


class StepCostKernel:
    """Memoized, vectorizable step-cost evaluator for one deployment."""

    def __init__(self, deployment: Deployment) -> None:
        self.deployment = deployment
        dep = deployment
        config = dep.model
        spec = dep.hardware
        fw = dep.framework

        self._memory = dep.memory_model()
        self._tiers = self._memory._tiers()

        # Per-token FLOP units (reassociated from forward_flops; the scalar
        # affine path uses forward_flops directly for its base term).
        self._lin_flops_per_token = sum(
            attention_linear_flops(config, layer, 1)
            for layer in range(config.num_layers)
        ) + config.num_layers * ffn_flops(config, 1)
        self._ctx_flops_per_token = config.num_layers * attention_context_flops(
            config, 1, 1.0
        )
        self._head_flops_per_token = lm_head_flops(config, 1)

        self._act_bytes_per_token = activation_bytes_per_token(
            config, dep.quant.activation_precision
        )
        self._kv_bytes_per_token = kv_bytes_per_token(config, dep.kv_spec.precision)
        self._kv_read_multiplier = kv_time_multiplier(config, fw, dep.kv_spec)
        self._weight_bytes_per_param = dep.quant.weight_bytes_per_param()
        if config.is_moe:
            self._moe_attn_and_norms = sum(
                config.attention_params_at(layer) + 2 * config.hidden_size
                for layer in range(config.num_layers)
            )
            self._moe_other = config.embedding_params + config.hidden_size
            self._moe_miss_base = 1.0 - config.experts_per_token / config.num_experts
        # Capacity constants (mirroring InferenceEstimator).
        raw_weights = config.total_params * self._weight_bytes_per_param
        self.weight_footprint_bytes = raw_weights * fw.memory_overhead_factor
        self._workspace_factor = 1.0 + spec.workspace_overhead_factor

        self._coeffs: _LruDict = _LruDict(_COEFFS_CACHE_SIZE)
        self._decode_memo: _LruDict = _LruDict(_STEP_CACHE_SIZE)
        self._prefill_memo: _LruDict = _LruDict(_PREFILL_CACHE_SIZE)
        self._decode_traffic_memo: _LruDict = _LruDict(_STEP_CACHE_SIZE)
        self._prefill_traffic_memo: _LruDict = _LruDict(_PREFILL_CACHE_SIZE)

    # ------------------------------------------------------------------
    # Scalar fast path
    # ------------------------------------------------------------------

    def decode_coeffs(self, batch_size: int) -> DecodeCoeffs:
        """Affine coefficients for one batch size (bounded LRU)."""
        cached = self._coeffs.touch(batch_size)
        if cached is not None:
            return cached
        return self._coeffs.store(batch_size, self._build_decode_coeffs(batch_size))

    def _build_decode_coeffs(self, batch_size: int) -> DecodeCoeffs:
        dep = self.deployment
        config = dep.model
        spec = dep.hardware
        fw = dep.framework
        tokens = batch_size

        # forward_flops is affine in mean_context; evaluate the constant
        # part exactly (mean_context=0 contributes exact zeros) and take the
        # per-context slope from the attention-context term.
        flops_base = forward_flops(config, tokens, 0.0, lm_head_tokens=tokens)
        flops_per_ctx = config.num_layers * attention_context_flops(
            config, tokens, 1.0
        )

        kv_tok = self._kv_bytes_per_token
        kv_read_per_ctx = batch_size * kv_tok * self._kv_read_multiplier

        gemm_rows = float(tokens)
        kernel_quality = fw.effective_kernel_quality(gemm_rows)
        mfu = mfu_at_batch(spec, gemm_rows, kernel_quality)
        rate = dep.quant.compute_rate_flops(spec) * dep.num_devices

        # Decode microbatch limit is 2 (see phases._roofline).
        if fw.multi_gpu_style is MultiGpuStyle.LAYER_SPLIT and dep.num_devices > 1:
            microbatches = min(batch_size, 2)
            stages = dep.num_devices
            pf = (microbatches + stages - 1) / microbatches
        else:
            pf = parallelism.pipeline_factor(dep.plan, batch_size, 2)

        ep_factor = None
        if dep.plan.ep > 1 and config.is_moe:
            ep_factor = 1.0 + 0.15 * (1.0 - 1.0 / dep.plan.ep)

        comm = parallelism.comm_costs_per_forward(
            config, spec, fw, dep.plan, tokens, dep.quant.activation_precision
        )
        sampling = (
            config.vocab_size * batch_size * fw.sampling_ns_per_vocab_token * 1e-9
        )
        overhead = (
            config.num_layers * spec.layer_overhead_s
            + spec.step_overhead_s * fw.host_overhead_factor
            + fw.host_step_latency_s
            + sampling
        )

        return DecodeCoeffs(
            batch_size=batch_size,
            flops_base=flops_base,
            flops_per_ctx=flops_per_ctx,
            weight_bytes=step_weight_bytes(dep, tokens),
            kv_read_per_ctx=kv_read_per_ctx,
            kv_write_bytes=tokens * kv_tok,
            activation_bytes=tokens * self._act_bytes_per_token,
            compute_overhead=dep.quant.compute_overhead(spec),
            rate_mfu=rate * mfu,
            bandwidth_quality=fw.bandwidth_quality,
            overlap=fw.overlap,
            moe_divisor=fw.moe_efficiency if config.is_moe else None,
            pipeline_factor=pf,
            ep_factor=ep_factor,
            comm_total_s=comm.total_s,
            overhead_s=overhead,
            penalty=saturation_penalty(spec, batch_size),
        )

    def _decode_affine(
        self, coeffs: DecodeCoeffs, context_length: int
    ) -> LatencyBreakdown:
        """Evaluate the decode roofline from coefficients.

        Mirrors ``phases._roofline`` operation-for-operation so results
        differ from the direct path only by floating-point reassociation
        in the affine terms (<= ~1e-15 relative).
        """
        flops = coeffs.flops_base + coeffs.flops_per_ctx * context_length
        kv_read = coeffs.kv_read_per_ctx * context_length
        total_bytes = (
            coeffs.weight_bytes + kv_read + coeffs.kv_write_bytes
        ) + coeffs.activation_bytes

        t_compute = flops * coeffs.compute_overhead / coeffs.rate_mfu
        bandwidth = (
            self._memory.effective_stream_bandwidth(total_bytes)
            * coeffs.bandwidth_quality
        )
        t_memory = total_bytes / bandwidth

        hi, lo = max(t_compute, t_memory), min(t_compute, t_memory)
        t_kernels = hi + (1.0 - coeffs.overlap) * lo
        if coeffs.moe_divisor is not None:
            t_kernels /= coeffs.moe_divisor
        t_kernels *= coeffs.pipeline_factor
        if coeffs.ep_factor is not None:
            t_kernels *= coeffs.ep_factor

        total = (t_kernels + coeffs.comm_total_s + coeffs.overhead_s) * coeffs.penalty

        return LatencyBreakdown(
            compute_s=t_compute,
            weight_memory_s=coeffs.weight_bytes / total_bytes * t_memory,
            kv_memory_s=kv_read / total_bytes * t_memory
            + coeffs.kv_write_bytes / total_bytes * t_memory,
            activation_memory_s=coeffs.activation_bytes / total_bytes * t_memory,
            communication_s=coeffs.comm_total_s,
            overhead_s=coeffs.overhead_s,
            total_s=total,
        )

    def decode_step(
        self, batch_size: int, context_length: int
    ) -> LatencyBreakdown:
        """One decode iteration's breakdown (affine fast path, memoized)."""
        key = (batch_size, context_length)
        cached = self._decode_memo.touch(key)
        if cached is not None:
            return cached
        if not self.deployment.kv_spec.enabled:
            # Recompute regime: the step is a re-prefill of the whole
            # context — quadratic in ctx, not affine.  Memoized direct call.
            breakdown = decode_step_breakdown(
                self.deployment, batch_size, context_length
            )
        else:
            if batch_size < 1 or context_length < 1:
                raise ValueError("batch_size and context_length must be >= 1")
            breakdown = self._decode_affine(
                self.decode_coeffs(batch_size), context_length
            )
        return self._decode_memo.store(key, breakdown)

    def prefill(self, batch_size: int, input_tokens: int) -> LatencyBreakdown:
        """Prefill breakdown (memoized direct call — bit-identical).

        Prefill cost is quadratic in the prompt length (causal attention)
        and its gemm_rows/comm tokens scale with ``batch * input``, so
        there is no affine lowering; memoization still collapses the
        engine's chunked-prefill loops and repeated admissions.
        """
        key = (batch_size, input_tokens)
        cached = self._prefill_memo.touch(key)
        if cached is not None:
            return cached
        return self._prefill_memo.store(
            key, prefill_breakdown(self.deployment, batch_size, input_tokens)
        )

    def decode_step_traffic(
        self, batch_size: int, context_length: int
    ) -> tuple[float, float]:
        """``(flops, bytes_moved)`` of one decode iteration.

        KV-cache-enabled steps evaluate the affine lowering straight from
        :class:`DecodeCoeffs` (the traffic terms are exactly the
        coefficients the breakdown path already prices); the recompute
        regime falls back to the direct function.  Memoized either way so
        the profiler's per-step accounting stays O(1).
        """
        key = (batch_size, context_length)
        cached = self._decode_traffic_memo.touch(key)
        if cached is not None:
            return cached
        if not self.deployment.kv_spec.enabled:
            traffic = decode_step_traffic(
                self.deployment, batch_size, context_length
            )
        else:
            if batch_size < 1 or context_length < 1:
                raise ValueError("batch_size and context_length must be >= 1")
            coeffs = self.decode_coeffs(batch_size)
            flops = coeffs.flops_base + coeffs.flops_per_ctx * context_length
            bytes_moved = (
                coeffs.weight_bytes
                + coeffs.kv_read_per_ctx * context_length
                + coeffs.kv_write_bytes
            ) + coeffs.activation_bytes
            traffic = (flops, bytes_moved)
        return self._decode_traffic_memo.store(key, traffic)

    def prefill_traffic(
        self, batch_size: int, input_tokens: int
    ) -> tuple[float, float]:
        """``(flops, bytes_moved)`` of one prefill pass (memoized direct)."""
        key = (batch_size, input_tokens)
        cached = self._prefill_traffic_memo.touch(key)
        if cached is not None:
            return cached
        return self._prefill_traffic_memo.store(
            key, prefill_traffic(self.deployment, batch_size, input_tokens)
        )

    # ------------------------------------------------------------------
    # Vectorized sweep grid
    # ------------------------------------------------------------------

    def evaluate_grid(
        self,
        batch_sizes,
        input_tokens,
        output_tokens,
    ) -> SweepGrid:
        """Evaluate the whole batch x input x output grid in one pass.

        Replays :meth:`InferenceEstimator.estimate` (capacity check,
        concurrency waves, prefill + decode rooflines, power integration)
        as vectorized numpy operations; per-lane results match the scalar
        estimator to <= 1e-12 relative (enforced by tests).
        """
        batch_sizes = tuple(int(b) for b in batch_sizes)
        input_tokens = tuple(int(i) for i in input_tokens)
        output_tokens = tuple(int(o) for o in output_tokens)
        if not batch_sizes or not input_tokens or not output_tokens:
            raise ValueError("evaluate_grid needs non-empty axes")
        if min(batch_sizes) < 1 or min(input_tokens) < 1 or min(output_tokens) < 1:
            raise ValueError("batch sizes and token counts must be >= 1")

        dep = self.deployment
        spec = dep.hardware
        fw = dep.framework

        nb, ni, no = len(batch_sizes), len(input_tokens), len(output_tokens)
        B = np.asarray(batch_sizes, dtype=float).reshape(nb, 1, 1)
        inp = np.asarray(input_tokens, dtype=float).reshape(1, ni, 1)
        out = np.asarray(output_tokens, dtype=float).reshape(1, 1, no)

        # --- capacity (Python-float loop for exact // parity) ----------
        budget = self._memory.kv_budget_bytes(self.weight_footprint_bytes, 0.0)
        weights_fit = self.weight_footprint_bytes <= self._memory.usable_bytes
        cmax = np.empty((ni, no), dtype=float)
        for i, itok in enumerate(input_tokens):
            for j, otok in enumerate(output_tokens):
                final = itok + otok
                allocated = dep.kv_spec.allocated_tokens(final, final)
                per_seq = allocated * self._kv_bytes_per_token * self._workspace_factor
                cmax[i, j] = float(int(budget // per_seq))

        oom = np.zeros((nb, ni, no), dtype=bool)
        if not weights_fit:
            oom[:] = True
        oom |= np.broadcast_to(cmax < 1.0, (nb, ni, no))

        cmax3 = np.maximum(np.broadcast_to(cmax, (nb, ni, no)), 1.0)
        fits = B <= cmax3
        if fw.continuous_batching:
            effective = np.where(fits, B, cmax3)
            waves = np.where(fits, 1.0, B / effective)
        else:
            oom |= np.broadcast_to(~fits, (nb, ni, no))
            effective = np.where(fits, B, 1.0)
            waves = np.ones_like(effective)
        # Dummy-but-valid value on masked lanes keeps the math finite.
        effective = np.where(oom, 1.0, effective)

        # --- prefill ---------------------------------------------------
        p_tokens = effective * inp
        p_mean_ctx = (inp + 1.0) / 2.0
        p_weights = self._vector_weight_bytes(p_tokens)
        p_kv_write = (
            p_tokens * self._kv_bytes_per_token if dep.kv_spec.enabled else 0.0
        )
        p_act = p_tokens * self._act_bytes_per_token
        p_flops = (
            p_tokens * self._lin_flops_per_token
            + p_tokens * p_mean_ctx * self._ctx_flops_per_token
            + effective * self._head_flops_per_token
        )
        prefill = self._vector_roofline(
            flops=p_flops,
            weights=p_weights,
            kv_read=0.0,
            kv_write=p_kv_write,
            activations=p_act,
            gemm_rows=p_tokens,
            batch=effective,
            comm_tokens=p_tokens,
            phase="prefill",
        )
        if spec.request_setup_s > 0.0:
            prefill["overhead"] = prefill["overhead"] + spec.request_setup_s
            prefill["total"] = prefill["total"] + spec.request_setup_s

        # --- decode ----------------------------------------------------
        ctx = np.maximum(1.0, np.round(inp + (out + 1.0) / 2.0))
        ctx = np.broadcast_to(ctx, (nb, ni, no))
        if dep.kv_spec.enabled:
            d_tokens = effective
            d_weights = self._vector_weight_bytes(d_tokens)
            d_kv_read = (
                effective * ctx * self._kv_bytes_per_token
            ) * self._kv_read_multiplier
            d_kv_write = d_tokens * self._kv_bytes_per_token
            d_act = d_tokens * self._act_bytes_per_token
            d_flops = (
                d_tokens * self._lin_flops_per_token
                + d_tokens * ctx * self._ctx_flops_per_token
                + d_tokens * self._head_flops_per_token
            )
            d_gemm = d_tokens
        else:
            d_tokens = effective * ctx
            d_mean_ctx = (ctx + 1.0) / 2.0
            d_weights = self._vector_weight_bytes(d_tokens)
            d_kv_read = 0.0
            d_kv_write = 0.0
            d_act = d_tokens * self._act_bytes_per_token
            d_flops = (
                d_tokens * self._lin_flops_per_token
                + d_tokens * d_mean_ctx * self._ctx_flops_per_token
                + effective * self._head_flops_per_token
            )
            d_gemm = d_tokens
        step = self._vector_roofline(
            flops=d_flops,
            weights=d_weights,
            kv_read=d_kv_read,
            kv_write=d_kv_write,
            activations=d_act,
            gemm_rows=d_gemm,
            batch=effective,
            comm_tokens=d_tokens,
            phase="decode",
        )
        steps = np.broadcast_to(out - 1.0, (nb, ni, no))
        decode = {name: part * steps for name, part in step.items()}

        # --- metrics ---------------------------------------------------
        ttft = np.broadcast_to(prefill["total"], (nb, ni, no)).copy()
        e2e = (prefill["total"] + decode["total"]) * waves
        with np.errstate(divide="ignore", invalid="ignore"):
            itl = np.where(
                out > 1.0,
                (e2e - ttft) / (B * (out - 1.0)),
                0.0,
            )
        tput = B * (inp + out) / e2e
        power = self._vector_power(prefill, decode)

        # --- OOM sentinels (match InferenceMetrics.out_of_memory) ------
        ttft[oom] = 0.0
        e2e = np.where(oom, np.inf, e2e)
        itl = np.where(oom, np.inf, itl)
        tput = np.where(oom, 0.0, tput)
        power = np.where(oom, np.nan, power)
        effective_out = np.where(oom, 0.0, effective)

        return SweepGrid(
            batch_sizes=batch_sizes,
            input_tokens=input_tokens,
            output_tokens=output_tokens,
            ttft_s=ttft,
            itl_s=itl,
            end_to_end_s=e2e,
            throughput_tokens_per_s=tput,
            average_power_w=power,
            effective_concurrency=effective_out,
            oom=oom,
            max_concurrency=cmax.astype(int),
        )

    # ------------------------------------------------------------------
    # Vector helpers (each mirrors its scalar counterpart's arithmetic)
    # ------------------------------------------------------------------

    def _vector_weight_bytes(self, tokens: np.ndarray) -> np.ndarray | float:
        """step_weight_bytes over a token-count array."""
        config = self.deployment.model
        wbytes = self._weight_bytes_per_param
        if not config.is_moe:
            return config.total_params * wbytes
        active = config.num_experts * (
            1.0 - np.power(self._moe_miss_base, tokens)
        )
        expert_params = config.num_layers * active * config.ffn_params_per_expert
        return (self._moe_attn_and_norms + expert_params + self._moe_other) * wbytes

    def _vector_stream_bandwidth(self, working_set: np.ndarray) -> np.ndarray:
        """MemoryModel.effective_stream_bandwidth over a byte array."""
        num_devices = self._memory.num_devices
        per_device = working_set / num_devices
        remaining = per_device.copy()
        time = np.zeros_like(per_device)
        for tier in self._tiers:
            if tier.name in ("sram", "hbm"):
                portion = np.minimum(remaining, tier.capacity_bytes)
            else:  # ddr spill absorbs the rest
                portion = remaining
            time = time + portion / tier.bandwidth_bytes_s
            remaining = remaining - portion
        leftover = remaining > 0
        if np.any(leftover):
            time = time + np.where(
                leftover, remaining / self._tiers[-1].bandwidth_bytes_s, 0.0
            )
        return per_device / time * num_devices

    def _vector_roofline(
        self,
        *,
        flops,
        weights,
        kv_read,
        kv_write,
        activations,
        gemm_rows,
        batch,
        comm_tokens,
        phase: str,
    ) -> dict[str, np.ndarray]:
        """phases._roofline over arrays; returns bucket arrays."""
        dep = self.deployment
        config = dep.model
        spec = dep.hardware
        fw = dep.framework
        plan = dep.plan

        total_bytes = ((weights + kv_read) + kv_write) + activations

        bonus = (fw.large_batch_bonus * gemm_rows) / (gemm_rows + 4096.0)
        kernel_quality = np.minimum(1.2, fw.kernel_quality * (1.0 + bonus))
        curve = gemm_rows / (gemm_rows + spec.mfu_half_batch)
        mfu = np.minimum(1.0, spec.mfu_ceiling * kernel_quality) * curve
        rate = dep.quant.compute_rate_flops(spec) * dep.num_devices
        t_compute = flops * dep.quant.compute_overhead(spec) / (rate * mfu)

        bandwidth = self._vector_stream_bandwidth(total_bytes) * fw.bandwidth_quality
        t_memory = total_bytes / bandwidth

        hi = np.maximum(t_compute, t_memory)
        lo = np.minimum(t_compute, t_memory)
        t_kernels = hi + (1.0 - fw.overlap) * lo
        if config.is_moe:
            t_kernels = t_kernels / fw.moe_efficiency

        limit = 2 if phase == "decode" else 4 * max(1, plan.pp)
        if fw.multi_gpu_style is MultiGpuStyle.LAYER_SPLIT and dep.num_devices > 1:
            microbatches = np.minimum(batch, float(limit))
            stages = dep.num_devices
            pf = (microbatches + stages - 1) / microbatches
        elif plan.pp == 1:
            pf = 1.0
        else:
            microbatches = np.minimum(np.minimum(batch, float(plan.pp)), float(limit))
            pf = (microbatches + plan.pp - 1) / microbatches
        t_kernels = t_kernels * pf
        if plan.ep > 1 and config.is_moe:
            t_kernels = t_kernels * (1.0 + 0.15 * (1.0 - 1.0 / plan.ep))

        comm_total = self._vector_comm_total(comm_tokens)

        sampling = (
            config.vocab_size * batch * fw.sampling_ns_per_vocab_token * 1e-9
        )
        overhead = (
            config.num_layers * spec.layer_overhead_s
            + spec.step_overhead_s * fw.host_overhead_factor
            + fw.host_step_latency_s
            + sampling
        )

        if spec.saturation_batch is None:
            penalty = 1.0
        else:
            penalty = np.where(
                batch <= spec.saturation_batch,
                1.0,
                1.0 + spec.saturation_slope * (batch - spec.saturation_batch),
            )
        total = (t_kernels + comm_total + overhead) * penalty

        return {
            "compute": np.broadcast_to(t_compute, total.shape).copy(),
            "weight": weights / total_bytes * t_memory,
            "kv": kv_read / total_bytes * t_memory
            + kv_write / total_bytes * t_memory,
            "activation": activations / total_bytes * t_memory,
            "comm": np.broadcast_to(
                np.asarray(comm_total, dtype=float), total.shape
            ).copy(),
            "overhead": np.broadcast_to(overhead, total.shape).copy(),
            "total": total,
        }

    def _vector_comm_total(self, tokens) -> np.ndarray | float:
        """comm_costs_per_forward(...).total_s over a token-count array."""
        dep = self.deployment
        config = dep.model
        fw = dep.framework
        plan = dep.plan
        link = dep.hardware.interconnect
        factor = fw.comm_overhead_factor
        prec_bytes = precision_spec(dep.quant.activation_precision).bytes_per_element
        act_bytes = tokens * config.hidden_size * prec_bytes

        tp_time = 0.0
        if plan.tp > 1 and fw.multi_gpu_style is MultiGpuStyle.TENSOR_PARALLEL:
            volume = 2.0 * (plan.tp - 1) / plan.tp * act_bytes
            hops = 2 * (plan.tp - 1)
            per_layer = 2.0 * (
                volume / link.bandwidth_bytes_s + hops * link.latency_s
            )
            tp_time = per_layer * config.num_layers * factor

        pp_time = 0.0
        stage_count = plan.pp
        if fw.multi_gpu_style is MultiGpuStyle.LAYER_SPLIT:
            stage_count = plan.num_devices
        if stage_count > 1:
            p2p = act_bytes / link.bandwidth_bytes_s + link.latency_s
            pp_time = (stage_count - 1) * p2p * factor

        ep_time = 0.0
        if plan.ep > 1 and config.is_moe:
            volume = (plan.ep - 1) / plan.ep * act_bytes
            a2a = volume / link.bandwidth_bytes_s + (plan.ep - 1) * link.latency_s
            ep_time = (
                2.0
                * a2a
                * config.num_layers
                * parallelism._EP_IMBALANCE
                * factor
            )

        return tp_time + pp_time + ep_time

    def _vector_power(
        self, prefill: dict[str, np.ndarray], decode: dict[str, np.ndarray]
    ) -> np.ndarray:
        """InferenceEstimator._average_power over bucket arrays."""
        dep = self.deployment
        spec = dep.hardware
        intensity = dep.framework.power_intensity
        idle = spec.idle_power_w
        dynamic = spec.tdp_w - spec.idle_power_w
        n = dep.num_devices

        def utilization(parts: dict[str, np.ndarray]) -> np.ndarray:
            total = parts["total"]
            with np.errstate(divide="ignore", invalid="ignore"):
                compute_frac = np.minimum(1.0, parts["compute"] / total)
                memory = (parts["weight"] + parts["kv"]) + parts["activation"]
                memory_frac = np.minimum(1.0, memory / total)
            util = np.maximum(compute_frac, 0.70 * memory_frac) * intensity
            util = np.minimum(1.0, np.maximum(0.05, util))
            return np.where(total > 0, util, 0.0)

        def group_power(util: np.ndarray) -> np.ndarray:
            return n * (idle + dynamic * np.power(util, 0.70))

        p_total = prefill["total"]
        d_total = decode["total"]
        energy = p_total * group_power(utilization(prefill)) + np.where(
            d_total > 0, d_total * group_power(utilization(decode)), 0.0
        )
        return energy / (p_total + d_total)


# ----------------------------------------------------------------------
# Kernel registry: one kernel per frozen deployment, shared process-wide.
# ----------------------------------------------------------------------

_KERNEL_CACHE: OrderedDict[Deployment, StepCostKernel] = OrderedDict()


def get_kernel(deployment: Deployment) -> StepCostKernel:
    """Process-wide kernel for a deployment (bounded keyed cache).

    ``Deployment`` is frozen and hashable, so the key captures everything
    the coefficients depend on; equal deployments share one kernel — and
    thereby one coefficient/memo store — across engines, estimators,
    sweeps and cluster replicas.
    """
    kernel = _KERNEL_CACHE.get(deployment)
    if kernel is None:
        kernel = StepCostKernel(deployment)
        _KERNEL_CACHE[deployment] = kernel
    else:
        _KERNEL_CACHE.move_to_end(deployment)
    while len(_KERNEL_CACHE) > _KERNEL_CACHE_SIZE:
        _KERNEL_CACHE.popitem(last=False)
    return kernel


def clear_kernel_cache() -> None:
    """Drop every cached kernel (tests, long-lived processes)."""
    _KERNEL_CACHE.clear()
