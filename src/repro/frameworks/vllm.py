"""vLLM framework profile (paper Section V-2, Appendix C-2).

vLLM's signature is PagedAttention (paged KV cache, Fig. 2b) and continuous
batching, portable across Nvidia, AMD and Gaudi2 (Table III).  On Nvidia it
trails TensorRT-LLM's kernel quality slightly but supports the broadest
hardware range of any framework in the study.
"""

from __future__ import annotations

from repro.core.precision import Precision
from repro.frameworks.base import FrameworkProfile, MultiGpuStyle, register_framework

__all__ = ["VLLM"]

VLLM = register_framework(
    FrameworkProfile(
        name="vLLM",
        supported_hardware=frozenset(
            {"A100", "H100", "GH200", "MI250", "MI300X", "Gaudi2"}
        ),
        kernel_quality=0.85,
        bandwidth_quality=0.88,
        overlap=0.90,
        gqa_kv_penalty=1.0,  # PagedAttention kernels exploit shared KV heads
        paged_kv=True,
        kv_block_size=16,
        continuous_batching=True,
        chunked_prefill=True,
        multi_gpu_style=MultiGpuStyle.TENSOR_PARALLEL,
        comm_overhead_factor=1.1,
        host_overhead_factor=1.2,
        host_step_latency_s=2.0e-3,  # Python-side scheduler loop
        memory_overhead_factor=1.05,
        moe_efficiency=0.72,  # 2024-era fused-MoE kernels trail DeepSpeed
        supported_precisions=frozenset(
            {
                Precision.FP16,
                Precision.BF16,
                Precision.FP8,
                Precision.INT8,
                Precision.INT4,  # GPTQ / AWQ paths
            }
        ),
        power_intensity=0.85,  # draws less power than TRT-LLM (Fig. 16)
        supports_moe=True,
        supports_speculative_decoding=True,
        notes="PagedAttention, continuous batching, broadest hardware support",
    )
)
