"""TensorRT-LLM framework profile (paper Section V-1, Appendix C-1).

Nvidia's ahead-of-time compiled engine: layer fusion, kernel auto-tuning
and in-flight batching give it the best kernel quality on Nvidia GPUs
("TRT-LLM outperforms vLLM and DS-MII on Nvidia hardware", Section VI-1) at
the price of platform lock-in and higher power draw (Fig. 16).
"""

from __future__ import annotations

from repro.core.precision import Precision
from repro.frameworks.base import FrameworkProfile, MultiGpuStyle, register_framework

__all__ = ["TRT_LLM"]

TRT_LLM = register_framework(
    FrameworkProfile(
        name="TRT-LLM",
        supported_hardware=frozenset({"A100", "H100", "GH200"}),
        kernel_quality=1.0,
        bandwidth_quality=1.0,
        overlap=0.95,
        gqa_kv_penalty=1.0,  # "this operation is optimized well" (Section V-1)
        paged_kv=True,
        kv_block_size=64,
        continuous_batching=True,
        chunked_prefill=True,
        multi_gpu_style=MultiGpuStyle.TENSOR_PARALLEL,
        comm_overhead_factor=0.95,  # NCCL + fused custom all-reduce
        host_overhead_factor=0.8,  # C++ runtime
        host_step_latency_s=0.6e-3,
        memory_overhead_factor=1.08,  # compiled engine activation buffers
        moe_efficiency=0.95,
        supported_precisions=frozenset(
            {
                Precision.FP16,
                Precision.BF16,
                Precision.FP8,
                Precision.INT8,
                Precision.INT4,
            }
        ),
        power_intensity=1.0,  # drives the device hardest (Fig. 16)
        supports_moe=True,
        supports_speculative_decoding=True,
        notes="compiled engines, best Nvidia kernel quality, Nvidia-only",
    )
)
