"""SambaFlow profile: the SN40L's vendor stack (paper Table II / Section VI-3).

The SN40L is served only through SambaNova's own dataflow compiler.  Most of
its distinctive behaviour (kernel fusion, three-tier memory, per-request
pipeline setup) lives on the *hardware* spec; the framework profile encodes
the software side: excellent fusion quality, continuous batching, but a
limited model/batch envelope ("the current SN40L setup is limited to serving
only a few batch sizes and a fixed number of RDUs", Section VII-2).
"""

from __future__ import annotations

from repro.core.precision import Precision
from repro.frameworks.base import FrameworkProfile, MultiGpuStyle, register_framework

__all__ = ["SAMBAFLOW"]

SAMBAFLOW = register_framework(
    FrameworkProfile(
        name="SambaFlow",
        supported_hardware=frozenset({"SN40L"}),
        kernel_quality=1.0,
        bandwidth_quality=1.0,
        overlap=0.97,  # spatial dataflow pipelines overlap aggressively
        gqa_kv_penalty=1.0,
        paged_kv=False,  # static dataflow graphs, contiguous buffers
        continuous_batching=True,
        multi_gpu_style=MultiGpuStyle.TENSOR_PARALLEL,
        comm_overhead_factor=0.9,  # dedicated inter-RDU network
        host_overhead_factor=0.5,
        host_step_latency_s=0.2e-3,
        memory_overhead_factor=1.05,
        moe_efficiency=0.90,
        supported_precisions=frozenset(
            {Precision.FP32, Precision.BF16, Precision.INT8}
        ),
        power_intensity=0.9,
        supports_moe=True,
        supports_speculative_decoding=False,
        notes="vendor dataflow stack; fixed 8-RDU deployment in the paper",
    )
)
