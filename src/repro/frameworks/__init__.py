"""Inference-framework profiles: vLLM, TRT-LLM, DeepSpeed-MII, llama.cpp."""

from repro.frameworks.base import (
    FRAMEWORK_REGISTRY,
    FrameworkProfile,
    MultiGpuStyle,
    get_framework,
    list_frameworks,
    register_framework,
)
from repro.frameworks.dsmii import DS_MII
from repro.frameworks.llamacpp import LLAMA_CPP
from repro.frameworks.sambaflow import SAMBAFLOW
from repro.frameworks.support import (
    frameworks_for,
    hardware_for,
    support_matrix,
    supported_pairs,
)
from repro.frameworks.trtllm import TRT_LLM
from repro.frameworks.vllm import VLLM

__all__ = [
    "FRAMEWORK_REGISTRY",
    "FrameworkProfile",
    "MultiGpuStyle",
    "get_framework",
    "list_frameworks",
    "register_framework",
    "DS_MII",
    "LLAMA_CPP",
    "SAMBAFLOW",
    "TRT_LLM",
    "VLLM",
    "frameworks_for",
    "hardware_for",
    "support_matrix",
    "supported_pairs",
]
