"""DeepSpeed-MII framework profile (paper Section V-3, Appendix C-4).

DS-MII brings blocked KV caching, continuous batching and Dynamic SplitFuse.
Two behaviours from the paper define its profile:

* its attention kernels do **not** exploit GQA ("LLaMA-2-7B (MHSA) using
  DS-MII outperforms LLaMA-3-8B (GQA) ... contrary to the expectation",
  Fig. 11), modelled as a KV-read penalty on GQA models; and
* Dynamic SplitFuse pays off at big models / large batch / long sequences
  ("DS-MII outperforms vLLM for relatively large batch sizes and sequence
  lengths", Fig. 12), modelled as a large-batch kernel bonus.

Per Table III it runs on A100 and Gaudi2 in the paper's testbed.
"""

from __future__ import annotations

from repro.core.precision import Precision
from repro.frameworks.base import FrameworkProfile, MultiGpuStyle, register_framework

__all__ = ["DS_MII"]

DS_MII = register_framework(
    FrameworkProfile(
        name="DeepSpeed-MII",
        supported_hardware=frozenset({"A100", "Gaudi2"}),
        kernel_quality=0.80,
        bandwidth_quality=0.92,
        overlap=0.88,
        gqa_kv_penalty=3.0,  # GQA KV gathered per query-head group
        paged_kv=True,
        kv_block_size=64,  # blocked KV cache with coarser blocks
        continuous_batching=True,
        chunked_prefill=True,  # Dynamic SplitFuse
        multi_gpu_style=MultiGpuStyle.TENSOR_PARALLEL,
        comm_overhead_factor=1.0,
        host_overhead_factor=1.1,
        host_step_latency_s=2.5e-3,
        memory_overhead_factor=1.06,
        moe_efficiency=1.0,  # DeepSpeed-MoE heritage: mature expert kernels
        large_batch_bonus=0.22,  # Dynamic SplitFuse
        supported_precisions=frozenset(
            {Precision.FP16, Precision.BF16, Precision.INT8}  # ZeroQuant
        ),
        power_intensity=0.85,
        supports_moe=True,
        supports_speculative_decoding=False,
        notes="Dynamic SplitFuse; shines for big models at large batch",
    )
)
