"""Framework x hardware support matrix (paper Table III, extended).

Table III covers the four portable frameworks on five platforms; we extend
it with MI300X (Table II lists vLLM/llama.cpp/DS-MII for it) and the
SN40L's vendor-only SambaFlow so every platform in the study has at least
one serving path.
"""

from __future__ import annotations

from repro.frameworks.base import FRAMEWORK_REGISTRY, get_framework
from repro.hardware.zoo import HARDWARE_ZOO

__all__ = ["support_matrix", "supported_pairs", "frameworks_for", "hardware_for"]


def support_matrix() -> dict[str, dict[str, bool]]:
    """``{framework: {hardware: supported}}`` over all registered entries."""
    matrix: dict[str, dict[str, bool]] = {}
    for fw in FRAMEWORK_REGISTRY.values():
        matrix[fw.name] = {
            hw.name: fw.supports_hardware(hw.name) for hw in HARDWARE_ZOO.values()
        }
    return matrix


def supported_pairs() -> list[tuple[str, str]]:
    """All (framework, hardware) pairs that can run."""
    return [
        (fw_name, hw_name)
        for fw_name, row in support_matrix().items()
        for hw_name, ok in row.items()
        if ok
    ]


def frameworks_for(hardware_name: str) -> list[str]:
    """Frameworks that run on a platform (validates the platform name)."""
    if hardware_name.lower() not in HARDWARE_ZOO:
        raise KeyError(f"unknown hardware {hardware_name!r}")
    return [
        fw.name
        for fw in FRAMEWORK_REGISTRY.values()
        if fw.supports_hardware(hardware_name)
    ]


def hardware_for(framework_name: str) -> list[str]:
    """Platforms a framework runs on (validates the framework name)."""
    fw = get_framework(framework_name)
    return [hw.name for hw in HARDWARE_ZOO.values() if fw.supports_hardware(hw.name)]
