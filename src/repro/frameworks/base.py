"""Inference-framework profiles.

A :class:`FrameworkProfile` captures what distinguishes vLLM, TensorRT-LLM,
DeepSpeed-MII and llama.cpp in the paper's measurements: kernel quality
(fraction of the hardware's ceiling the framework's kernels reach), memory
management (paged vs contiguous KV), batching policy (continuous vs static),
attention-kernel GQA awareness, and multi-GPU execution style.

These are *behavioural profiles*, not reimplementations of the frameworks:
the serving engine (:mod:`repro.runtime.engine`) and the analytical
estimator (:mod:`repro.perf.estimator`) consume them to produce the
framework-specific performance the paper reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.core.precision import Precision

__all__ = [
    "MultiGpuStyle",
    "FrameworkProfile",
    "FRAMEWORK_REGISTRY",
    "register_framework",
    "get_framework",
    "list_frameworks",
]


class MultiGpuStyle(str, enum.Enum):
    """How a framework spreads a model over multiple devices.

    ``TENSOR_PARALLEL`` shards every GEMM and all-reduces activations
    (vLLM, TRT-LLM, DS-MII).  ``LAYER_SPLIT`` assigns whole layers to
    devices and runs them *serially* for a single batch — llama.cpp's
    default "split by layer" mode, which is why the paper observes only
    marginal gains from more GPUs (Fig. 13/14: "suffers from device
    scaling ... due to the inability to fully utilize parallelism").
    """

    TENSOR_PARALLEL = "tensor-parallel"
    LAYER_SPLIT = "layer-split"


@dataclass(frozen=True)
class FrameworkProfile:
    """Behavioural description of one inference framework."""

    name: str
    supported_hardware: frozenset[str]
    # Fraction of the hardware's MFU ceiling this framework's GEMM/attention
    # kernels reach (TRT-LLM ~1.0 on Nvidia; llama.cpp far below).
    kernel_quality: float = 1.0
    # Fraction of the hardware's achievable bandwidth the framework's
    # memory-bound kernels sustain.
    bandwidth_quality: float = 1.0
    # Compute/memory overlap quality (1 = ideal roofline max()).
    overlap: float = 0.92
    # Multiplier on KV-cache read traffic for GQA models.  1.0 = the kernels
    # fully exploit shared KV heads; >1 models frameworks whose attention
    # kernels replicate/gather KV per query-head group (llama.cpp, DS-MII —
    # the paper's "do not support model-wise optimizations well").
    gqa_kv_penalty: float = 1.0
    # KV allocation: paged (vLLM PagedAttention / TRT-LLM paged KV /
    # DS-MII blocked KV) vs contiguous max-length reservation.
    paged_kv: bool = True
    kv_block_size: int = 16
    # Scheduler: continuous (in-flight) batching vs static batches.
    continuous_batching: bool = True
    # Chunked prefill (vLLM's chunked prefill / DS-MII's Dynamic SplitFuse
    # / TRT-LLM's in-flight batching): long prompts are processed in
    # chunks interleaved with decode steps, so running streams do not
    # stall behind a new request's prefill.
    chunked_prefill: bool = False
    prefill_chunk_tokens: int = 2048
    multi_gpu_style: MultiGpuStyle = MultiGpuStyle.TENSOR_PARALLEL
    # Efficiency of the framework's collective implementation (multiplies
    # communication time; <1.0 is better than the plain ring model, >1.0
    # adds software overhead on top of it).
    comm_overhead_factor: float = 1.0
    # Extra kernel quality unlocked at very large batch x sequence work
    # (DS-MII's Dynamic SplitFuse, Section V-3).  Effective kernel quality
    # is ``kernel_quality * (1 + large_batch_bonus * tokens/(tokens+4096))``.
    large_batch_bonus: float = 0.0
    # Fixed scheduler/host overhead multiplier on the hardware step overhead.
    host_overhead_factor: float = 1.0
    # Absolute host-side latency added to every forward pass (Python
    # scheduler loops, sampling, detokenization).  Dominates nothing at
    # large batch but caps single-sequence decode rates, which is why
    # measured bs=1 throughput sits well below the bandwidth roofline.
    host_step_latency_s: float = 0.0
    # Memory overhead of the runtime itself (activation buffers, graph
    # workspaces, allocator slack) as a multiplier on resident weight bytes
    # in *capacity* accounting only.  llama.cpp's up-front context buffers
    # make it the heaviest; this is what excludes 70B-on-A100 for it
    # (Fig. 32) while vLLM squeezes in with a tiny KV budget.
    memory_overhead_factor: float = 1.05
    # Relative efficiency of the framework's MoE (grouped/fused expert)
    # kernels; 1.0 = as good as its dense path.  vLLM's 2024-era fused-MoE
    # kernels trailed DeepSpeed's, the mechanism behind DS-MII overtaking
    # vLLM on Mixtral at scale (Fig. 12).
    moe_efficiency: float = 1.0
    # Token-sampling cost in nanoseconds per vocabulary entry per sequence
    # per step.  GPU-side samplers make this negligible; llama.cpp samples
    # on the host over the full logit vector, so large-vocabulary models
    # (Qwen2-7B: 152K, LLaMA-3: 128K) pay heavily — the paper's "Qwen2-7B
    # ... has the least performance using llama.cpp" (Fig. 36) and the
    # Mistral-over-LLaMA-3 ordering under llama.cpp (Fig. 14).
    sampling_ns_per_vocab_token: float = 0.05
    # Weight/KV precisions the framework can execute.
    supported_precisions: frozenset[Precision] = frozenset(
        {Precision.FP16, Precision.BF16}
    )
    # How hard the framework drives the device; multiplies roofline
    # utilization in the power model (TRT-LLM draws more power, Fig. 16).
    power_intensity: float = 1.0
    supports_moe: bool = True
    supports_speculative_decoding: bool = False
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.supported_hardware:
            raise ValueError(f"{self.name}: must support at least one platform")
        if not 0 < self.kernel_quality <= 1.2:
            raise ValueError(f"{self.name}: kernel_quality out of range")
        if not 0 < self.bandwidth_quality <= 1.2:
            raise ValueError(f"{self.name}: bandwidth_quality out of range")
        if not 0 <= self.overlap <= 1:
            raise ValueError(f"{self.name}: overlap must be in [0, 1]")
        if self.gqa_kv_penalty < 1.0:
            raise ValueError(f"{self.name}: gqa_kv_penalty must be >= 1")
        if self.kv_block_size < 1:
            raise ValueError(f"{self.name}: kv_block_size must be >= 1")
        if self.prefill_chunk_tokens < 1:
            raise ValueError(f"{self.name}: prefill_chunk_tokens must be >= 1")
        if self.large_batch_bonus < 0:
            raise ValueError(f"{self.name}: large_batch_bonus must be >= 0")
        if self.comm_overhead_factor <= 0:
            raise ValueError(f"{self.name}: comm_overhead_factor must be > 0")
        if self.host_step_latency_s < 0:
            raise ValueError(f"{self.name}: host_step_latency_s must be >= 0")
        if self.memory_overhead_factor < 1.0:
            raise ValueError(f"{self.name}: memory_overhead_factor must be >= 1")
        if not 0 < self.moe_efficiency <= 1.0:
            raise ValueError(f"{self.name}: moe_efficiency must be in (0, 1]")
        if self.sampling_ns_per_vocab_token < 0:
            raise ValueError(
                f"{self.name}: sampling_ns_per_vocab_token must be >= 0"
            )

    # ------------------------------------------------------------------

    def supports_hardware(self, hardware_name: str) -> bool:
        return hardware_name.lower() in {h.lower() for h in self.supported_hardware}

    def supports_precision(self, precision: Precision | str) -> bool:
        if isinstance(precision, str):
            precision = Precision(precision.lower())
        if precision in self.supported_precisions:
            return True
        # FP16 and BF16 are interchangeable 16-bit formats for scheduling
        # purposes (SambaFlow serves BF16 where GPUs serve FP16).
        sixteen = {Precision.FP16, Precision.BF16}
        return precision in sixteen and bool(
            sixteen & self.supported_precisions
        )

    def effective_kernel_quality(self, step_tokens: float) -> float:
        """Kernel quality including the large-batch bonus."""
        if step_tokens <= 0:
            raise ValueError("step_tokens must be positive")
        bonus = self.large_batch_bonus * step_tokens / (step_tokens + 4096.0)
        return min(1.2, self.kernel_quality * (1.0 + bonus))

    def on_hardware(self, hardware_name: str) -> "FrameworkProfile":
        """Profile specialized to a platform, with documented overrides.

        On Gaudi2 the vLLM/DeepSpeed ports use static shapes with
        contiguous max-length KV reservations and static batch composition
        (optimum-habana), which is what drives the paper's Gaudi2 OOM
        observations — so ``paged_kv`` and ``continuous_batching`` are
        forced off there.
        """
        if not self.supports_hardware(hardware_name):
            raise ValueError(
                f"{self.name} does not support {hardware_name} (paper Table III)"
            )
        if hardware_name.lower() == "gaudi2" and (
            self.paged_kv or self.continuous_batching
        ):
            return replace(self, paged_kv=False, continuous_batching=False)
        return self


FRAMEWORK_REGISTRY: dict[str, FrameworkProfile] = {}


def register_framework(profile: FrameworkProfile) -> FrameworkProfile:
    key = profile.name.lower()
    if key in FRAMEWORK_REGISTRY:
        raise ValueError(f"framework {profile.name!r} already registered")
    FRAMEWORK_REGISTRY[key] = profile
    return profile


def get_framework(name: str) -> FrameworkProfile:
    """Case-insensitive registry lookup with a helpful error."""
    key = name.lower()
    if key not in FRAMEWORK_REGISTRY:
        known = ", ".join(sorted(FRAMEWORK_REGISTRY))
        raise KeyError(f"unknown framework {name!r}; known frameworks: {known}")
    return FRAMEWORK_REGISTRY[key]


def list_frameworks() -> list[str]:
    return [p.name for p in FRAMEWORK_REGISTRY.values()]
