"""llama.cpp framework profile (paper Section V-4, Appendix C-5).

llama.cpp is maximally portable but, per the paper, "suffers from device
scaling ... due to the inability to fully utilize parallelism and LLM
optimizations" and "does not leverage the full potential of Tensor Cores".
Its profile therefore has: low kernel quality, no continuous batching,
contiguous KV allocation, layer-split (not tensor-parallel) multi-GPU
execution, and a GQA KV penalty ("llama.cpp is unable to fully take the
advantage of Group Query Attention", Fig. 14/36).
"""

from __future__ import annotations

from repro.core.precision import Precision
from repro.frameworks.base import FrameworkProfile, MultiGpuStyle, register_framework

__all__ = ["LLAMA_CPP"]

LLAMA_CPP = register_framework(
    FrameworkProfile(
        name="llama.cpp",
        supported_hardware=frozenset({"A100", "H100", "GH200", "MI250", "MI300X"}),
        kernel_quality=0.38,
        bandwidth_quality=0.80,
        overlap=0.60,
        gqa_kv_penalty=4.0,  # degenerates fully to MHSA-style reads
        paged_kv=False,  # contiguous context buffer per sequence
        continuous_batching=False,  # static batches
        multi_gpu_style=MultiGpuStyle.LAYER_SPLIT,
        comm_overhead_factor=1.5,
        host_overhead_factor=2.0,
        host_step_latency_s=4.0e-3,
        memory_overhead_factor=1.15,  # up-front context/compute buffers
        moe_efficiency=0.60,
        sampling_ns_per_vocab_token=2.0,  # host-side sampling over full logits
        supported_precisions=frozenset(
            {Precision.FP16, Precision.BF16, Precision.INT8, Precision.INT4}  # GGUF
        ),
        power_intensity=0.65,  # underutilizes the device
        supports_moe=True,
        supports_speculative_decoding=True,
        notes="portable GGUF runtime; weak batch and multi-GPU scaling",
    )
)
