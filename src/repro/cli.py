"""Command-line interface: ``llm-inference-bench`` / ``python -m repro``.

Subcommands
-----------
list
    Registered models, hardware platforms, frameworks and experiments.
run EXPERIMENT [...]
    Run reproductions and print their tables plus headline comparisons.
point --model M --hardware H --framework F [--batch-size N] [...]
    One benchmark point with full metric output.
report [--output EXPERIMENTS.md]
    Run everything and regenerate the paper-vs-measured markdown.
dashboard [--output dashboard.html]
    Build the self-contained HTML dashboard.
trace --model M --hardware H --framework F [--batch-size N] [--rate R]
    Run one workload on the event engine with tracing enabled; write
    Chrome ``trace_event`` JSON (Perfetto-loadable) and print the
    flamegraph-style summary with TTFT/ITL percentiles.
profile --model M --hardware H --framework F [--batch-size N] [--rate R]
    Run one workload with the cost-attribution profiler: print the
    per-phase roofline breakdown with MFU/MBU/energy counters, write the
    deterministic profile JSON, and optionally a Perfetto trace whose
    counter tracks carry mfu/mbu/tokens_per_s/watts/joules_per_token
    (``--trace-output``).
cluster --model M --hardware H --framework F [--replicas N] [--router R]
    Simulate a multi-replica serving cluster behind a routing policy
    (optionally prefill/decode-disaggregated), or size the fleet for an
    SLO goodput target with ``--plan-target``.  ``--faults spec.json``
    injects a fault schedule and ``--autoscale POLICY`` scales the fleet
    mid-run; ``--result-output`` writes the deterministic result JSON
    the CI chaos job diffs across repeat runs.
optimize --models M,.. --hardware H,.. --frameworks F,.. [--objective O]
    Search the deployment cross product (models x hardware x frameworks
    x quantization x TP x batch) for the minimum cost-per-token or
    energy-per-token configuration meeting the SLO at a target request
    rate, and emit exact Pareto frontiers (cost-vs-SLO,
    energy-vs-latency, throughput-vs-perplexity).  ``--refine-top K``
    re-evaluates the best K deployments through the discrete-event
    capacity planner; ``--output`` writes the byte-deterministic
    ``OptimizationReport`` JSON the CI optimize job diffs.
experiment run|replay|compare|diff
    Cross-run statistics (``repro.experiments``): ``run`` executes a
    multi-seed replication from a spec JSON and writes a self-describing
    bundle; ``replay`` re-executes a bundle's spec+seeds and verifies the
    per-seed results byte-for-byte; ``compare`` tests two bundles
    metric-by-metric for significance (Welch / Mann-Whitney /
    paired-by-seed); ``diff`` compares two cost profiles (or profiled
    bundles, with significance) component-by-component.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.bench import (
    EXPERIMENTS,
    BenchmarkRunner,
    experiments_markdown,
    run_all,
    run_experiment,
)
from repro.core.request import GenerationConfig
from repro.frameworks.base import list_frameworks
from repro.hardware.zoo import list_hardware
from repro.models.zoo import list_models

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="llm-inference-bench",
        description="LLM-Inference-Bench reproduction (simulated accelerators)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list models, hardware, frameworks, experiments")

    run_p = sub.add_parser("run", help="run one or more experiments")
    run_p.add_argument("experiments", nargs="+", metavar="EXPERIMENT")
    run_p.add_argument(
        "--engine",
        action="store_true",
        help="use the discrete-event engine instead of the closed-form estimator",
    )
    run_p.add_argument(
        "--table", action="store_true", help="print the full sweep table too"
    )
    run_p.add_argument(
        "--metrics-output", default=None, metavar="PATH",
        help="write the experiments' tables and headline metrics as JSON",
    )
    run_p.add_argument(
        "--profile-output", default=None, metavar="PATH",
        help="write per-row static cost attribution (roofline shares) as JSON",
    )
    run_p.add_argument(
        "--telemetry-output", default=None, metavar="PATH",
        help="stream telemetry per engine point; write the snapshots as "
        "JSON (requires --engine)",
    )

    point_p = sub.add_parser("point", help="run a single benchmark point")
    point_p.add_argument("--model", required=True)
    point_p.add_argument("--hardware", required=True)
    point_p.add_argument("--framework", required=True)
    point_p.add_argument("--batch-size", type=int, default=1)
    point_p.add_argument("--input-tokens", type=int, default=1024)
    point_p.add_argument("--output-tokens", type=int, default=1024)
    point_p.add_argument("--engine", action="store_true")

    analyze_p = sub.add_parser(
        "analyze", help="bottleneck attribution for one configuration"
    )
    analyze_p.add_argument("--model", required=True)
    analyze_p.add_argument("--hardware", required=True)
    analyze_p.add_argument("--framework", required=True)
    analyze_p.add_argument("--batch-size", type=int, default=16)
    analyze_p.add_argument("--input-tokens", type=int, default=1024)
    analyze_p.add_argument("--output-tokens", type=int, default=1024)

    report_p = sub.add_parser("report", help="regenerate EXPERIMENTS.md content")
    report_p.add_argument("--output", default=None, help="write to file")

    dash_p = sub.add_parser("dashboard", help="build the HTML dashboard")
    dash_p.add_argument("--output", default="dashboard.html")

    export_p = sub.add_parser(
        "export", help="write per-experiment CSVs + index.json"
    )
    export_p.add_argument("--outdir", default="results")
    export_p.add_argument("--ids", nargs="*", default=None)

    validate_p = sub.add_parser(
        "validate", help="cross-check estimator vs event engine"
    )
    validate_p.add_argument("--points", type=int, default=20)
    validate_p.add_argument("--seed", type=int, default=0)

    trace_p = sub.add_parser(
        "trace", help="run a workload with tracing; write Chrome trace JSON"
    )
    trace_p.add_argument("--model", required=True)
    trace_p.add_argument("--hardware", required=True)
    trace_p.add_argument("--framework", required=True)
    trace_p.add_argument("--batch-size", type=int, default=8)
    trace_p.add_argument("--input-tokens", type=int, default=1024)
    trace_p.add_argument("--output-tokens", type=int, default=1024)
    trace_p.add_argument(
        "--rate",
        type=float,
        default=None,
        help="Poisson arrival rate (req/s); omit for the paper's fixed batch",
    )
    trace_p.add_argument(
        "--num-requests",
        type=int,
        default=None,
        help="request count for --rate workloads (default 4x batch size)",
    )
    trace_p.add_argument("--seed", type=int, default=0,
                         help="RNG seed for --rate arrival draws")
    trace_p.add_argument("--optimistic", action="store_true",
                         help="vLLM optimistic admission (preempt+recompute)")
    trace_p.add_argument("--output", default="trace.json",
                         help="Chrome trace_event JSON path (Perfetto-loadable)")
    trace_p.add_argument("--summary-output", default=None,
                         help="also write the text summary to this file")
    trace_p.add_argument("--timelines", type=int, default=8, metavar="N",
                         help="show the N slowest-TTFT request timelines")

    profile_p = sub.add_parser(
        "profile",
        help="run a workload with cost-attribution profiling; write profile JSON",
    )
    profile_p.add_argument("--model", required=True)
    profile_p.add_argument("--hardware", required=True)
    profile_p.add_argument("--framework", required=True)
    profile_p.add_argument("--batch-size", type=int, default=8)
    profile_p.add_argument("--input-tokens", type=int, default=1024)
    profile_p.add_argument("--output-tokens", type=int, default=1024)
    profile_p.add_argument(
        "--rate",
        type=float,
        default=None,
        help="Poisson arrival rate (req/s); omit for the paper's fixed batch",
    )
    profile_p.add_argument(
        "--num-requests",
        type=int,
        default=None,
        help="request count for --rate workloads (default 4x batch size)",
    )
    profile_p.add_argument("--seed", type=int, default=0,
                           help="RNG seed for --rate arrival draws")
    profile_p.add_argument("--optimistic", action="store_true",
                           help="vLLM optimistic admission (preempt+recompute)")
    profile_p.add_argument("--output", default="profile.json",
                           help="deterministic profile JSON path")
    profile_p.add_argument(
        "--trace-output", default=None, metavar="PATH",
        help="also write a Perfetto trace with mfu/mbu/power counter tracks",
    )
    profile_p.add_argument("--requests-shown", type=int, default=8, metavar="N",
                           help="show the N most expensive request profiles")

    from repro.cluster import list_routers

    cluster_p = sub.add_parser(
        "cluster", help="simulate a multi-replica serving cluster"
    )
    cluster_p.add_argument("--model", required=True)
    cluster_p.add_argument("--hardware", required=True)
    cluster_p.add_argument("--framework", required=True)
    cluster_p.add_argument("--replicas", type=int, default=4)
    cluster_p.add_argument("--router", default="least-outstanding",
                           choices=list_routers())
    cluster_p.add_argument("--rate", type=float, default=8.0,
                           help="offered Poisson arrival rate (req/s)")
    cluster_p.add_argument("--num-requests", type=int, default=64)
    cluster_p.add_argument("--mean-input-tokens", type=int, default=512)
    cluster_p.add_argument("--mean-output-tokens", type=int, default=256)
    cluster_p.add_argument("--max-concurrency", type=int, default=32)
    cluster_p.add_argument("--seed", type=int, default=0,
                           help="RNG seed for arrivals, lengths and routing")
    cluster_p.add_argument(
        "--prefill-replicas", type=int, default=0,
        help="dedicated prefill replicas (> 0 enables disaggregation)",
    )
    cluster_p.add_argument(
        "--shared-prefixes", type=int, default=0,
        help="use a shared-prefix workload with this many distinct prefixes",
    )
    cluster_p.add_argument("--prefix-tokens", type=int, default=1024,
                           help="prefix length for --shared-prefixes")
    cluster_p.add_argument("--unique-tokens", type=int, default=128,
                           help="per-request suffix for --shared-prefixes")
    cluster_p.add_argument(
        "--plan-target", type=float, default=None, metavar="RPS",
        help="size the fleet for this SLO goodput target instead",
    )
    cluster_p.add_argument("--max-replicas", type=int, default=16,
                           help="replica cap for --plan-target")
    cluster_p.add_argument(
        "--trace-output", default=None, metavar="PATH",
        help="trace the run; write per-replica Chrome trace JSON here",
    )

    from repro.control import list_autoscalers

    cluster_p.add_argument(
        "--faults", default=None, metavar="SPEC.JSON",
        help="inject the fault schedule from this JSON spec",
    )
    cluster_p.add_argument(
        "--autoscale", default=None, choices=list_autoscalers(),
        help="enable this autoscaling policy (scales --replicas up/down)",
    )
    cluster_p.add_argument(
        "--autoscale-max", type=int, default=16, metavar="N",
        help="replica ceiling for --autoscale",
    )
    cluster_p.add_argument(
        "--result-output", default=None, metavar="PATH",
        help="write the deterministic ClusterResult JSON here",
    )
    cluster_p.add_argument(
        "--metrics-output", default=None, metavar="PATH",
        help="write the fleet MetricsSnapshot as JSON",
    )
    cluster_p.add_argument(
        "--profile-output", default=None, metavar="PATH",
        help="profile the run; write the merged fleet ProfileReport JSON",
    )
    cluster_p.add_argument(
        "--telemetry-output", default=None, metavar="PATH",
        help="attach the streaming telemetry bus; write its series and "
        "burn-rate alert log as deterministic JSON",
    )

    scen_p = sub.add_parser(
        "scenario",
        help="production traffic scenarios: list, describe, run",
    )
    scen_sub = scen_p.add_subparsers(dest="verb", required=True)

    scen_sub.add_parser("list", help="list the built-in scenario catalog")

    scen_describe = scen_sub.add_parser(
        "describe", help="show one scenario's composition and a trace preview"
    )
    scen_describe.add_argument("name", help="scenario name (see `scenario list`)")
    scen_describe.add_argument("--seed", type=int, default=0,
                               help="seed for the trace preview")
    scen_describe.add_argument(
        "--trace-output", default=None, metavar="PATH",
        help="write the built request trace as deterministic JSON",
    )

    scen_run = scen_sub.add_parser(
        "run", help="run a scenario trace through a serving cluster"
    )
    scen_run.add_argument("name", help="scenario name (see `scenario list`)")
    scen_run.add_argument("--model", default="LLaMA-3-8B")
    scen_run.add_argument("--hardware", default="A100")
    scen_run.add_argument("--framework", default="vLLM")
    scen_run.add_argument("--replicas", type=int, default=4)
    scen_run.add_argument("--router", default="session-affinity",
                          choices=list_routers())
    scen_run.add_argument("--seed", type=int, default=0,
                          help="RNG seed for the trace and routing")
    scen_run.add_argument("--sessions", type=int, default=None, metavar="N",
                          help="override the scenario's session count")
    scen_run.add_argument("--max-concurrency", type=int, default=32)
    scen_run.add_argument("--prefix-cache-slots", type=int, default=8,
                          help="per-replica prefix/session KV LRU slots")
    scen_run.add_argument(
        "--result-output", default=None, metavar="PATH",
        help="write the deterministic ClusterResult JSON here",
    )
    scen_run.add_argument(
        "--telemetry-output", default=None, metavar="PATH",
        help="attach the streaming telemetry bus (per-tenant SLO lanes); "
        "write its series and alert log as deterministic JSON",
    )

    exp_p = sub.add_parser(
        "experiment",
        help="replicated experiments: run, replay, compare, profile-diff",
    )
    exp_sub = exp_p.add_subparsers(dest="verb", required=True)

    exp_run = exp_sub.add_parser(
        "run", help="run a multi-seed replication from a spec; write a bundle"
    )
    exp_run.add_argument("--spec", required=True, metavar="SPEC.JSON",
                         help="ExperimentSpec JSON (see docs/experiments.md)")
    exp_run.add_argument("--output", default="bundle.json", metavar="PATH",
                         help="experiment bundle JSON path")
    exp_run.add_argument("--confidence", type=float, default=0.95,
                         help="confidence level for metric intervals")
    exp_run.add_argument("--method", default="t", choices=("t", "bootstrap"),
                         help="confidence-interval method")

    exp_replay = exp_sub.add_parser(
        "replay",
        help="re-execute a bundle's spec+seeds; verify results byte-for-byte",
    )
    exp_replay.add_argument("--bundle", required=True, metavar="BUNDLE.JSON")
    exp_replay.add_argument("--output", default=None, metavar="PATH",
                            help="write the replayed bundle here")

    exp_compare = exp_sub.add_parser(
        "compare", help="A-vs-B significance tests over two bundles"
    )
    exp_compare.add_argument("--a", required=True, metavar="BUNDLE.JSON",
                             dest="bundle_a")
    exp_compare.add_argument("--b", required=True, metavar="BUNDLE.JSON",
                             dest="bundle_b")
    exp_compare.add_argument("--alpha", type=float, default=0.05,
                             help="significance level")
    exp_compare.add_argument(
        "--test", default="auto",
        choices=("auto", "welch", "mann-whitney", "paired"),
        help="auto pairs by seed when both bundles share workload+seeds",
    )
    exp_compare.add_argument("--output", default=None, metavar="PATH",
                             help="write the comparison report JSON here")

    exp_diff = exp_sub.add_parser(
        "diff",
        help="component-by-component diff of two profiles or profiled bundles",
    )
    exp_diff.add_argument("--a", required=True, metavar="PATH", dest="profile_a",
                          help="profile JSON (from `profile`) or bundle JSON")
    exp_diff.add_argument("--b", required=True, metavar="PATH", dest="profile_b")
    exp_diff.add_argument("--alpha", type=float, default=0.05,
                          help="significance level (bundle inputs only)")
    exp_diff.add_argument("--output", default=None, metavar="PATH",
                          help="write the diff JSON here")

    opt_p = sub.add_parser(
        "optimize",
        help="Pareto search over the deployment space for cost/energy",
    )
    opt_p.add_argument("--space", default=None, metavar="PATH",
                       help="SearchSpace JSON (overrides the axis flags)")
    opt_p.add_argument("--models", default="llama-2-7b",
                       help="comma-separated model names")
    opt_p.add_argument("--hardware", default="A100,H100",
                       help="comma-separated hardware names")
    opt_p.add_argument("--frameworks", default="vLLM",
                       help="comma-separated framework names")
    opt_p.add_argument("--quant", default="fp16",
                       help="comma-separated quant schemes (fp16,fp8,int8)")
    opt_p.add_argument("--tp", default="1",
                       help="comma-separated tensor-parallel degrees")
    opt_p.add_argument("--batch-sizes", default="1,8,16,32",
                       help="comma-separated batch sizes")
    opt_p.add_argument("--routers", default="least-outstanding",
                       help="comma-separated routers for the refinement stage")
    opt_p.add_argument("--input-tokens", type=int, default=512)
    opt_p.add_argument("--output-tokens", type=int, default=256)
    opt_p.add_argument("--target-rate", type=float, default=4.0,
                       help="offered request rate to provision for (req/s)")
    opt_p.add_argument("--max-replicas", type=int, default=16)
    opt_p.add_argument("--objective", default="cost_per_token",
                       choices=("cost_per_token", "energy_per_token",
                                "joules_per_token"))
    opt_p.add_argument("--refine-top", type=int, default=0, metavar="K",
                       help="discrete-event refinement of the best K deployments")
    opt_p.add_argument("--seed", type=int, default=0,
                       help="seed for the refinement stage's planner probes")
    opt_p.add_argument("--output", default=None, metavar="PATH",
                       help="write the OptimizationReport JSON here")

    bench_p = sub.add_parser(
        "bench",
        help="time simulator hot paths before/after the step-cost kernel",
    )
    bench_p.add_argument("--reduced", action="store_true",
                         help="small CI grid (seconds instead of minutes)")
    bench_p.add_argument("--output", default=None, metavar="PATH",
                         help="result JSON path (default BENCH_<date>.json)")
    bench_p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="compare against this baseline JSON and fail on regression",
    )
    bench_p.add_argument(
        "--max-regression", type=float, default=2.0, metavar="FACTOR",
        help="tolerated slowdown vs baseline engine iteration rate",
    )
    return parser


def _cmd_list() -> int:
    print("Models:")
    for name in list_models():
        print(f"  {name}")
    print("Hardware:")
    for name in list_hardware():
        print(f"  {name}")
    print("Frameworks:")
    for name in list_frameworks():
        print(f"  {name}")
    print("Experiments:")
    for eid in sorted(EXPERIMENTS):
        print(f"  {eid}: {EXPERIMENTS[eid].title}")
    return 0


def _write_json(path: str, payload: object) -> None:
    """Deterministic JSON output convention shared by every export flag."""
    import json as _json

    with open(path, "w", encoding="utf-8") as fh:
        _json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")


_ROW_DEPLOYMENT_KEYS = (
    "model", "hardware", "framework", "devices",
    "batch_size", "input_tokens", "output_tokens",
)


def _static_row_profiles(
    runner: BenchmarkRunner, rows: list[dict[str, object]]
) -> list[dict[str, object]]:
    """Static roofline attribution for sweep rows that name a full point.

    Rows produced by :meth:`BenchmarkRunner.run_sweep` carry the complete
    deployment key set; headline tables that aggregate it away — and rows
    whose point cannot be rebuilt from the default plan (custom TP or
    quantization variants), OOM lanes, or single-output-token workloads —
    are skipped rather than mis-attributed.
    """
    from repro.analysis import analyze

    profiles: list[dict[str, object]] = []
    for row in rows:
        if any(key not in row for key in _ROW_DEPLOYMENT_KEYS) or row.get("oom"):
            continue
        try:
            dep = runner.deployment(
                str(row["model"]), str(row["hardware"]), str(row["framework"])
            )
            if dep.num_devices != row["devices"]:
                continue
            config = GenerationConfig(
                int(row["input_tokens"]),  # type: ignore[arg-type]
                int(row["output_tokens"]),  # type: ignore[arg-type]
                int(row["batch_size"]),  # type: ignore[arg-type]
            )
            report = analyze(dep, config)
        except ValueError:
            continue
        entry: dict[str, object] = {
            key: row[key] for key in _ROW_DEPLOYMENT_KEYS
        }
        for attribution in (report.prefill, report.decode):
            entry[attribution.phase] = {
                "compute": attribution.compute,
                "weight_bandwidth": attribution.weight_bandwidth,
                "kv_bandwidth": attribution.kv_bandwidth,
                "activation_bandwidth": attribution.activation_bandwidth,
                "communication": attribution.communication,
                "overhead": attribution.overhead,
                "dominant": str(attribution.dominant),
            }
        entry["end_to_end_bottleneck"] = str(report.end_to_end_bottleneck)
        entry["decode_share_of_e2e"] = report.decode_share_of_e2e
        profiles.append(entry)
    return profiles


def _cmd_run(args: argparse.Namespace) -> int:
    telemetry_factory = None
    if args.telemetry_output:
        if not args.engine:
            print("--telemetry-output requires --engine (the estimator has "
                  "no event stream to sample)")
            return 2
        from repro.obs.telemetry import TelemetryHub

        telemetry_factory = TelemetryHub
    runner = BenchmarkRunner(
        use_engine=args.engine, telemetry_factory=telemetry_factory
    )
    metrics_payload: dict[str, object] = {}
    profile_payload: dict[str, object] = {}
    for eid in args.experiments:
        result = run_experiment(eid, runner)
        print(result.render())
        if args.table:
            print(result.table.render())
        print()
        if args.metrics_output:
            metrics_payload[result.experiment_id] = {
                "title": result.title,
                "measured": dict(result.measured),
                "paper": dict(result.paper),
                "rows": result.table.to_dicts(),
            }
        if args.profile_output:
            profile_payload[result.experiment_id] = _static_row_profiles(
                runner, result.table.to_dicts()
            )
    if args.metrics_output:
        _write_json(args.metrics_output, metrics_payload)
    if args.profile_output:
        _write_json(args.profile_output, profile_payload)
    if args.telemetry_output:
        _write_json(args.telemetry_output, runner.telemetry_log)
    return 0


def _cmd_point(args: argparse.Namespace) -> int:
    runner = BenchmarkRunner(use_engine=args.engine)
    dep = runner.deployment(args.model, args.hardware, args.framework)
    config = GenerationConfig(args.input_tokens, args.output_tokens, args.batch_size)
    metrics = runner.run_point(dep, config)
    if metrics.oom:
        print("OOM: configuration does not fit in device memory")
        return 1
    print(f"model           {dep.model.name}")
    print(f"hardware        {dep.hardware.name} x{dep.num_devices}")
    print(f"framework       {dep.framework.name}")
    print(f"throughput      {metrics.throughput_tokens_per_s:,.1f} tokens/s")
    print(f"TTFT            {metrics.ttft_s * 1e3:,.1f} ms")
    print(f"ITL             {metrics.itl_s * 1e3:,.3f} ms")
    print(f"end-to-end      {metrics.end_to_end_latency_s:,.2f} s")
    if metrics.average_power_w is not None:
        print(f"average power   {metrics.average_power_w:,.0f} W")
        print(f"perf/watt       {metrics.perf_per_watt:,.2f} tokens/s/W")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import analyze

    runner = BenchmarkRunner()
    dep = runner.deployment(args.model, args.hardware, args.framework)
    config = GenerationConfig(args.input_tokens, args.output_tokens, args.batch_size)
    try:
        report = analyze(dep, config)
    except ValueError as exc:
        print(f"cannot analyze: {exc}")
        return 1
    print(
        f"{dep.model.name} / {dep.hardware.name} x{dep.num_devices} / "
        f"{dep.framework.name} @ batch {config.batch_size}"
    )
    print(report.render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    results = run_all()
    markdown = experiments_markdown(results)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(markdown)
        print(f"wrote {args.output}")
    else:
        print(markdown)
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    from repro.dashboard import write_dashboard
    from repro.scenarios import list_scenarios

    results = run_all()
    path = write_dashboard(results, args.output, scenarios=list_scenarios())
    print(f"wrote {path}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.bench.export import export_bundle

    results = run_all(ids=args.ids)
    index = export_bundle(results, args.outdir)
    print(f"wrote {len(results)} CSVs + {index}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import EventTracer, timeline_table, trace_summary, write_chrome_trace
    from repro.runtime.memory_manager import OutOfMemoryError
    from repro.runtime.workload import fixed_batch_trace, poisson_trace

    runner = BenchmarkRunner(use_engine=True)
    dep = runner.deployment(args.model, args.hardware, args.framework)
    if args.rate is not None:
        num = args.num_requests or 4 * args.batch_size
        workload = poisson_trace(
            num, args.rate, args.input_tokens, args.output_tokens, seed=args.seed
        )
    else:
        workload = fixed_batch_trace(
            args.batch_size, args.input_tokens, args.output_tokens
        )

    tracer = EventTracer()
    try:
        result = runner.run_traced(
            dep,
            workload,
            tracer,
            max_concurrency=args.batch_size,
            optimistic=args.optimistic,
        )
    except OutOfMemoryError as exc:
        print(f"OOM: {exc}")
        return 1

    path = write_chrome_trace(
        args.output,
        tracer.events,
        metadata={
            "model": dep.model.name,
            "hardware": dep.hardware.name,
            "devices": dep.num_devices,
            "framework": dep.framework.name,
            "requests": len(workload),
            "makespan_s": result.total_time_s,
        },
    )
    summary = trace_summary(tracer.events, result.metrics)
    header = (
        f"{dep.model.name} / {dep.hardware.name} x{dep.num_devices} / "
        f"{dep.framework.name} — {len(workload)} requests, "
        f"makespan {result.total_time_s:.2f} s"
    )
    body = header + "\n\n" + summary
    if args.timelines > 0:
        body += "\n\nslowest request timelines (by TTFT):\n"
        body += timeline_table(result.timelines(), limit=args.timelines)
    print(body)
    print(f"\nwrote {path} ({len(tracer.events)} events) — open in "
          "https://ui.perfetto.dev or chrome://tracing")
    if args.summary_output:
        with open(args.summary_output, "w", encoding="utf-8") as fh:
            fh.write(body + "\n")
        print(f"wrote {args.summary_output}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import EventTracer, write_chrome_trace
    from repro.runtime.memory_manager import OutOfMemoryError
    from repro.runtime.workload import fixed_batch_trace, poisson_trace

    runner = BenchmarkRunner(use_engine=True)
    dep = runner.deployment(args.model, args.hardware, args.framework)
    if args.rate is not None:
        num = args.num_requests or 4 * args.batch_size
        workload = poisson_trace(
            num, args.rate, args.input_tokens, args.output_tokens, seed=args.seed
        )
    else:
        workload = fixed_batch_trace(
            args.batch_size, args.input_tokens, args.output_tokens
        )

    tracer = EventTracer() if args.trace_output else None
    try:
        result = runner.run_profiled(
            dep,
            workload,
            max_concurrency=args.batch_size,
            optimistic=args.optimistic,
            tracer=tracer,
        )
    except OutOfMemoryError as exc:
        print(f"OOM: {exc}")
        return 1

    profile = result.profile
    assert profile is not None  # run_profiled always enables the profiler
    print(
        f"{dep.model.name} / {dep.hardware.name} x{dep.num_devices} / "
        f"{dep.framework.name} — {len(workload)} requests"
    )
    print()
    print(profile.render(max_requests=args.requests_shown))
    _write_json(args.output, profile.to_json_dict())
    if args.trace_output and tracer is not None:
        path = write_chrome_trace(
            args.trace_output,
            tracer.events,
            metadata={
                "model": dep.model.name,
                "hardware": dep.hardware.name,
                "devices": dep.num_devices,
                "framework": dep.framework.name,
                "requests": len(workload),
                "makespan_s": result.total_time_s,
            },
        )
        print(f"wrote {path} ({len(tracer.events)} events) — counter tracks "
              "under the 'profile' lane in https://ui.perfetto.dev")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import (
        ClusterCapacityPlanner,
        ClusterSimulator,
        DisaggregationSpec,
        get_router,
    )
    from repro.obs.export import to_chrome_trace_multi
    from repro.runtime.loadgen import ServiceLevelObjective
    from repro.runtime.memory_manager import OutOfMemoryError
    from repro.runtime.workload import open_loop_trace, shared_prefix_trace

    runner = BenchmarkRunner(use_engine=True)
    dep = runner.deployment(args.model, args.hardware, args.framework)
    slo = ServiceLevelObjective()

    if args.plan_target is not None:
        planner = ClusterCapacityPlanner(
            dep,
            slo=slo,
            router_factory=lambda: get_router(args.router, seed=args.seed),
            num_requests=args.num_requests,
            mean_input_tokens=args.mean_input_tokens,
            mean_output_tokens=args.mean_output_tokens,
            max_concurrency=args.max_concurrency,
            seed=args.seed,
        )
        plan = planner.plan(args.plan_target, max_replicas=args.max_replicas)
        print(plan.render())
        return 0 if plan.feasible else 1

    if args.shared_prefixes > 0:
        workload = shared_prefix_trace(
            args.num_requests,
            args.rate,
            num_prefixes=args.shared_prefixes,
            prefix_tokens=args.prefix_tokens,
            unique_tokens=args.unique_tokens,
            output_tokens=args.mean_output_tokens,
            seed=args.seed,
        )
    else:
        workload = open_loop_trace(
            args.num_requests,
            args.rate,
            args.mean_input_tokens,
            args.mean_output_tokens,
            seed=args.seed,
        )
    disagg = (
        DisaggregationSpec(num_prefill_replicas=args.prefill_replicas)
        if args.prefill_replicas > 0
        else None
    )
    control = None
    if args.faults or args.autoscale:
        from repro.control import (
            ControlPlane,
            FaultSchedule,
            NullAutoscaler,
            get_autoscaler,
        )

        faults = FaultSchedule.load(args.faults) if args.faults else None
        autoscaler = (
            get_autoscaler(
                args.autoscale, slo=slo, max_replicas=args.autoscale_max
            )
            if args.autoscale
            else NullAutoscaler()
        )
        control = ControlPlane(faults=faults, autoscaler=autoscaler)
    telemetry = None
    if args.telemetry_output:
        from repro.obs.telemetry import TelemetryHub

        telemetry = TelemetryHub(slo=slo)
    simulator = ClusterSimulator(
        dep,
        args.replicas,
        router=get_router(args.router, seed=args.seed),
        max_concurrency=args.max_concurrency,
        disaggregation=disagg,
        control=control,
        traced=args.trace_output is not None,
        profiled=args.profile_output is not None,
        telemetry=telemetry,
    )
    try:
        result = simulator.run(workload)
    except OutOfMemoryError as exc:
        print(f"OOM: {exc}")
        return 1
    print(
        f"{dep.model.name} / {dep.hardware.name} x{dep.num_devices} / "
        f"{dep.framework.name}"
    )
    print(result.render())
    print(result.load_report(args.rate, slo=slo).render())
    if args.result_output:
        import json as _json

        with open(args.result_output, "w", encoding="utf-8") as fh:
            _json.dump(result.to_json_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.result_output}")
    if args.metrics_output:
        _write_json(args.metrics_output, result.metrics.to_json_dict())
    if args.profile_output:
        assert result.profile is not None  # profiled=True above
        print()
        print(result.profile.render())
        _write_json(args.profile_output, result.profile.to_json_dict())
    if args.telemetry_output:
        assert result.telemetry is not None  # telemetry hub attached above
        fired = sum(1 for a in result.telemetry.alerts if a.state == "firing")
        print(f"telemetry: {len(result.telemetry.series)} series, "
              f"{fired} alerts fired")
        _write_json(args.telemetry_output, result.telemetry.to_json_dict())
    if args.trace_output:
        import json as _json

        payload = to_chrome_trace_multi(
            result.replica_events,
            metadata={
                "model": dep.model.name,
                "hardware": dep.hardware.name,
                "framework": dep.framework.name,
                "replicas": len(result.replicas),
                "router": result.router_name,
                "makespan_s": result.makespan_s,
            },
        )
        with open(args.trace_output, "w", encoding="utf-8") as fh:
            _json.dump(payload, fh, indent=1)
        print(f"wrote {args.trace_output} — open in https://ui.perfetto.dev")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.scenarios import get_scenario, list_scenarios, trace_json_dicts

    if args.verb == "list":
        print(f"{'scenario':<20}{'sessions':>9}  composition")
        for scenario in list_scenarios():
            composition = (
                f"{scenario.arrival.describe()} | "
                f"{scenario.lengths.describe()} | "
                f"{scenario.sessions.describe()}"
            )
            if scenario.tenants:
                composition += f" | {len(scenario.tenants)} tenants"
            print(f"{scenario.name:<20}{scenario.num_sessions:>9}  {composition}")
        return 0

    try:
        scenario = get_scenario(args.name)
    except KeyError as exc:
        print(exc.args[0])
        return 1

    if args.verb == "describe":
        print(scenario.describe())
        trace = scenario.build(args.seed)
        tagged = sum(1 for r in trace if r.tenant is not None)
        multi = sum(1 for r in trace if r.turn_index > 0)
        span = trace[-1].arrival_time - trace[0].arrival_time
        print(
            f"  trace (seed {args.seed}): {len(trace)} requests over "
            f"{span:.1f} s, {multi} follow-up turns, {tagged} tenant-tagged"
        )
        if args.trace_output:
            _write_json(args.trace_output, trace_json_dicts(trace))
            print(f"wrote {args.trace_output}")
        return 0

    from repro.cluster import ClusterSimulator, get_router
    from repro.runtime.memory_manager import OutOfMemoryError

    if args.sessions is not None:
        scenario = scenario.with_sessions(args.sessions)
    trace = scenario.build(args.seed)
    runner = BenchmarkRunner(use_engine=True)
    dep = runner.deployment(args.model, args.hardware, args.framework)
    telemetry = None
    if args.telemetry_output:
        from repro.obs.telemetry import TelemetryHub

        telemetry = TelemetryHub(tenant_slos=scenario.tenant_slos() or None)
    simulator = ClusterSimulator(
        dep,
        args.replicas,
        router=get_router(args.router, seed=args.seed),
        max_concurrency=args.max_concurrency,
        prefix_cache_slots=args.prefix_cache_slots,
        telemetry=telemetry,
    )
    try:
        result = simulator.run(trace)
    except OutOfMemoryError as exc:
        print(f"OOM: {exc}")
        return 1
    span = trace[-1].arrival_time - trace[0].arrival_time
    offered = len(trace) / span if span > 0 else float(len(trace))
    print(
        f"{scenario.name}: {dep.model.name} / {dep.hardware.name} "
        f"x{dep.num_devices} / {dep.framework.name}"
    )
    print(result.render())
    print(
        result.load_report(offered, tenant_slos=scenario.tenant_slos() or None)
        .render()
    )
    if args.result_output:
        _write_json(args.result_output, result.to_json_dict())
        print(f"wrote {args.result_output}")
    if args.telemetry_output:
        assert result.telemetry is not None  # telemetry hub attached above
        _write_json(args.telemetry_output, result.telemetry.to_json_dict())
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.analysis.optimize import SearchSpace, optimize
    from repro.runtime.loadgen import ServiceLevelObjective

    if args.space:
        import json as _json

        with open(args.space, encoding="utf-8") as fh:
            space = SearchSpace.from_json_dict(_json.load(fh))
    else:
        def _names(raw: str) -> tuple[str, ...]:
            return tuple(part.strip() for part in raw.split(",") if part.strip())

        space = SearchSpace(
            models=_names(args.models),
            hardware=_names(args.hardware),
            frameworks=_names(args.frameworks),
            quant_schemes=_names(args.quant),
            tensor_parallel=tuple(int(v) for v in _names(args.tp)),
            batch_sizes=tuple(int(v) for v in _names(args.batch_sizes)),
            routers=_names(args.routers),
            input_tokens=args.input_tokens,
            output_tokens=args.output_tokens,
            target_rate_rps=args.target_rate,
            max_replicas=args.max_replicas,
            slo=ServiceLevelObjective(),
        )
    report = optimize(
        space,
        objective=args.objective,
        refine_top=args.refine_top,
        seed=args.seed,
    )
    print(report.render())
    if args.output:
        _write_json(args.output, report.to_json_dict())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.perfbench import (
        check_regression,
        load_baseline,
        render,
        run_benchmarks,
        write_report,
    )

    report = run_benchmarks(reduced=args.reduced)
    print(render(report))
    path = write_report(report, args.output)
    print(f"wrote {path}")
    if args.baseline is not None:
        failures = check_regression(
            report, load_baseline(args.baseline), args.max_regression
        )
        for failure in failures:
            print(f"REGRESSION: {failure}")
        if failures:
            return 1
        rate = report.benchmarks["engine_iteration_rate"]["after_iters_per_s"]
        print(f"baseline check passed ({rate:.1f} iters/s)")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.bench.validation import cross_validate

    summary = cross_validate(num_points=args.points, seed=args.seed)
    print(summary.render())
    return 0 if summary.max_relative_error < 0.05 else 1


def _load_profile_or_bundle(path: str):
    """Read ``path`` as either a profile JSON or an experiment bundle.

    Returns ``(profiles, label)`` where ``profiles`` is the list of
    per-seed :class:`~repro.obs.profiler.ProfileReport` objects (length 1
    for a plain profile JSON written by the ``profile`` verb).
    """
    import json as _json

    from repro.experiments import ExperimentBundle
    from repro.obs.profiler import ProfileReport

    with open(path, encoding="utf-8") as fh:
        payload = _json.load(fh)
    if "bundle_version" in payload:
        bundle = ExperimentBundle.from_json_dict(payload)
        profiles = [
            sr.profile for sr in bundle.seed_results if sr.profile is not None
        ]
        if not profiles:
            raise ValueError(
                f"{path} holds no profiles; re-run the experiment with "
                '"profiled": true in its spec'
            )
        return profiles, bundle.spec.name
    return [ProfileReport.from_json_dict(payload)], str(payload.get("name", path))


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        ExperimentBundle,
        ExperimentSpec,
        bundle_replication,
        compare_replications,
        diff_profiles,
        diff_replicated_profiles,
        replay,
        run_replication,
        verify_replay,
    )

    if args.verb == "run":
        spec = ExperimentSpec.load(args.spec)
        report = run_replication(
            spec, confidence=args.confidence, method=args.method
        )
        print(report.render())
        bundle_replication(report).save(args.output)
        print(f"wrote {args.output}")
        return 0

    if args.verb == "replay":
        bundle = ExperimentBundle.load(args.bundle)
        fresh = replay(bundle)
        if args.output is not None:
            fresh.save(args.output)
            print(f"wrote {args.output}")
        ok, mismatches = verify_replay(bundle, fresh)
        if ok:
            print(
                f"replay verified: {len(bundle.seed_results)} seed results "
                "byte-identical"
            )
            return 0
        for mismatch in mismatches:
            print(f"MISMATCH: {mismatch}")
        return 1

    if args.verb == "compare":
        report_a = ExperimentBundle.load(args.bundle_a).report()
        report_b = ExperimentBundle.load(args.bundle_b).report()
        comparison = compare_replications(
            report_a, report_b, alpha=args.alpha, test=args.test
        )
        print(comparison.render())
        if args.output is not None:
            _write_json(args.output, comparison.to_json_dict())
        return 0

    if args.verb == "diff":
        profiles_a, _ = _load_profile_or_bundle(args.profile_a)
        profiles_b, _ = _load_profile_or_bundle(args.profile_b)
        if len(profiles_a) > 1 and len(profiles_b) > 1:
            diff = diff_replicated_profiles(
                profiles_a,
                profiles_b,
                alpha=args.alpha,
                paired=len(profiles_a) == len(profiles_b),
            )
        else:
            diff = diff_profiles(profiles_a[0], profiles_b[0])
        print(diff.render())
        if args.output is not None:
            _write_json(args.output, diff.to_json_dict())
        return 0

    raise AssertionError(f"unhandled experiment verb {args.verb!r}")


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "point":
        return _cmd_point(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "dashboard":
        return _cmd_dashboard(args)
    if args.command == "export":
        return _cmd_export(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "optimize":
        return _cmd_optimize(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
