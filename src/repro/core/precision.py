"""Numeric precision (dtype) definitions used throughout the simulator.

The paper benchmarks models in 16-bit by default and studies FP8/INT8
quantization (Fig. 3).  Hardware platforms differ in which precisions they
support (Table II), and lower precisions both shrink memory traffic and, on
hardware with dedicated low-precision engines, raise peak FLOP rates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Precision", "PrecisionSpec", "PRECISIONS", "precision_spec"]


class Precision(str, enum.Enum):
    """Supported numeric formats, named as in the paper's Table II."""

    FP32 = "fp32"
    TF32 = "tf32"
    FP16 = "fp16"
    BF16 = "bf16"
    FP8 = "fp8"
    INT8 = "int8"
    INT4 = "int4"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class PrecisionSpec:
    """Static properties of a numeric format.

    Attributes
    ----------
    precision:
        The format identifier.
    bytes_per_element:
        Storage size of one scalar.  INT4 packs two values per byte.
    matmul_speedup:
        Peak-FLOP multiplier relative to the hardware's FP16 tensor rate
        *when the hardware has a native engine for this format* (e.g. FP8 on
        H100 runs at 2x the FP16 rate).  Hardware without native support
        falls back to 1.0 (dequantize-then-FP16-matmul), which still enjoys
        the memory-traffic reduction — this is why INT8 helps on A100 even
        though A100 has no FP8 (paper Section IV-B3).
    is_integer:
        Whether the format is an integer (affects perplexity degradation in
        the quality model).
    """

    precision: Precision
    bytes_per_element: float
    matmul_speedup: float
    is_integer: bool = False


PRECISIONS: dict[Precision, PrecisionSpec] = {
    Precision.FP32: PrecisionSpec(Precision.FP32, 4.0, 0.5),
    Precision.TF32: PrecisionSpec(Precision.TF32, 4.0, 0.5),
    Precision.FP16: PrecisionSpec(Precision.FP16, 2.0, 1.0),
    Precision.BF16: PrecisionSpec(Precision.BF16, 2.0, 1.0),
    Precision.FP8: PrecisionSpec(Precision.FP8, 1.0, 2.0),
    Precision.INT8: PrecisionSpec(Precision.INT8, 1.0, 2.0, is_integer=True),
    Precision.INT4: PrecisionSpec(Precision.INT4, 0.5, 2.0, is_integer=True),
}


def precision_spec(precision: Precision | str) -> PrecisionSpec:
    """Look up the :class:`PrecisionSpec` for a precision (or its name)."""
    if isinstance(precision, str):
        precision = Precision(precision.lower())
    return PRECISIONS[precision]
