"""Performance metrics defined in Section III-5 of the paper.

The paper's five metrics are perplexity, Time to First Token (TTFT),
Inter-Token Latency (ITL, Eq. 1), throughput (Eq. 2) and power.  This module
implements the latency-derived metrics exactly as the paper defines them so
that every benchmark in the suite reports numbers on the same footing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "inter_token_latency",
    "throughput_tokens_per_s",
    "output_throughput_tokens_per_s",
    "perf_per_watt",
    "COMPONENT_FIELDS",
    "CostComponents",
    "LatencyBreakdown",
    "InferenceMetrics",
]


def inter_token_latency(
    end_to_end_latency_s: float,
    ttft_s: float,
    batch_size: int,
    output_tokens: int,
) -> float:
    """Inter-Token Latency per Eq. 1 of the paper.

    ``ITL = (E2E latency - TTFT) / (batch_size * (output_tokens - 1))``

    For a single output token the decode phase is empty and ITL is defined
    as 0.0 (the paper measures TTFT in that regime instead).
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if output_tokens < 1:
        raise ValueError(f"output_tokens must be >= 1, got {output_tokens}")
    if end_to_end_latency_s < ttft_s:
        raise ValueError(
            "end-to-end latency cannot be smaller than TTFT: "
            f"{end_to_end_latency_s} < {ttft_s}"
        )
    if output_tokens == 1:
        return 0.0
    return (end_to_end_latency_s - ttft_s) / (batch_size * (output_tokens - 1))


def throughput_tokens_per_s(
    batch_size: int,
    input_tokens: int,
    output_tokens: int,
    end_to_end_latency_s: float,
) -> float:
    """Throughput per Eq. 2: total (input + output) tokens per second."""
    if end_to_end_latency_s <= 0.0:
        raise ValueError(f"latency must be positive, got {end_to_end_latency_s}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if input_tokens < 0 or output_tokens < 0:
        raise ValueError("token counts must be non-negative")
    return batch_size * (input_tokens + output_tokens) / end_to_end_latency_s


def output_throughput_tokens_per_s(
    batch_size: int, output_tokens: int, end_to_end_latency_s: float
) -> float:
    """Decode-only throughput (output tokens per second).

    Not the paper's headline metric, but used internally when comparing
    decode-phase behaviour (e.g. ITL discussions around Fig. 22).
    """
    return throughput_tokens_per_s(batch_size, 0, output_tokens, end_to_end_latency_s)


def perf_per_watt(throughput_tokens_per_second: float, average_power_w: float) -> float:
    """Performance per watt in tokens/sec/watt (Fig. 16, right panel)."""
    if average_power_w <= 0.0:
        raise ValueError(f"power must be positive, got {average_power_w}")
    if throughput_tokens_per_second < 0.0:
        raise ValueError("throughput must be non-negative")
    return throughput_tokens_per_second / average_power_w


@dataclass(frozen=True)
class LatencyBreakdown:
    """Decomposition of one phase's latency into mechanism buckets.

    Every bucket is in seconds.  ``total`` is not necessarily the sum of the
    parts: compute and memory overlap under the roofline model, so
    ``total >= max(compute, memory)`` but ``total <= compute + memory + ...``.
    """

    compute_s: float = 0.0
    weight_memory_s: float = 0.0
    kv_memory_s: float = 0.0
    activation_memory_s: float = 0.0
    communication_s: float = 0.0
    overhead_s: float = 0.0
    total_s: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "compute_s",
            "weight_memory_s",
            "kv_memory_s",
            "activation_memory_s",
            "communication_s",
            "overhead_s",
            "total_s",
        ):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0.0:
                raise ValueError(f"{name} must be finite and >= 0, got {value}")

    def scaled(self, factor: float) -> "LatencyBreakdown":
        """Return a breakdown with every bucket multiplied by ``factor``."""
        if factor < 0.0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        return LatencyBreakdown(
            compute_s=self.compute_s * factor,
            weight_memory_s=self.weight_memory_s * factor,
            kv_memory_s=self.kv_memory_s * factor,
            activation_memory_s=self.activation_memory_s * factor,
            communication_s=self.communication_s * factor,
            overhead_s=self.overhead_s * factor,
            total_s=self.total_s * factor,
        )

    def __add__(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        return LatencyBreakdown(
            compute_s=self.compute_s + other.compute_s,
            weight_memory_s=self.weight_memory_s + other.weight_memory_s,
            kv_memory_s=self.kv_memory_s + other.kv_memory_s,
            activation_memory_s=self.activation_memory_s + other.activation_memory_s,
            communication_s=self.communication_s + other.communication_s,
            overhead_s=self.overhead_s + other.overhead_s,
            total_s=self.total_s + other.total_s,
        )


#: Field order of a :class:`CostComponents` partition.  Fixed so every
#: summation over components (``total_s``, the remainder trick in
#: ``from_breakdown``, renderers, JSON export) associates identically.
COMPONENT_FIELDS = (
    "compute_s",
    "weight_s",
    "kv_s",
    "activation_s",
    "communication_s",
    "overhead_s",
)


@dataclass(frozen=True)
class CostComponents:
    """Exact partition of one step's committed cost into roofline terms.

    Unlike :class:`LatencyBreakdown` — whose buckets are the *raw* leg
    times and whose total reflects compute/memory overlap, MoE grouped-GEMM
    efficiency, pipeline serialization and the saturation penalty — a
    ``CostComponents`` is an attribution: the six terms sum to the step's
    committed cost (to floating-point associativity, far inside the 1e-12
    bar the tests enforce).  The partition is proportional: each raw
    serial leg is scaled by ``total / (sum of raw legs)``, so component
    *ordering* (and therefore the dominant bottleneck) matches the raw
    breakdown exactly, while the overlap slack and multiplicative
    penalties are spread pro-rata instead of being attributed to any one
    mechanism.  The last term is computed as a remainder to force the
    exact sum; it can undershoot its scaled value by an ulp.
    """

    compute_s: float = 0.0
    weight_s: float = 0.0
    kv_s: float = 0.0
    activation_s: float = 0.0
    communication_s: float = 0.0
    overhead_s: float = 0.0

    @classmethod
    def from_breakdown(cls, bd: LatencyBreakdown) -> "CostComponents":
        """Partition ``bd.total_s`` across its raw legs pro-rata."""
        legs = (
            bd.compute_s,
            bd.weight_memory_s,
            bd.kv_memory_s,
            bd.activation_memory_s,
            bd.communication_s,
            bd.overhead_s,
        )
        total = bd.total_s
        raw = 0.0
        for leg in legs:
            raw += leg
        if total <= 0.0:
            return cls()
        if raw <= 0.0:
            return cls(overhead_s=total)
        scale = total / raw
        parts = [leg * scale for leg in legs[:-1]]
        partial = 0.0
        for part in parts:
            partial += part
        parts.append(total - partial)  # overhead absorbs the rounding slack
        return cls(*parts)

    @property
    def total_s(self) -> float:
        """Sum of the six terms in :data:`COMPONENT_FIELDS` order."""
        total = 0.0
        for name in COMPONENT_FIELDS:
            total += getattr(self, name)
        return total

    @property
    def memory_s(self) -> float:
        """All bandwidth-attributed time (weights + KV + activations)."""
        return self.weight_s + self.kv_s + self.activation_s

    def scaled(self, factor: float) -> "CostComponents":
        if factor < 0.0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        return CostComponents(
            *(getattr(self, name) * factor for name in COMPONENT_FIELDS)
        )

    def __add__(self, other: "CostComponents") -> "CostComponents":
        return CostComponents(
            *(
                getattr(self, name) + getattr(other, name)
                for name in COMPONENT_FIELDS
            )
        )

    def fractions(self) -> dict[str, float]:
        """Each term's share of the total (all zeros on an empty partition)."""
        total = self.total_s
        if total <= 0.0:
            return dict.fromkeys(COMPONENT_FIELDS, 0.0)
        return {name: getattr(self, name) / total for name in COMPONENT_FIELDS}

    def as_dict(self) -> dict[str, float]:
        return {name: getattr(self, name) for name in COMPONENT_FIELDS}


@dataclass
class InferenceMetrics:
    """Complete metrics for one (model, hardware, framework, workload) run.

    This is the record type every benchmark produces; it carries the paper's
    reported quantities plus the simulator's internal breakdowns for
    debugging and ablation benches.
    """

    batch_size: int
    input_tokens: int
    output_tokens: int
    ttft_s: float
    end_to_end_latency_s: float
    itl_s: float = field(default=0.0)
    throughput_tokens_per_s: float = field(default=0.0)
    average_power_w: float | None = None
    perf_per_watt: float | None = None
    prefill_breakdown: LatencyBreakdown | None = None
    decode_breakdown: LatencyBreakdown | None = None
    effective_concurrency: float | None = None
    oom: bool = False

    def __post_init__(self) -> None:
        if not self.oom:
            if self.itl_s == 0.0 and self.output_tokens > 1:
                self.itl_s = inter_token_latency(
                    self.end_to_end_latency_s,
                    self.ttft_s,
                    self.batch_size,
                    self.output_tokens,
                )
            if self.throughput_tokens_per_s == 0.0:
                self.throughput_tokens_per_s = throughput_tokens_per_s(
                    self.batch_size,
                    self.input_tokens,
                    self.output_tokens,
                    self.end_to_end_latency_s,
                )
            if self.average_power_w is not None and self.perf_per_watt is None:
                self.perf_per_watt = perf_per_watt(
                    self.throughput_tokens_per_s, self.average_power_w
                )

    @classmethod
    def out_of_memory(
        cls, batch_size: int, input_tokens: int, output_tokens: int
    ) -> "InferenceMetrics":
        """Sentinel record for configurations that OOM (Gaudi2 at bs>=32)."""
        return cls(
            batch_size=batch_size,
            input_tokens=input_tokens,
            output_tokens=output_tokens,
            ttft_s=0.0,
            end_to_end_latency_s=float("inf"),
            itl_s=float("inf"),
            throughput_tokens_per_s=0.0,
            oom=True,
        )
