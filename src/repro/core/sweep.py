"""Parameter-sweep helpers for the benchmark harness.

The paper's evaluation is a dense grid over (model, hardware, framework,
batch size, input length, output length).  :class:`Sweep` expresses such a
grid declaratively and iterates it as dictionaries.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Sweep", "paper_batch_sweep", "paper_length_sweep"]


@dataclass
class Sweep:
    """Cartesian product over named axes, with optional constraints.

    Example
    -------
    >>> sweep = Sweep({"batch_size": [1, 16], "length": [128, 2048]})
    >>> len(list(sweep))
    4
    """

    axes: Mapping[str, Sequence[Any]]
    constraints: list[Any] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name, values in self.axes.items():
            if len(values) == 0:
                raise ValueError(f"axis {name!r} has no values")

    def constrain(self, predicate: Any) -> "Sweep":
        """Return a sweep that skips points failing ``predicate(point)``."""
        return Sweep(dict(self.axes), self.constraints + [predicate])

    def __iter__(self) -> Iterator[dict[str, Any]]:
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            point = dict(zip(names, combo))
            if all(pred(point) for pred in self.constraints):
                yield point

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def extend(self, **axes: Sequence[Any]) -> "Sweep":
        """Return a sweep with additional axes appended."""
        merged = dict(self.axes)
        for name, values in axes.items():
            if name in merged:
                raise ValueError(f"axis {name!r} already present")
            merged[name] = values
        return Sweep(merged, list(self.constraints))


def paper_batch_sweep(
    lengths: Sequence[int] = (128, 256, 512, 1024, 2048),
    batch_sizes: Sequence[int] = (1, 16, 32, 64),
) -> Sweep:
    """The paper's standard sweep: equal input/output lengths x batch sizes."""
    return Sweep({"length": list(lengths), "batch_size": list(batch_sizes)})


def paper_length_sweep(
    input_lengths: Sequence[int] = (128, 256, 512, 1024, 2048),
    output_lengths: Sequence[int] = (128, 256, 512, 1024, 2048),
    batch_size: int = 16,
) -> Sweep:
    """Blended-token sweep (Fig. 1b): input length x output length grid."""
    return Sweep(
        {
            "input_tokens": list(input_lengths),
            "output_tokens": list(output_lengths),
            "batch_size": [batch_size],
        }
    )
