"""Request and generation-configuration types.

``GenerationConfig`` captures the paper's token-generation parameters
(Section III-2): input length, output size (max_new_tokens) and batch size.
``GenerationRequest`` is the unit of work the discrete-event serving engine
(:mod:`repro.runtime.engine`) schedules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = ["GenerationConfig", "GenerationRequest", "RequestState"]

_request_ids = itertools.count()


@dataclass(frozen=True)
class GenerationConfig:
    """Workload shape for one benchmark point.

    The paper sweeps input/output lengths of {128, 256, 512, 1024, 2048}
    and batch sizes of {1, 16, 32, 64}.
    """

    input_tokens: int
    output_tokens: int
    batch_size: int = 1

    # Paper sweep values, exposed for the bench harness.
    PAPER_LENGTHS = (128, 256, 512, 1024, 2048)
    PAPER_BATCH_SIZES = (1, 16, 32, 64)

    def __post_init__(self) -> None:
        if self.input_tokens < 1:
            raise ValueError(f"input_tokens must be >= 1, got {self.input_tokens}")
        if self.output_tokens < 1:
            raise ValueError(f"output_tokens must be >= 1, got {self.output_tokens}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")

    @property
    def total_tokens_per_sequence(self) -> int:
        """Final context length a sequence reaches (input + output)."""
        return self.input_tokens + self.output_tokens

    @property
    def total_tokens(self) -> int:
        """Total tokens processed across the batch (Eq. 2 numerator)."""
        return self.batch_size * self.total_tokens_per_sequence

    def with_batch_size(self, batch_size: int) -> "GenerationConfig":
        return GenerationConfig(self.input_tokens, self.output_tokens, batch_size)


class RequestState:
    """Lifecycle states of a request inside the serving engine."""

    QUEUED = "queued"
    PREFILLING = "prefilling"
    DECODING = "decoding"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass
class GenerationRequest:
    """One inference request flowing through the serving runtime.

    Times are simulation-clock seconds.  ``first_token_time`` minus
    ``arrival_time`` is the request's TTFT; ``finish_time`` minus
    ``arrival_time`` its end-to-end latency.
    """

    input_tokens: int
    output_tokens: int
    arrival_time: float = 0.0
    request_id: int = field(default_factory=lambda: next(_request_ids))
    state: str = RequestState.QUEUED
    generated_tokens: int = 0
    admit_time: float | None = None  # first admission (per-request timelines)
    first_token_time: float | None = None
    finish_time: float | None = None
    # Preemption-and-recompute support (vLLM's optimistic admission): when
    # a request is evicted mid-decode, ``restart_context`` records the
    # context length to re-prefill on its next admission, and
    # ``preemptions`` counts how often that happened.
    restart_context: int = 0
    preemptions: int = 0
    # Shared-prefix identity (cluster routing): requests carrying the same
    # ``prefix_id`` open with an identical ``prefix_tokens``-long prompt
    # prefix (a system prompt, a chat session).  When the serving side
    # already holds that prefix's KV blocks it sets
    # ``cached_prefix_tokens`` so prefill covers only the suffix.
    prefix_id: int | None = None
    prefix_tokens: int = 0
    cached_prefix_tokens: int = 0
    # Scenario identity (:mod:`repro.scenarios`): multi-turn conversations
    # carry a ``session_id`` shared by all their turns (turn N's prompt
    # extends turn N-1's context, so the session's KV is the reusable
    # prefix) and a 0-based ``turn_index``.  ``tenant`` names the traffic
    # class for per-tenant SLO accounting; ``None`` means untagged.
    session_id: int | None = None
    turn_index: int = 0
    tenant: str | None = None

    def __post_init__(self) -> None:
        if self.input_tokens < 1:
            raise ValueError(f"input_tokens must be >= 1, got {self.input_tokens}")
        if self.output_tokens < 1:
            raise ValueError(f"output_tokens must be >= 1, got {self.output_tokens}")
        if self.arrival_time < 0.0:
            raise ValueError(f"arrival_time must be >= 0, got {self.arrival_time}")
        if not 0 <= self.prefix_tokens <= self.input_tokens:
            raise ValueError(
                f"prefix_tokens must be in [0, input_tokens], got {self.prefix_tokens}"
            )
        if not 0 <= self.cached_prefix_tokens <= self.prefix_tokens:
            raise ValueError(
                "cached_prefix_tokens must be in [0, prefix_tokens], got "
                f"{self.cached_prefix_tokens}"
            )
        if self.turn_index < 0:
            raise ValueError(f"turn_index must be >= 0, got {self.turn_index}")

    @property
    def context_length(self) -> int:
        """Current context length: prompt plus tokens generated so far."""
        return self.input_tokens + self.generated_tokens

    @property
    def is_finished(self) -> bool:
        return self.state == RequestState.FINISHED

    @property
    def ttft_s(self) -> float:
        if self.first_token_time is None:
            raise RuntimeError(f"request {self.request_id} has not produced a token")
        return self.first_token_time - self.arrival_time

    @property
    def end_to_end_latency_s(self) -> float:
        if self.finish_time is None:
            raise RuntimeError(f"request {self.request_id} has not finished")
        return self.finish_time - self.arrival_time

    def record_token(self, now: float) -> None:
        """Account one generated token at simulation time ``now``."""
        if self.generated_tokens >= self.output_tokens:
            raise RuntimeError(
                f"request {self.request_id} already generated all "
                f"{self.output_tokens} tokens"
            )
        self.generated_tokens += 1
        if self.first_token_time is None:
            self.first_token_time = now
            self.state = RequestState.DECODING
        if self.generated_tokens == self.output_tokens:
            self.finish_time = now
            self.state = RequestState.FINISHED

    def mark_preempted(self) -> None:
        """Evict the request mid-decode (vLLM recompute preemption).

        Already-generated tokens stay emitted; the engine re-prefills the
        full context (prompt + generated so far) on readmission.
        """
        if self.state not in (RequestState.PREFILLING, RequestState.DECODING):
            raise RuntimeError(
                f"request {self.request_id} is {self.state}; cannot preempt"
            )
        self.restart_context = self.context_length
        self.preemptions += 1
        self.state = RequestState.QUEUED

    @property
    def prefill_tokens_needed(self) -> int:
        """Context to (re-)prefill at the next admission.

        A recompute restart re-prefills everything (the preemption freed
        the KV, cached prefix included); otherwise a prefix-cache hit
        shrinks the prompt to its uncached suffix (at least one token, so
        prefill still emits the first output token).
        """
        if self.restart_context > 0:
            return self.restart_context
        return max(1, self.input_tokens - self.cached_prefix_tokens)
