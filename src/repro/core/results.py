"""Result records and tables for the benchmarking harness.

A :class:`ResultTable` is a light-weight column-oriented container (no
pandas available offline) that supports the operations the bench harness
needs: appending records, filtering, grouping, pivoting into the grid
layouts the paper's heatmaps use, and rendering aligned text tables.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

__all__ = ["ResultRecord", "ResultTable"]


@dataclass(frozen=True)
class ResultRecord:
    """One benchmark measurement: identifying keys plus metric values."""

    keys: Mapping[str, Any]
    values: Mapping[str, float]

    def as_dict(self) -> dict[str, Any]:
        merged: dict[str, Any] = dict(self.keys)
        overlap = set(merged) & set(self.values)
        if overlap:
            raise ValueError(f"key/value name collision: {sorted(overlap)}")
        merged.update(self.values)
        return merged


@dataclass
class ResultTable:
    """An append-only collection of :class:`ResultRecord`.

    The table is intentionally tiny: it exists so that benches and the
    dashboard speak one format, and so EXPERIMENTS.md rows can be generated
    mechanically.
    """

    name: str = "results"
    records: list[ResultRecord] = field(default_factory=list)

    def add(self, keys: Mapping[str, Any], values: Mapping[str, float]) -> None:
        self.records.append(ResultRecord(dict(keys), dict(values)))

    def extend(self, other: "ResultTable") -> None:
        self.records.extend(other.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ResultRecord]:
        return iter(self.records)

    def filter(self, **criteria: Any) -> "ResultTable":
        """Records whose keys match all ``criteria`` exactly."""
        out = ResultTable(name=self.name)
        for rec in self.records:
            if all(rec.keys.get(k) == v for k, v in criteria.items()):
                out.records.append(rec)
        return out

    def where(self, predicate: Callable[[ResultRecord], bool]) -> "ResultTable":
        out = ResultTable(name=self.name)
        out.records = [r for r in self.records if predicate(r)]
        return out

    def column(self, name: str) -> list[Any]:
        """Extract one column (searching keys first, then values)."""
        out: list[Any] = []
        for rec in self.records:
            if name in rec.keys:
                out.append(rec.keys[name])
            elif name in rec.values:
                out.append(rec.values[name])
            else:
                raise KeyError(f"column {name!r} missing from record {rec.keys}")
        return out

    def unique(self, name: str) -> list[Any]:
        """Distinct values of a column, in first-seen order."""
        seen: dict[Any, None] = {}
        for value in self.column(name):
            seen.setdefault(value, None)
        return list(seen)

    def single(self, value_name: str, **criteria: Any) -> float:
        """The unique value of ``value_name`` among records matching criteria."""
        matches = self.filter(**criteria)
        if len(matches) != 1:
            raise LookupError(
                f"expected exactly one record for {criteria}, found {len(matches)}"
            )
        return float(matches.records[0].values[value_name])

    def pivot(
        self, row_key: str, col_key: str, value_name: str
    ) -> tuple[list[Any], list[Any], list[list[float | None]]]:
        """Pivot to a 2-D grid (the paper's heatmap layout).

        Returns ``(row_labels, col_labels, grid)`` where ``grid[i][j]`` is the
        value at ``(row_labels[i], col_labels[j])`` or ``None`` if absent.
        Duplicate cells raise.
        """
        rows = self.unique(row_key)
        cols = self.unique(col_key)
        index = {(r, c): None for r in rows for c in cols}
        for rec in self.records:
            cell = (rec.keys[row_key], rec.keys[col_key])
            if index[cell] is not None:
                raise ValueError(f"duplicate cell {cell} in pivot of {self.name!r}")
            index[cell] = float(rec.values[value_name])
        grid = [[index[(r, c)] for c in cols] for r in rows]
        return rows, cols, grid

    def annotated(self, **extra_keys: Any) -> "ResultTable":
        """A copy with ``extra_keys`` merged into every record's keys.

        The way experiment tables get tagged before concatenation — e.g.
        stacking per-config replication tables into one sweep, or marking
        every row of a comparison with the configs it came from —
        without mutating the source table.  Colliding key names raise.
        """
        out = ResultTable(name=self.name)
        for rec in self.records:
            overlap = set(rec.keys) & set(extra_keys)
            if overlap:
                raise ValueError(
                    f"annotation collides with existing keys: {sorted(overlap)}"
                )
            out.records.append(
                ResultRecord({**rec.keys, **extra_keys}, rec.values)
            )
        return out

    def group_by(self, *names: str) -> dict[tuple[Any, ...], "ResultTable"]:
        groups: dict[tuple[Any, ...], ResultTable] = {}
        for rec in self.records:
            key = tuple(rec.keys[n] for n in names)
            groups.setdefault(key, ResultTable(name=self.name)).records.append(rec)
        return groups

    # ------------------------------------------------------------------
    # Rendering / serialization
    # ------------------------------------------------------------------

    def to_dicts(self) -> list[dict[str, Any]]:
        return [rec.as_dict() for rec in self.records]

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(
            {"name": self.name, "records": self.to_dicts()},
            indent=indent,
            default=_json_default,
        )

    @classmethod
    def from_json(cls, payload: str) -> "ResultTable":
        data = json.loads(payload)
        table = cls(name=data["name"])
        # Round-trip loses the key/value split; treat floats as values.
        for row in data["records"]:
            keys = {k: v for k, v in row.items() if not isinstance(v, float)}
            values = {k: v for k, v in row.items() if isinstance(v, float)}
            table.add(keys, values)
        return table

    def render(
        self,
        columns: Sequence[str] | None = None,
        float_fmt: str = "{:,.1f}",
        max_rows: int | None = None,
    ) -> str:
        """Render an aligned plain-text table (bench harness output)."""
        if not self.records:
            return f"[{self.name}] (empty)"
        if columns is None:
            columns = list(self.records[0].keys) + list(self.records[0].values)
        rows: list[list[str]] = [list(columns)]
        shown = self.records if max_rows is None else self.records[:max_rows]
        for rec in shown:
            merged = rec.as_dict()
            cells = []
            for col in columns:
                value = merged.get(col, "")
                if isinstance(value, float):
                    cells.append(float_fmt.format(value))
                else:
                    cells.append(str(value))
            rows.append(cells)
        widths = [max(len(r[i]) for r in rows) for i in range(len(columns))]
        lines = []
        for i, row in enumerate(rows):
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)


def _json_default(obj: Any) -> Any:
    if isinstance(obj, Iterable):
        return list(obj)
    return str(obj)
