"""Core primitives: metrics, precisions, requests, sweeps and result tables."""

from repro.core.metrics import (
    InferenceMetrics,
    LatencyBreakdown,
    inter_token_latency,
    perf_per_watt,
    throughput_tokens_per_s,
)
from repro.core.precision import PRECISIONS, Precision, PrecisionSpec, precision_spec
from repro.core.request import GenerationConfig, GenerationRequest, RequestState
from repro.core.results import ResultRecord, ResultTable
from repro.core.sweep import Sweep, paper_batch_sweep, paper_length_sweep

__all__ = [
    "InferenceMetrics",
    "LatencyBreakdown",
    "inter_token_latency",
    "perf_per_watt",
    "throughput_tokens_per_s",
    "PRECISIONS",
    "Precision",
    "PrecisionSpec",
    "precision_spec",
    "GenerationConfig",
    "GenerationRequest",
    "RequestState",
    "ResultRecord",
    "ResultTable",
    "Sweep",
    "paper_batch_sweep",
    "paper_length_sweep",
]
