"""Accelerator registry reproducing the paper's Table II.

Datasheet numbers (memory, bandwidth, peak FLOPs, interconnect, TDP) come
from the vendor whitepapers the paper cites.  Behavioural parameters encode
the paper's qualitative findings per platform:

* **A100 / H100 / GH200** — well-tuned software stacks, high efficiency;
  H100/GH200 add native FP8; GH200 adds HBM3 bandwidth and more memory.
* **MI250 / MI300X** — "out-of-the-box without special optimization flags"
  (paper footnote 1), hence lower efficiency ceilings; MI250 additionally
  saturates early and *declines* past batch 32 (Fig. 17/35) due to the NUMA
  balancing / page-fault behaviour described in Section VI-2.
* **Gaudi2** — strong matmul efficiency from overlapped MME+TPC execution
  (beats A100, Section VI-4) but larger static workspaces and contiguous KV
  allocation, hitting OOM at batch 32/64 in several scenarios.
* **SN40L** — dataflow execution with aggressive kernel fusion (negligible
  per-layer overhead), a three-tier memory system, and a per-request
  pipeline-setup cost that yields the paper's high-TTFT / low-ITL signature
  (Figs. 21/22).
"""

from __future__ import annotations

import math

from repro.core.precision import Precision
from repro.hardware.spec import (
    GB,
    HardwareSpec,
    InterconnectSpec,
    MemoryTierSpec,
    Vendor,
)

__all__ = ["HARDWARE_ZOO", "get_hardware", "list_hardware", "register_hardware"]


def _precisions(*names: str) -> frozenset[Precision]:
    return frozenset(Precision(n) for n in names)


HARDWARE_ZOO: dict[str, HardwareSpec] = {}


def register_hardware(spec: HardwareSpec) -> HardwareSpec:
    """Add a platform to the registry, validating optimizer metadata.

    Cost-per-token and energy-per-token objectives
    (:mod:`repro.analysis.optimize`) must be computable for *every*
    registered platform, so registration rejects specs whose economic
    metadata is unusable: the hourly cost (explicit or TDP-derived) and
    board TDP must be positive finite numbers.  ``HardwareSpec`` already
    validates TDP > idle; this gate catches inf/NaN smuggled through
    floats.
    """
    key = spec.name.lower()
    if key in HARDWARE_ZOO:
        raise ValueError(f"hardware {spec.name!r} already registered")
    for label, value in (("hourly_cost", spec.hourly_cost), ("tdp_w", spec.tdp_w)):
        if not (math.isfinite(value) and value > 0):
            raise ValueError(
                f"{spec.name}: {label} must be positive and finite "
                f"(got {value}); cost/energy objectives need it"
            )
    HARDWARE_ZOO[key] = spec
    return spec


A100 = register_hardware(
    HardwareSpec(
        name="A100",
        vendor=Vendor.NVIDIA,
        devices_per_node=4,
        memory_per_device_bytes=40 * GB,
        memory_bandwidth_bytes_s=1.555e12,
        peak_fp16_tflops=312.0,
        supported_precisions=_precisions(
            "fp32", "tf32", "fp16", "bf16", "int8", "int4"
        ),
        interconnect=InterconnectSpec("NVLink3", 600.0, 2.0),
        tdp_w=400.0,
        idle_power_w=60.0,
        cost_per_hour=1.80,  # USD/device-h: Azure/Lambda A100-40GB on-demand band
        mfu_ceiling=0.55,
        bandwidth_efficiency=0.80,
        mfu_half_batch=4.0,
        layer_overhead_s=4.0e-6,
        step_overhead_s=40.0e-6,
    )
)

H100 = register_hardware(
    HardwareSpec(
        name="H100",
        vendor=Vendor.NVIDIA,
        devices_per_node=4,
        memory_per_device_bytes=80 * GB,
        memory_bandwidth_bytes_s=3.35e12,
        peak_fp16_tflops=989.0,
        supported_precisions=_precisions(
            "fp32", "tf32", "fp16", "bf16", "fp8", "int8", "int4"
        ),
        interconnect=InterconnectSpec("NVLink4", 900.0, 1.8),
        tdp_w=700.0,
        idle_power_w=80.0,
        cost_per_hour=3.90,  # USD/device-h: typical H100-80GB on-demand rate
        mfu_ceiling=0.60,
        bandwidth_efficiency=0.82,
        mfu_half_batch=6.0,
        layer_overhead_s=3.0e-6,
        step_overhead_s=35.0e-6,
    )
)

GH200 = register_hardware(
    HardwareSpec(
        name="GH200",
        vendor=Vendor.NVIDIA,
        devices_per_node=1,
        memory_per_device_bytes=96 * GB,
        memory_bandwidth_bytes_s=4.02e12,
        peak_fp16_tflops=989.0,
        supported_precisions=_precisions(
            "fp32", "tf32", "fp16", "bf16", "fp8", "int8", "int4"
        ),
        interconnect=InterconnectSpec("NVLink-C2C", 900.0, 1.5),
        tdp_w=900.0,
        idle_power_w=100.0,
        cost_per_hour=4.80,  # USD/device-h: GH200 96GB superchip hourly (Lambda band)
        mfu_ceiling=0.62,
        bandwidth_efficiency=0.84,
        mfu_half_batch=6.0,
        layer_overhead_s=3.0e-6,
        step_overhead_s=30.0e-6,
        # Grace CPU LPDDR5X accessible over NVLink-C2C: spill tier that lets
        # GH200 keep scaling batch where H100 would OOM ("3.5x more memory",
        # Section V-2).
        ddr_tier=MemoryTierSpec("lpddr5x", 480 * GB, 500e9),
    )
)

MI250 = register_hardware(
    HardwareSpec(
        name="MI250",
        vendor=Vendor.AMD,
        devices_per_node=4,
        memory_per_device_bytes=128 * GB,
        memory_bandwidth_bytes_s=3.2e12,
        peak_fp16_tflops=362.0,
        supported_precisions=_precisions("fp32", "fp16", "bf16", "int8"),
        interconnect=InterconnectSpec("InfinityFabric2", 350.0, 3.0),
        tdp_w=560.0,
        idle_power_w=90.0,
        cost_per_hour=1.90,  # USD/device-h: MI250 OAM hourly (Azure ND-series band)
        mfu_ceiling=0.42,
        bandwidth_efficiency=0.60,
        mfu_half_batch=5.0,
        layer_overhead_s=6.0e-6,
        step_overhead_s=60.0e-6,
        saturation_batch=32,
        saturation_slope=0.018,
    )
)

MI300X = register_hardware(
    HardwareSpec(
        name="MI300X",
        vendor=Vendor.AMD,
        devices_per_node=8,
        memory_per_device_bytes=192 * GB,
        memory_bandwidth_bytes_s=5.3e12,
        peak_fp16_tflops=1307.0,
        supported_precisions=_precisions("fp32", "fp16", "bf16", "fp8", "int8"),
        interconnect=InterconnectSpec("InfinityFabric3", 448.0, 2.5),
        tdp_w=750.0,
        idle_power_w=110.0,
        cost_per_hour=3.00,  # USD/device-h: MI300X on-demand band
        mfu_ceiling=0.48,
        bandwidth_efficiency=0.65,
        mfu_half_batch=6.0,
        layer_overhead_s=5.0e-6,
        step_overhead_s=50.0e-6,
        saturation_batch=48,
        saturation_slope=0.008,
    )
)

GAUDI2 = register_hardware(
    HardwareSpec(
        name="Gaudi2",
        vendor=Vendor.INTEL_HABANA,
        devices_per_node=8,
        memory_per_device_bytes=96 * GB,
        memory_bandwidth_bytes_s=2.46e12,
        peak_fp16_tflops=432.0,
        supported_precisions=_precisions("fp32", "fp16", "bf16", "fp8"),
        interconnect=InterconnectSpec("RoCEv2", 300.0, 5.0),
        tdp_w=600.0,
        idle_power_w=100.0,
        cost_per_hour=1.60,  # USD/device-h: AWS DL1-style per-device rate
        # Overlapped MME/TPC execution and many small matrix engines give
        # Gaudi2 a high achievable efficiency (beats A100, Section VI-4)...
        mfu_ceiling=0.66,
        bandwidth_efficiency=0.72,
        mfu_half_batch=4.0,
        layer_overhead_s=5.0e-6,
        step_overhead_s=60.0e-6,
        # ...but large static workspaces and contiguous max-length KV
        # reservations exhaust memory quickly (OOM at bs 32/64, footnote 1).
        memory_utilization=0.80,
        workspace_overhead_factor=0.35,
    )
)

SN40L = register_hardware(
    HardwareSpec(
        name="SN40L",
        vendor=Vendor.SAMBANOVA,
        devices_per_node=8,
        memory_per_device_bytes=64 * GB,
        memory_bandwidth_bytes_s=2.0e12,
        peak_fp16_tflops=638.0,
        supported_precisions=_precisions("fp32", "bf16", "int8"),
        interconnect=InterconnectSpec("Inter-RDU", 240.0, 4.0),
        tdp_w=700.0,
        idle_power_w=120.0,
        cost_per_hour=4.50,  # USD/device-h: SambaNova cloud estimate (no public rate)
        mfu_ceiling=0.58,
        bandwidth_efficiency=0.90,
        mfu_half_batch=3.0,
        # Dataflow fusion: whole layer groups execute as one fused pipeline,
        # so per-layer overhead nearly vanishes and decode is fast (low ITL,
        # Fig. 22)...
        layer_overhead_s=0.5e-6,
        step_overhead_s=15.0e-6,
        # ...but each request pays a pipeline setup/compile-dispatch cost,
        # the paper's high-TTFT signature (Fig. 21).
        request_setup_s=0.12,
        # Three-tier memory (Appendix B-6): 520 MiB on-chip SRAM at hundreds
        # of TB/s, HBM, and DDR spill capacity.
        sram_tier=MemoryTierSpec("sram", 520 * 1024**2, 25e12),
        ddr_tier=MemoryTierSpec("ddr", 1536 * GB, 200e9),
    )
)


def get_hardware(name: str) -> HardwareSpec:
    """Case-insensitive registry lookup with a helpful error."""
    key = name.lower()
    if key not in HARDWARE_ZOO:
        known = ", ".join(sorted(HARDWARE_ZOO))
        raise KeyError(f"unknown hardware {name!r}; known platforms: {known}")
    return HARDWARE_ZOO[key]


def list_hardware() -> list[str]:
    return [spec.name for spec in HARDWARE_ZOO.values()]
