"""Collective-communication cost models for intra-node parallelism.

Tensor parallelism issues all-reduces, pipeline parallelism point-to-point
activation sends, expert parallelism all-to-all token exchanges (paper
Section IV-C).  Costs follow the standard alpha-beta (latency-bandwidth)
model with ring-algorithm volume factors.
"""

from __future__ import annotations

from repro.hardware.spec import InterconnectSpec

__all__ = [
    "allreduce_time",
    "allgather_time",
    "reduce_scatter_time",
    "all_to_all_time",
    "p2p_time",
]


def _validate(message_bytes: float, num_devices: int) -> None:
    if message_bytes < 0:
        raise ValueError(f"message_bytes must be >= 0, got {message_bytes}")
    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices}")


def allreduce_time(
    link: InterconnectSpec, message_bytes: float, num_devices: int
) -> float:
    """Ring all-reduce: 2(n-1)/n of the message crosses each link."""
    _validate(message_bytes, num_devices)
    if num_devices == 1 or message_bytes == 0:
        return 0.0
    volume = 2.0 * (num_devices - 1) / num_devices * message_bytes
    hops = 2 * (num_devices - 1)
    return volume / link.bandwidth_bytes_s + hops * link.latency_s


def allgather_time(
    link: InterconnectSpec, message_bytes: float, num_devices: int
) -> float:
    """Ring all-gather of per-device shards totalling ``message_bytes``."""
    _validate(message_bytes, num_devices)
    if num_devices == 1 or message_bytes == 0:
        return 0.0
    volume = (num_devices - 1) / num_devices * message_bytes
    return volume / link.bandwidth_bytes_s + (num_devices - 1) * link.latency_s


def reduce_scatter_time(
    link: InterconnectSpec, message_bytes: float, num_devices: int
) -> float:
    """Ring reduce-scatter; same volume shape as all-gather."""
    return allgather_time(link, message_bytes, num_devices)


def all_to_all_time(
    link: InterconnectSpec, message_bytes: float, num_devices: int
) -> float:
    """All-to-all exchange (expert parallelism's token shuffle).

    Each device keeps 1/n of its data and sends the rest; pairwise exchange
    needs n-1 rounds of latency.
    """
    _validate(message_bytes, num_devices)
    if num_devices == 1 or message_bytes == 0:
        return 0.0
    volume = (num_devices - 1) / num_devices * message_bytes
    return volume / link.bandwidth_bytes_s + (num_devices - 1) * link.latency_s


def p2p_time(link: InterconnectSpec, message_bytes: float) -> float:
    """One point-to-point transfer (pipeline-parallel activation handoff)."""
    if message_bytes < 0:
        raise ValueError(f"message_bytes must be >= 0, got {message_bytes}")
    if message_bytes == 0:
        return 0.0
    return message_bytes / link.bandwidth_bytes_s + link.latency_s
