"""Accelerator power model and a pynvml-compatible measurement shim.

The paper reports *average power* (total energy / total time) of the
accelerators only, measured via pynvml on Nvidia GPUs (Section III-5e).
We model instantaneous device power as

    P(u) = idle + (TDP - idle) * u**gamma

where ``u`` is the roofline utilization of the busiest leg (compute or
memory) and ``gamma < 1`` reflects that memory-bound phases still burn
substantial dynamic power.  The ``PynvmlLikeMonitor`` mimics the pynvml
sampling API the paper's harness uses, so the measurement code path is
exercised realistically (sampled integration, not closed form).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.spec import HardwareSpec

__all__ = ["PowerModel", "PowerSample", "PynvmlLikeMonitor"]

_GAMMA = 0.70


@dataclass(frozen=True)
class PowerModel:
    """Utilization -> watts mapping for one accelerator group."""

    spec: HardwareSpec
    num_devices: int = 1
    gamma: float = _GAMMA

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if not 0 < self.gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")

    def device_power_w(self, utilization: float) -> float:
        """Instantaneous power of one device at a utilization in [0, 1]."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        dynamic = self.spec.tdp_w - self.spec.idle_power_w
        return self.spec.idle_power_w + dynamic * utilization**self.gamma

    def group_power_w(self, utilization: float) -> float:
        """Instantaneous power of the whole TP/PP group."""
        return self.num_devices * self.device_power_w(utilization)

    def average_power_w(
        self, phase_durations_s: list[float], phase_utilizations: list[float]
    ) -> float:
        """Energy-weighted average power over a sequence of phases."""
        if len(phase_durations_s) != len(phase_utilizations):
            raise ValueError("durations and utilizations must align")
        if not phase_durations_s:
            raise ValueError("need at least one phase")
        total_time = sum(phase_durations_s)
        if total_time <= 0:
            raise ValueError("total duration must be positive")
        energy = sum(
            t * self.group_power_w(u)
            for t, u in zip(phase_durations_s, phase_utilizations)
        )
        return energy / total_time


@dataclass(frozen=True)
class PowerSample:
    """One power reading, mirroring nvmlDeviceGetPowerUsage semantics."""

    timestamp_s: float
    power_mw: float  # pynvml reports milliwatts


@dataclass
class PynvmlLikeMonitor:
    """Sampling power monitor with the shape of the paper's pynvml loop.

    The benchmark harness drives it with (time, utilization) updates from
    the simulator clock; ``average_power_w`` integrates the samples with a
    trapezoidal rule, exactly like a wall-clock sampling thread would.
    """

    model: PowerModel
    samples: list[PowerSample] = field(default_factory=list)

    def sample(self, timestamp_s: float, utilization: float) -> PowerSample:
        if self.samples and timestamp_s < self.samples[-1].timestamp_s:
            raise ValueError("samples must be recorded in time order")
        reading = PowerSample(
            timestamp_s=timestamp_s,
            power_mw=self.model.group_power_w(utilization) * 1000.0,
        )
        self.samples.append(reading)
        return reading

    def average_power_w(self) -> float:
        if len(self.samples) < 2:
            raise RuntimeError("need at least two samples to average power")
        energy_mj = 0.0
        for prev, cur in zip(self.samples, self.samples[1:]):
            dt = cur.timestamp_s - prev.timestamp_s
            energy_mj += 0.5 * (prev.power_mw + cur.power_mw) * dt
        span = self.samples[-1].timestamp_s - self.samples[0].timestamp_s
        if span <= 0:
            raise RuntimeError("samples span zero time")
        return energy_mj / span / 1000.0

    def reset(self) -> None:
        self.samples.clear()
