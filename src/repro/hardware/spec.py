"""Hardware accelerator specification (the paper's Table II schema).

A :class:`HardwareSpec` combines the *public datasheet numbers* (peak
FLOPs, memory capacity/bandwidth, interconnect) with a small set of
*behavioural parameters* that encode each platform's documented execution
character — e.g. the MI250's early batch saturation (Section VI-2), the
SN40L's three-tier memory and per-call pipeline setup cost (Section VI-3),
and Gaudi2's overlapped MME/TPC execution (Section VI-4).  The behavioural
parameters are the simulator's only free calibration knobs and are set once
in :mod:`repro.hardware.zoo`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.precision import Precision, precision_spec

__all__ = ["Vendor", "InterconnectSpec", "MemoryTierSpec", "HardwareSpec"]

GB = 1024.0**3
TB = 1024.0**4

# Default amortized fleet cost, USD per device-kW-hour, used when a spec
# carries no explicit ``cost_per_hour``.  Covers energy + amortized capex +
# hosting at a flat rate proportional to board TDP — a deliberately crude
# fallback so cost-per-token objectives stay computable for ad-hoc specs;
# every entry in :mod:`repro.hardware.zoo` sets an explicit market rate.
DEFAULT_USD_PER_KW_HOUR = 3.0


class Vendor(str, enum.Enum):
    NVIDIA = "nvidia"
    AMD = "amd"
    INTEL_HABANA = "intel-habana"
    SAMBANOVA = "sambanova"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class InterconnectSpec:
    """Inter-device fabric within a node (NVLink, Infinity Fabric, ...)."""

    name: str
    bandwidth_gb_s: float  # per-direction aggregate bandwidth per device
    latency_us: float  # per-hop latency

    def __post_init__(self) -> None:
        if self.bandwidth_gb_s <= 0:
            raise ValueError("interconnect bandwidth must be positive")
        if self.latency_us < 0:
            raise ValueError("interconnect latency must be >= 0")

    @property
    def bandwidth_bytes_s(self) -> float:
        return self.bandwidth_gb_s * 1e9

    @property
    def latency_s(self) -> float:
        return self.latency_us * 1e-6


@dataclass(frozen=True)
class MemoryTierSpec:
    """One tier of a device's memory hierarchy.

    GPUs have a single HBM tier; the SN40L has three (SRAM / HBM / DDR,
    Section VI-3 and Appendix B-6).  ``capacity_bytes`` of the *first* tier
    bounds what executes at full ``bandwidth_bytes_s``; working sets
    spilling to later tiers run at those tiers' bandwidth.
    """

    name: str
    capacity_bytes: float
    bandwidth_bytes_s: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"tier {self.name}: capacity must be positive")
        if self.bandwidth_bytes_s <= 0:
            raise ValueError(f"tier {self.name}: bandwidth must be positive")


@dataclass(frozen=True)
class HardwareSpec:
    """One accelerator platform, as deployed in the paper's testbed."""

    name: str
    vendor: Vendor
    devices_per_node: int
    memory_per_device_bytes: float
    memory_bandwidth_bytes_s: float  # first (fastest bulk) tier
    peak_fp16_tflops: float  # dense tensor-core rate per device
    supported_precisions: frozenset[Precision]
    interconnect: InterconnectSpec
    tdp_w: float
    idle_power_w: float

    # ---- behavioural parameters (calibration knobs) ----
    # Peak fraction of tensor throughput achievable by a perfectly tuned
    # kernel at saturation ("model FLOPs utilization" ceiling).
    mfu_ceiling: float = 0.60
    # Fraction of datasheet HBM bandwidth achievable by streaming kernels.
    bandwidth_efficiency: float = 0.80
    # Batch size at which the compute-efficiency curve reaches half of its
    # ceiling (small batches underutilize tensor cores).
    mfu_half_batch: float = 4.0
    # Per-transformer-layer fixed overhead (kernel launches, sync), seconds.
    layer_overhead_s: float = 4.0e-6
    # Per-forward-pass fixed overhead (scheduler iteration, host work).
    step_overhead_s: float = 30.0e-6
    # Batch beyond which contention degrades efficiency (MI250's page-fault
    # behaviour); None disables.
    saturation_batch: int | None = None
    # Fractional efficiency loss per sequence beyond saturation_batch.
    saturation_slope: float = 0.0
    # Per-request pipeline/compile setup charged at prefill (SN40L TTFT).
    request_setup_s: float = 0.0
    # Additional memory tiers beyond HBM (SN40L: SRAM before, DDR after).
    sram_tier: MemoryTierSpec | None = None
    ddr_tier: MemoryTierSpec | None = None
    # Fraction of device memory usable for weights+KV (frameworks reserve
    # workspace; vLLM defaults to 0.9).
    memory_utilization: float = 0.90
    # Activation/workspace overhead per sequence-token of context, as a
    # multiplier on KV bytes (Gaudi2's larger static workspaces).
    workspace_overhead_factor: float = 0.05

    # ---- fleet economics (optimizer metadata) ----
    # Amortized per-device cost in USD/hour (on-demand cloud rate or
    # amortized capex + power + hosting).  ``None`` falls back to the
    # documented TDP-proportional default (``DEFAULT_USD_PER_KW_HOUR``);
    # registry entries set explicit rates, validated at registration.
    cost_per_hour: float | None = None

    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.devices_per_node < 1:
            raise ValueError("devices_per_node must be >= 1")
        if self.memory_per_device_bytes <= 0:
            raise ValueError("device memory must be positive")
        if self.memory_bandwidth_bytes_s <= 0:
            raise ValueError("memory bandwidth must be positive")
        if self.peak_fp16_tflops <= 0:
            raise ValueError("peak FLOPs must be positive")
        if not 0 < self.mfu_ceiling <= 1:
            raise ValueError("mfu_ceiling must be in (0, 1]")
        if not 0 < self.bandwidth_efficiency <= 1:
            raise ValueError("bandwidth_efficiency must be in (0, 1]")
        if not 0 < self.memory_utilization <= 1:
            raise ValueError("memory_utilization must be in (0, 1]")
        if self.idle_power_w < 0 or self.tdp_w <= self.idle_power_w:
            raise ValueError("need 0 <= idle power < TDP")
        if self.cost_per_hour is not None and not self.cost_per_hour > 0:
            raise ValueError(
                f"{self.name}: cost_per_hour must be positive, "
                f"got {self.cost_per_hour}"
            )
        if Precision.FP16 not in self.supported_precisions and (
            Precision.BF16 not in self.supported_precisions
        ):
            raise ValueError(f"{self.name}: must support a 16-bit format")

    # ------------------------------------------------------------------

    def supports(self, precision: Precision | str) -> bool:
        if isinstance(precision, str):
            precision = Precision(precision.lower())
        if precision in self.supported_precisions:
            return True
        # FP16/BF16 are interchangeable 16-bit tensor formats (SN40L and
        # Gaudi2 quote BF16; Nvidia/AMD quote both at the same rate).
        sixteen = {Precision.FP16, Precision.BF16}
        return precision in sixteen and bool(sixteen & self.supported_precisions)

    def peak_flops(self, precision: Precision | str = Precision.FP16) -> float:
        """Peak dense matmul FLOP/s per device at a precision.

        Natively supported sub-16-bit formats run at their accelerated
        rate; unsupported ones fall back to the FP16 rate (weights are
        dequantized on the fly — the A100-INT8-via-FP16 path of Fig. 3).
        """
        spec = precision_spec(precision)
        base = self.peak_fp16_tflops * 1e12
        if self.supports(spec.precision):
            return base * spec.matmul_speedup
        return base

    @property
    def total_node_memory_bytes(self) -> float:
        return self.devices_per_node * self.memory_per_device_bytes

    @property
    def node_memory_gb(self) -> float:
        return self.total_node_memory_bytes / GB

    def usable_memory_bytes(self, num_devices: int) -> float:
        """Memory available for weights + KV across a TP/PP group."""
        if not 1 <= num_devices <= self.devices_per_node:
            raise ValueError(
                f"{self.name}: {num_devices} devices requested, node has "
                f"{self.devices_per_node}"
            )
        return num_devices * self.memory_per_device_bytes * self.memory_utilization

    @property
    def hourly_cost(self) -> float:
        """Per-device USD/hour: explicit rate or the TDP-derived default.

        The fallback prices a device at ``DEFAULT_USD_PER_KW_HOUR`` per
        kilowatt of board TDP, so cost-per-token objectives are always
        computable; boards with an explicit ``cost_per_hour`` (every zoo
        entry) use the market rate instead.
        """
        if self.cost_per_hour is not None:
            return self.cost_per_hour
        return self.tdp_w / 1000.0 * DEFAULT_USD_PER_KW_HOUR

    @property
    def effective_bandwidth_bytes_s(self) -> float:
        return self.memory_bandwidth_bytes_s * self.bandwidth_efficiency

    @property
    def has_tiered_memory(self) -> bool:
        return self.sram_tier is not None or self.ddr_tier is not None
