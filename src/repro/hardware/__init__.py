"""Hardware platforms: Table II registry, roofline, memory, power models."""

from repro.hardware.energy import EnergyReport, energy_report
from repro.hardware.interconnect import (
    all_to_all_time,
    allgather_time,
    allreduce_time,
    p2p_time,
    reduce_scatter_time,
)
from repro.hardware.memory import MemoryFootprint, MemoryModel
from repro.hardware.power import PowerModel, PowerSample, PynvmlLikeMonitor
from repro.hardware.roofline import (
    compute_time,
    memory_time,
    mfu_at_batch,
    roofline_time,
    saturation_penalty,
)
from repro.hardware.spec import (
    GB,
    TB,
    HardwareSpec,
    InterconnectSpec,
    MemoryTierSpec,
    Vendor,
)
from repro.hardware.zoo import (
    HARDWARE_ZOO,
    get_hardware,
    list_hardware,
    register_hardware,
)

__all__ = [
    "EnergyReport",
    "energy_report",
    "all_to_all_time",
    "allgather_time",
    "allreduce_time",
    "p2p_time",
    "reduce_scatter_time",
    "MemoryFootprint",
    "MemoryModel",
    "PowerModel",
    "PowerSample",
    "PynvmlLikeMonitor",
    "compute_time",
    "memory_time",
    "mfu_at_batch",
    "roofline_time",
    "saturation_penalty",
    "GB",
    "TB",
    "HardwareSpec",
    "InterconnectSpec",
    "MemoryTierSpec",
    "Vendor",
    "HARDWARE_ZOO",
    "get_hardware",
    "list_hardware",
    "register_hardware",
]
