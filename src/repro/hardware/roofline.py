"""Roofline primitives: efficiency curves and compute/memory leg times.

The analytical model treats every phase as ``max(compute leg, memory leg)``
plus fixed overheads.  This module supplies:

* ``mfu_at_batch`` — achieved fraction of peak FLOPs as a function of batch
  (tensor cores need large GEMMs to approach peak; the curve saturates at
  the hardware's ``mfu_ceiling`` scaled by the framework's kernel quality);
* ``saturation_penalty`` — the super-linear contention factor that makes
  MI250 throughput *decline* past batch 32 (Fig. 17/35);
* ``compute_time`` / ``memory_time`` / ``roofline_time`` — leg evaluation.
"""

from __future__ import annotations

import math

from repro.hardware.spec import HardwareSpec

__all__ = [
    "mfu_at_batch",
    "saturation_penalty",
    "compute_time",
    "memory_time",
    "roofline_time",
]


def mfu_at_batch(
    spec: HardwareSpec,
    batch_tokens: float,
    kernel_quality: float = 1.0,
) -> float:
    """Achieved fraction of peak FLOPs for a GEMM over ``batch_tokens`` rows.

    A saturating curve ``ceiling * B / (B + B_half)``: one row uses a sliver
    of the tensor pipes, large batches approach the ceiling.  For prefill,
    ``batch_tokens`` is batch x sequence length, which is why prefill runs
    near peak even at batch 1.  ``kernel_quality`` is the framework's
    multiplier (TRT-LLM ~1.0, llama.cpp well below — Section VI-1).
    """
    if batch_tokens <= 0:
        raise ValueError(f"batch_tokens must be positive, got {batch_tokens}")
    if not 0 < kernel_quality <= 1.2:
        raise ValueError(f"kernel_quality out of range: {kernel_quality}")
    curve = batch_tokens / (batch_tokens + spec.mfu_half_batch)
    return min(1.0, spec.mfu_ceiling * kernel_quality) * curve


def saturation_penalty(spec: HardwareSpec, batch_size: int) -> float:
    """Multiplicative slowdown for batches beyond the contention knee.

    Models the MI250 behaviour of Section VI-2: NUMA balancing forces the
    GPU to wait on the memory-management notifier, so beyond a batch size
    the per-step time grows faster than the work does.  Returns >= 1.0.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if spec.saturation_batch is None or batch_size <= spec.saturation_batch:
        return 1.0
    excess = batch_size - spec.saturation_batch
    return 1.0 + spec.saturation_slope * excess


def compute_time(flops: float, peak_flops_per_s: float, mfu: float) -> float:
    """Seconds to execute ``flops`` at ``mfu`` fraction of peak."""
    if flops < 0:
        raise ValueError(f"flops must be >= 0, got {flops}")
    if peak_flops_per_s <= 0 or not 0 < mfu <= 1:
        raise ValueError("need positive peak FLOPs and mfu in (0, 1]")
    return flops / (peak_flops_per_s * mfu)


def memory_time(bytes_moved: float, bandwidth_bytes_s: float) -> float:
    """Seconds to stream ``bytes_moved`` at the given effective bandwidth."""
    if bytes_moved < 0:
        raise ValueError(f"bytes_moved must be >= 0, got {bytes_moved}")
    if bandwidth_bytes_s <= 0:
        raise ValueError("bandwidth must be positive")
    return bytes_moved / bandwidth_bytes_s


def roofline_time(
    flops: float,
    bytes_moved: float,
    peak_flops_per_s: float,
    mfu: float,
    bandwidth_bytes_s: float,
    overlap: float = 1.0,
) -> float:
    """Combined kernel time under partial compute/memory overlap.

    ``overlap=1`` is the ideal roofline ``max(legs)``; ``overlap=0`` is
    fully serialized ``sum(legs)``.  Real kernels sit near 1; frameworks
    with poor pipelining (llama.cpp) sit lower.
    """
    if not 0.0 <= overlap <= 1.0:
        raise ValueError(f"overlap must be in [0, 1], got {overlap}")
    t_compute = compute_time(flops, peak_flops_per_s, mfu)
    t_memory = memory_time(bytes_moved, bandwidth_bytes_s)
    lo, hi = min(t_compute, t_memory), max(t_compute, t_memory)
    # overlap blends between max (hi) and sum (hi + lo).
    return hi + (1.0 - overlap) * lo


def _check_finite(value: float, name: str) -> None:
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
