"""Energy accounting: joules per token and per request.

The paper reports average power and performance-per-watt for Nvidia GPUs
and notes that "these measurements on other hardware are planned for future
work" (Section III-5e).  This module closes that gap in the simulator: with
the utilization-based power model available for every platform, energy
integrals come for free, enabling the energy-per-token comparisons the
paper defers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import InferenceMetrics

__all__ = ["EnergyReport", "energy_report"]


@dataclass(frozen=True)
class EnergyReport:
    """Energy view of one benchmark point."""

    total_energy_j: float
    tokens: int
    requests: int
    average_power_w: float

    def __post_init__(self) -> None:
        if self.total_energy_j < 0:
            raise ValueError("energy must be >= 0")
        if self.tokens < 1 or self.requests < 1:
            raise ValueError("tokens and requests must be >= 1")

    @property
    def joules_per_token(self) -> float:
        return self.total_energy_j / self.tokens

    @property
    def joules_per_request(self) -> float:
        return self.total_energy_j / self.requests

    @property
    def tokens_per_joule(self) -> float:
        return self.tokens / self.total_energy_j

    @property
    def watt_hours(self) -> float:
        return self.total_energy_j / 3600.0

    def scaled_to_requests(self, requests_per_day: float) -> float:
        """Projected daily energy (kWh) at a sustained request rate."""
        if requests_per_day <= 0:
            raise ValueError("requests_per_day must be positive")
        return self.joules_per_request * requests_per_day / 3.6e6


def energy_report(metrics: InferenceMetrics) -> EnergyReport:
    """Energy view of an estimator/engine result.

    Energy = average power x end-to-end time; tokens follow the paper's
    Eq. 2 numerator (input + output across the batch).
    """
    if metrics.oom:
        raise ValueError("cannot account energy for an OOM configuration")
    if metrics.average_power_w is None:
        raise ValueError("metrics carry no power estimate")
    tokens = metrics.batch_size * (metrics.input_tokens + metrics.output_tokens)
    energy = metrics.average_power_w * metrics.end_to_end_latency_s
    return EnergyReport(
        total_energy_j=energy,
        tokens=tokens,
        requests=metrics.batch_size,
        average_power_w=metrics.average_power_w,
    )
