"""Device memory-system model, including the SN40L's three-tier hierarchy.

Two jobs:

1. **Capacity accounting** (`MemoryModel.fits`, `max_concurrent_sequences`):
   does a deployment's weights + KV + workspace fit, and how many sequences
   can be resident at once?  This single mechanism produces several of the
   paper's headline results — LLaMA-3-70B scales 39x with batch on H100 but
   only 3x on A100 (a 140 GB fp16 model leaves almost no KV room in
   4x40 GB), llama.cpp 70B excluded on A100 (Fig. 32), Gaudi2's OOM at
   batch 32/64.

2. **Tiered streaming bandwidth** (`effective_stream_bandwidth`): on the
   SN40L the first 520 MiB of a working set streams from SRAM at tens of
   TB/s and spill beyond HBM capacity runs at DDR speed.  The blended
   bandwidth is the harmonic composition of the portions served per tier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.spec import HardwareSpec, MemoryTierSpec

__all__ = ["MemoryFootprint", "MemoryModel"]


@dataclass(frozen=True)
class MemoryFootprint:
    """Bytes a deployment pins on the accelerator group."""

    weight_bytes: float
    kv_bytes: float
    workspace_bytes: float

    def __post_init__(self) -> None:
        for name in ("weight_bytes", "kv_bytes", "workspace_bytes"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def total_bytes(self) -> float:
        return self.weight_bytes + self.kv_bytes + self.workspace_bytes


class MemoryModel:
    """Capacity and bandwidth queries for a (hardware, device-count) group."""

    def __init__(self, spec: HardwareSpec, num_devices: int) -> None:
        if not 1 <= num_devices <= spec.devices_per_node:
            raise ValueError(
                f"{spec.name}: requested {num_devices} devices, node has "
                f"{spec.devices_per_node}"
            )
        self.spec = spec
        self.num_devices = num_devices

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def usable_bytes(self) -> float:
        """HBM bytes available for weights + KV + workspace.

        A DDR spill tier (GH200's Grace memory, SN40L's DDR) extends
        *capacity* — at reduced bandwidth, which
        :meth:`effective_stream_bandwidth` accounts for separately.
        """
        hbm = self.spec.usable_memory_bytes(self.num_devices)
        if self.spec.ddr_tier is not None:
            hbm += self.spec.ddr_tier.capacity_bytes * self.spec.memory_utilization
        return hbm

    @property
    def hbm_bytes(self) -> float:
        return self.spec.usable_memory_bytes(self.num_devices)

    def fits(self, footprint: MemoryFootprint) -> bool:
        return footprint.total_bytes <= self.usable_bytes

    def kv_budget_bytes(self, weight_bytes: float, workspace_bytes: float) -> float:
        """Bytes left for KV cache after weights and workspace."""
        return max(0.0, self.usable_bytes - weight_bytes - workspace_bytes)

    def max_concurrent_sequences(
        self,
        weight_bytes: float,
        kv_bytes_per_sequence: float,
        workspace_bytes_per_sequence: float = 0.0,
    ) -> int:
        """How many sequences can hold KV residence simultaneously.

        This bounds the *effective* batch a continuous-batching scheduler
        can run; a nominal batch of 64 on a memory-starved deployment
        executes as waves of this size (Section V-1's H100-vs-A100 70B
        scaling contrast).
        """
        if kv_bytes_per_sequence <= 0:
            raise ValueError("kv_bytes_per_sequence must be positive")
        budget = self.kv_budget_bytes(weight_bytes, 0.0)
        per_seq = kv_bytes_per_sequence + workspace_bytes_per_sequence
        return int(budget // per_seq)

    # ------------------------------------------------------------------
    # Bandwidth
    # ------------------------------------------------------------------

    def _tiers(self) -> list[MemoryTierSpec]:
        """Fastest-first tier list for one device."""
        tiers: list[MemoryTierSpec] = []
        if self.spec.sram_tier is not None:
            tiers.append(self.spec.sram_tier)
        tiers.append(
            MemoryTierSpec(
                "hbm",
                self.spec.memory_per_device_bytes,
                self.spec.effective_bandwidth_bytes_s,
            )
        )
        if self.spec.ddr_tier is not None:
            tiers.append(self.spec.ddr_tier)
        return tiers

    def effective_stream_bandwidth(self, working_set_bytes: float) -> float:
        """Aggregate bandwidth streaming a working set once per step.

        The working set is split across the group's devices; per device,
        the first ``sram.capacity`` bytes stream from SRAM, the next
        ``hbm.capacity`` from HBM, the rest from DDR.  The blended rate is
        ``total / sum(portion_i / bw_i)`` (harmonic), times the device
        count.  Oversized working sets degrade smoothly to DDR speed —
        this produces the SN40L's length-dependent behaviour (Fig. 18/19).
        """
        if working_set_bytes <= 0:
            raise ValueError("working_set_bytes must be positive")
        per_device = working_set_bytes / self.num_devices
        remaining = per_device
        time = 0.0
        for tier in self._tiers():
            if remaining <= 0:
                break
            if tier.name == "sram":
                portion = min(remaining, tier.capacity_bytes)
                bw = tier.bandwidth_bytes_s
            elif tier.name == "hbm":
                portion = min(remaining, tier.capacity_bytes)
                bw = tier.bandwidth_bytes_s
            else:  # ddr spill
                portion = remaining
                bw = tier.bandwidth_bytes_s
            time += portion / bw
            remaining -= portion
        if remaining > 0:
            # No DDR tier: the last tier absorbs the remainder at its rate.
            time += remaining / self._tiers()[-1].bandwidth_bytes_s
        return per_device / time * self.num_devices
