"""Fig. 16: power consumption and throughput per watt (Section VI-1)."""


def test_fig16_power_and_efficiency(reproduce):
    result = reproduce("fig16")
    assert result.measured["trtllm_power_over_vllm_a100"] > 1.0
    assert result.measured["trtllm_perf_per_watt_over_vllm"] > 1.0
