"""Figs. 11/12: DeepSpeed-MII behaviour (Section V-3)."""


def test_fig11_gqa_oblivious_ordering(reproduce):
    result = reproduce("fig11")
    assert result.measured["llama2_over_llama3_bs64_len128"] > 1.0


def test_fig12_mixtral_crossover(reproduce):
    result = reproduce("fig12")
    assert result.measured["dsmii_over_vllm_bs64_len2048"] > 0.95
