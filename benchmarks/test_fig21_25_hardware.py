"""Figs. 21-25: cross-hardware latency/throughput panels (Section VII-2)."""


def test_fig21_ttft(reproduce):
    result = reproduce("fig21")
    assert result.measured["sn40l_ttft_over_worst_gpu"] > 1.5


def test_fig22_itl(reproduce):
    result = reproduce("fig22")
    assert result.measured["sn40l_itl_over_best_gpu"] < 1.0


def test_fig23_batch_panel(reproduce):
    result = reproduce("fig23")
    assert result.measured["sn40l_best_up_to_bs32"] > 0.95


def test_fig24_length_panel(reproduce):
    result = reproduce("fig24")
    assert result.measured["sn40l_len512_over_len128"] > 1.0


def test_fig25_peak_performance(reproduce):
    result = reproduce("fig25")
    assert result.measured["h100_peak_over_a100"] > 1.4
