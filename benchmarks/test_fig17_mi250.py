"""Figs. 17/35/36/37: MI250 saturation and orderings (Section VI-2)."""


def test_fig17_early_saturation(reproduce):
    result = reproduce("fig17")
    assert result.measured["bs64_over_bs32_at_1024"] < 1.0


def test_fig35_vllm_7b(reproduce):
    result = reproduce("fig35")
    assert result.measured["llama3_bs64_over_bs32"] < 1.0


def test_fig36_llamacpp_7b(reproduce):
    result = reproduce("fig36")
    assert result.measured["llama2_over_best_gqa"] > 0.95


def test_fig37_vllm_70b(reproduce):
    result = reproduce("fig37")
    assert result.measured["mixtral_over_best_dense_70b"] > 1.0
