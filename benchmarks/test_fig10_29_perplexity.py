"""Figs. 10/29: perplexity vs throughput on the LongBench mix."""


def test_fig10_a100_tradeoff(reproduce):
    result = reproduce("fig10")
    assert 0.0 < result.measured["mistral_ppl_minus_llama2"] < 0.3


def test_fig29_h100_tradeoff(reproduce):
    result = reproduce("fig29")
    assert result.measured["decilm_highest_throughput"] > 1.0


def test_longbench_tokenizer_effect(reproduce):
    result = reproduce("longbench")
    assert result.measured["small_vocab_tokens_over_large"] > 1.2
