"""Benches for the cross-run replication layer (repro.experiments).

The statistics layer sits between every seed sweep and every published
number, so its cost has to stay negligible next to the simulations it
summarizes — these benches pin the reduction/bootstrap overhead and keep
an end-to-end replicated A/B honest about total wall time.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import (
    ExperimentSpec,
    WorkloadSpec,
    compare_replications,
    reduce_seed_results,
    run_replication,
    summarize_samples,
)


def _spec(name: str, **overrides) -> ExperimentSpec:
    base = dict(
        name=name,
        model="llama-2-7b",
        hardware="h100",
        framework="vllm",
        workload=WorkloadSpec(
            kind="open_loop",
            num_requests=8,
            input_tokens=128,
            output_tokens=48,
            rate_rps=4.0,
        ),
        seeds=(0, 1, 2),
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def test_bench_bootstrap_summary(benchmark):
    """2000-resample bootstrap CI over a realistic per-seed sample set."""
    rng = np.random.default_rng(0)
    samples = list(rng.lognormal(0.0, 0.3, size=16))

    summary = benchmark(
        lambda: summarize_samples("ttft_p50_s", samples, method="bootstrap")
    )
    assert summary.ci_lo < summary.mean < summary.ci_hi


def test_bench_seed_reduction(benchmark):
    """Reducing per-seed metric dicts into CI summaries (the hot reducer)."""
    spec = _spec("reduce")
    report = run_replication(spec)
    seed_results = report.seed_results

    reduced = benchmark(lambda: reduce_seed_results(spec, seed_results))
    assert reduced.summaries.keys() == report.summaries.keys()


def test_bench_replicated_ab(benchmark):
    """End-to-end A/B: two 3-seed replications plus paired significance.

    The fp8-vs-fp16 contrast the acceptance tests golden; wall time here
    is dominated by the six engine runs, bounding what an `experiment
    compare` invocation costs users.
    """

    def run():
        a = run_replication(_spec("fp16"))
        b = run_replication(_spec("fp8", quant="fp8"))
        return compare_replications(a, b)

    comparison = benchmark(run)
    assert comparison.paired
    assert "itl_mean_s" in comparison.significant_metrics()
