#!/usr/bin/env python
"""Standalone entry point for the step-cost kernel benchmark harness.

Equivalent to ``llm-inference-bench bench`` — kept as a plain script so the
harness runs from a checkout without installing the package::

    PYTHONPATH=src python benchmarks/run_bench.py [--reduced] \
        [--baseline benchmarks/baseline.json]

See docs/performance.md for what each benchmark measures and how the CI
regression gate uses ``benchmarks/baseline.json``.  The harness also
reports ``profiler_overhead`` — the cost of running the engine with the
cost-attribution profiler on (docs/observability.md); the regression gate
itself stays on the unprofiled engine iteration rate.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
