"""Tables I-III: configuration fidelity checks."""


def test_table1_models(reproduce):
    result = reproduce("tab1")
    assert result.measured["config_mismatches"] == 0.0


def test_table2_hardware(reproduce):
    result = reproduce("tab2")
    assert result.measured["memory_mismatches"] == 0.0


def test_table3_support_matrix(reproduce):
    result = reproduce("tab3")
    assert result.measured["support_mismatches"] == 0.0
