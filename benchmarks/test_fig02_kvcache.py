"""Fig. 2: KV caching (plain and blocked/paged, Section IV-B1/B2)."""


def test_fig2a_kv_cache_benefit(reproduce):
    result = reproduce("fig2a")
    assert result.measured["kv_speedup_at_1024"] > result.measured["kv_speedup_at_128"] > 1.0


def test_fig2b_block_size(reproduce):
    result = reproduce("fig2b")
    assert result.measured["block16_over_block8_bs64"] > 1.1
