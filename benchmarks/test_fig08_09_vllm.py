"""Figs. 8/9: vLLM across hardware (Section V-2)."""


def test_fig8_7b_models(reproduce):
    result = reproduce("fig8")
    assert result.measured["gh200_over_h100"] > 1.0


def test_fig9_70b_models(reproduce):
    result = reproduce("fig9")
    assert result.measured["mixtral_over_llama2_70b"] > 1.0
