"""Fig. 5: TP vs PP vs EP vs hybrid on 4 A100s (Section IV-C)."""


def test_fig5a_dense_parallelism(reproduce):
    result = reproduce("fig5a")
    assert result.measured["tp_over_pp"] > result.measured["tp_over_hybrid"] > 1.0


def test_fig5b_moe_parallelism(reproduce):
    result = reproduce("fig5b")
    assert result.measured["tp_over_pp_moe"] > 1.0
