"""Figs. 13/14/32: llama.cpp behaviour (Section V-4, Appendix E-C)."""


def test_fig13_device_scaling(reproduce):
    result = reproduce("fig13")
    assert result.measured["a100_scaling_1_to_4_gpus"] < 2.0


def test_fig14_mhsa_beats_gqa(reproduce):
    result = reproduce("fig14")
    assert result.measured["llama2_over_llama3"] > 1.0


def test_fig32_70b_models(reproduce):
    result = reproduce("fig32")
    assert result.measured["llama2_70b_a100_oom"] == 1.0
