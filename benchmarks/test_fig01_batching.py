"""Fig. 1: batch-size and blended-token throughput scaling (Section IV-A)."""


def test_fig1a_batch_scaling(reproduce):
    result = reproduce("fig1a")
    assert result.measured["bs64_over_bs1_at_2048"] > 10.0


def test_fig1b_blended_tokens(reproduce):
    result = reproduce("fig1b")
    assert result.measured["in1024_out128_over_in128_out1024"] > 4.0
