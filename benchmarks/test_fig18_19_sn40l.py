"""Figs. 18/19: SambaNova SN40L vs GPU nodes (Section VI-3)."""


def test_fig18_7b_models(reproduce):
    result = reproduce("fig18")
    assert result.measured["sn40l_len512_over_len128"] > 1.0


def test_fig19_70b_model(reproduce):
    result = reproduce("fig19")
    assert result.measured["sn40l_over_4xa100_70b"] > 1.3
