"""Figs. 6/7/34: TRT-LLM framework study (Section V-1, Appendix E)."""


def test_fig6_7b_models(reproduce):
    result = reproduce("fig6")
    assert result.measured["gqa_over_mhsa_bs64_a100"] > 1.5


def test_fig7_70b_and_moe(reproduce):
    result = reproduce("fig7")
    assert result.measured["h100_batch_scaling_1_to_64"] > 20.0
    assert result.measured["a100_batch_scaling_1_to_64"] < 6.0


def test_fig34_cross_framework_70b(reproduce):
    result = reproduce("fig34")
    assert result.measured["mixtral_margin_over_70b"] > 1.3
