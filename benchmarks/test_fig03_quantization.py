"""Fig. 3: FP16 vs FP8 vs INT8 on A100/H100 (Section IV-B3)."""


def test_fig3_quantization(reproduce):
    result = reproduce("fig3")
    assert result.measured["h100_fp8_over_fp16"] > 1.1
    assert result.measured["a100_int8_over_fp16"] > 1.1
