"""Fig. 4: NAS (DeciLM) and speculative decoding (Section IV-B4/B5)."""


def test_fig4a_nas(reproduce):
    result = reproduce("fig4a")
    assert result.measured["deci_over_llama3_a100"] > 1.0


def test_fig4b_speculative_decoding(reproduce):
    result = reproduce("fig4b")
    assert result.measured["llama2_speedup_at_128"] > 1.0
    assert result.measured["mixtral_speedup_at_128"] < 1.0
