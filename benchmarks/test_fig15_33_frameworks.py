"""Figs. 15/33: framework shoot-outs on A100 and H100 (Section VI-1)."""


def test_fig15_a100_ordering(reproduce):
    result = reproduce("fig15")
    assert result.measured["trtllm_over_vllm"] > 1.0
    assert result.measured["vllm_over_dsmii"] > 1.0


def test_fig33_h100_comparison(reproduce):
    result = reproduce("fig33")
    assert result.measured["qwen2_trtllm_is_best"] > 1.0
