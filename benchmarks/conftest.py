"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures through the
experiment registry, times the reproduction with pytest-benchmark, prints
the same rows/series the paper reports, and sanity-checks the headline
claims so a silent model regression fails the bench run.
"""

from __future__ import annotations

import pytest

from repro.bench import BenchmarkRunner, run_experiment
from repro.bench.experiments import ExperimentResult


@pytest.fixture(scope="session")
def runner() -> BenchmarkRunner:
    return BenchmarkRunner()


@pytest.fixture
def reproduce(benchmark, runner):
    """Benchmark one experiment and emit its table + headline claims."""

    def _run(experiment_id: str) -> ExperimentResult:
        result = benchmark(run_experiment, experiment_id, runner)
        print()
        print(result.render())
        print(result.table.render(max_rows=40))
        assert result.measured, f"{experiment_id} produced no headline claims"
        return result

    return _run
