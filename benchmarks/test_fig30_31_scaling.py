"""Figs. 30/31: multi-GPU scaling studies (Appendix E-A/B)."""


def test_fig30_trtllm_scaling(reproduce):
    result = reproduce("fig30")
    assert result.measured["mistral_scaling_1_to_4"] > 2.0


def test_fig31_vllm_scaling(reproduce):
    result = reproduce("fig31")
    assert result.measured["h100_over_a100_4gpu"] > 1.3
