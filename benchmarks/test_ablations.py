"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation flips one mechanism off and shows the headline result it
drives disappearing — evidence that the simulator reproduces the paper's
findings for the right reasons, not by coincidence of constants.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.request import GenerationConfig
from repro.frameworks.base import get_framework
from repro.hardware.zoo import get_hardware
from repro.models.kvcache import KVCacheSpec
from repro.models.zoo import get_model
from repro.perf.estimator import InferenceEstimator
from repro.perf.parallelism import ParallelismPlan
from repro.perf.phases import Deployment


def _tput(dep: Deployment, config: GenerationConfig) -> float:
    return InferenceEstimator(dep).throughput(config)


def test_ablation_paged_vs_contiguous_kv(benchmark):
    """Paged allocation is what lets vLLM hold more concurrent sequences.

    Forcing contiguous allocation on the same deployment slashes the
    concurrency cap — the Fig. 2b / Gaudi2-OOM mechanism.
    """
    dep = Deployment(
        get_model("LLaMA-2-7B"), get_hardware("A100"), get_framework("vLLM")
    )
    config = GenerationConfig(1800, 200, 64)

    def run():
        paged = InferenceEstimator(dep).capacity(config).max_concurrency
        contiguous_dep = dep.with_kv_spec(KVCacheSpec(paged=False))
        contiguous = (
            InferenceEstimator(contiguous_dep).capacity(config).max_concurrency
        )
        return paged, contiguous

    paged, contiguous = benchmark(run)
    print(f"\nmax concurrency: paged={paged} contiguous={contiguous}")
    # Contiguous reserves full final contexts; paged rounds to blocks only,
    # so it can never hold fewer sequences.
    assert paged >= contiguous


def test_ablation_continuous_vs_static_batching(benchmark):
    """Continuous batching turns would-be OOMs into throughput waves."""
    base = Deployment(
        get_model("LLaMA-3-70B"),
        get_hardware("A100"),
        get_framework("vLLM"),
        plan=ParallelismPlan(tp=4),
    )
    static_fw = replace(get_framework("vLLM"), name="vLLM-static",
                        continuous_batching=False)
    static = Deployment(
        get_model("LLaMA-3-70B"),
        get_hardware("A100"),
        static_fw,
        plan=ParallelismPlan(tp=4),
    )
    config = GenerationConfig(1024, 1024, 64)

    def run():
        return (
            InferenceEstimator(base).estimate(config),
            InferenceEstimator(static).estimate(config),
        )

    continuous, static_m = benchmark(run)
    print(
        f"\ncontinuous: {continuous.throughput_tokens_per_s:.0f} tok/s, "
        f"static: {'OOM' if static_m.oom else static_m.throughput_tokens_per_s}"
    )
    assert not continuous.oom
    assert static_m.oom


def test_ablation_gqa_aware_kernels(benchmark):
    """GQA awareness is what flips the LLaMA-2 vs LLaMA-3 ordering.

    With vLLM's GQA-aware kernels LLaMA-3-8B wins at large batch; giving
    vLLM llama.cpp's GQA-oblivious penalty flips the ordering back — the
    Fig. 8-vs-Fig. 14 contrast.
    """
    config = GenerationConfig(1024, 1024, 64)
    a100 = get_hardware("A100")
    aware = get_framework("vLLM")
    oblivious = replace(aware, name="vLLM-noGQA", gqa_kv_penalty=4.0)

    def run():
        out = {}
        for fw in (aware, oblivious):
            l2 = _tput(Deployment(get_model("LLaMA-2-7B"), a100, fw), config)
            l3 = _tput(Deployment(get_model("LLaMA-3-8B"), a100, fw), config)
            out[fw.name] = l3 / l2
        return out

    ratios = benchmark(run)
    print(f"\nLLaMA-3/LLaMA-2 ratio: {ratios}")
    assert ratios["vLLM"] > 1.2  # GQA model wins with aware kernels
    assert ratios["vLLM-noGQA"] < ratios["vLLM"]  # advantage collapses


def test_ablation_memory_capacity_waves(benchmark):
    """The H100-39x vs A100-3x contrast needs the concurrency cap.

    Removing the cap (pretend A100 devices had 10x memory) restores large
    batch scaling on A100 — i.e. the scaling gap is a memory-capacity
    effect, not a compute one.
    """
    plan = ParallelismPlan(tp=4)
    model = get_model("LLaMA-3-70B")
    a100 = get_hardware("A100")
    roomy_a100 = replace(a100, memory_per_device_bytes=a100.memory_per_device_bytes * 10)
    fw = get_framework("TRT-LLM")

    def scaling(hw):
        dep = Deployment(model, hw, fw, plan=plan)
        est = InferenceEstimator(dep)
        t1 = est.throughput(GenerationConfig(1024, 1024, 1))
        t64 = est.throughput(GenerationConfig(1024, 1024, 64))
        return t64 / t1

    def run():
        return scaling(a100), scaling(roomy_a100)

    capped, roomy = benchmark(run)
    print(f"\nbatch scaling 1->64: capped={capped:.1f}x roomy={roomy:.1f}x")
    assert capped < 6.0
    assert roomy > 3 * capped


def test_ablation_speculative_acceptance_model(benchmark):
    """SD's length decay comes from the acceptance model, not the costs."""
    from repro.perf import speculative as sd

    dep = Deployment(
        get_model("LLaMA-2-7B"), get_hardware("A100"), get_framework("vLLM")
    )
    spec = sd.SpeculativeConfig(draft_model=get_model("LLaMA-68M"), gamma=4)

    def run():
        short = sd.speculative_speedup(dep, spec, GenerationConfig(128, 128, 1))
        long = sd.speculative_speedup(dep, spec, GenerationConfig(2048, 2048, 1))
        a_short = sd.acceptance_rate(dep.model, spec.draft_model, 128)
        a_long = sd.acceptance_rate(dep.model, spec.draft_model, 2048)
        return short, long, a_short, a_long

    short, long, a_short, a_long = benchmark(run)
    print(
        f"\nspeedup 128: {short:.2f} (accept {a_short:.2f}), "
        f"2048: {long:.2f} (accept {a_long:.2f})"
    )
    assert a_long < a_short
    assert long < short


def test_ablation_optimistic_vs_conservative_admission(benchmark):
    """Optimistic (vLLM-real) admission packs more sequences up front at
    the cost of recompute preemptions; conservative admission never
    preempts.  Both complete the same work."""
    from repro.runtime.engine import ServingEngine
    from repro.runtime.workload import fixed_batch_trace

    dep = Deployment(
        get_model("LLaMA-2-7B"), get_hardware("A100"), get_framework("vLLM")
    )

    def run():
        conservative = ServingEngine(dep, max_concurrency=24).run(
            fixed_batch_trace(24, 1800, 2200)
        )
        optimistic = ServingEngine(dep, max_concurrency=24, optimistic=True).run(
            fixed_batch_trace(24, 1800, 2200)
        )
        return conservative, optimistic

    conservative, optimistic = benchmark(run)
    print(
        f"\nconservative: {conservative.throughput_tokens_per_s:,.0f} tok/s, "
        f"0 preemptions | optimistic: "
        f"{optimistic.throughput_tokens_per_s:,.0f} tok/s, "
        f"{optimistic.scheduler_stats.preemptions} preemptions"
    )
    assert conservative.scheduler_stats.preemptions == 0
    assert optimistic.scheduler_stats.preemptions > 0
    # Same total work either way.
    assert optimistic.total_tokens == conservative.total_tokens
