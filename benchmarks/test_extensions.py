"""Extension experiments: deferred/footnoted items the paper did not plot."""


def test_ext_energy_all_platforms(reproduce):
    result = reproduce("ext-energy")
    assert result.measured["a100_joules_over_h100"] > 1.0


def test_ext_mi300x_positioning(reproduce):
    result = reproduce("ext-mi300x")
    assert result.measured["mi300x_over_mi250"] > 1.5
    assert result.measured["mixtral_fits_single_mi300x"] == 1.0


def test_ext_peak_batch_search(reproduce):
    result = reproduce("ext-peak-batch")
    assert result.measured["mi250_peak_batch"] == 32.0
    assert result.measured["h100_peak_beyond_64"] == 1.0


def test_ext_int4_tradeoff(reproduce):
    result = reproduce("ext-int4")
    assert result.measured["int4_speedup_over_fp16"] > 1.3
    assert 1.0 < result.measured["int4_ppl_over_fp16"] < 1.1


def test_ext_slo_goodput(reproduce):
    result = reproduce("ext-slo")
    assert result.measured["light_load_slo_attainment"] > 0.9
    assert result.measured["p95_ttft_inflation_under_load"] > 1.5


def test_ext_multinode_scaling(reproduce):
    result = reproduce("ext-multinode")
    # Pipeline bubble bounds compute-rich scaling; capacity relief makes
    # memory-starved scaling superlinear.
    assert 1.0 < result.measured["h100_scaling_1_to_4_nodes"] < 2.5
    assert result.measured["a100_scaling_1_to_2_nodes"] > 2.0


def test_ext_moe_designs(reproduce):
    result = reproduce("ext-moe")
    assert result.measured["qwen_moe_active_share_bs1"] < (
        result.measured["mixtral_active_share_bs1"]
    )
    assert result.measured["mixtral_pool_hot_fraction_bs64"] > 0.99
