"""Figs. 20/38: Habana Gaudi2 vs A100/H100 (Section VI-4)."""


def test_fig20_7b_models(reproduce):
    result = reproduce("fig20")
    assert result.measured["gaudi2_over_a100_bs16"] > 1.0
    assert result.measured["gaudi2_oom_at_bs64"] == 1.0


def test_fig38_70b_models(reproduce):
    result = reproduce("fig38")
    assert result.measured["gaudi2_over_a100_70b"] > 1.0
