"""Microbenchmarks of the simulator's own substrates.

These are *performance* benches of the reproduction code itself (allocator
throughput, engine iteration rate, tokenizer training, n-gram scoring),
complementing the per-figure reproductions: they keep the simulator fast
enough that full-suite reproduction stays interactive.
"""

from __future__ import annotations

from repro.core.request import GenerationConfig
from repro.evaluation.datasets import unified_corpus
from repro.evaluation.perplexity import NGramLanguageModel
from repro.evaluation.tokenizer import ByteBPETokenizer
from repro.frameworks.base import get_framework
from repro.hardware.zoo import get_hardware
from repro.models.zoo import get_model
from repro.perf.estimator import InferenceEstimator
from repro.perf.phases import Deployment, decode_step_breakdown
from repro.runtime.engine import ServingEngine
from repro.runtime.paged_kv import PagedKVAllocator
from repro.runtime.workload import fixed_batch_trace


def _dep() -> Deployment:
    return Deployment(
        get_model("LLaMA-3-8B"), get_hardware("A100"), get_framework("vLLM")
    )


def test_bench_decode_step_model(benchmark):
    dep = _dep()
    result = benchmark(decode_step_breakdown, dep, 32, 2048)
    assert result.total_s > 0


def test_bench_estimator_point(benchmark):
    est = InferenceEstimator(_dep())
    config = GenerationConfig(1024, 1024, 32)
    metrics = benchmark(est.estimate, config)
    assert metrics.throughput_tokens_per_s > 0


def test_bench_engine_coalesced_run(benchmark):
    dep = _dep()

    def run():
        engine = ServingEngine(dep, max_concurrency=16)
        return engine.run(fixed_batch_trace(16, 512, 512))

    result = benchmark(run)
    assert result.total_time_s > 0


def test_bench_engine_stepwise_run(benchmark):
    dep = _dep()

    def run():
        engine = ServingEngine(dep, max_concurrency=8, coalesce=False)
        return engine.run(fixed_batch_trace(8, 128, 128))

    result = benchmark(run)
    assert result.decode_steps == 127


def test_bench_paged_allocator_churn(benchmark):
    def churn():
        alloc = PagedKVAllocator(total_blocks=4096, block_size=16)
        for wave in range(4):
            for seq in range(128):
                alloc.admit(wave * 128 + seq, 64, 128)
            for seq in range(128):
                for _ in range(64):
                    alloc.append_token(wave * 128 + seq)
            for seq in range(128):
                alloc.free(wave * 128 + seq)
        return alloc.free_blocks

    free = benchmark(churn)
    assert free == 4096


def test_bench_tokenizer_training(benchmark):
    corpus = unified_corpus(num_documents=3, words_per_document=120, seed=1)
    tok = benchmark(lambda: ByteBPETokenizer(vocab_size=320).train(corpus))
    assert tok.actual_vocab_size > 256


def test_bench_ngram_scoring(benchmark):
    corpus = unified_corpus(num_documents=3, words_per_document=120, seed=2)
    tok = ByteBPETokenizer(vocab_size=300).train(corpus)
    tokens = tok.encode(corpus)
    model = NGramLanguageModel(order=3, vocab_size=tok.actual_vocab_size)
    model.fit(tokens[: len(tokens) // 2])
    held = tokens[len(tokens) // 2 :][:2000]
    ppl = benchmark(model.perplexity, held)
    assert ppl > 1.0
