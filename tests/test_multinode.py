"""Tests for the multi-node scaling extension."""

import pytest

from repro.core.request import GenerationConfig
from repro.frameworks.base import get_framework
from repro.hardware.zoo import get_hardware
from repro.models.zoo import get_model
from repro.perf.multinode import INFINIBAND_NDR, ClusterDeployment


def _cluster(nodes=2, model="LLaMA-3-70B", hw="H100", **kwargs):
    return ClusterDeployment(
        get_model(model), get_hardware(hw), get_framework("vLLM"),
        num_nodes=nodes, **kwargs,
    )


CONFIG = GenerationConfig(1024, 1024, 64)


class TestConstruction:
    def test_defaults_to_whole_node_tp(self):
        cluster = _cluster(nodes=2)
        assert cluster.tp_per_node == 4
        assert cluster.total_devices == 8

    def test_rejects_bad_node_count(self):
        with pytest.raises(ValueError):
            _cluster(nodes=0)

    def test_rejects_more_nodes_than_layers(self):
        with pytest.raises(ValueError, match="layers"):
            ClusterDeployment(
                get_model("LLaMA-68M"), get_hardware("H100"),
                get_framework("vLLM"), num_nodes=4,
            )

    def test_stage_slices_layers_evenly(self):
        cluster = _cluster(nodes=4)
        assert cluster._stage_model().num_layers == 20

    def test_infiniband_constants(self):
        assert INFINIBAND_NDR.bandwidth_gb_s == 50.0


class TestScalingBehaviour:
    def test_single_node_matches_intra_node_estimator(self):
        """One node = the ordinary single-node deployment."""
        from repro.perf.estimator import InferenceEstimator
        from repro.perf.parallelism import ParallelismPlan
        from repro.perf.phases import Deployment

        cluster = _cluster(nodes=1)
        est = cluster.estimate(CONFIG)
        single = InferenceEstimator(
            Deployment(
                get_model("LLaMA-3-70B"), get_hardware("H100"),
                get_framework("vLLM"), plan=ParallelismPlan(tp=4),
            )
        ).estimate(CONFIG)
        # Same capacity and same order of throughput (the stage slice
        # carries the full embedding, so a small gap is expected).
        assert est.metrics.effective_concurrency == single.effective_concurrency
        assert est.throughput_tokens_per_s == pytest.approx(
            single.throughput_tokens_per_s, rel=0.15
        )

    def test_more_nodes_more_throughput(self):
        tputs = [
            _cluster(nodes=n).estimate(CONFIG).throughput_tokens_per_s
            for n in (1, 2, 4)
        ]
        assert tputs == sorted(tputs)

    def test_decode_scaling_is_sublinear(self):
        """PP-across-nodes decode is bubble-limited: far below linear."""
        one = _cluster(nodes=1).estimate(CONFIG).throughput_tokens_per_s
        four = _cluster(nodes=4).estimate(CONFIG).throughput_tokens_per_s
        assert four < 3 * one

    def test_ttft_improves_with_nodes(self):
        """Prefill pipelines deeply, so TTFT drops with node count."""
        one = _cluster(nodes=1).estimate(CONFIG).metrics.ttft_s
        four = _cluster(nodes=4).estimate(CONFIG).metrics.ttft_s
        assert four < one

    def test_capacity_relief_on_starved_nodes(self):
        """70B on A100 nodes: a second node lifts the concurrency cap —
        the strongest reason to scale out."""
        one = _cluster(nodes=1, hw="A100").estimate(CONFIG)
        two = _cluster(nodes=2, hw="A100").estimate(CONFIG)
        assert two.metrics.effective_concurrency > (
            one.metrics.effective_concurrency
        )
        assert two.throughput_tokens_per_s > 2 * one.throughput_tokens_per_s

    def test_inter_node_time_scales_with_boundaries(self):
        two = _cluster(nodes=2).estimate(CONFIG).inter_node_time_per_step_s
        four = _cluster(nodes=4).estimate(CONFIG).inter_node_time_per_step_s
        assert four == pytest.approx(3 * two / 1, rel=0.01) or four > two

    def test_power_scales_with_nodes(self):
        # Per-node power shifts slightly with the slice's utilization mix,
        # so aggregate power lands near (not exactly at) 4x.
        one = _cluster(nodes=1).estimate(CONFIG).metrics.average_power_w
        four = _cluster(nodes=4).estimate(CONFIG).metrics.average_power_w
        assert 2.8 * one < four < 4.4 * one

    def test_oom_propagates(self):
        """A stage that cannot hold its slice reports OOM."""
        cluster = ClusterDeployment(
            get_model("LLaMA-2-70B"), get_hardware("A100"),
            get_framework("vLLM"), num_nodes=1, tp_per_node=1,
        )
        assert cluster.estimate(CONFIG).metrics.oom
