"""Tests for the n-gram LM and the corpus perplexity bridge."""

import pytest

from repro.evaluation.datasets import unified_corpus
from repro.evaluation.perplexity import (
    NGramLanguageModel,
    model_perplexity_on_corpus,
    perplexity_of_stream,
)
from repro.evaluation.tokenizer import ByteBPETokenizer
from repro.models.zoo import get_model


def _token_streams(seed: int = 0):
    corpus = unified_corpus(num_documents=4, words_per_document=120, seed=seed)
    tok = ByteBPETokenizer(vocab_size=300).train(corpus)
    tokens = tok.encode(corpus)
    split = int(0.8 * len(tokens))
    return tokens[:split], tokens[split:], tok.actual_vocab_size


class TestNGramModel:
    def test_probabilities_normalize(self):
        train, _, vocab = _token_streams()
        model = NGramLanguageModel(order=2, vocab_size=vocab).fit(train)
        history = train[:1]
        total = sum(model.probability(t, history) for t in range(vocab))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_probability_always_positive(self):
        train, _, vocab = _token_streams()
        model = NGramLanguageModel(order=3, vocab_size=vocab).fit(train)
        # An unseen token after an unseen context still has mass.
        assert model.probability(vocab - 1, [vocab - 1, vocab - 1]) > 0

    def test_in_domain_perplexity_below_uniform(self):
        train, held, vocab = _token_streams()
        model = NGramLanguageModel(order=3, vocab_size=vocab).fit(train)
        assert model.perplexity(held) < vocab

    def test_higher_order_helps_in_domain(self):
        train, held, vocab = _token_streams()
        uni = NGramLanguageModel(order=1, vocab_size=vocab).fit(train)
        tri = NGramLanguageModel(order=3, vocab_size=vocab).fit(train)
        assert tri.perplexity(held) < uni.perplexity(held)

    def test_more_data_helps(self):
        train, held, vocab = _token_streams()
        small = NGramLanguageModel(order=2, vocab_size=vocab).fit(train[:500])
        large = NGramLanguageModel(order=2, vocab_size=vocab).fit(train)
        assert large.perplexity(held) <= small.perplexity(held) * 1.05

    def test_memorizes_training_text(self):
        train, _, vocab = _token_streams()
        model = NGramLanguageModel(order=3, vocab_size=vocab).fit(train)
        assert model.perplexity(train[:500]) < model.perplexity(
            list(reversed(train[:500]))
        )

    def test_untrained_raises(self):
        model = NGramLanguageModel(order=2, vocab_size=100)
        with pytest.raises(RuntimeError, match="not trained"):
            model.probability(0, [])

    def test_validates_tokens(self):
        model = NGramLanguageModel(order=1, vocab_size=10)
        with pytest.raises(ValueError, match="outside vocab"):
            model.fit([1, 2, 30])

    def test_needs_enough_tokens(self):
        with pytest.raises(ValueError, match="at least"):
            NGramLanguageModel(order=3, vocab_size=10).fit([1, 2])

    def test_convenience_wrapper(self):
        train, held, vocab = _token_streams()
        ppl = perplexity_of_stream(train, held, vocab)
        assert 1.0 < ppl < vocab


class TestModelPerplexityBridge:
    @pytest.fixture(scope="class")
    def corpus(self):
        return unified_corpus(num_documents=3, words_per_document=100, seed=11)

    def test_vocab_effect_is_measured(self, corpus):
        """LLaMA-3's 128K vocab must yield higher token-level perplexity
        than Mistral's 32K on the same corpus (Fig. 10 narrative)."""
        mistral = model_perplexity_on_corpus(get_model("Mistral-7B"), corpus)
        llama3 = model_perplexity_on_corpus(get_model("LLaMA-3-8B"), corpus)
        assert llama3 > mistral

    def test_llama2_best_of_the_trio(self, corpus):
        llama2 = model_perplexity_on_corpus(get_model("LLaMA-2-7B"), corpus)
        for name in ("Mistral-7B", "LLaMA-3-8B"):
            assert model_perplexity_on_corpus(get_model(name), corpus) > llama2

    def test_values_plausible(self, corpus):
        ppl = model_perplexity_on_corpus(get_model("LLaMA-2-7B"), corpus)
        assert 3.0 < ppl < 20.0
