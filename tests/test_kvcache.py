"""Tests for KV-cache sizing and allocation policies."""

import pytest

from repro.core.precision import Precision
from repro.models.kvcache import (
    KVCacheSpec,
    kv_bytes_for_sequence,
    kv_bytes_per_token,
)
from repro.models.zoo import get_model


class TestKVBytes:
    def test_gqa_is_group_times_smaller(self):
        """The paper's central mechanism: LLaMA-3-8B carries 4x less KV
        than LLaMA-2-7B (32 vs 8 KV heads)."""
        mhsa = kv_bytes_per_token(get_model("LLaMA-2-7B"))
        gqa = kv_bytes_per_token(get_model("LLaMA-3-8B"))
        assert mhsa == pytest.approx(4 * gqa)

    def test_llama2_7b_absolute_value(self):
        # 2 (K+V) * 32 layers * 32 heads * 128 dim * 2 bytes = 512 KiB/token
        assert kv_bytes_per_token(get_model("LLaMA-2-7B")) == 2 * 32 * 32 * 128 * 2

    def test_fp8_kv_halves_bytes(self):
        model = get_model("LLaMA-3-8B")
        assert kv_bytes_per_token(model, Precision.FP8) == pytest.approx(
            0.5 * kv_bytes_per_token(model, Precision.FP16)
        )

    def test_sequence_scales_linearly(self):
        model = get_model("Mistral-7B")
        assert kv_bytes_for_sequence(model, 100) == pytest.approx(
            100 * kv_bytes_per_token(model)
        )

    def test_sequence_rejects_negative(self):
        with pytest.raises(ValueError):
            kv_bytes_for_sequence(get_model("Mistral-7B"), -1)

    def test_decilm_kv_below_uniform_gqa(self):
        """NAS spent only 67 KV heads, below Mistral's 256."""
        assert kv_bytes_per_token(get_model("DeciLM-7B")) < kv_bytes_per_token(
            get_model("Mistral-7B")
        )


class TestKVCacheSpec:
    def test_blocks_ceiling_division(self):
        spec = KVCacheSpec(block_size=16)
        assert spec.blocks_for(0) == 0
        assert spec.blocks_for(1) == 1
        assert spec.blocks_for(16) == 1
        assert spec.blocks_for(17) == 2

    def test_paged_allocates_whole_blocks(self):
        spec = KVCacheSpec(paged=True, block_size=16)
        assert spec.allocated_tokens(20, 4096) == 32

    def test_contiguous_reserves_max_context(self):
        spec = KVCacheSpec(paged=False)
        assert spec.allocated_tokens(20, 4096) == 4096

    def test_fragmentation_waste(self):
        paged = KVCacheSpec(paged=True, block_size=16)
        contiguous = KVCacheSpec(paged=False)
        assert paged.fragmentation_waste(20, 4096) == 12
        assert contiguous.fragmentation_waste(20, 4096) == 4076

    def test_allocated_bytes_uses_model_kv(self):
        model = get_model("LLaMA-3-8B")
        spec = KVCacheSpec(paged=True, block_size=16)
        assert spec.allocated_bytes(model, 16, 4096) == pytest.approx(
            16 * kv_bytes_per_token(model)
        )

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError, match="block_size"):
            KVCacheSpec(block_size=0)

    def test_blocks_for_rejects_negative(self):
        with pytest.raises(ValueError):
            KVCacheSpec().blocks_for(-1)
