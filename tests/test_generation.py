"""Tests for the end-to-end text generator on the n-gram substrate."""

import pytest

from repro.evaluation.datasets import unified_corpus
from repro.evaluation.generation import TextGenerator
from repro.evaluation.perplexity import NGramLanguageModel
from repro.evaluation.tokenizer import ByteBPETokenizer


@pytest.fixture(scope="module")
def generator():
    corpus = unified_corpus(num_documents=4, words_per_document=150, seed=3)
    return TextGenerator.fit(corpus, vocab_size=320, order=3)


class TestFit:
    def test_fit_builds_consistent_pair(self, generator):
        assert generator.model.vocab_size == generator.tokenizer.actual_vocab_size

    def test_mismatched_vocab_rejected(self):
        tok = ByteBPETokenizer(vocab_size=320).train("a b c a b c a b")
        lm = NGramLanguageModel(order=2, vocab_size=100)
        with pytest.raises(ValueError, match="vocabulary"):
            TextGenerator(tok, lm)


class TestGenerate:
    def test_produces_requested_tokens(self, generator):
        result = generator.generate("the report", max_new_tokens=16, seed=0)
        assert result.num_generated == 16
        assert isinstance(result.text, str)

    def test_deterministic_per_seed(self, generator):
        a = generator.generate("the question", max_new_tokens=12, seed=5)
        b = generator.generate("the question", max_new_tokens=12, seed=5)
        assert a.generated_tokens == b.generated_tokens

    def test_seeds_differ(self, generator):
        a = generator.generate("the question", max_new_tokens=24, seed=1)
        b = generator.generate("the question", max_new_tokens=24, seed=2)
        assert a.generated_tokens != b.generated_tokens

    def test_greedy_is_seed_independent(self, generator):
        a = generator.generate("the data", max_new_tokens=8, temperature=0.0, seed=1)
        b = generator.generate("the data", max_new_tokens=8, temperature=0.0, seed=9)
        assert a.generated_tokens == b.generated_tokens

    def test_generated_text_decodes_to_words(self, generator):
        result = generator.generate("the", max_new_tokens=40, seed=0)
        assert len(result.text.split()) >= 1

    def test_generated_text_is_in_domain(self, generator):
        """Generated text should score better than scrambled text."""
        result = generator.generate("the report", max_new_tokens=60, seed=0)
        in_domain = generator.score(result.text)
        scrambled = " ".join(reversed(result.text.split()))
        assert in_domain <= generator.score(scrambled) * 1.05

    def test_rejects_bad_args(self, generator):
        with pytest.raises(ValueError):
            generator.generate("x", max_new_tokens=0)
        with pytest.raises(ValueError):
            generator.generate("x", temperature=-1.0)

    def test_score_rejects_empty(self, generator):
        with pytest.raises(ValueError):
            generator.score("")
